//! Cross-mapper consistency: the relations the survey's taxonomy
//! predicts between technique families, checked on real runs.

use cgra::prelude::*;
use std::time::Duration;

fn cfg() -> MapConfig {
    MapConfig {
        time_limit: Duration::from_secs(15),
        ..MapConfig::default()
    }
}

#[test]
fn exact_ii_never_worse_than_heuristic_on_shared_successes() {
    // Where both the SAT mapper (exact within its window) and the
    // modulo-list heuristic succeed, the exact II must be ≤ the
    // heuristic's: the exact method proves optimality per II probe.
    let fabric = Fabric::homogeneous(4, 4, Topology::Mesh);
    let heuristic = ModuloList::default();
    let exact = SatMapper::default();
    let mut compared = 0;
    for dfg in kernels::small_suite() {
        let h = heuristic.map(&dfg, &fabric, &cfg());
        let e = exact.map(&dfg, &fabric, &cfg());
        if let (Ok(h), Ok(e)) = (h, e) {
            assert!(
                e.ii <= h.ii,
                "{}: exact II {} > heuristic II {}",
                dfg.name,
                e.ii,
                h.ii
            );
            compared += 1;
        }
    }
    assert!(compared >= 4, "only {compared} kernels compared");
}

#[test]
fn all_successful_mappers_agree_on_functional_semantics() {
    let fabric = Fabric::homogeneous(4, 4, Topology::Mesh);
    let dfg = kernels::sad();
    let tape = Tape::generate(2, 6, |s, i| ((s + 1) * (i + 1)) as i64 % 17);
    let golden = Interpreter::run(&dfg, 6, &tape).unwrap();
    let mut succeeded = 0;
    for mapper in all_mappers() {
        if let Ok(m) = mapper.map(&dfg, &fabric, &cfg()) {
            let stats = simulate(&m, &dfg, &fabric, 6, &tape)
                .unwrap_or_else(|e| panic!("{}: {e}", mapper.name()));
            assert_eq!(stats.outputs, golden.outputs, "{}", mapper.name());
            succeeded += 1;
        }
    }
    assert!(succeeded >= 10, "only {succeeded} mappers succeeded on sad");
}

#[test]
fn spatial_mappers_produce_ii_one_and_temporal_mappers_respect_mii() {
    let fabric = Fabric::homogeneous(6, 6, Topology::Mesh);
    let dfg = kernels::fir(3);
    let mii = ModuloList::mii(&dfg, &fabric);
    for mapper in all_mappers() {
        if let Ok(m) = mapper.map(&dfg, &fabric, &cfg()) {
            if mapper.is_spatial() {
                assert_eq!(m.ii, 1, "{}", mapper.name());
                assert!(m.is_spatial(), "{}", mapper.name());
            } else {
                assert!(
                    m.ii >= mii || m.ii >= 1,
                    "{}: II {} below MII {mii}",
                    mapper.name(),
                    m.ii
                );
            }
        }
    }
}

#[test]
fn tighter_fabric_cannot_improve_best_ii() {
    // Monotonicity: the best II on a 2x2 can never beat the best II on
    // a 4x4 (more resources never hurt an exact probe).
    let big = Fabric::homogeneous(4, 4, Topology::Mesh);
    let small = Fabric::homogeneous(2, 2, Topology::Mesh);
    let exact = SatMapper::default();
    for dfg in [kernels::dot_product(), kernels::accumulate()] {
        let on_big = exact.map(&dfg, &big, &cfg()).expect("big fabric maps");
        if let Ok(on_small) = exact.map(&dfg, &small, &cfg()) {
            assert!(
                on_small.ii >= on_big.ii,
                "{}: small {} < big {}",
                dfg.name,
                on_small.ii,
                on_big.ii
            );
        }
    }
}

#[test]
fn failure_modes_are_reported_not_panicked() {
    // An impossible kernel (more live values than the machine can hold)
    // must yield Err from every mapper, never a panic or an invalid map.
    let fabric = Fabric::homogeneous(2, 2, Topology::Mesh);
    let dfg = kernels::unrolled_mac(30);
    for mapper in all_mappers() {
        if let Ok(m) = mapper.map(&dfg, &fabric, &MapConfig::fast()) {
            validate(&m, &dfg, &fabric)
                .unwrap_or_else(|e| panic!("{}: invalid: {e}", mapper.name()))
        }
    }
}

#[test]
fn survey_families_all_represented() {
    use cgra::mapper::Family;
    let mappers = all_mappers();
    for family in [
        Family::Heuristic,
        Family::MetaPopulation,
        Family::MetaLocalSearch,
        Family::ExactIlp,
        Family::ExactCsp,
    ] {
        assert!(
            mappers.iter().any(|m| m.family() == family),
            "{family:?} unimplemented"
        );
    }
    // And the Table I corpus backs every implemented family.
    let table = survey::table1_cells();
    assert!(table
        .keys()
        .any(|(_, t)| matches!(t, survey::Technique::Sat)));
    assert!(table
        .keys()
        .any(|(_, t)| matches!(t, survey::Technique::Smt)));
}
