//! Property-based tests over the whole stack: random DFGs and fabrics
//! in, validated-or-rejected mappings out; optimisation passes and the
//! simulator preserve semantics on arbitrary programs.

use cgra::prelude::*;
use proptest::prelude::*;
use std::time::Duration;

/// Build a random layered DAG kernel: `width` parallel values per
/// layer, random binary ops, optional accumulator recurrence.
fn random_dfg(seed: (u8, u8, u64, bool)) -> Dfg {
    let (layers, width, opseed, with_recurrence) = seed;
    let layers = layers % 4 + 1;
    let width = width % 3 + 1;
    let mut g = Dfg::new(format!("rand_{layers}x{width}_{opseed}"));
    let kinds = [
        OpKind::Add,
        OpKind::Sub,
        OpKind::Mul,
        OpKind::Min,
        OpKind::Max,
        OpKind::Xor,
        OpKind::And,
        OpKind::Or,
    ];
    let mut prev: Vec<_> = (0..width)
        .map(|s| g.add_node(OpKind::Input(s as u32)))
        .collect();
    let mut state = opseed | 1;
    let mut next_rand = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..layers {
        let mut cur = Vec::with_capacity(width as usize);
        for _ in 0..width {
            let k = kinds[(next_rand() % kinds.len() as u64) as usize];
            let n = g.add_node(k);
            let a = prev[(next_rand() % prev.len() as u64) as usize];
            let b = prev[(next_rand() % prev.len() as u64) as usize];
            g.connect(a, n, 0);
            g.connect(b, n, 1);
            cur.push(n);
        }
        prev = cur;
    }
    let mut last = prev[0];
    if with_recurrence {
        let acc = g.add_node(OpKind::Add);
        g.connect(last, acc, 0);
        g.connect_carried(acc, acc, 1, 1, vec![0]);
        last = acc;
    }
    let out = g.add_node(OpKind::Output(0));
    g.connect(last, out, 0);
    g
}

fn arb_dfg() -> impl Strategy<Value = Dfg> {
    (any::<u8>(), any::<u8>(), any::<u64>(), any::<bool>()).prop_map(random_dfg)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    #[test]
    fn random_dfgs_are_valid(dfg in arb_dfg()) {
        prop_assert!(dfg.validate().is_ok());
    }

    #[test]
    fn modulo_list_output_always_validates(dfg in arb_dfg()) {
        let fabric = Fabric::homogeneous(4, 4, Topology::Mesh);
        let cfg = MapConfig { time_limit: Duration::from_secs(5), ..MapConfig::fast() };
        if let Ok(m) = ModuloList::default().map(&dfg, &fabric, &cfg) {
            prop_assert!(validate(&m, &dfg, &fabric).is_ok());
        }
    }

    #[test]
    fn mapped_random_kernels_simulate_to_golden(dfg in arb_dfg()) {
        let fabric = Fabric::homogeneous(4, 4, Topology::Mesh);
        let cfg = MapConfig { time_limit: Duration::from_secs(5), ..MapConfig::fast() };
        let streams = dfg.nodes().filter_map(|(_, n)| match n.op {
            OpKind::Input(s) => Some(s as usize + 1),
            _ => None,
        }).max().unwrap_or(0);
        if let Ok(m) = ModuloList::default().map(&dfg, &fabric, &cfg) {
            let tape = Tape::generate(streams, 4, |s, i| ((s + 2) * (i + 1)) as i64 % 23);
            let golden = Interpreter::run(&dfg, 4, &tape).unwrap();
            let stats = simulate(&m, &dfg, &fabric, 4, &tape).unwrap();
            prop_assert_eq!(stats.outputs, golden.outputs);
        }
    }

    #[test]
    fn optimiser_preserves_random_kernel_semantics(dfg in arb_dfg()) {
        let streams = dfg.nodes().filter_map(|(_, n)| match n.op {
            OpKind::Input(s) => Some(s as usize + 1),
            _ => None,
        }).max().unwrap_or(0);
        let tape = Tape::generate(streams, 5, |s, i| ((s + 1) * (i + 7)) as i64 % 101);
        let golden = Interpreter::run(&dfg, 5, &tape).unwrap();
        let mut opt = dfg.clone();
        passes::optimize(&mut opt);
        prop_assert!(opt.validate().is_ok());
        let r = Interpreter::run(&opt, 5, &tape).unwrap();
        prop_assert_eq!(r.outputs, golden.outputs);
    }

    #[test]
    fn unroll_preserves_random_kernel_semantics(dfg in arb_dfg()) {
        let streams = dfg.nodes().filter_map(|(_, n)| match n.op {
            OpKind::Input(s) => Some(s as usize + 1),
            _ => None,
        }).max().unwrap_or(0);
        let factor = 2usize;
        let iters = 6usize;
        let tape = Tape::generate(streams, iters, |s, i| ((s + 3) * (i + 1)) as i64 % 19);
        let golden = Interpreter::run(&dfg, iters, &tape).unwrap();
        let unrolled = passes::unroll(&dfg, factor as u32);
        prop_assert!(unrolled.validate().is_ok());
        let reshaped = passes::reshape_tape(&tape, factor);
        let r = Interpreter::run(&unrolled, iters / factor, &reshaped).unwrap();
        for (s, g) in golden.outputs.iter().enumerate() {
            let mut merged = Vec::new();
            for i in 0..iters / factor {
                for j in 0..factor {
                    merged.push(r.outputs[s * factor + j][i]);
                }
            }
            prop_assert_eq!(&merged, g);
        }
    }

    #[test]
    fn router_never_produces_invalid_routes(
        src in 0u16..16, dst in 0u16..16, slack in 0u32..10
    ) {
        use cgra::mapper::route::{find_route, RouteOpts};
        use std::collections::HashSet;
        let fabric = Fabric::homogeneous(4, 4, Topology::Mesh);
        let st = cgra::arch::SpaceTime::new(&fabric, 4);
        let hop = fabric.hop_distance();
        let (a, b) = (PeId(src), PeId(dst));
        let tr = 3u32;
        let tc = tr + slack;
        let route = find_route(&fabric, &st, a, tr, b, tc,
                               &HashSet::new(), None, RouteOpts::default());
        match route {
            Some(r) => {
                prop_assert_eq!(r.steps[0], a);
                prop_assert_eq!(*r.steps.last().unwrap(), b);
                prop_assert_eq!(r.steps.len() as u32, slack + 1);
                for w in r.steps.windows(2) {
                    prop_assert!(w[0] == w[1] || fabric.neighbors(w[0]).contains(&w[1]));
                }
            }
            None => {
                // Only legitimate when the hop distance exceeds the slack.
                prop_assert!(hop[a.index()][b.index()] > slack);
            }
        }
    }

    #[test]
    fn histogram_merge_is_associative_and_commutative(
        xs in prop::collection::vec(any::<u64>(), 0..64),
        ys in prop::collection::vec(any::<u64>(), 0..64),
        zs in prop::collection::vec(any::<u64>(), 0..64),
    ) {
        use cgra::mapper::telemetry::Histogram;
        let of = |vals: &[u64]| {
            let mut h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let (a, b, c) = (of(&xs), of(&ys), of(&zs));
        // Commutative: a ⊕ b == b ⊕ a.
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);
        // Associative: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
        let mut ab_c = ab;
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);
        prop_assert_eq!(ab_c.count(), (xs.len() + ys.len() + zs.len()) as u64);
    }

    #[test]
    fn histogram_percentile_brackets_the_exact_order_statistic(
        xs in prop::collection::vec(any::<u64>(), 1..256),
        p in 0u32..101,
    ) {
        use cgra::mapper::telemetry::Histogram;
        let p = p as f64;
        let mut h = Histogram::new();
        for &v in &xs {
            h.record(v);
        }
        // The exact rank-ceil(p/100·n) order statistic (1-based), the
        // same rank the histogram's percentile query targets.
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let exact = sorted[rank - 1];
        let got = h.percentile(p);
        // Never undershoots, and never leaves the exact value's bucket.
        prop_assert!(got >= exact, "percentile {got} undershoots exact {exact}");
        prop_assert_eq!(
            Histogram::bucket_of(got),
            Histogram::bucket_of(exact),
            "percentile left the bucket of the exact order statistic"
        );
    }

    #[test]
    fn mii_bound_diagnosis_is_deterministic(dfg in arb_dfg(), hi in 0u32..4) {
        // Two diagnoses of the same (kernel, fabric, II bound) must be
        // structurally identical — renders, orderings and all — and
        // survive a JSON round-trip.
        let fabric = Fabric::homogeneous(2, 2, Topology::Mesh);
        let d1 = diagnose_mii_bound(&dfg, &fabric, hi);
        let d2 = diagnose_mii_bound(&dfg, &fabric, hi);
        prop_assert_eq!(&d1, &d2);
        prop_assert_eq!(d1.render(), d2.render());
        let back = Diagnosis::from_json(&serde_json::to_value(&d1));
        prop_assert_eq!(back, Some(d1));
    }

    #[test]
    fn minic_roundtrip_random_expressions(a in -50i64..50, b in -50i64..50, c in 1i64..20) {
        // Generate a MiniC kernel from the values and check the
        // interpreter against direct evaluation.
        let src = format!(
            "kernel f(in x, out y) {{ y = (x * {a} + {b}) % {c} + min(x, {a}) - abs({b}); }}"
        );
        let k = frontend::compile_kernel(&src).unwrap();
        let tape = Tape { inputs: vec![vec![7, -3]], memory: vec![] };
        let r = Interpreter::run(&k.dfg, 2, &tape).unwrap();
        for (i, &x) in [7i64, -3].iter().enumerate() {
            let want = (x.wrapping_mul(a).wrapping_add(b)) % c + x.min(a) - b.abs();
            prop_assert_eq!(r.outputs[0][i], want);
        }
    }
}
