//! The `cgra-map` CLI end to end: compile a temp MiniC file, map it,
//! and check both the human and JSON reports.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cgra-map"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("cgra-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, contents).unwrap();
    path
}

const DOT: &str = "kernel dot(in a, in b, inout acc) { acc += a * b; }";

#[test]
fn maps_and_reports() {
    let path = write_temp("dot.mc", DOT);
    let out = bin()
        .arg(&path)
        .args(["--fabric", "4x4", "--mapper", "modulo-list", "--iters", "8"])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("II="), "{stdout}");
    assert!(stdout.contains("functional check vs reference interpreter: OK"));
}

#[test]
fn json_report_parses() {
    let path = write_temp("dot2.mc", DOT);
    let out = bin()
        .arg(&path)
        .args(["--json", "--mapper", "epimap"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
    assert_eq!(v["mapper"], "epimap");
    assert!(v["metrics"]["ii"].as_u64().unwrap() >= 1);
    assert!(v["throughput"].as_f64().unwrap() > 0.0);
}

#[test]
fn list_mappers_covers_families() {
    let out = bin().arg("--list-mappers").output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in [
        "modulo-list",
        "sa",
        "ga",
        "ilp",
        "sat",
        "smt",
        "cp",
        "himap",
    ] {
        assert!(stdout.contains(name), "{name} missing:\n{stdout}");
    }
}

#[test]
fn bad_input_fails_cleanly() {
    let path = write_temp("broken.mc", "kernel broken(in a { }");
    let out = bin().arg(&path).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("parse error"), "{stderr}");

    let out = bin().arg("/nonexistent/file.mc").output().unwrap();
    assert!(!out.status.success());

    let path = write_temp("dot3.mc", DOT);
    let out = bin()
        .arg(&path)
        .args(["--mapper", "bogus"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown mapper"));
}

#[test]
fn show_config_prints_contexts() {
    let path = write_temp("dot4.mc", DOT);
    let out = bin()
        .arg(&path)
        .args(["--show-config", "--fabric", "3x3"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("configuration stream"), "{stdout}");
    assert!(stdout.contains("nop"));
}

#[test]
fn trace_is_line_delimited_json_with_all_phases() {
    let path = write_temp("dot5.mc", DOT);
    let trace = std::env::temp_dir().join("cgra-cli-tests/trace.jsonl");
    let out = bin()
        .arg(&path)
        .args(["--trace", trace.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let body = std::fs::read_to_string(&trace).unwrap();
    let mut phases = std::collections::HashSet::new();
    let mut counters_lines = 0;
    let mut meta_lines = 0;
    let mut ledger_lines = 0;
    for line in body.lines() {
        let v: serde_json::Value = serde_json::from_str(line)
            .unwrap_or_else(|e| panic!("invalid JSON line `{line}`: {e}"));
        match v["event"].as_str().unwrap() {
            "span" => {
                assert_eq!(meta_lines, 0, "span after the trailing meta line");
                phases.insert(v["phase"].as_str().unwrap().to_string());
                assert!(v["dur_us"].as_u64().is_some(), "{line}");
            }
            "counters" => {
                counters_lines += 1;
                assert!(v["counters"]["ii_attempts"].as_u64().unwrap() >= 1);
                assert!(v["counters"]["placements_tried"].as_u64().unwrap() >= 1);
            }
            "meta" => {
                meta_lines += 1;
                assert!(v["spans_dropped"].as_u64().is_some(), "{line}");
                assert!(v["events_dropped"].as_u64().is_some(), "{line}");
            }
            // Run-ledger events interleave with the spans.
            "ii_attempt" | "incumbent" | "race_start" | "race_win" | "race_loss"
            | "budget_exhausted" => {
                ledger_lines += 1;
                assert!(v["t_us"].as_u64().is_some(), "{line}");
            }
            other => panic!("unexpected event `{other}`"),
        }
    }
    for p in ["parse", "optimize", "map", "route", "validate", "simulate"] {
        assert!(
            phases.contains(p),
            "phase `{p}` missing from trace:\n{body}"
        );
    }
    assert_eq!(counters_lines, 1, "exactly one counters line expected");
    assert_eq!(meta_lines, 1, "exactly one meta line expected");
    assert!(
        ledger_lines >= 1,
        "ledger events missing from trace:\n{body}"
    );
    assert!(
        body.lines().last().unwrap().contains("\"meta\""),
        "meta must be the final line"
    );
}

#[test]
fn profile_reports_search_effort() {
    let path = write_temp("dot6.mc", DOT);
    let out = bin()
        .arg(&path)
        .args(["--mapper", "sa", "--profile", "--seed", "7"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("search profile:"), "{stdout}");
    assert!(stdout.contains("moves_proposed"), "{stdout}");
    assert!(stdout.contains("moves_accepted"), "{stdout}");
    for p in ["parse", "optimize", "map", "simulate"] {
        assert!(stdout.contains(p), "phase `{p}` missing:\n{stdout}");
    }
}

#[test]
fn budget_flags_flow_into_json_config() {
    let path = write_temp("dot7.mc", DOT);
    let out = bin()
        .arg(&path)
        .args([
            "--json",
            "--time-limit",
            "7",
            "--effort",
            "33",
            "--horizon",
            "2",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
    assert_eq!(v["config"]["time_limit_secs"].as_f64().unwrap(), 7.0);
    assert_eq!(v["config"]["effort"].as_u64().unwrap(), 33);
    assert_eq!(v["config"]["horizon_factor"].as_u64().unwrap(), 2);
    // Telemetry is off without --trace/--profile: stats serialise null.
    assert!(v["search_stats"].is_null());
}

#[test]
fn json_with_profile_includes_search_stats() {
    let path = write_temp("dot8.mc", DOT);
    let out = bin()
        .arg(&path)
        .args(["--json", "--profile"])
        .output()
        .unwrap();
    assert!(out.status.success());
    // The profile goes to stderr so stdout stays valid JSON.
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
    assert!(v["search_stats"]["placements_tried"].as_u64().unwrap() >= 1);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("search profile:"), "{stderr}");
}
