//! The `cgra-map` CLI end to end: compile a temp MiniC file, map it,
//! and check both the human and JSON reports.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cgra-map"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("cgra-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, contents).unwrap();
    path
}

const DOT: &str = "kernel dot(in a, in b, inout acc) { acc += a * b; }";

#[test]
fn maps_and_reports() {
    let path = write_temp("dot.mc", DOT);
    let out = bin()
        .arg(&path)
        .args(["--fabric", "4x4", "--mapper", "modulo-list", "--iters", "8"])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout.contains("II="), "{stdout}");
    assert!(stdout.contains("functional check vs reference interpreter: OK"));
}

#[test]
fn json_report_parses() {
    let path = write_temp("dot2.mc", DOT);
    let out = bin()
        .arg(&path)
        .args(["--json", "--mapper", "epimap"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
    assert_eq!(v["mapper"], "epimap");
    assert!(v["metrics"]["ii"].as_u64().unwrap() >= 1);
    assert!(v["throughput"].as_f64().unwrap() > 0.0);
}

#[test]
fn list_mappers_covers_families() {
    let out = bin().arg("--list-mappers").output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in ["modulo-list", "sa", "ga", "ilp", "sat", "smt", "cp", "himap"] {
        assert!(stdout.contains(name), "{name} missing:\n{stdout}");
    }
}

#[test]
fn bad_input_fails_cleanly() {
    let path = write_temp("broken.mc", "kernel broken(in a { }");
    let out = bin().arg(&path).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("parse error"), "{stderr}");

    let out = bin().arg("/nonexistent/file.mc").output().unwrap();
    assert!(!out.status.success());

    let path = write_temp("dot3.mc", DOT);
    let out = bin().arg(&path).args(["--mapper", "bogus"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown mapper"));
}

#[test]
fn show_config_prints_contexts() {
    let path = write_temp("dot4.mc", DOT);
    let out = bin()
        .arg(&path)
        .args(["--show-config", "--fabric", "3x3"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("configuration stream"), "{stdout}");
    assert!(stdout.contains("nop"));
}
