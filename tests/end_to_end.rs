//! End-to-end integration: MiniC source → front-end → middle-end →
//! every mapper → validator → configuration stream → cycle-accurate
//! simulation → comparison against the reference interpreter.

use cgra::prelude::*;
use std::time::Duration;

const KERNELS_MC: &str = r#"
kernel dot(in a, in b, inout acc) {
    acc = acc + a * b;
}

kernel saxpy(in x, in y, out z) {
    z = 3 * x + y;
}

kernel clip(in x, out y) {
    if (x > 100) { y = 100; } else { if (x < 0) { y = 0; } else { y = x; } }
}

kernel ema(in x, inout s = 0) {
    s = s + ((x - s) >> 2);
}

kernel energy(in l, in r, inout acc) {
    var m = (l + r) >> 1;
    acc = acc + m * m;
}
"#;

fn fast_cfg() -> MapConfig {
    MapConfig {
        time_limit: Duration::from_secs(12),
        ..MapConfig::default()
    }
}

fn compile(name: &str) -> (Dfg, usize) {
    let k = frontend::compile_kernel_named(KERNELS_MC, name).expect("front-end");
    let mut dfg = k.dfg;
    passes::optimize(&mut dfg);
    dfg.validate().expect("optimised DFG valid");
    let streams = dfg
        .nodes()
        .filter_map(|(_, n)| match n.op {
            OpKind::Input(s) => Some(s as usize + 1),
            _ => None,
        })
        .max()
        .unwrap_or(0);
    (dfg, streams)
}

fn check_mapper(mapper: &dyn Mapper, dfg: &Dfg, streams: usize, fabric: &Fabric) -> bool {
    match mapper.map(dfg, fabric, &fast_cfg()) {
        Ok(m) => {
            validate(&m, dfg, fabric)
                .unwrap_or_else(|e| panic!("{} produced invalid mapping: {e}", mapper.name()));
            let iters = 6;
            let tape = Tape::generate(streams, iters, |s, i| ((s + 3) * (i + 2)) as i64 % 41)
                .with_memory(vec![5; 64]);
            cgra::sim::simulate_verified(&m, dfg, fabric, iters, &tape)
                .unwrap_or_else(|e| panic!("{} mapping mis-executes: {e}", mapper.name()));
            // The configuration stream must cover every op.
            let cs = ConfigStream::generate(&m, dfg, fabric);
            let configured = cs
                .contexts
                .iter()
                .flat_map(|s| s.iter())
                .filter(|c| c.node.is_some())
                .count();
            assert_eq!(configured, dfg.node_count(), "{}", mapper.name());
            true
        }
        Err(_) => false,
    }
}

#[test]
fn minic_to_silicon_for_every_mapper_on_dot() {
    let (dfg, streams) = compile("dot");
    let fabric = Fabric::homogeneous(4, 4, Topology::Mesh);
    let mut failures = Vec::new();
    for mapper in all_mappers() {
        if !check_mapper(mapper.as_ref(), &dfg, streams, &fabric) {
            failures.push(mapper.name());
        }
    }
    assert!(
        failures.is_empty(),
        "these mappers failed on the flagship kernel: {failures:?}"
    );
}

#[test]
fn heuristics_handle_all_minic_kernels() {
    let fabric = Fabric::homogeneous(4, 4, Topology::Mesh);
    for name in ["dot", "saxpy", "clip", "ema", "energy"] {
        let (dfg, streams) = compile(name);
        for mapper in heuristic_mappers() {
            // graph-minor may legitimately fail; everything else must map.
            let ok = check_mapper(mapper.as_ref(), &dfg, streams, &fabric);
            if mapper.name() != "graph-minor" && !mapper.is_spatial() {
                assert!(ok, "{} failed on {name}", mapper.name());
            }
        }
    }
}

#[test]
fn heterogeneous_fabric_end_to_end() {
    let fabric = Fabric::adres_like(4, 4);
    let (dfg, streams) = compile("energy");
    let mapper = ModuloList::default();
    assert!(check_mapper(&mapper, &dfg, streams, &fabric));
}

#[test]
fn optimiser_keeps_semantics_through_mapping() {
    // Map the unoptimised and optimised forms; both must simulate to
    // identical outputs.
    let k = frontend::compile_kernel_named(KERNELS_MC, "saxpy").unwrap();
    let raw = k.dfg.clone();
    let mut opt = k.dfg;
    passes::optimize(&mut opt);
    assert!(opt.node_count() <= raw.node_count());
    let fabric = Fabric::homogeneous(4, 4, Topology::Mesh);
    let mapper = ModuloList::default();
    let tape = Tape::generate(2, 5, |s, i| (s as i64 + 1) * (i as i64 + 1));
    let m_raw = mapper.map(&raw, &fabric, &fast_cfg()).unwrap();
    let m_opt = mapper.map(&opt, &fabric, &fast_cfg()).unwrap();
    let s_raw = simulate(&m_raw, &raw, &fabric, 5, &tape).unwrap();
    let s_opt = simulate(&m_opt, &opt, &fabric, 5, &tape).unwrap();
    assert_eq!(s_raw.outputs, s_opt.outputs);
}

#[test]
fn unrolled_kernel_maps_and_matches() {
    let (dfg, streams) = compile("dot");
    let unrolled = passes::unroll(&dfg, 2);
    let fabric = Fabric::homogeneous(4, 4, Topology::Mesh);
    let m = ModuloList::default()
        .map(&unrolled, &fabric, &fast_cfg())
        .unwrap();
    validate(&m, &unrolled, &fabric).unwrap();
    let tape = Tape::generate(streams, 8, |s, i| ((s + 1) * (i + 1)) as i64 % 13);
    let reshaped = passes::reshape_tape(&tape, 2);
    cgra::sim::simulate_verified(&m, &unrolled, &fabric, 4, &reshaped).unwrap();
}

#[test]
fn parse_errors_surface_cleanly() {
    assert!(frontend::compile_kernel("kernel broken(in a { }").is_err());
    assert!(frontend::compile_kernel("kernel k(in a, out y) { y = ; }").is_err());
    assert!(frontend::compile_kernel_named(KERNELS_MC, "nonexistent").is_err());
}
