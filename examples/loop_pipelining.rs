//! Loop pipelining — modulo scheduling in anger.
//!
//! Maps a 4-tap FIR filter (the archetypal CGRA loop) across fabrics
//! and latency models, showing how the II tracks the MII, how
//! unrolling trades fabric area for throughput, and how the hardware
//! loop unit of §III-B2 removes the software loop-control overhead.
//!
//! ```sh
//! cargo run --example loop_pipelining
//! ```

use cgra::mapper::ctrlflow::with_loop_control;
use cgra::prelude::*;

fn main() {
    let mapper = ModuloList::default();
    let cfg = MapConfig::default();

    // --- II vs fabric size -------------------------------------------
    println!("== FIR-4: II across fabric sizes ==");
    let fir = kernels::fir(4);
    for (rows, cols) in [(2, 2), (3, 3), (4, 4), (6, 6)] {
        let fabric = Fabric::homogeneous(rows, cols, Topology::Mesh);
        let mii = ModuloList::mii(&fir, &fabric);
        match mapper.map(&fir, &fabric, &cfg) {
            Ok(m) => {
                let metrics = Metrics::of(&m, &fir, &fabric);
                println!(
                    "  {rows}x{cols}: MII={mii}  II={}  throughput={:.2} iters/cycle  util={:.0}%",
                    m.ii,
                    metrics.throughput,
                    metrics.fu_utilisation * 100.0
                );
            }
            Err(e) => println!("  {rows}x{cols}: MII={mii}  FAILED ({e})"),
        }
    }

    // --- II vs latency model ------------------------------------------
    println!("\n== IIR-1: the recurrence limits the II ==");
    let iir = kernels::iir1();
    for (label, lat) in [
        ("unit latency", LatencyModel::default()),
        ("2-cycle mul/mem", LatencyModel::multi_cycle()),
    ] {
        let mut fabric = Fabric::homogeneous(4, 4, Topology::Mesh);
        fabric.latency = lat;
        let m = mapper.map(&iir, &fabric, &cfg).expect("iir maps");
        println!("  {label}: RecMII-bound II = {}", m.ii);
    }

    // --- Unrolling: more area, more throughput -------------------------
    println!("\n== accumulate: unroll factor vs per-element throughput ==");
    let acc = kernels::accumulate();
    let fabric = Fabric::homogeneous(4, 4, Topology::Mesh);
    for factor in [1u32, 2, 4] {
        let unrolled = passes::unroll(&acc, factor);
        match mapper.map(&unrolled, &fabric, &cfg) {
            Ok(m) => println!(
                "  x{factor}: II={} -> {:.2} elements/cycle",
                m.ii,
                factor as f64 / m.ii as f64
            ),
            Err(e) => println!("  x{factor}: FAILED ({e})"),
        }
    }

    // --- Hardware loops (§III-B2) --------------------------------------
    println!("\n== dot product: software loop control vs hardware loop unit ==");
    let dot = kernels::dot_product();
    let sw = with_loop_control(&dot, 1024);
    let mut hw_fabric = Fabric::homogeneous(4, 4, Topology::Mesh);
    hw_fabric.hw_loop = true;
    let m_sw = mapper.map(&sw, &hw_fabric, &cfg).expect("sw-loop maps");
    let m_hw = mapper.map(&dot, &hw_fabric, &cfg).expect("hw-loop maps");
    println!(
        "  software loop: {} ops, II={} | hardware loop: {} ops, II={}",
        sw.node_count(),
        m_sw.ii,
        dot.node_count(),
        m_hw.ii
    );
    println!(
        "  loop-overhead ops eliminated by the hardware loop unit: {}",
        sw.node_count() - dot.node_count()
    );

    // --- Functional check on the champion -------------------------------
    let tape = Tape::generate(2, 16, |s, i| ((s + 1) * (i + 1)) as i64);
    let stats = cgra::sim::simulate_verified(&m_hw, &dot, &hw_fabric, 16, &tape)
        .expect("functionally correct");
    println!(
        "\nverified: 16 iterations in {} cycles at II={} (throughput {:.2})",
        stats.cycles, m_hw.ii, stats.throughput
    );
}
