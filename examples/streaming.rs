//! Streaming applications — the dataflow programming model the survey
//! (§IV-B-a) identifies as the natural fit for CGRAs.
//!
//! Builds a three-stage image-processing pipeline (FIR smoothing →
//! YUV→RGB conversion feeding one channel → threshold), maps it as a
//! synchronous-dataflow graph onto fabric partitions, and runs the
//! whole pipeline functionally.
//!
//! ```sh
//! cargo run --release --example streaming
//! ```

use cgra::mapper::streaming::{map_streaming, run_streaming, stream_metrics, SdfGraph};
use cgra::prelude::*;
use std::collections::HashMap;

fn main() {
    // The application: smooth a pixel stream, threshold the result.
    let mut sdf = SdfGraph::new();
    let fir = sdf.add_actor(kernels::fir(3));
    let thr = sdf.add_actor(kernels::threshold());
    let sad = sdf.add_actor(kernels::sad());
    sdf.connect((fir, 0), (thr, 0));
    sdf.connect((thr, 0), (sad, 0));
    sdf.connect((fir, 0), (sad, 1));

    println!(
        "SDF application: {} actors, {} channels, order {:?}",
        sdf.actors.len(),
        sdf.channels.len(),
        sdf.topo_actors().unwrap()
    );

    // Map onto a 4x12 fabric: each actor gets a column strip.
    let fabric = Fabric::homogeneous(4, 12, Topology::Mesh);
    let mapper = ModuloList::default();
    let sm = map_streaming(&sdf, &fabric, &mapper, &MapConfig::default()).expect("pipeline maps");

    println!("\npartitions and per-actor results:");
    for ((actor, region), (name, metrics)) in sdf
        .actors
        .iter()
        .zip(&sm.regions)
        .zip(stream_metrics(&sdf, &fabric, &sm))
    {
        println!(
            "  {:<12} cols {:>2}..{:<2} ({} PEs)  II={}  util={:.0}%",
            name,
            region.col_lo,
            region.col_hi,
            region.pes(&fabric).len(),
            metrics.ii,
            metrics.fu_utilisation * 100.0
        );
        let _ = actor;
    }
    println!(
        "\npipeline II = {} -> throughput {:.2} tokens/cycle with all stages concurrent",
        sm.pipeline_ii,
        sm.throughput()
    );

    // Execute the pipeline on a synthetic pixel stream.
    let n = 16;
    let pixels: Vec<i64> = (0..n).map(|i| (i as i64 * 23) % 200).collect();
    let mut external = HashMap::new();
    external.insert((fir, 0u32), pixels.clone());
    let outs = run_streaming(&sdf, n, &external).expect("pipeline runs");
    println!("\ninput pixels: {:?}", &pixels[..8]);
    println!("sad output:   {:?}", &outs[sad][0][..8]);

    // Sequential-offload comparison: without streaming partitions the
    // actors would time-share the array (sum of IIs per token).
    let sum_ii: u32 = sm.mappings.iter().map(|m| m.ii).sum();
    println!(
        "\nstreaming vs time-shared: {} vs {} cycles per token ({}x)",
        sm.pipeline_ii,
        sum_ii,
        sum_ii as f64 / sm.pipeline_ii as f64
    );
}
