//! Mapper comparison — the empirical counterpart of the survey's
//! Table I, on a single page.
//!
//! Runs every implemented mapping technique on the classic kernel
//! suite and prints success rate, mean II, and compile time per
//! technique family — the quantitative form of the survey's
//! qualitative claims (exact methods are slow but strong, heuristics
//! are fast but may fail, meta-heuristics sit in between).
//!
//! ```sh
//! cargo run --release --example mapper_comparison
//! ```

use cgra::prelude::*;
use std::time::Duration;

fn main() {
    let fabric = Fabric::homogeneous(4, 4, Topology::Mesh);
    let kernels = kernels::suite();
    let cfg = MapConfig {
        time_limit: Duration::from_secs(10),
        ..MapConfig::default()
    };
    let mappers = all_mappers();
    println!(
        "mapping {} kernels with {} techniques on {} ...",
        kernels.len(),
        mappers.len(),
        fabric.name
    );

    let entries = run_portfolio(&mappers, &kernels, &fabric, &cfg);
    let summary = cgra::mapper::portfolio::summarise(&entries);

    println!(
        "\n{:<16} {:<28} {:>9} {:>8} {:>10} {:>10}",
        "mapper", "family", "success", "mean II", "mean hops", "ms/kernel"
    );
    println!("{}", "-".repeat(88));
    for s in &summary {
        println!(
            "{:<16} {:<28} {:>6}/{:<2} {:>8} {:>10} {:>10.1}",
            s.mapper,
            s.family_label,
            s.successes,
            s.attempts,
            s.mean_ii
                .map(|x| format!("{x:.2}"))
                .unwrap_or_else(|| "-".into()),
            s.mean_hops
                .map(|x| format!("{x:.1}"))
                .unwrap_or_else(|| "-".into()),
            s.mean_compile_ms
        );
    }

    // Per-kernel view for the workhorse vs one exact method.
    println!("\nper-kernel II (modulo-list vs sat):");
    for k in &kernels {
        let ii = |name: &str| {
            entries
                .iter()
                .find(|e| e.mapper == name && e.kernel == k.name)
                .and_then(|e| e.metrics.as_ref())
                .map(|m| m.ii.to_string())
                .unwrap_or_else(|| "fail".into())
        };
        println!(
            "  {:<14} modulo-list={:<5} sat={}",
            k.name,
            ii("modulo-list"),
            ii("sat")
        );
    }

    // The taxonomy itself, straight from the survey corpus.
    println!("\n{}", survey::render_table1());
}
