//! Scalability — the survey's §IV-B challenge, measured.
//!
//! "While legacy CGRAs are composed of tens of cells … modern CGRAs
//! contain hundreds to thousands of cells." This example sweeps fabric
//! sizes and kernel widths and compares a flat mapper against the
//! hierarchical HiMap-style approach: the hierarchical candidate
//! pruning is what keeps compile time under control as the array
//! grows.
//!
//! ```sh
//! cargo run --release --example scalability
//! ```

use cgra::prelude::*;
use std::time::{Duration, Instant};

fn main() {
    let cfg = MapConfig {
        time_limit: Duration::from_secs(30),
        ..MapConfig::default()
    };

    println!(
        "{:<10} {:<10} {:<8} | {:>14} {:>14} | {:>14} {:>14}",
        "fabric", "kernel", "ops", "flat II", "flat ms", "himap II", "himap ms"
    );
    println!("{}", "-".repeat(96));

    for (side, lanes) in [(4u16, 4usize), (8, 12), (12, 28), (16, 52)] {
        let fabric = Fabric::homogeneous(side, side, Topology::Mesh);
        let kernel = kernels::unrolled_mac(lanes);

        let run = |mapper: &dyn Mapper| -> (String, f64) {
            let start = Instant::now();
            let out = mapper.map(&kernel, &fabric, &cfg);
            let ms = start.elapsed().as_secs_f64() * 1e3;
            match out {
                Ok(m) => {
                    validate(&m, &kernel, &fabric).expect("valid");
                    (format!("II={}", m.ii), ms)
                }
                Err(e) => {
                    let mut msg = e.to_string();
                    msg.truncate(14);
                    (msg, ms)
                }
            }
        };

        let flat = ModuloList::default();
        let himap = HiMap::default();
        let (flat_ii, flat_ms) = run(&flat);
        let (hi_ii, hi_ms) = run(&himap);
        println!(
            "{:<10} {:<10} {:<8} | {:>14} {:>12.0}ms | {:>14} {:>12.0}ms",
            format!("{side}x{side}"),
            kernel.name,
            kernel.node_count(),
            flat_ii,
            flat_ms,
            hi_ii,
            hi_ms
        );
    }

    println!(
        "\nThe hierarchical mapper restricts each operation's candidate PEs to its\n\
         cluster's region, so its per-op work stays bounded while the flat mapper\n\
         scans the whole array — the survey's hierarchical-abstraction argument."
    );
}
