//! Quickstart — the survey's Figure 3 end to end.
//!
//! Compiles the dot-product source through the front-end and
//! middle-end, then runs the back-end three ways, exactly as Fig. 3
//! illustrates: a *spatial mapping*, a *temporal mapping*, and a
//! *modulo-scheduled* mapping, each validated, simulated against the
//! reference interpreter, and printed.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use cgra::prelude::*;

fn main() {
    // ---- Front-end (Fig. 3 top): parse MiniC into the IR. -----------
    let src = r#"
        // The survey's running example: one dot-product iteration.
        kernel dot(in a, in b, inout acc) {
            acc = acc + a * b;
        }
    "#;
    let compiled = frontend::compile_kernel(src).expect("front-end");
    let mut dfg = compiled.dfg;
    println!("== front-end: DFG ==\n{}", dfg.render());

    // ---- Middle-end: optimisation passes. ----------------------------
    let rewrites = passes::optimize(&mut dfg);
    println!("middle-end applied {rewrites} rewrites\n");

    // ---- Back-end (Fig. 3 bottom): the three mapping styles. --------
    let fabric = Fabric::homogeneous(4, 4, Topology::Mesh);
    println!("target fabric:\n{}", cgra::arch::render_fabric(&fabric));

    let tape = Tape::generate(2, 8, |s, i| if s == 0 { i as i64 + 1 } else { 2 });

    // 1. Spatial mapping: II = 1, one op per PE, data streams through.
    let spatial = SpatialGreedy::default()
        .map(&dfg, &fabric, &MapConfig::default())
        .expect("spatial mapping");
    report("spatial mapping", &spatial, &dfg, &fabric, &tape);

    // 2. Temporal mapping: operations share PEs over time (here via
    //    the SMT mapper, which produces a non-pipelined schedule).
    let temporal = SmtMapper::default()
        .map(&dfg, &fabric, &MapConfig::default())
        .expect("temporal mapping");
    report("temporal mapping", &temporal, &dfg, &fabric, &tape);

    // 3. Modulo scheduling: overlapped iterations, the II as short as
    //    dependences and resources allow.
    let modulo = ModuloList::default()
        .map(&dfg, &fabric, &MapConfig::default())
        .expect("modulo scheduling");
    report("modulo scheduling", &modulo, &dfg, &fabric, &tape);
    println!("{}", modulo.render(&dfg, &fabric));

    // The configuration stream (Fig. 2c view) of the modulo schedule.
    let cs = ConfigStream::generate(&modulo, &dfg, &fabric);
    println!("{}", cs.render(&fabric));
    println!(
        "packed bitstream: {} bytes for II={}",
        cs.pack().len(),
        modulo.ii
    );
}

fn report(label: &str, mapping: &Mapping, dfg: &Dfg, fabric: &Fabric, tape: &Tape) {
    validate(mapping, dfg, fabric).expect("all mappings validate");
    let metrics = Metrics::of(mapping, dfg, fabric);
    let stats = cgra::sim::simulate_verified(mapping, dfg, fabric, 8, tape).expect("functional");
    println!(
        "== {label}: II={} schedule={} | 8 iterations in {} cycles | outputs {:?}",
        metrics.ii, metrics.schedule_len, stats.cycles, stats.outputs[0]
    );
}
