//! Control-flow mapping — the four if-then-else schemes of §III-B1.
//!
//! Compiles a control-intensive function, applies full predication,
//! partial predication, dual-issue pairing, and direct CDFG mapping,
//! and compares the issue-slot footprints and achieved IIs.
//!
//! ```sh
//! cargo run --example control_flow
//! ```

use cgra::mapper::ctrlflow::{dual_issue_pairs, map_direct, predicate_diamond, IteScheme};
use cgra::prelude::*;

fn main() {
    // A thresholding kernel with an ITE diamond and some dead-in-one-
    // branch computation, as a `func` so the CDFG keeps the branch.
    let src = r#"
        func clip(x) {
            var y = 0;
            var debug = 0;
            if (x > 100) {
                y = 100 + ((x - 100) >> 2);   // soft knee
                debug = x * 3;                 // only used for tracing
            } else {
                y = x;
            }
            var out = y + 1;
            return;
        }
    "#;
    let cdfg = frontend::compile_func(src).expect("front-end");
    println!(
        "CDFG `{}`: {} basic blocks, diamond = {:?}",
        cdfg.name,
        cdfg.blocks.len(),
        cdfg.find_diamond()
    );

    let fabric = Fabric::homogeneous(4, 4, Topology::Mesh);
    let mapper = ModuloList::default();
    let cfg = MapConfig::default();

    println!("\n{:<32} {:>8} {:>6}", "scheme", "ops", "II");
    println!("{}", "-".repeat(50));

    // Predicated schemes: one flat DFG executed every iteration.
    for scheme in [IteScheme::FullPredication, IteScheme::PartialPredication] {
        let k = predicate_diamond(&cdfg, scheme).expect("diamond");
        let m = mapper.map(&k.dfg, &fabric, &cfg).expect("maps");
        println!(
            "{:<32} {:>8} {:>6}",
            scheme.label(),
            k.dfg.node_count(),
            m.ii
        );
    }

    // Dual-issue: partial predication's DFG, minus the slots saved by
    // pairing then/else ops onto shared PEs.
    let base = predicate_diamond(&cdfg, IteScheme::DualIssue).expect("diamond");
    let pairs = dual_issue_pairs(&cdfg).expect("diamond");
    println!(
        "{:<32} {:>8} {:>6}   ({} slots shared by predicate-selected pairs)",
        IteScheme::DualIssue.label(),
        base.dfg.node_count() - pairs,
        mapper
            .map(&base.dfg, &fabric, &cfg)
            .map(|m| m.ii.to_string())
            .unwrap_or_else(|_| "-".into()),
        pairs
    );

    // Direct CDFG mapping: per-block configurations + runtime switching.
    let direct = map_direct(&cdfg, &mapper, &fabric, &cfg).expect("blocks map");
    let block_ops: usize = cdfg.blocks.iter().map(|b| b.dfg.node_count()).sum();
    println!(
        "{:<32} {:>8} {:>6}   ({} contexts, switch per taken branch)",
        IteScheme::DirectCdfg.label(),
        block_ops,
        "-",
        direct.total_contexts
    );

    // Semantics check: predicated kernels agree with direct execution.
    println!("\nsemantics check over x = 0, 50, 101, 200:");
    let part = predicate_diamond(&cdfg, IteScheme::PartialPredication).unwrap();
    for x in [0i64, 50, 101, 200] {
        let mut env = std::collections::HashMap::new();
        env.insert("x".to_string(), x);
        let (env, _, _) = cdfg.execute(env, vec![], 1000).unwrap();
        let tape = Tape {
            inputs: vec![vec![x]; part.inputs.len()],
            memory: vec![],
        };
        let r = Interpreter::run(&part.dfg, 1, &tape).unwrap();
        let y_stream = part.outputs.iter().position(|o| o == "y").unwrap();
        assert_eq!(r.outputs[y_stream][0], env["y"], "x={x}");
        println!(
            "  x={x:<4} -> y={} (CDFG) == {} (predicated)",
            env["y"], r.outputs[y_stream][0]
        );
    }
    println!("all schemes agree with the reference CDFG semantics.");
}
