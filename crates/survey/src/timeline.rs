//! Regeneration of the survey's Figure 4: publications per year over
//! two decades, with technique-era annotations.

use crate::dataset::all_papers;
use crate::paper::Tag;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One bar of the histogram.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimelinePoint {
    pub year: u16,
    pub publications: usize,
}

/// Mapping-focused publications per year (the Fig. 4 bars). Years with
/// zero publications inside the span are included.
pub fn histogram() -> Vec<TimelinePoint> {
    let papers = all_papers();
    let mut counts: BTreeMap<u16, usize> = BTreeMap::new();
    let (mut lo, mut hi) = (u16::MAX, 0u16);
    for p in &papers {
        if p.mapping_focused {
            *counts.entry(p.year).or_insert(0) += 1;
            lo = lo.min(p.year);
            hi = hi.max(p.year);
        }
    }
    (lo..=hi)
        .map(|year| TimelinePoint {
            year,
            publications: counts.get(&year).copied().unwrap_or(0),
        })
        .collect()
}

/// First and last year each technique era appears (the Fig. 4
/// annotations).
pub fn era_spans() -> BTreeMap<Tag, (u16, u16)> {
    let mut spans: BTreeMap<Tag, (u16, u16)> = BTreeMap::new();
    for p in all_papers() {
        for &tag in &p.tags {
            let e = spans.entry(tag).or_insert((p.year, p.year));
            e.0 = e.0.min(p.year);
            e.1 = e.1.max(p.year);
        }
    }
    spans
}

/// ASCII rendering of the figure.
pub fn render_timeline() -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Figure 4: publications on CGRA mapping per year (survey corpus; not comprehensive)"
    );
    for pt in histogram() {
        let _ = writeln!(
            s,
            "{:>4} | {:<18} {}",
            pt.year,
            "#".repeat(pt.publications),
            pt.publications
        );
    }
    let _ = writeln!(s);
    let _ = writeln!(s, "technique eras (first..last appearance in the corpus):");
    for (tag, (lo, hi)) in era_spans() {
        let _ = writeln!(s, "  {:<28} {lo}..{hi}", tag.label());
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_totals_match_corpus() {
        let total: usize = histogram().iter().map(|p| p.publications).sum();
        let expected = all_papers().iter().filter(|p| p.mapping_focused).count();
        assert_eq!(total, expected);
    }

    #[test]
    fn effort_intensifies_in_second_decade() {
        // The paper: "the community has intensified the efforts in the
        // last decade".
        let h = histogram();
        let first: usize = h
            .iter()
            .filter(|p| p.year <= 2010)
            .map(|p| p.publications)
            .sum();
        let second: usize = h
            .iter()
            .filter(|p| p.year >= 2011)
            .map(|p| p.publications)
            .sum();
        assert!(second > first, "{second} !> {first}");
    }

    #[test]
    fn clear_increase_in_2021() {
        // The paper: "a clear increase in 2021".
        let h = histogram();
        let y2021 = h.iter().find(|p| p.year == 2021).unwrap().publications;
        let max_other = h
            .iter()
            .filter(|p| p.year != 2021)
            .map(|p| p.publications)
            .max()
            .unwrap();
        assert!(
            y2021 >= max_other,
            "2021 ({y2021}) vs max other ({max_other})"
        );
    }

    #[test]
    fn era_annotations_match_the_figure() {
        let spans = era_spans();
        // Modulo scheduling "considered since the beginning".
        assert!(spans[&Tag::ModuloScheduling].0 <= 2003);
        // Branch support started in the early 2000s.
        assert!(spans[&Tag::FullPredication].0 <= 2002);
        // Memory-aware methods gained interest around 2010.
        let mem = spans[&Tag::MemoryAware];
        assert!((2008..=2013).contains(&mem.0), "{mem:?}");
        // Hardware loops are a late-2010s topic.
        assert!(spans[&Tag::HardwareLoops].0 >= 2015);
        // Machine-learning mapping appears at the end of the decade.
        assert!(spans[&Tag::MachineLearning].0 >= 2018);
    }

    #[test]
    fn render_covers_all_years() {
        let s = render_timeline();
        assert!(s.contains("1998") || s.contains("2001"));
        assert!(s.contains("2021"));
        assert!(s.contains("Modulo scheduling"));
    }
}
