//! # cgra-survey
//!
//! The bibliographic side of the reproduction: the survey's reference
//! corpus encoded as data, with generators that re-derive its **Table
//! I** (the classification of binding/scheduling techniques) and
//! **Figure 4** (the publications-per-year timeline with technique-era
//! annotations).
//!
//! The dataset mirrors the paper's own citations — reference numbers
//! `[n]` match the published numbering — so the regenerated table can
//! be checked cell by cell against the original.

pub mod dataset;
pub mod paper;
pub mod table1;
pub mod timeline;

pub use dataset::all_papers;
pub use paper::{Axis, PaperRecord, Tag, Technique};
pub use table1::{render_table1, table1_cells, Table1};
pub use timeline::{era_spans, histogram, render_timeline, TimelinePoint};
