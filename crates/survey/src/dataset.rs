//! The survey's reference corpus as data.
//!
//! Reference numbers match the published paper's bibliography. Table I
//! cell memberships transcribe the paper's Table I exactly; timeline
//! tags follow the era annotations of Figure 4 and the text of
//! sections III-B/III-C/IV.

use crate::paper::{Axis, PaperRecord, Tag, Technique};
use Axis::*;
use Tag::*;
use Technique::*;

#[allow(clippy::too_many_arguments)] // one arg per Table I column
fn rec(
    ref_num: u8,
    key: &'static str,
    first_author: &'static str,
    year: u16,
    venue: &'static str,
    title: &'static str,
    cells: Vec<(Axis, Technique)>,
    tags: Vec<Tag>,
    mapping_focused: bool,
) -> PaperRecord {
    PaperRecord {
        ref_num,
        key,
        first_author,
        year,
        venue,
        title,
        cells,
        tags,
        mapping_focused,
    }
}

/// Every reference of the survey that the reproduction tracks.
pub fn all_papers() -> Vec<PaperRecord> {
    vec![
        // --- Context: surveys and foundations (not in Fig. 4) -------
        rec(2, "hartenstein01", "Hartenstein", 2001, "DATE",
            "A decade of reconfigurable computing: a visionary retrospective",
            vec![], vec![], false),
        rec(3, "liu19", "Liu", 2019, "ACM CSUR",
            "A survey of coarse-grained reconfigurable architecture and design",
            vec![], vec![], false),
        rec(5, "theodoridis07", "Theodoridis", 2007, "Springer",
            "A survey of coarse-grain reconfigurable architectures and CAD tools",
            vec![], vec![], false),
        rec(6, "choi11", "Choi", 2011, "IPSJ T-SLDM",
            "Coarse-grained reconfigurable array: architecture and application mapping",
            vec![], vec![], false),
        rec(7, "wijtvliet16", "Wijtvliet", 2016, "SAMOS",
            "Coarse grained reconfigurable architectures in the past 25 years",
            vec![], vec![], false),
        rec(8, "podobas20", "Podobas", 2020, "IEEE Access",
            "A survey on coarse-grained reconfigurable architectures from a performance perspective",
            vec![], vec![], false),
        rec(9, "desutter10", "De Sutter", 2010, "Springer",
            "Coarse-grained reconfigurable array architectures",
            vec![], vec![], false),
        rec(10, "heysters03", "Heysters", 2003, "IPDPS",
            "Mapping of DSP algorithms on the Montium architecture",
            vec![], vec![], false),
        rec(11, "cardoso10", "Cardoso", 2010, "ACM CSUR",
            "Compiling for reconfigurable computing: a survey",
            vec![], vec![], false),
        rec(18, "wijtvliet22", "Wijtvliet", 2022, "Springer",
            "Architectural model",
            vec![], vec![], false),
        rec(21, "goldstein00", "Goldstein", 2000, "IEEE Computer",
            "PipeRench: a reconfigurable architecture and compiler",
            vec![], vec![], false),
        // --- Mapping methods: Table I members ------------------------
        rec(12, "bondalapati98", "Bondalapati", 1998, "FPL",
            "Mapping loops onto reconfigurable architectures",
            vec![(TemporalMapping, Heuristic)],
            vec![ModuloScheduling], true),
        rec(13, "bondalapati01", "Bondalapati", 2001, "DAC",
            "Parallelizing DSP nested loops on reconfigurable architectures",
            vec![], vec![LoopUnrolling], true),
        rec(14, "lee03", "Lee", 2003, "IEEE D&T",
            "Compilation approach for coarse-grained reconfigurable architectures",
            vec![(Binding, Heuristic)], vec![], true),
        rec(15, "guo21", "Guo", 2021, "DAC",
            "Formulating data-arrival synchronizers in integer linear programming for CGRA mapping",
            vec![(Binding, Ilp), (Scheduling, Ilp)], vec![], true),
        rec(16, "lee21", "Lee", 2021, "DAC",
            "Ultra-fast CGRA scheduling to enable run time, programmable CGRAs",
            vec![(TemporalMapping, Heuristic)], vec![], true),
        rec(17, "miyasaka21", "Miyasaka", 2021, "VLSI-SoC",
            "SAT-based mapping of data-flow graphs onto coarse-grained reconfigurable arrays",
            vec![(TemporalMapping, Sat)], vec![], true),
        rec(19, "kojima20", "Kojima", 2020, "IEEE TVLSI",
            "GenMap: a genetic algorithmic approach for optimizing spatial mapping of CGRAs",
            vec![(SpatialMapping, Ga)], vec![], true),
        rec(20, "desutter08", "De Sutter", 2008, "LCTES/SIGPLAN",
            "Placement-and-routing-based register allocation for coarse-grained reconfigurable arrays",
            vec![], vec![ModuloScheduling, RegisterAware], true),
        rec(22, "mei02", "Mei", 2002, "FPT",
            "DRESC: a retargetable compiler for coarse-grained reconfigurable architectures",
            vec![(TemporalMapping, Sa)], vec![ModuloScheduling], true),
        rec(23, "yoon09", "Yoon", 2009, "IEEE TVLSI",
            "A graph drawing based spatial mapping algorithm for coarse-grained reconfigurable architectures",
            vec![(SpatialMapping, Heuristic), (SpatialMapping, Ilp)], vec![], true),
        rec(24, "das16", "Das", 2016, "ISVLSI",
            "A scalable design approach to efficiently map applications on CGRAs",
            vec![(Binding, Heuristic), (Scheduling, Heuristic)],
            vec![Scalability], true),
        rec(25, "dave18ureca", "Dave", 2018, "DATE",
            "URECA: unified register file for CGRAs",
            vec![], vec![RegisterAware], true),
        rec(26, "wijerathne21", "Wijerathne", 2021, "DATE",
            "HiMap: fast and scalable high-quality mapping on CGRA via hierarchical abstraction",
            vec![(TemporalMapping, Heuristic)], vec![Scalability], true),
        rec(27, "chen14", "Chen", 2014, "ACM TRETS",
            "Graph minor approach for application mapping on CGRAs",
            vec![], vec![], true),
        rec(28, "hamzeh12", "Hamzeh", 2012, "DAC",
            "EPIMap: using epimorphism to map applications on CGRAs",
            vec![(Binding, Heuristic), (Scheduling, Heuristic)],
            vec![ModuloScheduling], true),
        rec(29, "desutter08b", "De Sutter", 2008, "LCTES",
            "Placement-and-routing-based register allocation for CGRAs (conference)",
            vec![], vec![ModuloScheduling, RegisterAware], false),
        rec(30, "hatanaka07", "Hatanaka", 2007, "IPDPS",
            "A modulo scheduling algorithm for a coarse-grain reconfigurable array template",
            vec![(SpatialMapping, Heuristic), (Binding, Sa)],
            vec![ModuloScheduling], true),
        rec(31, "li21chord", "Li", 2021, "IEEE TCAD",
            "ChordMap: automated mapping of streaming applications onto CGRA",
            vec![(SpatialMapping, Heuristic)], vec![Streaming], true),
        rec(32, "weng20", "Weng", 2020, "ISCA",
            "DSAGEN: synthesizing programmable spatial accelerators",
            vec![(SpatialMapping, Sa)], vec![OpenSource], true),
        rec(33, "gobieski21", "Gobieski", 2021, "ISCA",
            "SNAFU: an ultra-low-power, energy-minimal CGRA-generation framework and architecture",
            vec![(SpatialMapping, Sa)], vec![], true),
        rec(34, "chin18", "Chin", 2018, "DAC",
            "An architecture-agnostic integer linear programming approach to CGRA mapping",
            vec![(SpatialMapping, Ilp)], vec![], true),
        rec(35, "nowatzki13", "Nowatzki", 2013, "PLDI",
            "A general constraint-centric scheduling framework for spatial architectures",
            vec![(SpatialMapping, Ilp)], vec![], true),
        rec(36, "zhao20", "Zhao", 2020, "IEEE TPDS",
            "Towards higher performance and robust compilation for CGRA modulo scheduling",
            vec![(TemporalMapping, Heuristic), (Scheduling, Heuristic)],
            vec![ModuloScheduling], true),
        rec(37, "park08", "Park", 2008, "PACT",
            "Edge-centric modulo scheduling for coarse-grained reconfigurable architectures",
            vec![(TemporalMapping, Heuristic)], vec![ModuloScheduling], true),
        rec(38, "dave18ramp", "Dave", 2018, "DAC",
            "RAMP: resource-aware mapping for CGRAs",
            vec![(TemporalMapping, Heuristic)], vec![], true),
        rec(39, "gu18", "Gu", 2018, "IEEE TPDS",
            "Stress-aware loops mapping on CGRAs with dynamic multi-map reconfiguration",
            vec![(TemporalMapping, Heuristic)], vec![], true),
        rec(40, "canesche21", "Canesche", 2021, "IEEE TCAD",
            "TRAVERSAL: a fast and adaptive graph-based placement and routing for CGRAs",
            vec![(TemporalMapping, Heuristic)], vec![], true),
        rec(41, "brenner06", "Brenner", 2006, "FPL",
            "Optimal simultaneous scheduling, binding and routing for processor-like reconfigurable architectures",
            vec![(TemporalMapping, Ilp)], vec![], true),
        rec(42, "karunaratne18", "Karunaratne", 2018, "DAC",
            "DNestMap: mapping deeply-nested loops on ultra-low power CGRAs",
            vec![(TemporalMapping, BranchAndBound)], vec![], true),
        rec(43, "raffin10", "Raffin", 2010, "DASIP",
            "Scheduling, binding and routing system for a run-time reconfigurable operator based multimedia architecture",
            vec![(TemporalMapping, Cp)], vec![], true),
        rec(44, "donovick19", "Donovick", 2019, "ReConFig",
            "Agile SMT-based mapping for CGRAs with restricted routing networks",
            vec![(TemporalMapping, Smt)], vec![], true),
        rec(45, "yin15", "Yin", 2015, "DATE",
            "Joint affine transformation and loop pipelining for mapping nested loop on CGRAs",
            vec![(Binding, Heuristic)], vec![Polyhedral, ModuloScheduling], true),
        rec(46, "hamzeh13", "Hamzeh", 2013, "DAC",
            "REGIMap: register-aware application mapping on CGRAs",
            vec![(Binding, Heuristic), (Scheduling, Heuristic)],
            vec![RegisterAware], true),
        rec(47, "peyret14", "Peyret", 2014, "ASAP",
            "Efficient application mapping on CGRAs based on backward simultaneous scheduling/binding and dynamic graph transformations",
            vec![(Binding, Heuristic)], vec![], true),
        rec(48, "lee11", "Lee", 2011, "IEEE TCAD",
            "Mapping multi-domain applications onto coarse-grained reconfigurable architectures",
            vec![(Binding, Qea), (Binding, Ilp), (Scheduling, Heuristic)],
            vec![], true),
        rec(49, "friedman09", "Friedman", 2009, "FPGA",
            "SPR: an architecture-adaptive CGRA mapping tool",
            vec![(Binding, Sa)], vec![ModuloScheduling], true),
        rec(50, "schulz14", "Schulz", 2014, "ReConFig",
            "Rotated parallel mapping: a novel approach for mapping data parallel applications on CGRAs",
            vec![(Binding, Sa), (Scheduling, Heuristic)], vec![], true),
        rec(51, "bansal03", "Bansal", 2003, "WASP/MICRO",
            "Analysis of the performance of coarse-grain reconfigurable architectures with different processing element configurations",
            vec![(Scheduling, Heuristic)], vec![], true),
        rec(52, "balasubramanian20", "Balasubramanian", 2020, "IEEE TCAD",
            "CRIMSON: compute-intensive loop acceleration by randomized iterative modulo scheduling",
            vec![(Scheduling, Heuristic)], vec![ModuloScheduling], true),
        rec(53, "mu21", "Mu", 2021, "IEEE Access",
            "Routability-enhanced scheduling for application mapping on CGRAs",
            vec![(Scheduling, Ilp)], vec![], true),
        // --- Control flow, memory, loops (text sections) -------------
        rec(54, "das19", "Das", 2019, "IEEE TCAD",
            "An energy-efficient integrated programmable array accelerator and compilation flow",
            vec![], vec![], true),
        rec(55, "yuan21", "Yuan", 2021, "IEEE TCAD",
            "Dynamic-II pipeline: compiling loops with irregular branches on static-scheduling CGRA",
            vec![], vec![DualIssue, ModuloScheduling], true),
        rec(56, "anido02", "Anido", 2002, "DSD",
            "Improving the operation autonomy of SIMD processing elements by using guarded instructions and pseudo branches",
            vec![], vec![FullPredication], true),
        rec(57, "chang08", "Chang", 2008, "ISOCC",
            "Mapping control intensive kernels onto coarse-grained reconfigurable array architecture",
            vec![], vec![PartialPredication], true),
        rec(58, "hamzeh14", "Hamzeh", 2014, "DAC",
            "Branch-aware loop mapping on CGRAs",
            vec![], vec![DualIssue], true),
        rec(59, "karunaratne19", "Karunaratne", 2019, "ICCAD",
            "4D-CGRA: introducing branch dimension to spatio-temporal application mapping on CGRAs",
            vec![], vec![DualIssue, ModuloScheduling], true),
        rec(60, "das17", "Das", 2017, "ASP-DAC",
            "Efficient mapping of CDFG onto coarse-grained reconfigurable array architectures",
            vec![], vec![DirectMapping], true),
        rec(61, "mei03", "Mei", 2003, "DATE",
            "Exploiting loop-level parallelism on coarse-grained reconfigurable architectures using modulo scheduling",
            vec![], vec![ModuloScheduling], true),
        rec(62, "balasubramanian18", "Balasubramanian", 2018, "DATE",
            "LASER: a hardware/software approach to accelerate complicated loops on CGRAs",
            vec![], vec![HardwareLoops], true),
        rec(63, "sunny21", "Sunny", 2021, "ARC",
            "Hardware based loop optimization for CGRA architectures",
            vec![], vec![HardwareLoops], true),
        rec(64, "vadivel17", "Vadivel", 2017, "DSD",
            "Loop overhead reduction techniques for coarse grained reconfigurable architectures",
            vec![], vec![HardwareLoops], true),
        rec(65, "li21mem", "Li", 2021, "ASP-DAC",
            "Combining memory partitioning and subtask generation for parallel data access on CGRAs",
            vec![], vec![MemoryAware], true),
        rec(66, "kim11", "Kim", 2011, "ACM TODAES",
            "Memory access optimization in compilation for coarse-grained reconfigurable architectures",
            vec![], vec![MemoryAware], true),
        rec(67, "zhao18", "Zhao", 2018, "DATE",
            "Optimizing the data placement and transformation for multi-bank CGRA computing system",
            vec![], vec![MemoryAware], true),
        rec(68, "yin17", "Yin", 2017, "IEEE TPDS",
            "Conflict-free loop mapping for coarse-grained reconfigurable architecture with multi-bank memory",
            vec![], vec![MemoryAware], true),
        // --- Trends (Section IV) --------------------------------------
        rec(69, "jin14", "Jin", 2014, "ICCE",
            "Low-power reconfigurable audio processor for mobile devices",
            vec![], vec![], false),
        rec(71, "xilinx20", "Gaide", 2020, "Embedded World",
            "Versal AI engine architecture",
            vec![], vec![], false),
        rec(72, "sambanova21", "SambaNova", 2021, "Whitepaper",
            "Accelerated computing with a reconfigurable dataflow architecture",
            vec![], vec![], false),
        rec(73, "zhang21", "Zhang", 2021, "ISCA",
            "SARA: scaling a reconfigurable dataflow accelerator",
            vec![], vec![Scalability], true),
        rec(74, "liu19drl", "Liu", 2019, "IEEE TCAD",
            "Data-flow graph mapping optimization for CGRA with deep reinforcement learning",
            vec![], vec![MachineLearning], true),
        rec(75, "anderson21", "Anderson", 2021, "ASAP",
            "CGRA-ME: an open-source framework for CGRA architecture and CAD research",
            vec![], vec![OpenSource], false),
        rec(76, "tan21", "Tan", 2021, "DATE",
            "AURORA: automated refinement of coarse-grained reconfigurable accelerators",
            vec![], vec![OpenSource], false),
        rec(77, "podobas20b", "Podobas", 2020, "ASAP",
            "A template-based framework for exploring coarse-grained reconfigurable architectures",
            vec![], vec![OpenSource], false),
        rec(78, "nicol17", "Nicol", 2017, "Whitepaper",
            "A coarse grain reconfigurable array for statically scheduled data flow computing",
            vec![], vec![Streaming], false),
    ]
}

/// Look a record up by its survey reference number.
pub fn by_ref(n: u8) -> Option<PaperRecord> {
    all_papers().into_iter().find(|p| p.ref_num == n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_numbers_unique() {
        let papers = all_papers();
        let mut nums: Vec<u8> = papers.iter().map(|p| p.ref_num).collect();
        nums.sort_unstable();
        let before = nums.len();
        nums.dedup();
        assert_eq!(before, nums.len());
    }

    #[test]
    fn corpus_spans_two_decades() {
        let papers = all_papers();
        let years: Vec<u16> = papers
            .iter()
            .filter(|p| p.mapping_focused)
            .map(|p| p.year)
            .collect();
        assert!(years.iter().any(|&y| y <= 2001), "early papers present");
        assert!(years.contains(&2021), "2021 papers present");
    }

    #[test]
    fn every_table1_paper_is_mapping_focused() {
        for p in all_papers() {
            if !p.cells.is_empty() {
                assert!(p.mapping_focused, "[{}] {}", p.ref_num, p.key);
            }
        }
    }

    #[test]
    fn lookup_by_ref() {
        let dresc = by_ref(22).unwrap();
        assert_eq!(dresc.key, "mei02");
        assert_eq!(dresc.year, 2002);
        assert!(by_ref(200).is_none());
    }

    #[test]
    fn corpus_size_matches_survey_scale() {
        // The paper has 78 references; we track the scientific corpus
        // (every mapping-relevant one plus the context entries).
        let papers = all_papers();
        assert!(papers.len() >= 60, "only {} records", papers.len());
        let mapping = papers.iter().filter(|p| p.mapping_focused).count();
        assert!(mapping >= 45, "only {mapping} mapping-focused records");
    }
}
