//! Record types for the survey's reference corpus.

use serde::{Deserialize, Serialize};

/// Row axis of Table I: which sub-problem the technique solves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Axis {
    /// Binding only (spatial architectures).
    SpatialMapping,
    /// Binding and scheduling solved together.
    TemporalMapping,
    /// Binding solved separately.
    Binding,
    /// Scheduling solved separately.
    Scheduling,
}

impl Axis {
    pub fn label(self) -> &'static str {
        match self {
            Axis::SpatialMapping => "Spatial mapping",
            Axis::TemporalMapping => "Temporal mapping",
            Axis::Binding => "Binding",
            Axis::Scheduling => "Scheduling",
        }
    }

    pub fn all() -> [Axis; 4] {
        [
            Axis::SpatialMapping,
            Axis::TemporalMapping,
            Axis::Binding,
            Axis::Scheduling,
        ]
    }
}

/// Column of Table I: the solution technique family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Technique {
    Heuristic,
    /// Population-based meta-heuristic: genetic algorithm.
    Ga,
    /// Population-based meta-heuristic: quantum-inspired EA.
    Qea,
    /// Local-search meta-heuristic: simulated annealing.
    Sa,
    Ilp,
    BranchAndBound,
    Cp,
    Sat,
    Smt,
}

impl Technique {
    pub fn label(self) -> &'static str {
        match self {
            Technique::Heuristic => "Heuristics",
            Technique::Ga => "GA",
            Technique::Qea => "QEA",
            Technique::Sa => "SA",
            Technique::Ilp => "ILP",
            Technique::BranchAndBound => "B&B",
            Technique::Cp => "CP",
            Technique::Sat => "SAT",
            Technique::Smt => "SMT",
        }
    }

    /// The paper's top split: approximate vs exact methods.
    pub fn is_exact(self) -> bool {
        matches!(
            self,
            Technique::Ilp
                | Technique::BranchAndBound
                | Technique::Cp
                | Technique::Sat
                | Technique::Smt
        )
    }

    /// Meta-heuristics (the paper's dedicated sub-category).
    pub fn is_meta(self) -> bool {
        matches!(self, Technique::Ga | Technique::Qea | Technique::Sa)
    }
}

/// Technique eras annotated on the Figure 4 timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Tag {
    ModuloScheduling,
    FullPredication,
    PartialPredication,
    DualIssue,
    DirectMapping,
    LoopUnrolling,
    MemoryAware,
    Polyhedral,
    HardwareLoops,
    /// Register allocation / register-file aware methods.
    RegisterAware,
    /// Machine-learning-based mapping.
    MachineLearning,
    /// Open-source framework.
    OpenSource,
    /// Scalability-oriented (hierarchical, pruning).
    Scalability,
    /// Streaming/dataflow programming model.
    Streaming,
}

impl Tag {
    pub fn label(self) -> &'static str {
        match self {
            Tag::ModuloScheduling => "Modulo scheduling",
            Tag::FullPredication => "Full predication",
            Tag::PartialPredication => "Partial predication",
            Tag::DualIssue => "Dual-issue single execution",
            Tag::DirectMapping => "Direct mapping",
            Tag::LoopUnrolling => "Loop unrolling",
            Tag::MemoryAware => "Memory aware",
            Tag::Polyhedral => "Polyhedral model",
            Tag::HardwareLoops => "Hardware loops",
            Tag::RegisterAware => "Register aware",
            Tag::MachineLearning => "Machine learning",
            Tag::OpenSource => "Open source",
            Tag::Scalability => "Scalability",
            Tag::Streaming => "Streaming",
        }
    }
}

/// One reference of the survey.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PaperRecord {
    /// The survey's own reference number `[n]`.
    pub ref_num: u8,
    /// Short citation key (first author + year).
    pub key: &'static str,
    pub first_author: &'static str,
    pub year: u16,
    pub venue: &'static str,
    pub title: &'static str,
    /// Table I cells this paper occupies (empty for non-mapping refs).
    pub cells: Vec<(Axis, Technique)>,
    /// Timeline-era tags.
    pub tags: Vec<Tag>,
    /// Counted in the Figure 4 histogram (papers focusing on CGRA
    /// mapping, the survey's inclusion criterion).
    pub mapping_focused: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_meta_partition() {
        use Technique::*;
        for t in [Heuristic, Ga, Qea, Sa] {
            assert!(!t.is_exact());
        }
        for t in [Ilp, BranchAndBound, Cp, Sat, Smt] {
            assert!(t.is_exact());
            assert!(!t.is_meta());
        }
        assert!(Ga.is_meta() && Qea.is_meta() && Sa.is_meta());
        assert!(!Heuristic.is_meta());
    }

    #[test]
    fn labels_unique() {
        let labels: Vec<&str> = Axis::all().iter().map(|a| a.label()).collect();
        let mut dedup = labels.clone();
        dedup.dedup();
        assert_eq!(labels, dedup);
    }
}
