//! Regeneration of the survey's Table I: "A review of binding and
//! scheduling techniques for automated spatial and temporal mapping of
//! applications on CGRAs."

use crate::dataset::all_papers;
use crate::paper::{Axis, Technique};
use std::collections::BTreeMap;

/// The regenerated table: per (axis, technique) cell, the survey
/// reference numbers it contains, sorted.
pub type Table1 = BTreeMap<(Axis, Technique), Vec<u8>>;

/// Build the table from the dataset.
pub fn table1_cells() -> Table1 {
    let mut t: Table1 = BTreeMap::new();
    for p in all_papers() {
        for &(axis, tech) in &p.cells {
            t.entry((axis, tech)).or_default().push(p.ref_num);
        }
    }
    for refs in t.values_mut() {
        refs.sort_unstable();
        refs.dedup();
    }
    t
}

/// Render the table in the paper's layout (rows: spatial / temporal /
/// binding / scheduling; columns: heuristics, meta-heuristics, exact).
pub fn render_table1() -> String {
    use std::fmt::Write as _;
    let t = table1_cells();
    let cell = |axis: Axis, tech: Technique| -> String {
        match t.get(&(axis, tech)) {
            Some(refs) => refs
                .iter()
                .map(|r| format!("[{r}]"))
                .collect::<Vec<_>>()
                .join(" "),
            None => String::new(),
        }
    };
    let mut s = String::new();
    let _ = writeln!(
        s,
        "TABLE I: binding and scheduling techniques for automated spatial and temporal mapping"
    );
    let _ = writeln!(
        s,
        "{:<18} | {:<28} | {:<12} | {:<20} | {:<24} | CSP (CP/SAT/SMT)",
        "", "Heuristics", "Population", "Local search", "ILP / B&B"
    );
    let _ = writeln!(s, "{}", "-".repeat(130));
    for axis in Axis::all() {
        let pop = [cell(axis, Technique::Ga), cell(axis, Technique::Qea)]
            .iter()
            .filter(|c| !c.is_empty())
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join("  QEA ");
        let pop = if pop.is_empty() {
            pop
        } else if t.contains_key(&(axis, Technique::Ga)) {
            format!("GA {pop}")
        } else {
            format!("QEA {pop}")
        };
        let exact1 = {
            let ilp = cell(axis, Technique::Ilp);
            let bnb = cell(axis, Technique::BranchAndBound);
            match (ilp.is_empty(), bnb.is_empty()) {
                (false, false) => format!("ILP {ilp} B&B {bnb}"),
                (false, true) => format!("ILP {ilp}"),
                (true, false) => format!("B&B {bnb}"),
                (true, true) => String::new(),
            }
        };
        let csp = {
            let mut parts = Vec::new();
            for (name, tech) in [
                ("CP", Technique::Cp),
                ("SAT", Technique::Sat),
                ("SMT", Technique::Smt),
            ] {
                let c = cell(axis, tech);
                if !c.is_empty() {
                    parts.push(format!("{name} {c}"));
                }
            }
            parts.join(" ")
        };
        let sa = {
            let c = cell(axis, Technique::Sa);
            if c.is_empty() {
                c
            } else {
                format!("SA {c}")
            }
        };
        let _ = writeln!(
            s,
            "{:<18} | {:<28} | {:<12} | {:<20} | {:<24} | {}",
            axis.label(),
            cell(axis, Technique::Heuristic),
            pop,
            sa,
            exact1,
            csp
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::{Axis::*, Technique::*};

    /// Every cell of the published Table I, transcribed from the paper.
    fn expected() -> Vec<((Axis, Technique), Vec<u8>)> {
        vec![
            ((SpatialMapping, Heuristic), vec![23, 30, 31]),
            ((SpatialMapping, Ga), vec![19]),
            ((SpatialMapping, Sa), vec![32, 33]),
            ((SpatialMapping, Ilp), vec![23, 34, 35]),
            (
                (TemporalMapping, Heuristic),
                vec![12, 16, 26, 36, 37, 38, 39, 40],
            ),
            ((TemporalMapping, Sa), vec![22]),
            ((TemporalMapping, Ilp), vec![41]),
            ((TemporalMapping, BranchAndBound), vec![42]),
            ((TemporalMapping, Cp), vec![43]),
            ((TemporalMapping, Sat), vec![17]),
            ((TemporalMapping, Smt), vec![44]),
            ((Binding, Heuristic), vec![14, 24, 28, 45, 46, 47]),
            ((Binding, Qea), vec![48]),
            ((Binding, Sa), vec![30, 49, 50]),
            ((Binding, Ilp), vec![15, 48]),
            (
                (Scheduling, Heuristic),
                vec![24, 28, 36, 46, 48, 50, 51, 52],
            ),
            ((Scheduling, Ilp), vec![15, 53]),
        ]
    }

    #[test]
    fn regenerated_table_matches_the_paper_cell_by_cell() {
        let got = table1_cells();
        let want = expected();
        assert_eq!(got.len(), want.len(), "cell count");
        for (key, refs) in want {
            let cell = got
                .get(&key)
                .unwrap_or_else(|| panic!("missing cell {key:?}"));
            assert_eq!(cell, &refs, "cell {key:?}");
        }
    }

    #[test]
    fn approximate_vs_exact_split() {
        // The paper's headline classification: heuristics + meta on the
        // approximate side, ILP/B&B/CSP on the exact side.
        let t = table1_cells();
        let approx: usize = t
            .iter()
            .filter(|((_, tech), _)| !tech.is_exact())
            .map(|(_, refs)| refs.len())
            .sum();
        let exact: usize = t
            .iter()
            .filter(|((_, tech), _)| tech.is_exact())
            .map(|(_, refs)| refs.len())
            .sum();
        assert!(approx > exact, "the survey's corpus skews approximate");
        assert!(exact >= 8, "all five exact families are populated");
    }

    #[test]
    fn render_contains_every_reference() {
        let s = render_table1();
        for (_, refs) in expected() {
            for r in refs {
                assert!(s.contains(&format!("[{r}]")), "[{r}] missing:\n{s}");
            }
        }
    }

    #[test]
    fn temporal_row_covers_every_exact_family() {
        let t = table1_cells();
        for tech in [Ilp, BranchAndBound, Cp, Sat, Smt] {
            assert!(
                t.contains_key(&(TemporalMapping, tech)),
                "{tech:?} missing from the temporal row"
            );
        }
    }
}
