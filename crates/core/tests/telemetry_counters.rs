//! Cross-mapper telemetry guarantees: determinism of same-seed runs and
//! inertness of the disabled sink.

use cgra_arch::{Fabric, Topology};
use cgra_ir::kernels;
use cgra_mapper_core::mappers::{Genetic, ModuloList, SimulatedAnnealing};
use cgra_mapper_core::telemetry::{StatsSnapshot, Telemetry};
use cgra_mapper_core::{MapConfig, Mapper};

fn run_with_stats(mapper: &dyn Mapper, seed: u64) -> StatsSnapshot {
    let fabric = Fabric::homogeneous(4, 4, Topology::Mesh);
    let dfg = kernels::dot_product();
    let cfg = MapConfig {
        seed,
        telemetry: Telemetry::enabled(),
        ..MapConfig::fast()
    };
    mapper
        .map(&dfg, &fabric, &cfg)
        .unwrap_or_else(|e| panic!("{}: {e}", mapper.name()));
    cfg.telemetry.snapshot().unwrap()
}

/// Counters are sums of per-thread deterministic contributions; relaxed
/// atomic addition commutes, so two same-seed runs must agree exactly
/// even though SA/GA evaluate their populations on a rayon pool.
#[test]
fn same_seed_sa_runs_have_identical_counters() {
    let sa = SimulatedAnnealing::default();
    let a = run_with_stats(&sa, 42);
    let b = run_with_stats(&sa, 42);
    assert_eq!(a, b);
    assert!(a.moves_proposed > 0, "SA proposed no moves: {a:?}");
    assert!(a.moves_accepted > 0, "SA accepted no moves: {a:?}");
}

#[test]
fn same_seed_ga_runs_have_identical_counters() {
    let ga = Genetic::default();
    let a = run_with_stats(&ga, 1337);
    let b = run_with_stats(&ga, 1337);
    assert_eq!(a, b);
    assert!(a.moves_proposed > 0, "GA produced no offspring: {a:?}");
}

/// A mapper run with the default (disabled) sink must record nothing:
/// no snapshot, no spans, no sink allocation.
#[test]
fn disabled_sink_records_no_events() {
    let fabric = Fabric::homogeneous(4, 4, Topology::Mesh);
    let dfg = kernels::dot_product();
    let cfg = MapConfig::fast();
    assert!(!cfg.telemetry.is_enabled());
    ModuloList::default().map(&dfg, &fabric, &cfg).unwrap();
    assert!(cfg.telemetry.snapshot().is_none());
    assert!(cfg.telemetry.spans().is_empty());
    assert!(cfg.telemetry.sink().is_none());
}
