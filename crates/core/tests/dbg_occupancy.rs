use cgra_arch::{Fabric, Topology};
use cgra_ir::kernels;
use cgra_mapper_core::prelude::*;

#[test]
fn dbg_fir4() {
    let dfg = kernels::fir(4);
    let f = Fabric::homogeneous(4, 4, Topology::Mesh);
    let m = ModuloList::default()
        .map(&dfg, &f, &MapConfig::fast())
        .unwrap();
    for (i, p) in m.place.iter().enumerate() {
        println!("n{i} {:?} op={}", p, dfg.op(cgra_ir::NodeId(i as u32)));
    }
    for (eid, e) in dfg.edges() {
        let r = &m.routes[eid.index()];
        println!(
            "e{} {}->{} port{} dist{} start{} steps{:?}",
            eid.0, e.src, e.dst, e.port, e.dist, r.start_time, r.steps
        );
    }
    println!("ii={}", m.ii);
    let st = m.occupancy(&dfg, &f);
    for pe in f.pe_ids() {
        for slot in 0..m.ii {
            let c = st.reg_count(pe, slot);
            if c > f.rf_size {
                println!("OVER {pe} slot {slot}: {c}");
            }
        }
    }
    validate(&m, &dfg, &f).unwrap();
}
