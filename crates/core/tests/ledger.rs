//! Run-ledger invariants across the whole mapper zoo.
//!
//! Two guarantees matter for downstream consumers (cgra-report diffs,
//! the CI baseline gate):
//!
//! 1. **Determinism** — two runs of the same mapper with the same seed
//!    produce the same event sequence (kinds, mappers, IIs, costs);
//!    only the timestamps differ. Ledger emissions sit at sequential
//!    code points, never inside racing rayon closures, so this holds
//!    for every registry mapper.
//! 2. **Causality** — event timestamps are monotone in journal order,
//!    and a `RaceWin` is always preceded by the matching `RaceStart`.

use cgra_arch::{Fabric, Topology};
use cgra_ir::kernels;
use cgra_mapper_core::prelude::*;
use proptest::prelude::*;
use std::time::Duration;

fn mesh() -> Fabric {
    Fabric::homogeneous(4, 4, Topology::Mesh)
}

fn run_with_ledger(spec: &MapperSpec, seed: u64) -> (Result<u32, String>, Vec<LedgerEvent>) {
    let ledger = Ledger::enabled();
    let cfg = MapConfig {
        seed,
        ledger: ledger.clone(),
        ..MapConfig::fast()
    };
    let dfg = kernels::dot_product();
    let fabric = mesh();
    let out = spec
        .build()
        .map(&dfg, &fabric, &cfg)
        .map(|m| m.ii)
        .map_err(|e| e.to_string());
    (out, ledger.events())
}

/// The deterministic identity of an event: everything but `t_us`.
fn shape(e: &LedgerEvent) -> EventKind {
    e.kind.clone()
}

#[test]
fn same_seed_runs_emit_identical_ledgers() {
    for spec in MapperRegistry::standard().specs() {
        let (out_a, events_a) = run_with_ledger(spec, 7);
        let (out_b, events_b) = run_with_ledger(spec, 7);
        assert_eq!(out_a, out_b, "{}: outcome diverged across runs", spec.name);
        let shapes_a: Vec<EventKind> = events_a.iter().map(shape).collect();
        let shapes_b: Vec<EventKind> = events_b.iter().map(shape).collect();
        assert_eq!(
            shapes_a, shapes_b,
            "{}: same-seed runs produced different ledgers",
            spec.name
        );
        assert!(
            !shapes_a.is_empty(),
            "{}: an instrumented mapper must journal at least one event",
            spec.name
        );
    }
}

#[test]
fn every_mapper_journals_an_ii_attempt() {
    for spec in MapperRegistry::standard().specs() {
        let (_, events) = run_with_ledger(spec, 11);
        let has_attempt = events
            .iter()
            .any(|e| matches!(e.kind, EventKind::IiAttempt { .. }));
        // Spatial mappers have no II loop; everyone else probes IIs.
        if !spec.spatial {
            assert!(has_attempt, "{}: no IiAttempt event", spec.name);
        }
    }
}

#[test]
fn race_timeline_is_complete() {
    let registry = MapperRegistry::standard();
    let mappers: Vec<Box<dyn Mapper>> = ["modulo-list", "spatial-greedy", "edge-centric"]
        .iter()
        .map(|n| registry.build(n).unwrap())
        .collect();
    let ledger = Ledger::enabled();
    let cfg = MapConfig {
        ledger: ledger.clone(),
        ..MapConfig::fast()
    };
    let dfg = kernels::dot_product();
    let fabric = mesh();
    let out = race(&mappers, &dfg, &fabric, &cfg, None);
    assert!(out.winner.is_some());
    let events = ledger.events();
    let starts = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::RaceStart { .. }))
        .count();
    assert_eq!(starts, mappers.len(), "one RaceStart per entrant");
    let wins = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::RaceWin { .. }))
        .count();
    assert_eq!(wins, 1, "exactly one winner");
    // Every mapper's fate is recorded: win or loss.
    let losses = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::RaceLoss { .. }))
        .count();
    assert_eq!(wins + losses, mappers.len(), "every entrant resolves");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16 })]

    /// Ledger causality under real racing: timestamps are monotone in
    /// journal order, and any RaceWin is preceded by the matching
    /// mapper's RaceStart.
    #[test]
    fn race_ledgers_are_causal(seed in any::<u64>(), extra in 0usize..3) {
        let registry = MapperRegistry::standard();
        let pool = ["modulo-list", "spatial-greedy", "edge-centric", "graph-drawing", "ramp"];
        let names = &pool[..2 + extra];
        let mappers: Vec<Box<dyn Mapper>> =
            names.iter().map(|n| registry.build(n).unwrap()).collect();
        let ledger = Ledger::enabled();
        let cfg = MapConfig {
            seed,
            time_limit: Duration::from_secs(10),
            ledger: ledger.clone(),
            ..MapConfig::fast()
        };
        let dfg = kernels::fir(4);
        let fabric = mesh();
        let _ = race(&mappers, &dfg, &fabric, &cfg, None);
        let events = ledger.events();

        // Monotone timestamps.
        for w in events.windows(2) {
            prop_assert!(w[0].t_us <= w[1].t_us, "timestamps out of order");
        }

        // RaceWin implies an earlier RaceStart for the same mapper.
        for (i, e) in events.iter().enumerate() {
            if let EventKind::RaceWin { mapper, .. } = &e.kind {
                let started_before = events[..i].iter().any(|p| {
                    matches!(&p.kind, EventKind::RaceStart { mapper: m } if m == mapper)
                });
                prop_assert!(started_before, "{mapper} won without a RaceStart");
            }
        }
    }
}
