//! Cancellation-latency and racing contracts of the map engine.
//!
//! Every mapper in the registry must honour [`Budget::cancel`]
//! promptly (the budget is polled inside the hot scheduling loops and
//! forwarded into the solver engines), racing must yield a validated
//! winner, and a cancelled run must never surface an invalid mapping.

use cgra_arch::{Fabric, Topology};
use cgra_ir::kernels;
use cgra_mapper_core::engine::{race, Budget};
use cgra_mapper_core::registry::MapperRegistry;
use cgra_mapper_core::validate::validate;
use cgra_mapper_core::{MapConfig, MapError, Metrics};
use proptest::prelude::*;
use std::time::{Duration, Instant};

/// A kernel big enough that no mapper finishes it instantly on 4x4.
fn hard_kernel() -> cgra_ir::Dfg {
    kernels::unrolled_mac(12)
}

fn mesh() -> Fabric {
    Fabric::homogeneous(4, 4, Topology::Mesh)
}

/// Generous-deadline config whose budget is cancelled externally.
fn cancellable_cfg(budget: &Budget) -> MapConfig {
    MapConfig {
        time_limit: Duration::from_secs(3600),
        budget: budget.clone(),
        ..MapConfig::fast()
    }
}

/// Every registered mapper must return within the latency bound once
/// its budget's cancel token fires — the ISSUE's ~100ms target with a
/// hard bound of 150ms.
#[test]
fn every_mapper_stops_promptly_on_cancel() {
    let fabric = mesh();
    let dfg = hard_kernel();
    for spec in MapperRegistry::standard().specs() {
        let budget = Budget::unlimited();
        let cfg = cancellable_cfg(&budget);
        let mapper = spec.build();
        let dfg2 = dfg.clone();
        let fabric2 = fabric.clone();
        let handle = std::thread::spawn(move || {
            let out = mapper.map(&dfg2, &fabric2, &cfg);
            (out, Instant::now())
        });
        std::thread::sleep(Duration::from_millis(50));
        let cancelled_at = Instant::now();
        budget.cancel();
        let (result, returned_at) = handle.join().unwrap();
        let lag = returned_at.saturating_duration_since(cancelled_at);
        assert!(
            lag <= Duration::from_millis(150),
            "{}: returned {}ms after cancel",
            spec.name,
            lag.as_millis()
        );
        // A mapper that won the race against the cancel must still be
        // valid; one that lost must report why it stopped.
        match result {
            Ok(m) => validate(&m, &dfg, &fabric)
                .unwrap_or_else(|e| panic!("{}: invalid mapping: {e}", spec.name)),
            Err(e) => assert!(
                matches!(
                    e,
                    MapError::Cancelled | MapError::Timeout | MapError::Infeasible(_)
                ),
                "{}: unexpected error {e}",
                spec.name
            ),
        }
    }
}

/// Racing the zoo twice with the same seed must decide both races with
/// a validated winner at the same II (the deterministic-metrics
/// guarantee; the winning mapper's identity is not pinned).
#[test]
fn same_seed_races_agree_on_the_winning_ii() {
    let zoo = MapperRegistry::standard().build_heuristics();
    let dfg = kernels::dot_product();
    let fabric = mesh();
    let cfg = MapConfig::fast();

    let a = race(&zoo, &dfg, &fabric, &cfg, None);
    let b = race(&zoo, &dfg, &fabric, &cfg, None);
    for out in [&a, &b] {
        assert!(out.winner.is_some(), "race failed: {:?}", out.entries);
        let m = out.mapping.as_ref().unwrap();
        validate(m, &dfg, &fabric).unwrap();
    }
    let ii_a = a.metrics(&dfg, &fabric).unwrap().ii;
    let ii_b = b.metrics(&dfg, &fabric).unwrap().ii;
    assert_eq!(ii_a, ii_b, "same-seed races disagreed on the winning II");
}

/// The race-mode smoke from the ISSUE: example kernels under a 2s
/// budget must decide within budget plus slack, and the losers'
/// cancellations must be visible in the telemetry rows.
#[test]
fn race_smoke_stays_within_budget() {
    let zoo = MapperRegistry::standard().build_all();
    let fabric = mesh();
    let budget = Duration::from_secs(2);
    let slack = Duration::from_millis(1500);
    for dfg in [
        kernels::dot_product(),
        kernels::fir(4),
        kernels::sobel(),
        kernels::fft_butterfly(),
    ] {
        let cfg = MapConfig {
            time_limit: budget,
            ..MapConfig::default()
        };
        let start = Instant::now();
        let out = race(&zoo, &dfg, &fabric, &cfg, None);
        let wall = start.elapsed();
        assert!(
            wall < budget + slack,
            "{}: race took {}ms (budget {}ms)",
            dfg.name,
            wall.as_millis(),
            budget.as_millis()
        );
        let m = out
            .mapping
            .as_ref()
            .unwrap_or_else(|| panic!("{}: no winner: {:?}", dfg.name, out.entries));
        validate(m, &dfg, &fabric).unwrap();
        let metrics = Metrics::of(m, &dfg, &fabric);
        assert!(metrics.ii >= 1);
        // Every row carries its per-job stats snapshot, and any loser
        // recorded as cancelled bumped the cancellation counter.
        assert!(out.entries.iter().all(|e| e.stats.is_some()));
        for e in &out.entries {
            if matches!(e.error_detail, Some(MapError::Cancelled)) {
                assert!(
                    e.stats.as_ref().unwrap().cancellations >= 1,
                    "{}: cancelled without counting it",
                    e.mapper
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    /// A run whose budget is cancelled — before it starts or while it
    /// runs — either fails with a typed error or returns a mapping
    /// that passes validation. Never an invalid mapping.
    #[test]
    fn cancelled_runs_never_return_invalid_mappings(
        mapper_idx in 0usize..16,
        delay_ms in 0u64..25,
        pre_cancelled in any::<bool>(),
    ) {
        let registry = MapperRegistry::standard();
        let spec = &registry.specs()[mapper_idx];
        let fabric = mesh();
        let dfg = kernels::fir(4);
        let budget = Budget::unlimited();
        let cfg = cancellable_cfg(&budget);
        if pre_cancelled {
            budget.cancel();
        } else {
            let canceller = budget.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(delay_ms));
                canceller.cancel();
            });
        }
        match spec.build().map(&dfg, &fabric, &cfg) {
            Ok(m) => prop_assert!(
                validate(&m, &dfg, &fabric).is_ok(),
                "{}: cancelled run returned an invalid mapping", spec.name
            ),
            Err(e) => prop_assert!(
                !matches!(e, MapError::Unsupported(_)),
                "{}: unexpected {e}", spec.name
            ),
        }
    }
}
