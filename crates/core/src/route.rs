//! Space-time routing: a Dijkstra router over the (PE, cycle) grid and
//! a PathFinder-style negotiated-congestion loop that routes all edges
//! of a placed mapping.
//!
//! Routing is the FPGA-lineage half of CGRA mapping (the survey's
//! "historically the meeting point between VLIW compilation and FPGA
//! place-and-route"): values move one hop per cycle, holding a register
//! wherever they wait, and competing routes negotiate via history costs
//! until no resource is over-subscribed.
//!
//! The hot path is [`find_route_with`]: neighbour expansion iterates
//! CSR slices from a shared [`TopologyCache`] and the Dijkstra buffers
//! live in a caller-owned [`RouterScratch`], so steady-state routing
//! (the negotiation loop, a mapper's placement inner loop) performs no
//! heap allocation per search. The pre-cache implementation is kept
//! verbatim in [`naive`] as the uncached reference for benches and
//! differential tests.

use crate::mapping::{Mapping, Placement, Route};
use crate::telemetry::{Counter, Phase, Telemetry};
use cgra_arch::{Fabric, PeId, SpaceTime, TopologyCache};
use cgra_ir::Dfg;
use std::collections::{BinaryHeap, HashSet};

/// Scaled-integer router costs (1 step = `STEP_COST`).
const STEP_COST: u64 = 100;

/// Congestion history per (pe, slot), used by the PathFinder loop.
#[derive(Debug, Clone)]
pub struct History {
    num_pes: usize,
    ii: u32,
    cost: Vec<u64>,
}

impl History {
    pub fn new(fabric: &Fabric, ii: u32) -> Self {
        History {
            num_pes: fabric.num_pes(),
            ii,
            cost: vec![0; fabric.num_pes() * ii as usize],
        }
    }

    #[inline]
    fn get(&self, pe: PeId, t: u32) -> u64 {
        self.cost[(t % self.ii) as usize * self.num_pes + pe.index()]
    }

    #[inline]
    fn bump(&mut self, pe: PeId, t: u32, amount: u64) {
        self.cost[(t % self.ii) as usize * self.num_pes + pe.index()] += amount;
    }
}

/// Options controlling a single-edge route search.
#[derive(Debug, Clone, Copy)]
pub struct RouteOpts {
    /// Penalty per unit of register over-subscription entered.
    pub congestion_penalty: u64,
    /// When false, over-subscribed registers are hard-forbidden
    /// (feasible-only routing); when true they are allowed at a cost
    /// (negotiation mode).
    pub allow_overuse: bool,
}

impl Default for RouteOpts {
    fn default() -> Self {
        RouteOpts {
            congestion_penalty: 3 * STEP_COST,
            allow_overuse: false,
        }
    }
}

/// Reusable Dijkstra buffers for [`find_route_with`].
///
/// The scratch-reuse contract: a `RouterScratch` is exclusively
/// borrowed for the duration of one search, carries no information
/// between searches (every call re-initialises the states it uses),
/// and only ever *grows* its buffers — so a scratch threaded through a
/// negotiation loop or a placement search reaches a steady state where
/// routing performs no heap allocation at all.
#[derive(Debug, Default)]
pub struct RouterScratch {
    dist: Vec<u64>,
    prev: Vec<Option<(PeId, usize)>>,
    heap: BinaryHeap<std::cmp::Reverse<(u64, u16, usize, usize)>>,
}

impl RouterScratch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Re-initialise for a search over `states` Dijkstra states.
    /// `clear` + `resize` never shrink capacity: after warm-up this is
    /// a pure `memset`-style fill.
    fn reset(&mut self, states: usize) {
        self.dist.clear();
        self.dist.resize(states, u64::MAX);
        self.prev.clear();
        self.prev.resize(states, None);
        self.heap.clear();
    }
}

/// Find a cheapest route from `(from, tr)` to `(to, tc)` over the
/// current occupancy.
///
/// `shared` lists `(pe, t)` positions already occupied by the *same
/// value* (fan-out reuse): entering them is free and never counts as
/// congestion. Returns `None` when no route exists under the options.
///
/// Convenience wrapper over [`find_route_with`] for one-off searches;
/// hot paths thread a [`TopologyCache`] and a [`RouterScratch`] instead.
#[allow(clippy::too_many_arguments)]
pub fn find_route(
    fabric: &Fabric,
    st: &SpaceTime,
    from: PeId,
    tr: u32,
    to: PeId,
    tc: u32,
    shared: &HashSet<(PeId, u32)>,
    hist: Option<&History>,
    opts: RouteOpts,
) -> Option<Route> {
    naive::find_route(fabric, st, from, tr, to, tc, shared, hist, opts)
}

/// Cache-backed, allocation-free (in steady state) route search.
/// Neighbour expansion walks `topo`'s CSR slices and the Dijkstra
/// buffers are reused from `scratch`.
#[allow(clippy::too_many_arguments)]
pub fn find_route_with(
    fabric: &Fabric,
    topo: &TopologyCache,
    st: &SpaceTime,
    from: PeId,
    tr: u32,
    to: PeId,
    tc: u32,
    shared: &HashSet<(PeId, u32)>,
    hist: Option<&History>,
    opts: RouteOpts,
    scratch: &mut RouterScratch,
) -> Option<Route> {
    if tc < tr {
        return None;
    }
    let span = (tc - tr) as usize + 1;
    let n = fabric.num_pes();
    let ii = st.ii();

    // Dijkstra over states (pe, step, run) where `run` is the number of
    // consecutive cycles spent on `pe` ending at this step. The run
    // matters because a hold longer than II wraps onto modulo slots the
    // path itself already occupies: the k-th consecutive cycle on a PE
    // adds `⌊(k−1)/II⌋` of *self* pressure on its slot, which a router
    // unaware of it would over-subscribe (the classic II=1 trap).
    let cap_run = span.min((ii as usize) * fabric.rf_size as usize + 1);
    let idx = |pe: PeId, step: usize, run: usize| (step * n + pe.index()) * (cap_run + 1) + run;
    scratch.reset(n * span * (cap_run + 1));
    let RouterScratch { dist, prev, heap } = scratch;

    // `own_extra`: how many times this path already occupies the slot
    // being entered (self-wrap pressure).
    let enter_cost = |pe: PeId, t: u32, own_extra: u32| -> Option<u64> {
        if shared.contains(&(pe, t)) {
            return Some(0); // value already stored here by a sibling edge
        }
        let headroom = st.reg_headroom(pe, t);
        let mut c = STEP_COST;
        if headroom < own_extra + 1 {
            if !opts.allow_overuse {
                return None;
            }
            c += opts.congestion_penalty * (st.reg_count(pe, t) as u64 + own_extra as u64 + 1);
        }
        if let Some(h) = hist {
            c += h.get(pe, t);
        }
        Some(c)
    };

    // The producer's output register at (from, tr) is charged too —
    // the value must exist there.
    let start_cost = enter_cost(from, tr, 0)?;
    dist[idx(from, 0, 1)] = start_cost;

    heap.push(std::cmp::Reverse((start_cost, from.0, 0, 1)));
    while let Some(std::cmp::Reverse((d, pe_raw, step, run))) = heap.pop() {
        let pe = PeId(pe_raw);
        if d > dist[idx(pe, step, run)] {
            continue;
        }
        if step + 1 == span {
            continue; // final cycle reached; no further moves
        }
        let t_next = tr + step as u32 + 1;
        // Hold: run grows; self-wrap pressure is run / II.
        let hold_run = (run + 1).min(cap_run);
        let own_extra = (run as u32) / ii;
        if let Some(c) = enter_cost(pe, t_next, own_extra) {
            let nd = d + c;
            let ni = idx(pe, step + 1, hold_run);
            if nd < dist[ni] {
                dist[ni] = nd;
                prev[ni] = Some((pe, run));
                heap.push(std::cmp::Reverse((nd, pe.0, step + 1, hold_run)));
            }
        }
        // Hop: run resets. (Revisiting a PE after leaving it is not
        // self-tracked; callers guard with a final overuse check.)
        for &nxt in topo.neighbors(pe) {
            if let Some(c) = enter_cost(nxt, t_next, 0) {
                let nd = d + c;
                let ni = idx(nxt, step + 1, 1);
                if nd < dist[ni] {
                    dist[ni] = nd;
                    prev[ni] = Some((pe, run));
                    heap.push(std::cmp::Reverse((nd, nxt.0, step + 1, 1)));
                }
            }
        }
    }

    // Best terminal state at the consumer.
    let best_run = (1..=cap_run)
        .filter(|&r| dist[idx(to, span - 1, r)] != u64::MAX)
        .min_by_key(|&r| dist[idx(to, span - 1, r)])?;
    // Walk back.
    let mut steps = vec![to; span];
    let mut cur = to;
    let mut cur_run = best_run;
    for step in (1..span).rev() {
        let (p, r) = prev[idx(cur, step, cur_run)].expect("reached state has predecessor");
        steps[step - 1] = p;
        cur = p;
        cur_run = r;
    }
    if steps[0] != from {
        return None; // unreachable start (shouldn't happen)
    }
    Some(Route {
        start_time: tr,
        steps,
    })
}

/// Positions already used by routes of the same producer (for fan-out
/// sharing).
pub fn shared_positions(
    dfg: &Dfg,
    mapping: &Mapping,
    src: cgra_ir::NodeId,
) -> HashSet<(PeId, u32)> {
    let mut set = HashSet::new();
    for (eid, e) in dfg.edges() {
        if e.src == src {
            let r = &mapping.routes[eid.index()];
            for (i, &pe) in r.steps.iter().enumerate() {
                set.insert((pe, r.start_time + i as u32));
            }
        }
    }
    set
}

/// Route every edge of a fully placed mapping with PathFinder-style
/// negotiated congestion. Returns the routes on success.
///
/// `rounds` bounds the rip-up/re-route iterations; `negotiated = false`
/// degrades to a single feasible-only pass (the ablation baseline).
///
/// Builds a fresh [`TopologyCache`] per call; callers in a loop should
/// build the cache once and use [`route_all_with`].
pub fn route_all(
    fabric: &Fabric,
    dfg: &Dfg,
    place: &[Placement],
    ii: u32,
    rounds: u32,
    negotiated: bool,
) -> Option<Vec<Route>> {
    let topo = TopologyCache::build(fabric);
    route_all_with(
        fabric,
        &topo,
        dfg,
        place,
        ii,
        rounds,
        negotiated,
        &Telemetry::off(),
    )
}

/// [`route_all`] against a prebuilt [`TopologyCache`] and with a
/// telemetry sink: the whole negotiation is timed as a [`Phase::Route`]
/// span and every single-edge search is counted.
///
/// One `SpaceTime`, one `RouterScratch`, and one `History` are reused
/// across all edges and negotiation rounds — after the first round the
/// loop is allocation-free apart from the returned route steps.
#[allow(clippy::too_many_arguments)]
pub fn route_all_with(
    fabric: &Fabric,
    topo: &TopologyCache,
    dfg: &Dfg,
    place: &[Placement],
    ii: u32,
    rounds: u32,
    negotiated: bool,
    tele: &Telemetry,
) -> Option<Vec<Route>> {
    let _span = tele.span_ii(Phase::Route, ii);
    let mut mapping = Mapping {
        ii,
        place: place.to_vec(),
        routes: vec![Route::default(); dfg.edge_count()],
    };
    let mut hist = History::new(fabric, ii);
    let mut scratch = RouterScratch::new();

    // Route longer-distance edges first (harder to satisfy).
    let mut order: Vec<_> = dfg.edge_ids().collect();
    order.sort_by_key(|&eid| {
        let e = dfg.edge(eid);
        std::cmp::Reverse(topo.hops(place[e.src.index()].pe, place[e.dst.index()].pe))
    });

    let total_rounds = if negotiated { rounds.max(1) } else { 1 };
    let mut st = SpaceTime::new(fabric, ii);
    for round in 0..total_rounds {
        let allow = negotiated && round + 1 < total_rounds;
        // (Re)route everything against fresh occupancy.
        st.clear();
        for p in place {
            st.occupy_fu(p.pe, p.time);
        }
        for r in &mut mapping.routes {
            r.start_time = 0;
            r.steps.clear();
        }
        let mut ok = true;
        for &eid in &order {
            let e = dfg.edge(eid);
            let tr = mapping.ready_time(dfg, fabric, e.src);
            let tc = mapping.consume_time(dfg, eid);
            if tc < tr {
                return None; // schedule violates latency; placement bug
            }
            let shared = shared_positions(dfg, &mapping, e.src);
            let opts = RouteOpts {
                allow_overuse: allow,
                ..RouteOpts::default()
            };
            let from = place[e.src.index()].pe;
            let to = place[e.dst.index()].pe;
            tele.bump(Counter::RoutingCalls);
            let route_t0 = tele.is_enabled().then(std::time::Instant::now);
            let routed = find_route_with(
                fabric,
                topo,
                &st,
                from,
                tr,
                to,
                tc,
                &shared,
                Some(&hist),
                opts,
                &mut scratch,
            );
            if let Some(t0) = route_t0 {
                tele.record_route_us(t0.elapsed().as_micros() as u64);
            }
            match routed {
                Some(r) => {
                    for (i, &pe) in r.steps.iter().enumerate() {
                        let t = r.start_time + i as u32;
                        if !shared.contains(&(pe, t)) {
                            st.occupy_reg(pe, t);
                        }
                    }
                    mapping.routes[eid.index()] = r;
                }
                None => {
                    tele.bump(Counter::RoutingFailures);
                    ok = false;
                    break;
                }
            }
        }
        if ok && st.overuse() == 0 {
            return Some(mapping.routes);
        }
        if !negotiated {
            return None;
        }
        // Bump history on over-subscribed registers.
        for pe in fabric.pe_ids() {
            for slot in 0..ii {
                let over = st.reg_count(pe, slot).saturating_sub(fabric.rf_size);
                if over > 0 {
                    hist.bump(pe, slot, STEP_COST * over as u64);
                }
            }
        }
    }
    None
}

/// The pre-cache router, frozen verbatim: `Fabric::neighbors` Vec
/// allocation per node expansion, fresh `dist`/`prev` per search, and a
/// `Fabric::hop_distance` all-pairs BFS per `route_all` call.
///
/// This is **not** a fallback — the cached path above is the only one
/// mappers use. It exists so the cached-vs-uncached benchmark rows and
/// the differential tests compare against the real historical baseline
/// rather than a strawman.
pub mod naive {
    use super::*;

    /// Pre-cache [`super::find_route`] (see module docs).
    #[allow(clippy::too_many_arguments)]
    pub fn find_route(
        fabric: &Fabric,
        st: &SpaceTime,
        from: PeId,
        tr: u32,
        to: PeId,
        tc: u32,
        shared: &HashSet<(PeId, u32)>,
        hist: Option<&History>,
        opts: RouteOpts,
    ) -> Option<Route> {
        if tc < tr {
            return None;
        }
        let span = (tc - tr) as usize + 1;
        let n = fabric.num_pes();
        let ii = st.ii();

        let cap_run = span.min((ii as usize) * fabric.rf_size as usize + 1);
        let idx = |pe: PeId, step: usize, run: usize| (step * n + pe.index()) * (cap_run + 1) + run;
        let mut dist = vec![u64::MAX; n * span * (cap_run + 1)];
        let mut prev: Vec<Option<(PeId, usize)>> = vec![None; n * span * (cap_run + 1)];

        let enter_cost = |pe: PeId, t: u32, own_extra: u32| -> Option<u64> {
            if shared.contains(&(pe, t)) {
                return Some(0);
            }
            let headroom = st.reg_headroom(pe, t);
            let mut c = STEP_COST;
            if headroom < own_extra + 1 {
                if !opts.allow_overuse {
                    return None;
                }
                c += opts.congestion_penalty * (st.reg_count(pe, t) as u64 + own_extra as u64 + 1);
            }
            if let Some(h) = hist {
                c += h.get(pe, t);
            }
            Some(c)
        };

        let start_cost = enter_cost(from, tr, 0)?;
        dist[idx(from, 0, 1)] = start_cost;

        let mut heap: BinaryHeap<std::cmp::Reverse<(u64, u16, usize, usize)>> = BinaryHeap::new();
        heap.push(std::cmp::Reverse((start_cost, from.0, 0, 1)));
        while let Some(std::cmp::Reverse((d, pe_raw, step, run))) = heap.pop() {
            let pe = PeId(pe_raw);
            if d > dist[idx(pe, step, run)] {
                continue;
            }
            if step + 1 == span {
                continue;
            }
            let t_next = tr + step as u32 + 1;
            let hold_run = (run + 1).min(cap_run);
            let own_extra = (run as u32) / ii;
            if let Some(c) = enter_cost(pe, t_next, own_extra) {
                let nd = d + c;
                let ni = idx(pe, step + 1, hold_run);
                if nd < dist[ni] {
                    dist[ni] = nd;
                    prev[ni] = Some((pe, run));
                    heap.push(std::cmp::Reverse((nd, pe.0, step + 1, hold_run)));
                }
            }
            for nxt in fabric.neighbors(pe) {
                if let Some(c) = enter_cost(nxt, t_next, 0) {
                    let nd = d + c;
                    let ni = idx(nxt, step + 1, 1);
                    if nd < dist[ni] {
                        dist[ni] = nd;
                        prev[ni] = Some((pe, run));
                        heap.push(std::cmp::Reverse((nd, nxt.0, step + 1, 1)));
                    }
                }
            }
        }

        let best_run = (1..=cap_run)
            .filter(|&r| dist[idx(to, span - 1, r)] != u64::MAX)
            .min_by_key(|&r| dist[idx(to, span - 1, r)])?;
        let mut steps = vec![to; span];
        let mut cur = to;
        let mut cur_run = best_run;
        for step in (1..span).rev() {
            let (p, r) = prev[idx(cur, step, cur_run)].expect("reached state has predecessor");
            steps[step - 1] = p;
            cur = p;
            cur_run = r;
        }
        if steps[0] != from {
            return None;
        }
        Some(Route {
            start_time: tr,
            steps,
        })
    }

    /// Pre-cache [`super::route_all`] (see module docs).
    pub fn route_all(
        fabric: &Fabric,
        dfg: &Dfg,
        place: &[Placement],
        ii: u32,
        rounds: u32,
        negotiated: bool,
    ) -> Option<Vec<Route>> {
        let mut mapping = Mapping {
            ii,
            place: place.to_vec(),
            routes: vec![Route::default(); dfg.edge_count()],
        };
        let mut hist = History::new(fabric, ii);

        let mut order: Vec<_> = dfg.edge_ids().collect();
        let hop = fabric.hop_distance();
        order.sort_by_key(|&eid| {
            let e = dfg.edge(eid);
            std::cmp::Reverse(hop[place[e.src.index()].pe.index()][place[e.dst.index()].pe.index()])
        });

        let total_rounds = if negotiated { rounds.max(1) } else { 1 };
        for round in 0..total_rounds {
            let allow = negotiated && round + 1 < total_rounds;
            let mut st = SpaceTime::new(fabric, ii);
            for p in place {
                st.occupy_fu(p.pe, p.time);
            }
            mapping.routes = vec![Route::default(); dfg.edge_count()];
            let mut ok = true;
            for &eid in &order {
                let e = dfg.edge(eid);
                let tr = mapping.ready_time(dfg, fabric, e.src);
                let tc = mapping.consume_time(dfg, eid);
                if tc < tr {
                    return None;
                }
                let shared = shared_positions(dfg, &mapping, e.src);
                let opts = RouteOpts {
                    allow_overuse: allow,
                    ..RouteOpts::default()
                };
                let from = place[e.src.index()].pe;
                let to = place[e.dst.index()].pe;
                match find_route(fabric, &st, from, tr, to, tc, &shared, Some(&hist), opts) {
                    Some(r) => {
                        for (i, &pe) in r.steps.iter().enumerate() {
                            let t = r.start_time + i as u32;
                            if !shared.contains(&(pe, t)) {
                                st.occupy_reg(pe, t);
                            }
                        }
                        mapping.routes[eid.index()] = r;
                    }
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok && st.overuse() == 0 {
                return Some(mapping.routes);
            }
            if !negotiated {
                return None;
            }
            for pe in fabric.pe_ids() {
                for slot in 0..ii {
                    let over = st.reg_count(pe, slot).saturating_sub(fabric.rf_size);
                    if over > 0 {
                        hist.bump(pe, slot, STEP_COST * over as u64);
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgra_arch::Topology;
    use cgra_ir::OpKind;

    fn mesh() -> Fabric {
        Fabric::homogeneous(4, 4, Topology::Mesh)
    }

    #[test]
    fn direct_route_same_pe() {
        let f = mesh();
        let st = SpaceTime::new(&f, 4);
        let r = find_route(
            &f,
            &st,
            PeId(5),
            3,
            PeId(5),
            3,
            &HashSet::new(),
            None,
            RouteOpts::default(),
        )
        .unwrap();
        assert_eq!(r.steps, vec![PeId(5)]);
        assert_eq!(r.start_time, 3);
    }

    #[test]
    fn route_respects_hop_budget() {
        let f = mesh();
        let st = SpaceTime::new(&f, 8);
        // pe0 -> pe15 needs 6 hops; 5 cycles of slack is not enough.
        assert!(find_route(
            &f,
            &st,
            PeId(0),
            0,
            PeId(15),
            5,
            &HashSet::new(),
            None,
            RouteOpts::default()
        )
        .is_none());
        let r = find_route(
            &f,
            &st,
            PeId(0),
            0,
            PeId(15),
            6,
            &HashSet::new(),
            None,
            RouteOpts::default(),
        )
        .unwrap();
        assert_eq!(r.hops(), 6);
        assert_eq!(r.steps.len(), 7);
        // Consecutive steps are adjacent or equal.
        let topo = TopologyCache::build(&f);
        for w in r.steps.windows(2) {
            assert!(w[0] == w[1] || topo.adjacent(w[0], w[1]));
        }
    }

    #[test]
    fn route_avoids_full_registers() {
        let f = mesh();
        let mut st = SpaceTime::new(&f, 1);
        // Saturate pe1's registers at every slot (ii=1 so one slot).
        for _ in 0..f.rf_size {
            st.occupy_reg(PeId(1), 0);
        }
        // pe0 -> pe2 in 2 cycles must pass through pe1 (row 0) or detour
        // via pe4/pe5/pe6 which takes 4 hops; 2 cycles forbid the detour,
        // so routing must fail in feasible-only mode.
        let r = find_route(
            &f,
            &st,
            PeId(0),
            0,
            PeId(2),
            2,
            &HashSet::new(),
            None,
            RouteOpts::default(),
        );
        assert!(r.is_none());
        // With 4 cycles of slack the detour through row 1 works.
        let r = find_route(
            &f,
            &st,
            PeId(0),
            0,
            PeId(2),
            4,
            &HashSet::new(),
            None,
            RouteOpts::default(),
        )
        .unwrap();
        assert!(r.steps.iter().all(|&pe| pe != PeId(1)));
    }

    #[test]
    fn shared_positions_are_free() {
        let f = mesh();
        let mut st = SpaceTime::new(&f, 1);
        for _ in 0..f.rf_size {
            st.occupy_reg(PeId(1), 0);
        }
        // Same-value sharing lets the route pass through the full pe1.
        let mut shared = HashSet::new();
        for t in 0..=2 {
            shared.insert((PeId(1), t));
        }
        shared.insert((PeId(0), 0));
        let r = find_route(
            &f,
            &st,
            PeId(0),
            0,
            PeId(2),
            2,
            &shared,
            None,
            RouteOpts::default(),
        );
        assert!(r.is_some());
    }

    #[test]
    fn route_all_simple_chain() {
        // in -> not -> out placed on a row; routes must connect them.
        let f = mesh();
        let mut dfg = Dfg::new("chain");
        let a = dfg.add_node(OpKind::Input(0));
        let b = dfg.add_node(OpKind::Not);
        let c = dfg.add_node(OpKind::Output(0));
        dfg.connect(a, b, 0);
        dfg.connect(b, c, 0);
        let place = vec![
            Placement {
                pe: PeId(0),
                time: 0,
            },
            Placement {
                pe: PeId(1),
                time: 2,
            },
            Placement {
                pe: PeId(2),
                time: 4,
            },
        ];
        let routes = route_all(&f, &dfg, &place, 8, 8, true).unwrap();
        assert_eq!(routes.len(), 2);
        assert_eq!(routes[0].start_time, 1);
        assert_eq!(*routes[0].steps.last().unwrap(), PeId(1));
        assert_eq!(*routes[1].steps.first().unwrap(), PeId(1));
    }

    #[test]
    fn route_all_rejects_latency_violation() {
        let f = mesh();
        let mut dfg = Dfg::new("bad");
        let a = dfg.add_node(OpKind::Input(0));
        let b = dfg.add_node(OpKind::Not);
        dfg.connect(a, b, 0);
        // Consumer scheduled before the producer's result is ready.
        let place = vec![
            Placement {
                pe: PeId(0),
                time: 5,
            },
            Placement {
                pe: PeId(1),
                time: 0,
            },
        ];
        assert!(route_all(&f, &dfg, &place, 8, 4, true).is_none());
    }

    #[test]
    fn negotiation_beats_single_pass_under_pressure() {
        // Many values crossing one narrow cut: single-pass greedy
        // routing can dead-end; negotiation should succeed at least as
        // often. We only assert negotiated success here.
        let mut f = Fabric::homogeneous(2, 3, Topology::Mesh);
        f.rf_size = 1;
        let mut dfg = Dfg::new("cross");
        // Two values from column 0 to column 2 simultaneously.
        let mut place = Vec::new();
        for row in 0..2u16 {
            let a = dfg.add_node(OpKind::Input(row as u32));
            let b = dfg.add_node(OpKind::Not);
            dfg.connect(a, b, 0);
            place.push(Placement {
                pe: f.pe_at(row, 0),
                time: 0,
            });
            place.push(Placement {
                pe: f.pe_at(row, 2),
                time: 3,
            });
        }
        let routes = route_all(&f, &dfg, &place, 6, 10, true);
        assert!(routes.is_some());
    }

    #[test]
    fn cached_router_agrees_with_naive() {
        // Differential check: the cache-backed hot path and the frozen
        // pre-cache reference must produce identical routes (same costs,
        // same tie-breaking) under identical occupancy.
        for topology in [
            Topology::Mesh,
            Topology::MeshPlus,
            Topology::Torus,
            Topology::OneHop,
        ] {
            let f = Fabric::homogeneous(4, 4, topology);
            let topo = TopologyCache::build(&f);
            let mut st = SpaceTime::new(&f, 3);
            // Some occupancy so costs are non-uniform.
            st.occupy_reg(PeId(5), 1);
            st.occupy_reg(PeId(6), 2);
            let mut hist = History::new(&f, 3);
            hist.bump(PeId(9), 1, 250);
            let mut scratch = RouterScratch::new();
            for (from, to, tr, tc) in [
                (0u16, 15u16, 0u32, 8u32),
                (3, 12, 1, 7),
                (5, 5, 2, 6),
                (0, 2, 0, 2),
            ] {
                let a = naive::find_route(
                    &f,
                    &st,
                    PeId(from),
                    tr,
                    PeId(to),
                    tc,
                    &HashSet::new(),
                    Some(&hist),
                    RouteOpts::default(),
                );
                let b = find_route_with(
                    &f,
                    &topo,
                    &st,
                    PeId(from),
                    tr,
                    PeId(to),
                    tc,
                    &HashSet::new(),
                    Some(&hist),
                    RouteOpts::default(),
                    &mut scratch,
                );
                match (&a, &b) {
                    (Some(ra), Some(rb)) => {
                        assert_eq!(ra.start_time, rb.start_time, "{topology:?}");
                        assert_eq!(ra.steps, rb.steps, "{topology:?}");
                    }
                    (None, None) => {}
                    _ => panic!("{topology:?}: naive={a:?} cached={b:?}"),
                }
            }
        }
    }

    #[test]
    fn cached_route_all_agrees_with_naive() {
        let f = mesh();
        let dfg = cgra_ir::kernels::sobel();
        let times = cgra_ir::graph::asap(&dfg, &cgra_ir::graph::unit_latency);
        let place: Vec<Placement> = dfg
            .node_ids()
            .map(|n| Placement {
                pe: PeId((n.0 * 5 % 16) as u16),
                time: times[n.index()] * 3,
            })
            .collect();
        let a = naive::route_all(&f, &dfg, &place, 8, 10, true);
        let b = route_all(&f, &dfg, &place, 8, 10, true);
        match (&a, &b) {
            (Some(ra), Some(rb)) => assert_eq!(ra, rb),
            (None, None) => {}
            _ => panic!("naive={:?} cached={:?}", a.is_some(), b.is_some()),
        }
    }
}
