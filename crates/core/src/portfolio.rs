//! The mapper portfolio: run many mappers over many kernels (in
//! parallel) and collect the rows of the Table I experiment.

use crate::diagnosis::Diagnosis;
use crate::ledger::{Ledger, LedgerEvent};
use crate::mapper::{Family, MapConfig, MapError, Mapper};
use crate::metrics::{Metrics, UtilizationMap};
use crate::report::LatencySummary;
use crate::telemetry::{StatsSnapshot, Telemetry};
use crate::validate::validate;
use cgra_arch::Fabric;
use cgra_ir::Dfg;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One (mapper, kernel) outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PortfolioEntry {
    pub mapper: String,
    pub family_label: String,
    pub exact: bool,
    pub spatial: bool,
    pub kernel: String,
    /// `Some(metrics)` on success (and validation), `None` on failure.
    pub metrics: Option<Metrics>,
    /// Human-readable rendering of `error_detail`.
    pub error: Option<String>,
    /// The typed failure, so JSON consumers dispatch on the variant
    /// (`Cancelled` race losers, `Timeout`, …) instead of parsing
    /// prose. Invalid mapper output is recorded as `Infeasible`.
    #[serde(default)]
    pub error_detail: Option<MapError>,
    pub compile_ms: f64,
    /// Search-effort counters recorded by a per-job telemetry sink
    /// (present for both successes and failures).
    #[serde(default)]
    pub stats: Option<StatsSnapshot>,
    /// Run-ledger events recorded by a per-job journal (incumbents and
    /// II probes; empty when the job shared an engine-level ledger).
    #[serde(default)]
    pub events: Vec<LedgerEvent>,
    /// Events lost to the journal's bounded capacity.
    #[serde(default)]
    pub events_dropped: u64,
    /// Failure forensics: which resource class bound the search (only
    /// when the job ran with `explain` and the mapper diagnosed it).
    #[serde(default)]
    pub diagnosis: Option<Diagnosis>,
    /// Phase spans lost to the telemetry buffer cap (histograms still
    /// cover them; see `RunReport::spans_dropped`).
    #[serde(default)]
    pub spans_dropped: u64,
    /// Per-phase latency percentiles from the job's telemetry sink.
    #[serde(default)]
    pub latency: Vec<LatencySummary>,
    /// Fabric occupancy heatmap data (successes only).
    #[serde(default)]
    pub utilization: Option<UtilizationMap>,
}

impl PortfolioEntry {
    pub fn succeeded(&self) -> bool {
        self.metrics.is_some()
    }
}

/// Run every mapper on every kernel. Mapper outputs are validated; a
/// mapper returning an invalid mapping is recorded as an error (this
/// is the framework's no-invalid-output guarantee surfacing in the
/// data rather than a panic).
pub fn run_portfolio(
    mappers: &[Box<dyn Mapper>],
    kernels: &[Dfg],
    fabric: &Fabric,
    cfg: &MapConfig,
) -> Vec<PortfolioEntry> {
    let jobs: Vec<(usize, usize)> = (0..mappers.len())
        .flat_map(|m| (0..kernels.len()).map(move |k| (m, k)))
        .collect();
    jobs.par_iter()
        .map(|&(mi, ki)| {
            let mapper = &mappers[mi];
            let kernel = &kernels[ki];
            // Each job gets its own sink so counters are attributable
            // to a single (mapper, kernel) pair even under rayon.
            let mut job_cfg = cfg.clone();
            job_cfg.telemetry = Telemetry::enabled();
            job_cfg.ledger = Ledger::enabled();
            let start = Instant::now();
            let result = mapper.map(kernel, fabric, &job_cfg);
            let compile_ms = start.elapsed().as_secs_f64() * 1e3;
            let (metrics, utilization, error_detail) = match result {
                Ok(m) => match validate(&m, kernel, fabric) {
                    Ok(()) => (
                        Some(Metrics::of(&m, kernel, fabric)),
                        Some(UtilizationMap::of(&m, kernel, fabric)),
                        None,
                    ),
                    Err(e) => (
                        None,
                        None,
                        Some(MapError::infeasible(format!("INVALID OUTPUT: {e}"))),
                    ),
                },
                Err(e) => (None, None, Some(e)),
            };
            let diagnosis = error_detail.as_ref().and_then(|e| e.diagnosis().cloned());
            PortfolioEntry {
                mapper: mapper.name().to_string(),
                family_label: mapper.family().label().to_string(),
                exact: mapper.family().is_exact(),
                spatial: mapper.is_spatial(),
                kernel: kernel.name.clone(),
                metrics,
                error: error_detail.as_ref().map(|e| e.to_string()),
                error_detail,
                compile_ms,
                stats: job_cfg.telemetry.snapshot(),
                events: job_cfg.ledger.events(),
                events_dropped: job_cfg.ledger.events_dropped(),
                diagnosis,
                spans_dropped: job_cfg.telemetry.spans_dropped(),
                latency: LatencySummary::rows_from(&job_cfg.telemetry),
                utilization,
            }
        })
        .collect()
}

/// Aggregate rows per mapper: success rate, mean II among successes,
/// mean compile time, and mean search effort (from telemetry).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MapperSummary {
    pub mapper: String,
    pub family_label: String,
    pub exact: bool,
    pub spatial: bool,
    pub attempts: usize,
    pub successes: usize,
    pub mean_ii: Option<f64>,
    pub mean_compile_ms: f64,
    pub mean_hops: Option<f64>,
    /// Mean II probes per (mapper, kernel) run, over all attempts.
    #[serde(default)]
    pub mean_ii_attempts: Option<f64>,
    /// Mean backtracks per run, over all attempts.
    #[serde(default)]
    pub mean_backtracks: Option<f64>,
    /// Mean placements tried per run, over all attempts.
    #[serde(default)]
    pub mean_placements: Option<f64>,
}

/// Per-mapper accumulator used by the single-pass [`summarise`].
#[derive(Default)]
struct Acc {
    family_label: String,
    exact: bool,
    spatial: bool,
    attempts: usize,
    successes: usize,
    ii_sum: f64,
    hops_sum: f64,
    compile_ms_sum: f64,
    stats_runs: usize,
    ii_attempts_sum: f64,
    backtracks_sum: f64,
    placements_sum: f64,
}

/// Summarise portfolio entries per mapper (insertion order preserved).
/// Single pass over the entries: an index map keyed by mapper name
/// resolves each row to its accumulator in O(1).
pub fn summarise(entries: &[PortfolioEntry]) -> Vec<MapperSummary> {
    let mut index: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
    let mut order: Vec<&str> = Vec::new();
    let mut accs: Vec<Acc> = Vec::new();
    for e in entries {
        let slot = *index.entry(e.mapper.as_str()).or_insert_with(|| {
            order.push(e.mapper.as_str());
            accs.push(Acc {
                family_label: e.family_label.clone(),
                exact: e.exact,
                spatial: e.spatial,
                ..Acc::default()
            });
            accs.len() - 1
        });
        let acc = &mut accs[slot];
        acc.attempts += 1;
        acc.compile_ms_sum += e.compile_ms;
        if let Some(m) = &e.metrics {
            acc.successes += 1;
            acc.ii_sum += m.ii as f64;
            acc.hops_sum += m.route_hops as f64;
        }
        if let Some(s) = &e.stats {
            acc.stats_runs += 1;
            acc.ii_attempts_sum += s.ii_attempts as f64;
            acc.backtracks_sum += s.backtracks as f64;
            acc.placements_sum += s.placements_tried as f64;
        }
    }
    order
        .into_iter()
        .zip(accs)
        .map(|(name, acc)| {
            let per_success = |sum: f64| (acc.successes > 0).then(|| sum / acc.successes as f64);
            let per_stats_run =
                |sum: f64| (acc.stats_runs > 0).then(|| sum / acc.stats_runs as f64);
            MapperSummary {
                mapper: name.to_string(),
                family_label: acc.family_label.clone(),
                exact: acc.exact,
                spatial: acc.spatial,
                attempts: acc.attempts,
                successes: acc.successes,
                mean_ii: per_success(acc.ii_sum),
                mean_compile_ms: acc.compile_ms_sum / acc.attempts.max(1) as f64,
                mean_hops: per_success(acc.hops_sum),
                mean_ii_attempts: per_stats_run(acc.ii_attempts_sum),
                mean_backtracks: per_stats_run(acc.backtracks_sum),
                mean_placements: per_stats_run(acc.placements_sum),
            }
        })
        .collect()
}

/// Convenience: is this family expected to prove optimality (Table I's
/// exact column)?
pub fn family_of(name: &str, mappers: &[Box<dyn Mapper>]) -> Option<Family> {
    mappers
        .iter()
        .find(|m| m.name() == name)
        .map(|m| m.family())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mappers::{ModuloList, SpatialGreedy};
    use cgra_arch::Topology;
    use cgra_ir::kernels;

    #[test]
    fn portfolio_runs_and_summarises() {
        let mappers: Vec<Box<dyn Mapper>> = vec![
            Box::new(ModuloList::default()),
            Box::new(SpatialGreedy::default()),
        ];
        let kernels = vec![kernels::dot_product(), kernels::sad()];
        let fabric = Fabric::homogeneous(4, 4, Topology::Mesh);
        let entries = run_portfolio(&mappers, &kernels, &fabric, &MapConfig::fast());
        assert_eq!(entries.len(), 4);
        let modulo_ok = entries
            .iter()
            .filter(|e| e.mapper == "modulo-list")
            .all(|e| e.succeeded());
        assert!(modulo_ok);
        let summary = summarise(&entries);
        assert_eq!(summary.len(), 2);
        let ml = summary.iter().find(|s| s.mapper == "modulo-list").unwrap();
        assert_eq!(ml.attempts, 2);
        assert_eq!(ml.successes, 2);
        assert!(ml.mean_ii.unwrap() >= 1.0);
        // Every job runs under its own sink, so search-effort stats
        // are recorded and aggregated.
        assert!(entries.iter().all(|e| e.stats.is_some()));
        assert!(ml.mean_ii_attempts.unwrap() >= 1.0);
        assert!(ml.mean_placements.unwrap() >= 1.0);
        assert!(ml.mean_backtracks.is_some());
    }

    #[test]
    fn failures_are_recorded_not_panicked() {
        let mappers: Vec<Box<dyn Mapper>> = vec![Box::new(SpatialGreedy::default())];
        let kernels = vec![kernels::unrolled_mac(20)]; // too big for 2x2
        let fabric = Fabric::homogeneous(2, 2, Topology::Mesh);
        let entries = run_portfolio(&mappers, &kernels, &fabric, &MapConfig::fast());
        assert_eq!(entries.len(), 1);
        assert!(!entries[0].succeeded());
        assert!(entries[0].error.is_some());
    }
}
