//! The mapper portfolio: run many mappers over many kernels (in
//! parallel) and collect the rows of the Table I experiment.

use crate::mapper::{Family, MapConfig, Mapper};
use crate::metrics::Metrics;
use crate::validate::validate;
use cgra_arch::Fabric;
use cgra_ir::Dfg;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One (mapper, kernel) outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PortfolioEntry {
    pub mapper: String,
    pub family_label: String,
    pub exact: bool,
    pub spatial: bool,
    pub kernel: String,
    /// `Some(metrics)` on success (and validation), `None` on failure.
    pub metrics: Option<Metrics>,
    pub error: Option<String>,
    pub compile_ms: f64,
}

impl PortfolioEntry {
    pub fn succeeded(&self) -> bool {
        self.metrics.is_some()
    }
}

/// Run every mapper on every kernel. Mapper outputs are validated; a
/// mapper returning an invalid mapping is recorded as an error (this
/// is the framework's no-invalid-output guarantee surfacing in the
/// data rather than a panic).
pub fn run_portfolio(
    mappers: &[Box<dyn Mapper>],
    kernels: &[Dfg],
    fabric: &Fabric,
    cfg: &MapConfig,
) -> Vec<PortfolioEntry> {
    let jobs: Vec<(usize, usize)> = (0..mappers.len())
        .flat_map(|m| (0..kernels.len()).map(move |k| (m, k)))
        .collect();
    jobs.par_iter()
        .map(|&(mi, ki)| {
            let mapper = &mappers[mi];
            let kernel = &kernels[ki];
            let start = Instant::now();
            let result = mapper.map(kernel, fabric, cfg);
            let compile_ms = start.elapsed().as_secs_f64() * 1e3;
            let (metrics, error) = match result {
                Ok(m) => match validate(&m, kernel, fabric) {
                    Ok(()) => (Some(Metrics::of(&m, kernel, fabric)), None),
                    Err(e) => (None, Some(format!("INVALID OUTPUT: {e}"))),
                },
                Err(e) => (None, Some(e.to_string())),
            };
            PortfolioEntry {
                mapper: mapper.name().to_string(),
                family_label: mapper.family().label().to_string(),
                exact: mapper.family().is_exact(),
                spatial: mapper.is_spatial(),
                kernel: kernel.name.clone(),
                metrics,
                error,
                compile_ms,
            }
        })
        .collect()
}

/// Aggregate rows per mapper: success rate, mean II among successes,
/// mean compile time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MapperSummary {
    pub mapper: String,
    pub family_label: String,
    pub exact: bool,
    pub spatial: bool,
    pub attempts: usize,
    pub successes: usize,
    pub mean_ii: Option<f64>,
    pub mean_compile_ms: f64,
    pub mean_hops: Option<f64>,
}

/// Summarise portfolio entries per mapper (insertion order preserved).
pub fn summarise(entries: &[PortfolioEntry]) -> Vec<MapperSummary> {
    let mut order: Vec<String> = Vec::new();
    for e in entries {
        if !order.contains(&e.mapper) {
            order.push(e.mapper.clone());
        }
    }
    order
        .into_iter()
        .map(|name| {
            let group: Vec<&PortfolioEntry> =
                entries.iter().filter(|e| e.mapper == name).collect();
            let successes: Vec<&&PortfolioEntry> =
                group.iter().filter(|e| e.succeeded()).collect();
            let mean_ii = if successes.is_empty() {
                None
            } else {
                Some(
                    successes
                        .iter()
                        .map(|e| e.metrics.as_ref().unwrap().ii as f64)
                        .sum::<f64>()
                        / successes.len() as f64,
                )
            };
            let mean_hops = if successes.is_empty() {
                None
            } else {
                Some(
                    successes
                        .iter()
                        .map(|e| e.metrics.as_ref().unwrap().route_hops as f64)
                        .sum::<f64>()
                        / successes.len() as f64,
                )
            };
            MapperSummary {
                mean_hops,
                family_label: group[0].family_label.clone(),
                exact: group[0].exact,
                spatial: group[0].spatial,
                attempts: group.len(),
                successes: successes.len(),
                mean_ii,
                mean_compile_ms: group.iter().map(|e| e.compile_ms).sum::<f64>()
                    / group.len() as f64,
                mapper: name,
            }
        })
        .collect()
}

/// Convenience: is this family expected to prove optimality (Table I's
/// exact column)?
pub fn family_of(name: &str, mappers: &[Box<dyn Mapper>]) -> Option<Family> {
    mappers
        .iter()
        .find(|m| m.name() == name)
        .map(|m| m.family())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mappers::{ModuloList, SpatialGreedy};
    use cgra_arch::Topology;
    use cgra_ir::kernels;

    #[test]
    fn portfolio_runs_and_summarises() {
        let mappers: Vec<Box<dyn Mapper>> = vec![
            Box::new(ModuloList::default()),
            Box::new(SpatialGreedy::default()),
        ];
        let kernels = vec![kernels::dot_product(), kernels::sad()];
        let fabric = Fabric::homogeneous(4, 4, Topology::Mesh);
        let entries = run_portfolio(&mappers, &kernels, &fabric, &MapConfig::fast());
        assert_eq!(entries.len(), 4);
        let modulo_ok = entries
            .iter()
            .filter(|e| e.mapper == "modulo-list")
            .all(|e| e.succeeded());
        assert!(modulo_ok);
        let summary = summarise(&entries);
        assert_eq!(summary.len(), 2);
        let ml = summary.iter().find(|s| s.mapper == "modulo-list").unwrap();
        assert_eq!(ml.attempts, 2);
        assert_eq!(ml.successes, 2);
        assert!(ml.mean_ii.unwrap() >= 1.0);
    }

    #[test]
    fn failures_are_recorded_not_panicked() {
        let mappers: Vec<Box<dyn Mapper>> = vec![Box::new(SpatialGreedy::default())];
        let kernels = vec![kernels::unrolled_mac(20)]; // too big for 2x2
        let fabric = Fabric::homogeneous(2, 2, Topology::Mesh);
        let entries = run_portfolio(&mappers, &kernels, &fabric, &MapConfig::fast());
        assert_eq!(entries.len(), 1);
        assert!(!entries[0].succeeded());
        assert!(entries[0].error.is_some());
    }
}
