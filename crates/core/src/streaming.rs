//! Streaming-application mapping (ChordMap lineage — Li et al., IEEE
//! TCAD 2021; the dataflow model of computation the survey's §IV-B-a
//! names as the natural fit for CGRAs).
//!
//! A streaming application is a synchronous-dataflow (SDF) graph whose
//! actors are loop kernels and whose channels carry one token per
//! iteration. Mapping partitions the fabric into disjoint regions, maps
//! every actor into its region (with any [`Mapper`]), and the pipeline
//! throughput is set by the slowest actor:
//! `1 / max_k II_k` iterations per cycle, all actors running
//! concurrently on their partitions.

use crate::mapper::{MapConfig, MapError, Mapper};
use crate::mapping::Mapping;
use crate::metrics::Metrics;
use cgra_arch::{Fabric, PeId};
use cgra_ir::interp::{Interpreter, Tape};
use cgra_ir::{Dfg, OpKind, Value};
use std::collections::HashMap;

/// A channel: one token per iteration from an output stream of the
/// producer actor to an input stream of the consumer actor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Channel {
    pub from_actor: usize,
    pub from_stream: u32,
    pub to_actor: usize,
    pub to_stream: u32,
}

/// A synchronous-dataflow application: actors (loop kernels) plus
/// channels.
#[derive(Debug, Clone, Default)]
pub struct SdfGraph {
    pub actors: Vec<Dfg>,
    pub channels: Vec<Channel>,
}

impl SdfGraph {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add_actor(&mut self, dfg: Dfg) -> usize {
        self.actors.push(dfg);
        self.actors.len() - 1
    }

    pub fn connect(&mut self, from: (usize, u32), to: (usize, u32)) {
        self.channels.push(Channel {
            from_actor: from.0,
            from_stream: from.1,
            to_actor: to.0,
            to_stream: to.1,
        });
    }

    /// Actors in a topological order of the channel graph. `None` if
    /// the channel graph is cyclic (feedback needs explicit delays,
    /// which this model does not support).
    pub fn topo_actors(&self) -> Option<Vec<usize>> {
        let n = self.actors.len();
        let mut indeg = vec![0usize; n];
        for c in &self.channels {
            indeg[c.to_actor] += 1;
        }
        let mut stack: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(a) = stack.pop() {
            order.push(a);
            for c in &self.channels {
                if c.from_actor == a {
                    indeg[c.to_actor] -= 1;
                    if indeg[c.to_actor] == 0 {
                        stack.push(c.to_actor);
                    }
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// External input streams of an actor (not fed by any channel).
    pub fn external_inputs(&self, actor: usize) -> Vec<u32> {
        let fed: Vec<u32> = self
            .channels
            .iter()
            .filter(|c| c.to_actor == actor)
            .map(|c| c.to_stream)
            .collect();
        self.actors[actor]
            .nodes()
            .filter_map(|(_, n)| match n.op {
                OpKind::Input(s) if !fed.contains(&s) => Some(s),
                _ => None,
            })
            .collect()
    }
}

/// One actor's share of the fabric: a contiguous column strip.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    pub col_lo: u16,
    pub col_hi: u16,
}

impl Region {
    pub fn pes(&self, fabric: &Fabric) -> Vec<PeId> {
        (0..fabric.rows)
            .flat_map(|r| (self.col_lo..=self.col_hi).map(move |c| (r, c)))
            .map(|(r, c)| fabric.pe_at(r, c))
            .collect()
    }
}

/// A mapped streaming application.
#[derive(Debug, Clone)]
pub struct StreamMapping {
    /// Per-actor region (disjoint column strips).
    pub regions: Vec<Region>,
    /// Per-actor mapping *within its region's sub-fabric coordinates*.
    pub mappings: Vec<Mapping>,
    /// Pipeline initiation interval: `max_k II_k`.
    pub pipeline_ii: u32,
}

impl StreamMapping {
    /// Steady-state pipeline throughput (iterations per cycle).
    pub fn throughput(&self) -> f64 {
        1.0 / self.pipeline_ii as f64
    }
}

/// Cut the fabric's columns into strips proportional to actor sizes.
fn partition(fabric: &Fabric, sizes: &[usize]) -> Option<Vec<Region>> {
    let actors = sizes.len() as u16;
    if actors == 0 || actors > fabric.cols {
        return None;
    }
    let total: usize = sizes.iter().sum::<usize>().max(1);
    let mut regions = Vec::with_capacity(sizes.len());
    let mut col = 0u16;
    for (i, &s) in sizes.iter().enumerate() {
        let remaining_actors = (sizes.len() - i) as u16;
        let remaining_cols = fabric.cols - col;
        if remaining_cols < remaining_actors {
            return None;
        }
        let ideal = ((s as f64 / total as f64) * fabric.cols as f64).round() as u16;
        let width = ideal.max(1).min(remaining_cols - (remaining_actors - 1));
        regions.push(Region {
            col_lo: col,
            col_hi: col + width - 1,
        });
        col += width;
    }
    // Give leftover columns to the last region.
    if col < fabric.cols {
        regions.last_mut().unwrap().col_hi = fabric.cols - 1;
    }
    Some(regions)
}

/// Build the sub-fabric of a column strip (capabilities sliced from the
/// parent; stream I/O allowed anywhere inside the strip since channels
/// are wired at region borders).
fn sub_fabric(fabric: &Fabric, region: &Region) -> Fabric {
    let cols = region.col_hi - region.col_lo + 1;
    let mut f = fabric.clone();
    f.name = format!("{}_cols{}to{}", fabric.name, region.col_lo, region.col_hi);
    f.cols = cols;
    f.cells = (0..fabric.rows)
        .flat_map(|r| (region.col_lo..=region.col_hi).map(move |c| (r, c)))
        .map(|(r, c)| fabric.cells[fabric.pe_at(r, c).index()])
        .collect();
    f.io_policy = cgra_arch::IoPolicy::Anywhere;
    f
}

/// Map a streaming application: partition, then map every actor inside
/// its strip with `mapper`.
pub fn map_streaming(
    sdf: &SdfGraph,
    fabric: &Fabric,
    mapper: &dyn Mapper,
    cfg: &MapConfig,
) -> Result<StreamMapping, MapError> {
    if sdf.actors.is_empty() {
        return Err(MapError::Unsupported("empty SDF graph".into()));
    }
    if sdf.topo_actors().is_none() {
        return Err(MapError::Unsupported(
            "cyclic SDF graphs need explicit channel delays".into(),
        ));
    }
    let sizes: Vec<usize> = sdf.actors.iter().map(|a| a.node_count()).collect();
    let regions = partition(fabric, &sizes).ok_or_else(|| {
        MapError::infeasible(format!(
            "{} actors need at least as many columns; fabric has {}",
            sdf.actors.len(),
            fabric.cols
        ))
    })?;
    let mut mappings = Vec::with_capacity(sdf.actors.len());
    let mut pipeline_ii = 1;
    for (actor, region) in sdf.actors.iter().zip(&regions) {
        let sub = sub_fabric(fabric, region);
        let m = mapper.map(actor, &sub, cfg).map_err(|e| {
            MapError::infeasible(format!(
                "actor `{}` failed in its {}-column region: {e}",
                actor.name, sub.cols
            ))
        })?;
        crate::validate::validate(&m, actor, &sub)
            .map_err(|e| MapError::infeasible(format!("invalid sub-mapping: {e}")))?;
        pipeline_ii = pipeline_ii.max(m.ii);
        mappings.push(m);
    }
    Ok(StreamMapping {
        regions,
        mappings,
        pipeline_ii,
    })
}

/// Execute the streaming pipeline functionally for `iters` tokens:
/// actors run in topological order, channel outputs feeding consumer
/// tapes (steady-state semantics; the spatial pipeline skew does not
/// change the token streams).
pub fn run_streaming(
    sdf: &SdfGraph,
    iters: usize,
    external: &HashMap<(usize, u32), Vec<Value>>,
) -> Result<Vec<Vec<Vec<Value>>>, String> {
    let order = sdf.topo_actors().ok_or("cyclic SDF graph")?;
    let mut outputs: Vec<Vec<Vec<Value>>> = vec![Vec::new(); sdf.actors.len()];
    for actor in order {
        let dfg = &sdf.actors[actor];
        let in_streams = dfg
            .nodes()
            .filter_map(|(_, n)| match n.op {
                OpKind::Input(s) => Some(s as usize + 1),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        let mut inputs = vec![vec![0; iters]; in_streams];
        for c in sdf.channels.iter().filter(|c| c.to_actor == actor) {
            inputs[c.to_stream as usize] = outputs[c.from_actor][c.from_stream as usize].clone();
        }
        for (&(a, s), vals) in external {
            if a == actor {
                inputs[s as usize] = vals.clone();
            }
        }
        let tape = Tape {
            inputs,
            memory: vec![],
        };
        let r = Interpreter::run(dfg, iters, &tape).map_err(|e| e.to_string())?;
        outputs[actor] = r.outputs;
    }
    Ok(outputs)
}

/// Per-actor metrics of a stream mapping (II, utilisation of its
/// strip).
pub fn stream_metrics(
    sdf: &SdfGraph,
    fabric: &Fabric,
    sm: &StreamMapping,
) -> Vec<(String, Metrics)> {
    sdf.actors
        .iter()
        .zip(&sm.regions)
        .zip(&sm.mappings)
        .map(|((actor, region), mapping)| {
            let sub = sub_fabric(fabric, region);
            (actor.name.clone(), Metrics::of(mapping, actor, &sub))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mappers::ModuloList;
    use cgra_arch::Topology;
    use cgra_ir::kernels;

    /// in → fir(3) → threshold → sad-vs-reference pipeline.
    fn pipeline() -> SdfGraph {
        let mut sdf = SdfGraph::new();
        let fir = sdf.add_actor(kernels::fir(3));
        let thr = sdf.add_actor(kernels::threshold());
        sdf.connect((fir, 0), (thr, 0));
        sdf
    }

    #[test]
    fn topo_and_external_inputs() {
        let sdf = pipeline();
        assert_eq!(sdf.topo_actors(), Some(vec![0, 1]));
        assert_eq!(sdf.external_inputs(0), vec![0]);
        assert!(sdf.external_inputs(1).is_empty());
    }

    #[test]
    fn cyclic_graph_rejected() {
        let mut sdf = pipeline();
        sdf.connect((1, 0), (0, 0));
        assert!(sdf.topo_actors().is_none());
        let f = Fabric::homogeneous(4, 8, Topology::Mesh);
        let err = map_streaming(&sdf, &f, &ModuloList::default(), &MapConfig::fast());
        assert!(matches!(err, Err(MapError::Unsupported(_))));
    }

    #[test]
    fn partitions_are_disjoint_and_cover() {
        let f = Fabric::homogeneous(4, 8, Topology::Mesh);
        let regions = partition(&f, &[10, 5, 5]).unwrap();
        assert_eq!(regions.len(), 3);
        assert_eq!(regions[0].col_lo, 0);
        assert_eq!(regions.last().unwrap().col_hi, 7);
        for w in regions.windows(2) {
            assert_eq!(w[0].col_hi + 1, w[1].col_lo);
        }
        // Bigger actor gets at least as many columns.
        let w0 = regions[0].col_hi - regions[0].col_lo;
        let w1 = regions[1].col_hi - regions[1].col_lo;
        assert!(w0 >= w1);
    }

    #[test]
    fn maps_two_stage_pipeline() {
        let sdf = pipeline();
        let f = Fabric::homogeneous(4, 8, Topology::Mesh);
        let sm = map_streaming(&sdf, &f, &ModuloList::default(), &MapConfig::fast())
            .expect("pipeline maps");
        assert_eq!(sm.mappings.len(), 2);
        assert!(sm.pipeline_ii >= 1);
        assert!(sm.throughput() <= 1.0);
        let metrics = stream_metrics(&sdf, &f, &sm);
        assert_eq!(metrics.len(), 2);
    }

    #[test]
    fn streaming_execution_matches_composition() {
        let sdf = pipeline();
        let xs: Vec<Value> = (0..8).map(|i| (i * 37) % 150).collect();
        let mut external = HashMap::new();
        external.insert((0usize, 0u32), xs.clone());
        let outs = run_streaming(&sdf, 8, &external).unwrap();
        // Reference: run fir then threshold manually.
        let fir = kernels::fir(3);
        let tape = Tape {
            inputs: vec![xs],
            memory: vec![],
        };
        let fir_out = Interpreter::run(&fir, 8, &tape).unwrap();
        let thr = kernels::threshold();
        let tape2 = Tape {
            inputs: vec![fir_out.outputs[0].clone()],
            memory: vec![],
        };
        let thr_out = Interpreter::run(&thr, 8, &tape2).unwrap();
        assert_eq!(outs[1], thr_out.outputs);
    }

    #[test]
    fn too_many_actors_for_fabric() {
        let mut sdf = SdfGraph::new();
        for _ in 0..5 {
            sdf.add_actor(kernels::accumulate());
        }
        let f = Fabric::homogeneous(4, 4, Topology::Mesh);
        let err = map_streaming(&sdf, &f, &ModuloList::default(), &MapConfig::fast());
        assert!(matches!(err, Err(MapError::Infeasible(_))));
    }
}
