//! Search telemetry: lock-free per-mapper counters and phase spans.
//!
//! The survey's Table I separates mapping techniques by *how they
//! search* — heuristics backtrack, meta-heuristics propose moves, exact
//! methods branch and propagate — yet end-result metrics (II, hops,
//! compile time) cannot distinguish a SAT timeout from an SA one. This
//! module gives every mapper a common vocabulary of search-effort
//! counters plus wall-clock phase spans, collected through an optional
//! shared sink so the `Mapper` trait stays untouched.
//!
//! Design constraints, in order:
//!
//! 1. **Disabled must be free.** [`Telemetry`] wraps
//!    `Option<Arc<SearchStats>>`; every operation on a disabled handle
//!    is a null check. Counters use relaxed atomics so the enabled
//!    path stays lock-free on the router/scheduler hot loops; only
//!    span recording (rare — one per phase or per II attempt) takes a
//!    mutex.
//! 2. **No signature churn.** The sink rides in
//!    [`crate::MapConfig::telemetry`]; mappers read it from the config
//!    they already receive.
//! 3. **Deterministic.** Counter values are sums of per-thread
//!    deterministic contributions; relaxed atomic addition commutes, so
//!    same-seed runs produce identical snapshots (tested).

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

// The run-ledger event journal is the telemetry subsystem's second
// sink (counters say "how much", the ledger says "when"); re-exported
// here so both are reachable from one module.
pub use crate::ledger::{EventKind, Ledger, LedgerEvent, RunLedger};

/// Search-effort counters, one per Table I search behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[repr(usize)]
pub enum Counter {
    /// Candidate IIs probed (the "increase II until it fits" loop).
    IiAttempts,
    /// `(op, pe, cycle)` placement attempts by constructive mappers.
    PlacementsTried,
    /// Placements undone or abandoned (heuristic/B&B backtracking).
    Backtracks,
    /// Space-time router invocations.
    RoutingCalls,
    /// Router invocations that found no route.
    RoutingFailures,
    /// Meta-heuristic moves proposed (SA moves, GA/QEA offspring).
    MovesProposed,
    /// Moves accepted / improving offspring.
    MovesAccepted,
    /// Search-tree nodes expanded (B&B).
    NodesExpanded,
    /// Search-tree nodes pruned by bound, beam, or budget.
    NodesPruned,
    /// Solver branching decisions (CDCL decides, CP/ILP branch nodes).
    SolverDecisions,
    /// Solver propagations (unit propagations, AC-3 revisions, LP solves).
    SolverPropagations,
    /// Solver conflicts (CDCL conflicts, CP dead-ends, theory conflicts).
    SolverConflicts,
    /// Solver restarts (Luby restarts).
    SolverRestarts,
    /// Incremental solves answered under assumptions (SAT II sweeps
    /// reusing one solver instance across candidate IIs).
    SolverAssumptionSolves,
    /// Learnt clauses retained across clause-database reductions.
    SolverLearntKept,
    /// Learnt clauses garbage-collected by database reductions.
    SolverLearntGcd,
    /// Simplex pivots avoided by warm-basis reuse in LP-backed solvers.
    SolverWarmPivotsSaved,
    /// Runs stopped by a budget cancellation (portfolio race losers,
    /// parallel-II jobs dominated by a better II).
    Cancellations,
    /// Improving solutions found (anytime incumbents: routable
    /// bindings, solver models, better objective values). Mirrors the
    /// ledger's `Incumbent` events so profile output shows how often
    /// each mapper improved.
    Incumbents,
}

impl Counter {
    /// Every counter, in snapshot order.
    pub const ALL: [Counter; 19] = [
        Counter::IiAttempts,
        Counter::PlacementsTried,
        Counter::Backtracks,
        Counter::RoutingCalls,
        Counter::RoutingFailures,
        Counter::MovesProposed,
        Counter::MovesAccepted,
        Counter::NodesExpanded,
        Counter::NodesPruned,
        Counter::SolverDecisions,
        Counter::SolverPropagations,
        Counter::SolverConflicts,
        Counter::SolverRestarts,
        Counter::SolverAssumptionSolves,
        Counter::SolverLearntKept,
        Counter::SolverLearntGcd,
        Counter::SolverWarmPivotsSaved,
        Counter::Cancellations,
        Counter::Incumbents,
    ];

    /// Snake-case name used in traces and reports.
    pub fn label(self) -> &'static str {
        match self {
            Counter::IiAttempts => "ii_attempts",
            Counter::PlacementsTried => "placements_tried",
            Counter::Backtracks => "backtracks",
            Counter::RoutingCalls => "routing_calls",
            Counter::RoutingFailures => "routing_failures",
            Counter::MovesProposed => "moves_proposed",
            Counter::MovesAccepted => "moves_accepted",
            Counter::NodesExpanded => "nodes_expanded",
            Counter::NodesPruned => "nodes_pruned",
            Counter::SolverDecisions => "solver_decisions",
            Counter::SolverPropagations => "solver_propagations",
            Counter::SolverConflicts => "solver_conflicts",
            Counter::SolverRestarts => "solver_restarts",
            Counter::SolverAssumptionSolves => "solver_assumption_solves",
            Counter::SolverLearntKept => "solver_learnt_kept",
            Counter::SolverLearntGcd => "solver_learnt_gcd",
            Counter::SolverWarmPivotsSaved => "solver_warm_pivots_saved",
            Counter::Cancellations => "cancellations",
            Counter::Incumbents => "incumbents",
        }
    }
}

const NUM_COUNTERS: usize = Counter::ALL.len();

/// Pipeline phases timed by spans (the CLI's Fig. 3 flow plus the
/// mapper-internal map-per-II and routing phases).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[repr(usize)]
pub enum Phase {
    Parse,
    Optimize,
    Map,
    Route,
    Validate,
    Simulate,
}

impl Phase {
    pub const ALL: [Phase; 6] = [
        Phase::Parse,
        Phase::Optimize,
        Phase::Map,
        Phase::Route,
        Phase::Validate,
        Phase::Simulate,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::Optimize => "optimize",
            Phase::Map => "map",
            Phase::Route => "route",
            Phase::Validate => "validate",
            Phase::Simulate => "simulate",
        }
    }
}

/// One completed span: a phase, an optional II qualifier (map-per-II
/// attempts), and wall-clock bounds relative to the sink's creation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpanRecord {
    pub phase: Phase,
    /// `Some(ii)` for per-II mapping attempts, `None` for whole phases.
    pub ii: Option<u32>,
    /// Microseconds since the sink was created.
    pub start_us: u64,
    pub dur_us: u64,
}

/// Span log capacity: inner search loops (one span per II attempt or
/// routing pass) can emit thousands of spans on hard instances; beyond
/// this many the log stops growing and only counts the overflow.
const MAX_SPANS: usize = 16_384;

const NUM_PHASES: usize = Phase::ALL.len();

/// Log2 bucket count: bucket 0 holds the value 0, bucket `b` (1..=62)
/// holds `[2^(b-1), 2^b)`, bucket 63 holds everything from `2^62` up.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A deterministic log2-bucketed latency histogram.
///
/// Bucket boundaries are fixed powers of two, so two histograms built
/// from the same multiset of samples are identical regardless of
/// insertion order, and [`merge`](Histogram::merge) (bucket-wise
/// addition) is associative and commutative — a fleet of per-run
/// histograms folds into one in any order. Percentile queries return
/// the *inclusive upper bound* of the bucket holding the requested
/// rank, so an estimate never undershoots the exact order statistic
/// and never leaves its bucket (both properties are property-tested).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
        }
    }

    /// Bucket index of `v`: its significant-bit count, clamped to the
    /// last bucket.
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        ((u64::BITS - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Inclusive upper bound of bucket `b` — what percentile queries
    /// report.
    pub fn bucket_bound(b: usize) -> u64 {
        match b {
            0 => 0,
            _ if b >= HISTOGRAM_BUCKETS - 1 => u64::MAX,
            _ => (1u64 << b) - 1,
        }
    }

    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Raw bucket counts (index = [`Histogram::bucket_of`]).
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Fold `other` in by bucket-wise addition.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
    }

    /// Upper bound of the bucket holding the rank-`ceil(p/100·n)`
    /// sample (1-based, `p` clamped to `[0, 100]`); 0 when empty. The
    /// exact order statistic lies in the same bucket, at or below the
    /// returned value.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0 * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                return Self::bucket_bound(b);
            }
        }
        Self::bucket_bound(HISTOGRAM_BUCKETS - 1)
    }

    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    pub fn p90(&self) -> u64 {
        self.percentile(90.0)
    }

    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }
}

/// Lock-free histogram shared by the telemetry sink: relaxed per-bucket
/// atomics, so concurrent recording commutes and same-seed runs
/// snapshot identical histograms.
struct AtomicHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl AtomicHistogram {
    fn new() -> Self {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    #[inline]
    fn record(&self, v: u64) {
        self.buckets[Histogram::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> Histogram {
        let mut h = Histogram::new();
        for (dst, src) in h.buckets.iter_mut().zip(&self.buckets) {
            *dst = src.load(Ordering::Relaxed);
            h.count += *dst;
        }
        h
    }
}

/// The shared sink: lock-free counters plus a span log.
pub struct SearchStats {
    counters: [AtomicU64; NUM_COUNTERS],
    spans: Mutex<Vec<SpanRecord>>,
    /// Spans discarded once the log hit [`MAX_SPANS`].
    spans_dropped: AtomicU64,
    /// Per-phase span-duration histograms (µs). Fed by every completed
    /// span, including those the capped span log discards, so
    /// percentiles stay exact under truncation.
    phase_lat: [AtomicHistogram; NUM_PHASES],
    /// Per-route-call latency histogram (µs).
    route_lat: AtomicHistogram,
    epoch: Instant,
}

impl Default for SearchStats {
    fn default() -> Self {
        Self::new()
    }
}

impl SearchStats {
    pub fn new() -> Self {
        SearchStats {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            spans: Mutex::new(Vec::new()),
            spans_dropped: AtomicU64::new(0),
            phase_lat: std::array::from_fn(|_| AtomicHistogram::new()),
            route_lat: AtomicHistogram::new(),
            epoch: Instant::now(),
        }
    }

    #[inline]
    pub fn add(&self, c: Counter, n: u64) {
        self.counters[c as usize].fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self, c: Counter) -> u64 {
        self.counters[c as usize].load(Ordering::Relaxed)
    }

    /// Record a completed span (called by [`SpanGuard::drop`]).
    fn record_span(&self, phase: Phase, ii: Option<u32>, started: Instant) {
        let start_us = started.duration_since(self.epoch).as_micros() as u64;
        let dur_us = started.elapsed().as_micros() as u64;
        self.phase_lat[phase as usize].record(dur_us);
        let mut spans = self.spans.lock().unwrap();
        if spans.len() >= MAX_SPANS {
            self.spans_dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        spans.push(SpanRecord {
            phase,
            ii,
            start_us,
            dur_us,
        });
    }

    /// All spans recorded so far, in completion order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.spans.lock().unwrap().clone()
    }

    /// Number of recorded span events.
    pub fn span_count(&self) -> usize {
        self.spans.lock().unwrap().len()
    }

    /// Spans discarded because the log was full.
    pub fn spans_dropped(&self) -> u64 {
        self.spans_dropped.load(Ordering::Relaxed)
    }

    /// Record one route call's latency.
    #[inline]
    pub fn record_route_us(&self, us: u64) {
        self.route_lat.record(us);
    }

    /// Span-duration histogram of `phase` (µs).
    pub fn phase_histogram(&self, phase: Phase) -> Histogram {
        self.phase_lat[phase as usize].snapshot()
    }

    /// Per-route-call latency histogram (µs).
    pub fn route_histogram(&self) -> Histogram {
        self.route_lat.snapshot()
    }

    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            ii_attempts: self.get(Counter::IiAttempts),
            placements_tried: self.get(Counter::PlacementsTried),
            backtracks: self.get(Counter::Backtracks),
            routing_calls: self.get(Counter::RoutingCalls),
            routing_failures: self.get(Counter::RoutingFailures),
            moves_proposed: self.get(Counter::MovesProposed),
            moves_accepted: self.get(Counter::MovesAccepted),
            nodes_expanded: self.get(Counter::NodesExpanded),
            nodes_pruned: self.get(Counter::NodesPruned),
            solver_decisions: self.get(Counter::SolverDecisions),
            solver_propagations: self.get(Counter::SolverPropagations),
            solver_conflicts: self.get(Counter::SolverConflicts),
            solver_restarts: self.get(Counter::SolverRestarts),
            solver_assumption_solves: self.get(Counter::SolverAssumptionSolves),
            solver_learnt_kept: self.get(Counter::SolverLearntKept),
            solver_learnt_gcd: self.get(Counter::SolverLearntGcd),
            solver_warm_pivots_saved: self.get(Counter::SolverWarmPivotsSaved),
            cancellations: self.get(Counter::Cancellations),
            incumbents: self.get(Counter::Incumbents),
        }
    }
}

impl std::fmt::Debug for SearchStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchStats")
            .field("counters", &self.snapshot())
            .field("spans", &self.span_count())
            .finish()
    }
}

/// A plain-data copy of every counter, for reports and serialisation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(default)]
pub struct StatsSnapshot {
    pub ii_attempts: u64,
    pub placements_tried: u64,
    pub backtracks: u64,
    pub routing_calls: u64,
    pub routing_failures: u64,
    pub moves_proposed: u64,
    pub moves_accepted: u64,
    pub nodes_expanded: u64,
    pub nodes_pruned: u64,
    pub solver_decisions: u64,
    pub solver_propagations: u64,
    pub solver_conflicts: u64,
    pub solver_restarts: u64,
    pub solver_assumption_solves: u64,
    pub solver_learnt_kept: u64,
    pub solver_learnt_gcd: u64,
    pub solver_warm_pivots_saved: u64,
    pub cancellations: u64,
    #[serde(default)]
    pub incumbents: u64,
}

impl StatsSnapshot {
    pub fn get(&self, c: Counter) -> u64 {
        match c {
            Counter::IiAttempts => self.ii_attempts,
            Counter::PlacementsTried => self.placements_tried,
            Counter::Backtracks => self.backtracks,
            Counter::RoutingCalls => self.routing_calls,
            Counter::RoutingFailures => self.routing_failures,
            Counter::MovesProposed => self.moves_proposed,
            Counter::MovesAccepted => self.moves_accepted,
            Counter::NodesExpanded => self.nodes_expanded,
            Counter::NodesPruned => self.nodes_pruned,
            Counter::SolverDecisions => self.solver_decisions,
            Counter::SolverPropagations => self.solver_propagations,
            Counter::SolverConflicts => self.solver_conflicts,
            Counter::SolverRestarts => self.solver_restarts,
            Counter::SolverAssumptionSolves => self.solver_assumption_solves,
            Counter::SolverLearntKept => self.solver_learnt_kept,
            Counter::SolverLearntGcd => self.solver_learnt_gcd,
            Counter::SolverWarmPivotsSaved => self.solver_warm_pivots_saved,
            Counter::Cancellations => self.cancellations,
            Counter::Incumbents => self.incumbents,
        }
    }

    pub fn is_empty(&self) -> bool {
        Counter::ALL.iter().all(|&c| self.get(c) == 0)
    }
}

/// The handle mappers hold: either connected to a shared
/// [`SearchStats`] sink or disabled (the default). Cloning is a
/// refcount bump; disabled operations are a null check.
#[derive(Clone, Default)]
pub struct Telemetry(Option<Arc<SearchStats>>);

impl Telemetry {
    /// A disabled handle (every operation is a no-op).
    pub fn off() -> Self {
        Telemetry(None)
    }

    /// A fresh enabled sink.
    pub fn enabled() -> Self {
        Telemetry(Some(Arc::new(SearchStats::new())))
    }

    /// Attach to an existing sink.
    pub fn with_sink(sink: Arc<SearchStats>) -> Self {
        Telemetry(Some(sink))
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    pub fn sink(&self) -> Option<&Arc<SearchStats>> {
        self.0.as_ref()
    }

    #[inline]
    pub fn bump(&self, c: Counter) {
        if let Some(s) = &self.0 {
            s.add(c, 1);
        }
    }

    #[inline]
    pub fn add(&self, c: Counter, n: u64) {
        if let Some(s) = &self.0 {
            if n > 0 {
                s.add(c, n);
            }
        }
    }

    /// Start timing `phase`; the span is recorded when the guard drops.
    #[inline]
    pub fn span(&self, phase: Phase) -> SpanGuard<'_> {
        self.span_inner(phase, None)
    }

    /// Start timing one II attempt of the mapping phase.
    #[inline]
    pub fn span_ii(&self, phase: Phase, ii: u32) -> SpanGuard<'_> {
        self.span_inner(phase, Some(ii))
    }

    #[inline]
    fn span_inner(&self, phase: Phase, ii: Option<u32>) -> SpanGuard<'_> {
        SpanGuard {
            live: self
                .0
                .as_deref()
                .map(|sink| (sink, phase, ii, Instant::now())),
        }
    }

    /// Counter snapshot, or `None` when disabled.
    pub fn snapshot(&self) -> Option<StatsSnapshot> {
        self.0.as_ref().map(|s| s.snapshot())
    }

    /// Recorded spans (empty when disabled).
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.0.as_ref().map(|s| s.spans()).unwrap_or_default()
    }

    /// Spans discarded once the log hit its capacity (zero when
    /// disabled). Trace consumers use this to detect truncation.
    pub fn spans_dropped(&self) -> u64 {
        self.0.as_ref().map(|s| s.spans_dropped()).unwrap_or(0)
    }

    /// Record one route call's latency (no-op when disabled).
    #[inline]
    pub fn record_route_us(&self, us: u64) {
        if let Some(s) = &self.0 {
            s.record_route_us(us);
        }
    }

    /// Span-duration histogram of `phase`, or `None` when disabled.
    pub fn phase_histogram(&self, phase: Phase) -> Option<Histogram> {
        self.0.as_ref().map(|s| s.phase_histogram(phase))
    }

    /// Per-route-call latency histogram, or `None` when disabled.
    pub fn route_histogram(&self) -> Option<Histogram> {
        self.0.as_ref().map(|s| s.route_histogram())
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            None => write!(f, "Telemetry(off)"),
            Some(s) => write!(f, "Telemetry(on, {} spans)", s.span_count()),
        }
    }
}

/// RAII span timer returned by [`Telemetry::span`]. Disabled guards
/// hold nothing and drop for free.
pub struct SpanGuard<'a> {
    live: Option<(&'a SearchStats, Phase, Option<u32>, Instant)>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some((sink, phase, ii, started)) = self.live.take() {
            sink.record_span(phase, ii, started);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let t = Telemetry::enabled();
        t.bump(Counter::Backtracks);
        t.add(Counter::Backtracks, 4);
        t.add(Counter::MovesProposed, 10);
        let snap = t.snapshot().unwrap();
        assert_eq!(snap.backtracks, 5);
        assert_eq!(snap.moves_proposed, 10);
        assert_eq!(snap.get(Counter::MovesProposed), 10);
        assert!(!snap.is_empty());
    }

    #[test]
    fn spans_record_phase_and_ii() {
        let t = Telemetry::enabled();
        {
            let _g = t.span(Phase::Parse);
        }
        {
            let _g = t.span_ii(Phase::Map, 3);
        }
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].phase, Phase::Parse);
        assert_eq!(spans[0].ii, None);
        assert_eq!(spans[1].phase, Phase::Map);
        assert_eq!(spans[1].ii, Some(3));
        assert!(spans[1].start_us >= spans[0].start_us);
    }

    #[test]
    fn disabled_is_inert() {
        let t = Telemetry::off();
        assert!(!t.is_enabled());
        t.bump(Counter::IiAttempts);
        t.add(Counter::RoutingCalls, 100);
        {
            let _g = t.span(Phase::Route);
        }
        assert!(t.snapshot().is_none());
        assert!(t.spans().is_empty());
        assert!(t.sink().is_none());
    }

    #[test]
    fn shared_sink_sums_across_clones() {
        let t = Telemetry::enabled();
        let (a, b) = (t.clone(), t.clone());
        std::thread::scope(|s| {
            s.spawn(|| {
                for _ in 0..1000 {
                    a.bump(Counter::RoutingCalls);
                }
            });
            s.spawn(|| {
                for _ in 0..1000 {
                    b.bump(Counter::RoutingCalls);
                }
            });
        });
        assert_eq!(t.snapshot().unwrap().routing_calls, 2000);
    }

    #[test]
    fn labels_are_snake_case_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for c in Counter::ALL {
            let l = c.label();
            assert!(l.chars().all(|ch| ch.is_ascii_lowercase() || ch == '_'));
            assert!(seen.insert(l));
        }
        for p in Phase::ALL {
            assert!(!p.label().is_empty());
        }
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let mut h = Histogram::new();
        assert_eq!(h.percentile(50.0), 0);
        for v in [0u64, 1, 1, 3, 8, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        // Estimates are bucket upper bounds and never undershoot the
        // exact order statistic.
        assert_eq!(h.p50(), 3); // exact rank-4 sample is 3, bucket [2,3]
        assert!(h.p90() >= 100);
        assert!(h.p99() >= 1000);
        assert_eq!(h.percentile(0.0), 0); // rank clamps to 1 → value 0
                                          // Bucket bound round-trips through bucket_of.
        for b in 0..HISTOGRAM_BUCKETS {
            assert_eq!(Histogram::bucket_of(Histogram::bucket_bound(b)), b);
        }
        assert_eq!(Histogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_merge_sums_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [1u64, 5, 9] {
            a.record(v);
        }
        for v in [2u64, 5, 1 << 40] {
            b.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), 6);
        let mut all = Histogram::new();
        for v in [1u64, 5, 9, 2, 5, 1 << 40] {
            all.record(v);
        }
        assert_eq!(ab, all);
    }

    #[test]
    fn phase_and_route_histograms_record() {
        let t = Telemetry::enabled();
        {
            let _g = t.span(Phase::Map);
        }
        {
            let _g = t.span_ii(Phase::Map, 2);
        }
        t.record_route_us(7);
        t.record_route_us(900);
        assert_eq!(t.phase_histogram(Phase::Map).unwrap().count(), 2);
        assert_eq!(t.phase_histogram(Phase::Parse).unwrap().count(), 0);
        let r = t.route_histogram().unwrap();
        assert_eq!(r.count(), 2);
        assert!(r.p99() >= 900);
        // Disabled handles report nothing.
        let off = Telemetry::off();
        off.record_route_us(1);
        assert!(off.route_histogram().is_none());
        assert!(off.phase_histogram(Phase::Map).is_none());
    }

    #[test]
    fn snapshot_serialises_every_counter_by_label() {
        let t = Telemetry::enabled();
        t.add(Counter::SolverDecisions, 7);
        let snap = t.snapshot().unwrap();
        let json = serde_json::to_string(&snap).unwrap();
        let v = serde_json::from_str(&json).unwrap();
        for c in Counter::ALL {
            assert_eq!(
                v[c.label()].as_u64(),
                Some(snap.get(c)),
                "field `{}` missing or wrong in {json}",
                c.label()
            );
        }
    }
}
