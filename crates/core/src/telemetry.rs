//! Search telemetry: lock-free per-mapper counters and phase spans.
//!
//! The survey's Table I separates mapping techniques by *how they
//! search* — heuristics backtrack, meta-heuristics propose moves, exact
//! methods branch and propagate — yet end-result metrics (II, hops,
//! compile time) cannot distinguish a SAT timeout from an SA one. This
//! module gives every mapper a common vocabulary of search-effort
//! counters plus wall-clock phase spans, collected through an optional
//! shared sink so the `Mapper` trait stays untouched.
//!
//! Design constraints, in order:
//!
//! 1. **Disabled must be free.** [`Telemetry`] wraps
//!    `Option<Arc<SearchStats>>`; every operation on a disabled handle
//!    is a null check. Counters use relaxed atomics so the enabled
//!    path stays lock-free on the router/scheduler hot loops; only
//!    span recording (rare — one per phase or per II attempt) takes a
//!    mutex.
//! 2. **No signature churn.** The sink rides in
//!    [`crate::MapConfig::telemetry`]; mappers read it from the config
//!    they already receive.
//! 3. **Deterministic.** Counter values are sums of per-thread
//!    deterministic contributions; relaxed atomic addition commutes, so
//!    same-seed runs produce identical snapshots (tested).

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

// The run-ledger event journal is the telemetry subsystem's second
// sink (counters say "how much", the ledger says "when"); re-exported
// here so both are reachable from one module.
pub use crate::ledger::{EventKind, Ledger, LedgerEvent, RunLedger};

/// Search-effort counters, one per Table I search behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[repr(usize)]
pub enum Counter {
    /// Candidate IIs probed (the "increase II until it fits" loop).
    IiAttempts,
    /// `(op, pe, cycle)` placement attempts by constructive mappers.
    PlacementsTried,
    /// Placements undone or abandoned (heuristic/B&B backtracking).
    Backtracks,
    /// Space-time router invocations.
    RoutingCalls,
    /// Router invocations that found no route.
    RoutingFailures,
    /// Meta-heuristic moves proposed (SA moves, GA/QEA offspring).
    MovesProposed,
    /// Moves accepted / improving offspring.
    MovesAccepted,
    /// Search-tree nodes expanded (B&B).
    NodesExpanded,
    /// Search-tree nodes pruned by bound, beam, or budget.
    NodesPruned,
    /// Solver branching decisions (CDCL decides, CP/ILP branch nodes).
    SolverDecisions,
    /// Solver propagations (unit propagations, AC-3 revisions, LP solves).
    SolverPropagations,
    /// Solver conflicts (CDCL conflicts, CP dead-ends, theory conflicts).
    SolverConflicts,
    /// Solver restarts (Luby restarts).
    SolverRestarts,
    /// Incremental solves answered under assumptions (SAT II sweeps
    /// reusing one solver instance across candidate IIs).
    SolverAssumptionSolves,
    /// Learnt clauses retained across clause-database reductions.
    SolverLearntKept,
    /// Learnt clauses garbage-collected by database reductions.
    SolverLearntGcd,
    /// Simplex pivots avoided by warm-basis reuse in LP-backed solvers.
    SolverWarmPivotsSaved,
    /// Runs stopped by a budget cancellation (portfolio race losers,
    /// parallel-II jobs dominated by a better II).
    Cancellations,
    /// Improving solutions found (anytime incumbents: routable
    /// bindings, solver models, better objective values). Mirrors the
    /// ledger's `Incumbent` events so profile output shows how often
    /// each mapper improved.
    Incumbents,
}

impl Counter {
    /// Every counter, in snapshot order.
    pub const ALL: [Counter; 19] = [
        Counter::IiAttempts,
        Counter::PlacementsTried,
        Counter::Backtracks,
        Counter::RoutingCalls,
        Counter::RoutingFailures,
        Counter::MovesProposed,
        Counter::MovesAccepted,
        Counter::NodesExpanded,
        Counter::NodesPruned,
        Counter::SolverDecisions,
        Counter::SolverPropagations,
        Counter::SolverConflicts,
        Counter::SolverRestarts,
        Counter::SolverAssumptionSolves,
        Counter::SolverLearntKept,
        Counter::SolverLearntGcd,
        Counter::SolverWarmPivotsSaved,
        Counter::Cancellations,
        Counter::Incumbents,
    ];

    /// Snake-case name used in traces and reports.
    pub fn label(self) -> &'static str {
        match self {
            Counter::IiAttempts => "ii_attempts",
            Counter::PlacementsTried => "placements_tried",
            Counter::Backtracks => "backtracks",
            Counter::RoutingCalls => "routing_calls",
            Counter::RoutingFailures => "routing_failures",
            Counter::MovesProposed => "moves_proposed",
            Counter::MovesAccepted => "moves_accepted",
            Counter::NodesExpanded => "nodes_expanded",
            Counter::NodesPruned => "nodes_pruned",
            Counter::SolverDecisions => "solver_decisions",
            Counter::SolverPropagations => "solver_propagations",
            Counter::SolverConflicts => "solver_conflicts",
            Counter::SolverRestarts => "solver_restarts",
            Counter::SolverAssumptionSolves => "solver_assumption_solves",
            Counter::SolverLearntKept => "solver_learnt_kept",
            Counter::SolverLearntGcd => "solver_learnt_gcd",
            Counter::SolverWarmPivotsSaved => "solver_warm_pivots_saved",
            Counter::Cancellations => "cancellations",
            Counter::Incumbents => "incumbents",
        }
    }
}

const NUM_COUNTERS: usize = Counter::ALL.len();

/// Pipeline phases timed by spans (the CLI's Fig. 3 flow plus the
/// mapper-internal map-per-II and routing phases).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    Parse,
    Optimize,
    Map,
    Route,
    Validate,
    Simulate,
}

impl Phase {
    pub const ALL: [Phase; 6] = [
        Phase::Parse,
        Phase::Optimize,
        Phase::Map,
        Phase::Route,
        Phase::Validate,
        Phase::Simulate,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::Optimize => "optimize",
            Phase::Map => "map",
            Phase::Route => "route",
            Phase::Validate => "validate",
            Phase::Simulate => "simulate",
        }
    }
}

/// One completed span: a phase, an optional II qualifier (map-per-II
/// attempts), and wall-clock bounds relative to the sink's creation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpanRecord {
    pub phase: Phase,
    /// `Some(ii)` for per-II mapping attempts, `None` for whole phases.
    pub ii: Option<u32>,
    /// Microseconds since the sink was created.
    pub start_us: u64,
    pub dur_us: u64,
}

/// Span log capacity: inner search loops (one span per II attempt or
/// routing pass) can emit thousands of spans on hard instances; beyond
/// this many the log stops growing and only counts the overflow.
const MAX_SPANS: usize = 16_384;

/// The shared sink: lock-free counters plus a span log.
pub struct SearchStats {
    counters: [AtomicU64; NUM_COUNTERS],
    spans: Mutex<Vec<SpanRecord>>,
    /// Spans discarded once the log hit [`MAX_SPANS`].
    spans_dropped: AtomicU64,
    epoch: Instant,
}

impl Default for SearchStats {
    fn default() -> Self {
        Self::new()
    }
}

impl SearchStats {
    pub fn new() -> Self {
        SearchStats {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            spans: Mutex::new(Vec::new()),
            spans_dropped: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    #[inline]
    pub fn add(&self, c: Counter, n: u64) {
        self.counters[c as usize].fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self, c: Counter) -> u64 {
        self.counters[c as usize].load(Ordering::Relaxed)
    }

    /// Record a completed span (called by [`SpanGuard::drop`]).
    fn record_span(&self, phase: Phase, ii: Option<u32>, started: Instant) {
        let start_us = started.duration_since(self.epoch).as_micros() as u64;
        let dur_us = started.elapsed().as_micros() as u64;
        let mut spans = self.spans.lock().unwrap();
        if spans.len() >= MAX_SPANS {
            self.spans_dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        spans.push(SpanRecord {
            phase,
            ii,
            start_us,
            dur_us,
        });
    }

    /// All spans recorded so far, in completion order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.spans.lock().unwrap().clone()
    }

    /// Number of recorded span events.
    pub fn span_count(&self) -> usize {
        self.spans.lock().unwrap().len()
    }

    /// Spans discarded because the log was full.
    pub fn spans_dropped(&self) -> u64 {
        self.spans_dropped.load(Ordering::Relaxed)
    }

    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            ii_attempts: self.get(Counter::IiAttempts),
            placements_tried: self.get(Counter::PlacementsTried),
            backtracks: self.get(Counter::Backtracks),
            routing_calls: self.get(Counter::RoutingCalls),
            routing_failures: self.get(Counter::RoutingFailures),
            moves_proposed: self.get(Counter::MovesProposed),
            moves_accepted: self.get(Counter::MovesAccepted),
            nodes_expanded: self.get(Counter::NodesExpanded),
            nodes_pruned: self.get(Counter::NodesPruned),
            solver_decisions: self.get(Counter::SolverDecisions),
            solver_propagations: self.get(Counter::SolverPropagations),
            solver_conflicts: self.get(Counter::SolverConflicts),
            solver_restarts: self.get(Counter::SolverRestarts),
            solver_assumption_solves: self.get(Counter::SolverAssumptionSolves),
            solver_learnt_kept: self.get(Counter::SolverLearntKept),
            solver_learnt_gcd: self.get(Counter::SolverLearntGcd),
            solver_warm_pivots_saved: self.get(Counter::SolverWarmPivotsSaved),
            cancellations: self.get(Counter::Cancellations),
            incumbents: self.get(Counter::Incumbents),
        }
    }
}

impl std::fmt::Debug for SearchStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchStats")
            .field("counters", &self.snapshot())
            .field("spans", &self.span_count())
            .finish()
    }
}

/// A plain-data copy of every counter, for reports and serialisation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(default)]
pub struct StatsSnapshot {
    pub ii_attempts: u64,
    pub placements_tried: u64,
    pub backtracks: u64,
    pub routing_calls: u64,
    pub routing_failures: u64,
    pub moves_proposed: u64,
    pub moves_accepted: u64,
    pub nodes_expanded: u64,
    pub nodes_pruned: u64,
    pub solver_decisions: u64,
    pub solver_propagations: u64,
    pub solver_conflicts: u64,
    pub solver_restarts: u64,
    pub solver_assumption_solves: u64,
    pub solver_learnt_kept: u64,
    pub solver_learnt_gcd: u64,
    pub solver_warm_pivots_saved: u64,
    pub cancellations: u64,
    #[serde(default)]
    pub incumbents: u64,
}

impl StatsSnapshot {
    pub fn get(&self, c: Counter) -> u64 {
        match c {
            Counter::IiAttempts => self.ii_attempts,
            Counter::PlacementsTried => self.placements_tried,
            Counter::Backtracks => self.backtracks,
            Counter::RoutingCalls => self.routing_calls,
            Counter::RoutingFailures => self.routing_failures,
            Counter::MovesProposed => self.moves_proposed,
            Counter::MovesAccepted => self.moves_accepted,
            Counter::NodesExpanded => self.nodes_expanded,
            Counter::NodesPruned => self.nodes_pruned,
            Counter::SolverDecisions => self.solver_decisions,
            Counter::SolverPropagations => self.solver_propagations,
            Counter::SolverConflicts => self.solver_conflicts,
            Counter::SolverRestarts => self.solver_restarts,
            Counter::SolverAssumptionSolves => self.solver_assumption_solves,
            Counter::SolverLearntKept => self.solver_learnt_kept,
            Counter::SolverLearntGcd => self.solver_learnt_gcd,
            Counter::SolverWarmPivotsSaved => self.solver_warm_pivots_saved,
            Counter::Cancellations => self.cancellations,
            Counter::Incumbents => self.incumbents,
        }
    }

    pub fn is_empty(&self) -> bool {
        Counter::ALL.iter().all(|&c| self.get(c) == 0)
    }
}

/// The handle mappers hold: either connected to a shared
/// [`SearchStats`] sink or disabled (the default). Cloning is a
/// refcount bump; disabled operations are a null check.
#[derive(Clone, Default)]
pub struct Telemetry(Option<Arc<SearchStats>>);

impl Telemetry {
    /// A disabled handle (every operation is a no-op).
    pub fn off() -> Self {
        Telemetry(None)
    }

    /// A fresh enabled sink.
    pub fn enabled() -> Self {
        Telemetry(Some(Arc::new(SearchStats::new())))
    }

    /// Attach to an existing sink.
    pub fn with_sink(sink: Arc<SearchStats>) -> Self {
        Telemetry(Some(sink))
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    pub fn sink(&self) -> Option<&Arc<SearchStats>> {
        self.0.as_ref()
    }

    #[inline]
    pub fn bump(&self, c: Counter) {
        if let Some(s) = &self.0 {
            s.add(c, 1);
        }
    }

    #[inline]
    pub fn add(&self, c: Counter, n: u64) {
        if let Some(s) = &self.0 {
            if n > 0 {
                s.add(c, n);
            }
        }
    }

    /// Start timing `phase`; the span is recorded when the guard drops.
    #[inline]
    pub fn span(&self, phase: Phase) -> SpanGuard<'_> {
        self.span_inner(phase, None)
    }

    /// Start timing one II attempt of the mapping phase.
    #[inline]
    pub fn span_ii(&self, phase: Phase, ii: u32) -> SpanGuard<'_> {
        self.span_inner(phase, Some(ii))
    }

    #[inline]
    fn span_inner(&self, phase: Phase, ii: Option<u32>) -> SpanGuard<'_> {
        SpanGuard {
            live: self
                .0
                .as_deref()
                .map(|sink| (sink, phase, ii, Instant::now())),
        }
    }

    /// Counter snapshot, or `None` when disabled.
    pub fn snapshot(&self) -> Option<StatsSnapshot> {
        self.0.as_ref().map(|s| s.snapshot())
    }

    /// Recorded spans (empty when disabled).
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.0.as_ref().map(|s| s.spans()).unwrap_or_default()
    }

    /// Spans discarded once the log hit its capacity (zero when
    /// disabled). Trace consumers use this to detect truncation.
    pub fn spans_dropped(&self) -> u64 {
        self.0.as_ref().map(|s| s.spans_dropped()).unwrap_or(0)
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            None => write!(f, "Telemetry(off)"),
            Some(s) => write!(f, "Telemetry(on, {} spans)", s.span_count()),
        }
    }
}

/// RAII span timer returned by [`Telemetry::span`]. Disabled guards
/// hold nothing and drop for free.
pub struct SpanGuard<'a> {
    live: Option<(&'a SearchStats, Phase, Option<u32>, Instant)>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some((sink, phase, ii, started)) = self.live.take() {
            sink.record_span(phase, ii, started);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let t = Telemetry::enabled();
        t.bump(Counter::Backtracks);
        t.add(Counter::Backtracks, 4);
        t.add(Counter::MovesProposed, 10);
        let snap = t.snapshot().unwrap();
        assert_eq!(snap.backtracks, 5);
        assert_eq!(snap.moves_proposed, 10);
        assert_eq!(snap.get(Counter::MovesProposed), 10);
        assert!(!snap.is_empty());
    }

    #[test]
    fn spans_record_phase_and_ii() {
        let t = Telemetry::enabled();
        {
            let _g = t.span(Phase::Parse);
        }
        {
            let _g = t.span_ii(Phase::Map, 3);
        }
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].phase, Phase::Parse);
        assert_eq!(spans[0].ii, None);
        assert_eq!(spans[1].phase, Phase::Map);
        assert_eq!(spans[1].ii, Some(3));
        assert!(spans[1].start_us >= spans[0].start_us);
    }

    #[test]
    fn disabled_is_inert() {
        let t = Telemetry::off();
        assert!(!t.is_enabled());
        t.bump(Counter::IiAttempts);
        t.add(Counter::RoutingCalls, 100);
        {
            let _g = t.span(Phase::Route);
        }
        assert!(t.snapshot().is_none());
        assert!(t.spans().is_empty());
        assert!(t.sink().is_none());
    }

    #[test]
    fn shared_sink_sums_across_clones() {
        let t = Telemetry::enabled();
        let (a, b) = (t.clone(), t.clone());
        std::thread::scope(|s| {
            s.spawn(|| {
                for _ in 0..1000 {
                    a.bump(Counter::RoutingCalls);
                }
            });
            s.spawn(|| {
                for _ in 0..1000 {
                    b.bump(Counter::RoutingCalls);
                }
            });
        });
        assert_eq!(t.snapshot().unwrap().routing_calls, 2000);
    }

    #[test]
    fn labels_are_snake_case_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for c in Counter::ALL {
            let l = c.label();
            assert!(l.chars().all(|ch| ch.is_ascii_lowercase() || ch == '_'));
            assert!(seen.insert(l));
        }
        for p in Phase::ALL {
            assert!(!p.label().is_empty());
        }
    }

    #[test]
    fn snapshot_serialises_every_counter_by_label() {
        let t = Telemetry::enabled();
        t.add(Counter::SolverDecisions, 7);
        let snap = t.snapshot().unwrap();
        let json = serde_json::to_string(&snap).unwrap();
        let v = serde_json::from_str(&json).unwrap();
        for c in Counter::ALL {
            assert_eq!(
                v[c.label()].as_u64(),
                Some(snap.get(c)),
                "field `{}` missing or wrong in {json}",
                c.label()
            );
        }
    }
}
