//! Failure forensics: structured diagnosis of infeasible mappings.
//!
//! The survey's mapper families fail in characteristically different
//! ways — exact methods refute an II, heuristics run out of capable
//! cells, routers saturate register files — and a prose `Infeasible`
//! string flattens all of that. This module defines the shared
//! vocabulary ([`ResourceClass`]) the solver layers tag their
//! constraint groups with, the [`Diagnosis`] record surfaced inside
//! [`MapError::Infeasible`](crate::MapError), and the analytic
//! MII-bound diagnosis used when the II search range is empty before
//! any solver runs (see DESIGN.md §9 for the contract).
//!
//! Everything here is deterministic: op and cell lists are sorted by
//! id, detail strings are derived from counts, and the same seed (or
//! no seed at all — the MII decomposition is seed-free) produces the
//! same rendered output, which is what lets CI golden-diff
//! `cgra-map --explain`.

use cgra_arch::{Fabric, PeId};
use cgra_ir::{graph, Dfg, NodeId, OpKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The resource classes an infeasibility can be attributed to — one
/// tag per constraint group in the SAT/ILP encodings, plus the two
/// analytic MII components.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ResourceClass {
    /// An op class outnumbers the cells able to execute it (or no cell
    /// can at all): the at-least-one-candidate constraints.
    Capability,
    /// Per-`(pe, slot mod II)` issue exclusivity.
    SlotExclusive,
    /// Producer→consumer reachability through the operand network.
    Routing,
    /// Dependence/recurrence latency (schedule slack, RecMII).
    DependenceLatency,
    /// Register-file pressure: a placement existed but no conflict-free
    /// register allocation did (CEGAR exhaustion).
    Register,
}

impl ResourceClass {
    pub const ALL: [ResourceClass; 5] = [
        ResourceClass::Capability,
        ResourceClass::SlotExclusive,
        ResourceClass::Routing,
        ResourceClass::DependenceLatency,
        ResourceClass::Register,
    ];

    /// Stable kebab-case name used in rendered diagnoses and reports.
    pub fn label(self) -> &'static str {
        match self {
            ResourceClass::Capability => "capability",
            ResourceClass::SlotExclusive => "slot-exclusivity",
            ResourceClass::Routing => "routing",
            ResourceClass::DependenceLatency => "dependence-latency",
            ResourceClass::Register => "register",
        }
    }

    /// Parse from either the serialized variant name or the kebab
    /// label.
    pub fn parse(s: &str) -> Option<ResourceClass> {
        match s {
            "Capability" | "capability" => Some(ResourceClass::Capability),
            "SlotExclusive" | "slot-exclusivity" => Some(ResourceClass::SlotExclusive),
            "Routing" | "routing" => Some(ResourceClass::Routing),
            "DependenceLatency" | "dependence-latency" => Some(ResourceClass::DependenceLatency),
            "Register" | "register" => Some(ResourceClass::Register),
            _ => None,
        }
    }
}

impl fmt::Display for ResourceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Cap on the op/cell lists a diagnosis carries; beyond it the list
/// ends with a `"+N more"` entry so huge kernels stay readable.
const MAX_NAMED: usize = 12;

/// Why a mapping attempt is infeasible, attributed to a resource
/// class, with the DFG ops and fabric cells involved.
///
/// All fields are plain strings and integers so the record survives
/// JSON round-trips byte-identically; lists are sorted by id, making
/// equal inputs produce equal diagnoses (property-tested).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnosis {
    /// The binding resource class.
    pub class: ResourceClass,
    /// The II the diagnosis was made at (the lowest one attempted or,
    /// for MII-bound failures, the II cap that was exceeded).
    pub ii: u32,
    /// The kernel's MII on this fabric (`u32::MAX` when a required
    /// resource class is absent altogether).
    pub mii: u32,
    /// One-sentence account of the bottleneck.
    pub detail: String,
    /// Implicated DFG ops (`"n3:mul"`), sorted by node id.
    pub ops: Vec<String>,
    /// Implicated fabric cells (`"pe5@(1,1)"`), sorted by PE id.
    pub cells: Vec<String>,
    /// Labels of every constraint class in the final conflict core
    /// (singleton for analytic diagnoses).
    pub core: Vec<String>,
}

impl Diagnosis {
    /// A diagnosis with empty attribution lists; callers fill in
    /// `ops` / `cells` / `core` as the evidence allows.
    pub fn new(class: ResourceClass, ii: u32, mii: u32, detail: impl Into<String>) -> Self {
        Diagnosis {
            class,
            ii,
            mii,
            detail: detail.into(),
            ops: Vec::new(),
            cells: Vec::new(),
            core: vec![class.label().to_string()],
        }
    }

    /// Deterministic multi-line rendering — the `cgra-map --explain`
    /// output that CI golden-diffs.
    pub fn render(&self) -> String {
        let mii = if self.mii == u32::MAX {
            "unreachable".to_string()
        } else {
            self.mii.to_string()
        };
        let mut out = format!(
            "diagnosis: binding resource class = {}\n  ii: {} (MII {})\n  detail: {}\n",
            self.class.label(),
            self.ii,
            mii,
            self.detail
        );
        let line = |name: &str, items: &[String]| {
            if items.is_empty() {
                format!("  {name}: none\n")
            } else {
                format!("  {name}: {}\n", items.join(", "))
            }
        };
        out.push_str(&line("ops", &self.ops));
        out.push_str(&line("cells", &self.cells));
        out.push_str(&line("core", &self.core));
        out
    }

    /// Hand-parse a diagnosis from its JSON tree (the vendored serde
    /// has no typed deserialisation); `None` if the class is missing.
    pub fn from_json(v: &serde::Value) -> Option<Diagnosis> {
        use serde::Value;
        let strings = |k: &str| -> Vec<String> {
            match v.get(k) {
                Some(Value::Array(items)) => items
                    .iter()
                    .filter_map(Value::as_str)
                    .map(str::to_string)
                    .collect(),
                _ => Vec::new(),
            }
        };
        Some(Diagnosis {
            class: ResourceClass::parse(v.get("class")?.as_str()?)?,
            ii: v.get("ii").and_then(Value::as_u64).unwrap_or(0) as u32,
            mii: v.get("mii").and_then(Value::as_u64).unwrap_or(0) as u32,
            detail: v
                .get("detail")
                .and_then(Value::as_str)
                .unwrap_or_default()
                .to_string(),
            ops: strings("ops"),
            cells: strings("cells"),
            core: strings("core"),
        })
    }
}

impl fmt::Display for Diagnosis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.render().trim_end())
    }
}

/// Canonical op name used in diagnoses: `n<id>:<mnemonic>`.
pub fn op_name(dfg: &Dfg, id: NodeId) -> String {
    format!("n{}:{}", id.0, dfg.op(id).mnemonic())
}

/// Canonical cell name used in diagnoses: `pe<id>@(<row>,<col>)`.
pub fn cell_name(fabric: &Fabric, pe: PeId) -> String {
    let (r, c) = fabric.coords(pe);
    format!("pe{}@({r},{c})", pe.0)
}

/// Sort-stable list capping: keeps the first [`MAX_NAMED`] entries and
/// folds the rest into a `"+N more"` tail.
pub(crate) fn cap_list(mut items: Vec<String>) -> Vec<String> {
    if items.len() > MAX_NAMED {
        let extra = items.len() - MAX_NAMED;
        items.truncate(MAX_NAMED);
        items.push(format!("+{extra} more"));
    }
    items
}

/// Ops selected by a predicate, in id order, capped.
fn ops_where(dfg: &Dfg, pred: impl Fn(OpKind) -> bool) -> Vec<String> {
    cap_list(
        dfg.node_ids()
            .filter(|&n| pred(dfg.op(n)))
            .map(|n| op_name(dfg, n))
            .collect(),
    )
}

/// Cells selected by a predicate, in id order, capped.
fn cells_where(fabric: &Fabric, pred: impl Fn(PeId) -> bool) -> Vec<String> {
    cap_list(
        fabric
            .pe_ids()
            .filter(|&pe| pred(pe))
            .map(|pe| cell_name(fabric, pe))
            .collect(),
    )
}

fn is_io(op: OpKind) -> bool {
    matches!(op, OpKind::Input(_) | OpKind::Output(_))
}

/// Analytic capability/recurrence diagnosis for an empty II range: the
/// MII decomposition (per-class ResMII components, io MII, RecMII)
/// re-derived from `(dfg, fabric)`, attributing the bound to the
/// largest component. `ii_cap` is the II bound the MII exceeded
/// (`max_ii` clamped by `context_depth`). Pure arithmetic — no solver
/// runs — so the result is deterministic for a given instance.
pub fn diagnose_mii_bound(dfg: &Dfg, fabric: &Fabric, ii_cap: u32) -> Diagnosis {
    let (alu, mul, mem, io) = fabric.slot_counts();
    let lat = |op: OpKind| fabric.latency_of(op);
    let total = dfg.node_count();
    let muls = dfg.multiplier_ops();
    let mems = dfg.memory_ops();
    let ios = dfg.node_ids().filter(|&n| is_io(dfg.op(n))).count();
    let div_ceil = |a: usize, b: usize| -> u32 {
        if b == 0 {
            if a == 0 {
                1
            } else {
                u32::MAX
            }
        } else {
            (a.div_ceil(b) as u32).max(1)
        }
    };
    let rec = graph::rec_mii(dfg, &lat);
    // (component value, class, op-class label, demand, capable-slot
    // count); evaluated in this fixed order, first maximum wins, so
    // the attribution is deterministic.
    let mul_c = div_ceil(muls, mul);
    let mem_c = div_ceil(mems, mem);
    let io_c = div_ceil(ios, io);
    let alu_c = div_ceil(total, alu);
    let mii = rec.max(mul_c).max(mem_c).max(io_c).max(alu_c);

    let (detail, ops, cells, class) = if mul_c == mii && mul_c >= rec {
        (
            bottleneck_detail("multiplier", muls, mul, mul_c, ii_cap),
            ops_where(dfg, OpKind::needs_multiplier),
            cells_where(fabric, |pe| fabric.caps(pe).mul),
            ResourceClass::Capability,
        )
    } else if mem_c == mii && mem_c >= rec {
        (
            bottleneck_detail("memory", mems, mem, mem_c, ii_cap),
            ops_where(dfg, OpKind::is_memory),
            cells_where(fabric, |pe| fabric.caps(pe).mem),
            ResourceClass::Capability,
        )
    } else if io_c == mii && io_c >= rec {
        (
            bottleneck_detail("I/O", ios, io, io_c, ii_cap),
            ops_where(dfg, is_io),
            cells_where(fabric, |pe| {
                fabric.caps(pe).io
                    && (fabric.io_policy == cgra_arch::IoPolicy::Anywhere || fabric.is_border(pe))
            }),
            ResourceClass::Capability,
        )
    } else if alu_c == mii && alu_c >= rec {
        (
            bottleneck_detail("issue", total, alu, alu_c, ii_cap),
            Vec::new(), // every op competes; naming all is noise
            cells_where(fabric, |pe| fabric.caps(pe).alu),
            ResourceClass::Capability,
        )
    } else {
        // Recurrence-bound: the loop-carried dependence cycles set the
        // floor regardless of resources.
        let carried: Vec<NodeId> = {
            let mut ends: Vec<NodeId> = dfg
                .edges()
                .filter(|(_, e)| e.is_carried())
                .flat_map(|(_, e)| [e.src, e.dst])
                .collect();
            ends.sort();
            ends.dedup();
            ends
        };
        (
            format!("loop-carried recurrences force RecMII {rec}, above the II bound {ii_cap}"),
            cap_list(carried.iter().map(|&n| op_name(dfg, n)).collect()),
            Vec::new(),
            ResourceClass::DependenceLatency,
        )
    };

    let mut d = Diagnosis::new(class, ii_cap, mii, detail);
    d.ops = ops;
    d.cells = cells;
    d
}

fn bottleneck_detail(kind: &str, demand: usize, slots: usize, comp: u32, ii_cap: u32) -> String {
    if slots == 0 {
        format!("kernel needs {demand} {kind} op(s) but the fabric has no {kind}-capable cell")
    } else {
        format!(
            "{demand} {kind} op(s) compete for {slots} {kind}-capable cell(s): \
             ResMII component {comp} exceeds the II bound {ii_cap}"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgra_arch::Topology;
    use cgra_ir::kernels;

    /// A 2×2 mesh where only pe0 can multiply — the capability
    /// bottleneck fixture the CI smoke also uses.
    fn mul_starved() -> Fabric {
        let mut f = Fabric::homogeneous(2, 2, Topology::Mesh);
        f.name = "mul_starved_2x2".into();
        for pe in 1..4 {
            f.cells[pe].mul = false;
        }
        f
    }

    #[test]
    fn mii_bound_diagnosis_names_multiplier_bottleneck() {
        let dfg = kernels::fir(4); // 4 tap multiplies
        let f = mul_starved();
        let d = diagnose_mii_bound(&dfg, &f, 1);
        assert_eq!(d.class, ResourceClass::Capability);
        assert!(d.mii >= 4, "4 muls / 1 mul cell");
        assert_eq!(d.ii, 1);
        assert!(d.detail.contains("multiplier"), "{}", d.detail);
        assert_eq!(d.cells, vec!["pe0@(0,0)".to_string()]);
        assert!(d.ops.iter().all(|o| o.contains("mul")), "{:?}", d.ops);
        assert_eq!(d.core, vec!["capability".to_string()]);
    }

    #[test]
    fn diagnosis_is_deterministic_and_round_trips() {
        let dfg = kernels::fir(4);
        let f = mul_starved();
        let a = diagnose_mii_bound(&dfg, &f, 1);
        let b = diagnose_mii_bound(&dfg, &f, 1);
        assert_eq!(a, b);
        assert_eq!(a.render(), b.render());
        // Rendering is stable: every section present, kebab labels.
        let r = a.render();
        for needle in [
            "diagnosis: binding resource class = capability",
            "ii: 1",
            "detail:",
            "ops:",
            "cells:",
            "core:",
        ] {
            assert!(r.contains(needle), "missing {needle:?} in {r}");
        }
    }

    #[test]
    fn missing_resource_class_is_capability_with_no_cells() {
        let mut f = Fabric::homogeneous(2, 2, Topology::Mesh);
        for c in &mut f.cells {
            c.mem = false;
        }
        let dfg = kernels::matmul_body(); // has loads
        let d = diagnose_mii_bound(&dfg, &f, 8);
        assert_eq!(d.class, ResourceClass::Capability);
        assert_eq!(d.mii, u32::MAX);
        assert!(d.cells.is_empty());
        assert!(d.render().contains("MII unreachable"));
    }

    #[test]
    fn recurrence_bound_names_dependence_latency() {
        // accumulate has a carried self-edge; a huge fabric removes
        // every resource bound, so pinning ii_cap below RecMII can only
        // be recurrence-driven... RecMII is 1 for accumulate on default
        // latency, so build a longer recurrence.
        use cgra_ir::{Dfg, OpKind};
        let mut g = Dfg::new("long_rec");
        let a = g.add_node(OpKind::Add);
        let b = g.add_node(OpKind::Mul);
        let c = g.add_node(OpKind::Add);
        let k = g.add_node(OpKind::Const(1));
        g.connect(k, a, 1);
        g.connect(a, b, 0);
        g.connect(k, b, 1);
        g.connect(b, c, 0);
        g.connect(k, c, 1);
        g.connect_carried(c, a, 0, 1, vec![0]);
        let f = Fabric::homogeneous(4, 4, Topology::Mesh);
        let d = diagnose_mii_bound(&g, &f, 1);
        assert_eq!(d.class, ResourceClass::DependenceLatency);
        assert!(d.mii >= 3);
        assert!(!d.ops.is_empty());
        assert!(d.cells.is_empty());
    }

    #[test]
    fn long_lists_are_capped() {
        let many: Vec<String> = (0..40).map(|i| format!("n{i}")).collect();
        let capped = cap_list(many);
        assert_eq!(capped.len(), 13);
        assert_eq!(capped.last().unwrap(), "+28 more");
    }
}
