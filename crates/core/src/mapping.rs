//! The mapping representation shared by every mapper.
//!
//! ## Model
//!
//! A mapping binds every DFG node to a **placement** `(pe, time)` —
//! the PE and absolute issue cycle — and every DFG edge to a **route**:
//! the cycle-by-cycle positions of the value between producer and
//! consumer. Time folds modulo the **initiation interval** `ii`:
//! resource usage at absolute cycle `t` lands on modulo slot
//! `t % ii`.
//!
//! For an edge `src → dst` with dependence distance `d`:
//!
//! * the value becomes ready at `tr = time(src) + lat(src)`,
//! * it is consumed at `tc = time(dst) + ii·d` (the consumer of the
//!   `d`-iterations-later instance),
//! * the route holds positions `x_tr, …, x_tc` with `x_tr = pe(src)`,
//!   `x_tc = pe(dst)`, and each step either stays put or moves one hop
//!   on the operand network,
//! * every step `(x_t, t)` occupies one register at `(x_t, t % ii)`;
//!   steps of routes fanning out from the *same producer* at the same
//!   `(pe, t)` share one register (a value is stored once).
//!
//! A **spatial mapping** is the special case `ii == 1` with at most one
//! operation per PE: every PE repeats its operation every cycle, which
//! is exactly the FPGA-like spatial-computation model of the survey.

use cgra_arch::{Fabric, PeId, SpaceTime};
use cgra_ir::{Dfg, EdgeId, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Where and when a node issues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    pub pe: PeId,
    /// Absolute issue cycle (`0 ≤ time`, not folded).
    pub time: u32,
}

/// The cycle-by-cycle positions of a value between producer and
/// consumer (inclusive at both ends). `steps[i]` is the position at
/// absolute cycle `start_time + i`.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Route {
    pub start_time: u32,
    pub steps: Vec<PeId>,
}

impl Route {
    /// Position at absolute cycle `t`, if the route covers it.
    pub fn at(&self, t: u32) -> Option<PeId> {
        t.checked_sub(self.start_time)
            .and_then(|i| self.steps.get(i as usize).copied())
    }

    /// Number of PE-to-PE hops (non-hold steps).
    pub fn hops(&self) -> usize {
        self.steps.windows(2).filter(|w| w[0] != w[1]).count()
    }

    /// Last covered absolute cycle.
    pub fn end_time(&self) -> u32 {
        self.start_time + self.steps.len().saturating_sub(1) as u32
    }
}

/// A complete mapping of one DFG onto one fabric.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mapping {
    /// Initiation interval (1 for spatial mappings).
    pub ii: u32,
    /// Per-node placements, indexed by `NodeId`.
    pub place: Vec<Placement>,
    /// Per-edge routes, indexed by `EdgeId`.
    pub routes: Vec<Route>,
}

impl Mapping {
    /// An unrouted mapping shell with every node at `(pe0, 0)`.
    pub fn empty(dfg: &Dfg, ii: u32) -> Self {
        Mapping {
            ii,
            place: vec![
                Placement {
                    pe: PeId(0),
                    time: 0
                };
                dfg.node_count()
            ],
            routes: vec![Route::default(); dfg.edge_count()],
        }
    }

    #[inline]
    pub fn placement(&self, n: NodeId) -> Placement {
        self.place[n.index()]
    }

    #[inline]
    pub fn route(&self, e: EdgeId) -> &Route {
        &self.routes[e.index()]
    }

    /// Schedule length: latest issue time + its latency.
    pub fn schedule_len(&self, dfg: &Dfg, fabric: &Fabric) -> u32 {
        self.place
            .iter()
            .enumerate()
            .map(|(i, p)| p.time + fabric.latency_of(dfg.op(NodeId(i as u32))))
            .max()
            .unwrap_or(0)
    }

    /// Ready time of the value produced by `src`.
    pub fn ready_time(&self, dfg: &Dfg, fabric: &Fabric, src: NodeId) -> u32 {
        self.placement(src).time + fabric.latency_of(dfg.op(src))
    }

    /// Consumption time of edge `e` (folding in `ii · dist`).
    pub fn consume_time(&self, dfg: &Dfg, e: EdgeId) -> u32 {
        let edge = dfg.edge(e);
        self.placement(edge.dst).time + self.ii * edge.dist
    }

    /// Build the occupancy of this mapping: FU slots per placement and
    /// register slots per route step, with fan-out routes of one
    /// producer deduplicated at identical `(pe, absolute cycle)`.
    pub fn occupancy(&self, dfg: &Dfg, fabric: &Fabric) -> SpaceTime {
        let mut st = SpaceTime::new(fabric, self.ii);
        for p in &self.place {
            st.occupy_fu(p.pe, p.time);
        }
        // Deduplicate register usage by (producer, pe, absolute cycle).
        let mut seen: HashMap<(u32, PeId, u32), ()> = HashMap::new();
        for (eid, edge) in dfg.edges() {
            let r = &self.routes[eid.index()];
            for (i, &pe) in r.steps.iter().enumerate() {
                let t = r.start_time + i as u32;
                if seen.insert((edge.src.0, pe, t), ()).is_none() {
                    st.occupy_reg(pe, t);
                }
            }
        }
        st
    }

    /// True if this mapping is spatial: II = 1 and at most one op per PE.
    pub fn is_spatial(&self) -> bool {
        if self.ii != 1 {
            return false;
        }
        let mut used = std::collections::HashSet::new();
        self.place.iter().all(|p| used.insert(p.pe))
    }

    /// Pretty per-slot rendering (the "configuration" view of the
    /// survey's Fig. 2c): which op issues on which PE in each II slot.
    pub fn render(&self, dfg: &Dfg, fabric: &Fabric) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "mapping of `{}` on `{}`: II={}, schedule length {}",
            dfg.name,
            fabric.name,
            self.ii,
            self.schedule_len(dfg, fabric)
        );
        for slot in 0..self.ii {
            let _ = writeln!(s, " slot {slot}:");
            for r in 0..fabric.rows {
                let mut row = String::from("   ");
                for c in 0..fabric.cols {
                    let pe = fabric.pe_at(r, c);
                    let op = self
                        .place
                        .iter()
                        .enumerate()
                        .find(|(_, p)| p.pe == pe && p.time % self.ii == slot)
                        .map(|(i, p)| {
                            format!("{:>5}@{}", dfg.op(NodeId(i as u32)).mnemonic(), p.time)
                        })
                        .unwrap_or_else(|| "    .  ".into());
                    row.push_str(&format!("[{op:^9}]"));
                }
                let _ = writeln!(s, "{row}");
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgra_arch::Topology;
    use cgra_ir::kernels;

    #[test]
    fn route_accessors() {
        let r = Route {
            start_time: 3,
            steps: vec![PeId(0), PeId(0), PeId(1), PeId(5)],
        };
        assert_eq!(r.at(3), Some(PeId(0)));
        assert_eq!(r.at(5), Some(PeId(1)));
        assert_eq!(r.at(2), None);
        assert_eq!(r.at(7), None);
        assert_eq!(r.hops(), 2);
        assert_eq!(r.end_time(), 6);
    }

    #[test]
    fn occupancy_dedups_fanout() {
        // One producer feeding two consumers over identical prefixes
        // counts each (pe, t) once.
        let mut dfg = Dfg::new("fan");
        let a = dfg.add_node(cgra_ir::OpKind::Input(0));
        let n1 = dfg.add_node(cgra_ir::OpKind::Not);
        let n2 = dfg.add_node(cgra_ir::OpKind::Neg);
        let e1 = dfg.connect(a, n1, 0);
        let e2 = dfg.connect(a, n2, 0);
        let fabric = Fabric::homogeneous(2, 2, Topology::Mesh);
        let mut m = Mapping::empty(&dfg, 4);
        m.place[a.index()] = Placement {
            pe: PeId(0),
            time: 0,
        };
        m.place[n1.index()] = Placement {
            pe: PeId(1),
            time: 2,
        };
        m.place[n2.index()] = Placement {
            pe: PeId(1),
            time: 3,
        };
        m.routes[e1.index()] = Route {
            start_time: 1,
            steps: vec![PeId(0), PeId(1)],
        };
        m.routes[e2.index()] = Route {
            start_time: 1,
            steps: vec![PeId(0), PeId(1), PeId(1)],
        };
        let st = m.occupancy(&dfg, &fabric);
        // (pe0, t1) shared; (pe1, t2) shared; (pe1, t3) only e2.
        assert_eq!(st.reg_count(PeId(0), 1), 1);
        assert_eq!(st.reg_count(PeId(1), 2), 1);
        assert_eq!(st.reg_count(PeId(1), 3), 1);
    }

    #[test]
    fn spatial_detection() {
        let dfg = kernels::dot_product();
        let mut m = Mapping::empty(&dfg, 1);
        for (i, p) in m.place.iter_mut().enumerate() {
            p.pe = PeId(i as u16);
        }
        assert!(m.is_spatial());
        m.place[1].pe = PeId(0);
        assert!(!m.is_spatial());
        m.ii = 2;
        assert!(!m.is_spatial());
    }

    #[test]
    fn schedule_len_uses_latency() {
        let dfg = kernels::dot_product();
        let fabric = Fabric::homogeneous(4, 4, Topology::Mesh);
        let mut m = Mapping::empty(&dfg, 2);
        m.place[2] = Placement {
            pe: PeId(3),
            time: 5,
        }; // the Mul
        assert_eq!(m.schedule_len(&dfg, &fabric), 6);
    }

    #[test]
    fn render_mentions_ops() {
        let dfg = kernels::dot_product();
        let fabric = Fabric::homogeneous(2, 2, Topology::Mesh);
        let m = Mapping::empty(&dfg, 1);
        let r = m.render(&dfg, &fabric);
        assert!(r.contains("II=1"));
    }
}
