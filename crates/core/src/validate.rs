//! The mapping validator: the single source of truth for what a valid
//! mapping is. Every mapper's output must pass this check; the
//! property-based test suite feeds random DFGs through every mapper and
//! asserts exactly this.

use crate::mapping::Mapping;
use cgra_arch::{Fabric, PeId, SpaceTime, TopologyCache};
use cgra_ir::{Dfg, EdgeId, NodeId};
use std::collections::HashMap;
use std::fmt;

/// Everything that can be wrong with a mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// Placement/route vectors don't match the DFG shape.
    ShapeMismatch,
    /// The DFG itself is malformed.
    BadDfg(String),
    /// II below 1 or above the fabric's context depth.
    BadIi { ii: u32, context_depth: u32 },
    /// An op is placed on a PE that cannot execute it.
    UnsupportedOp { node: NodeId, pe: PeId },
    /// Two ops issue on the same PE in the same modulo slot.
    FuConflict {
        a: NodeId,
        b: NodeId,
        pe: PeId,
        slot: u32,
    },
    /// A route is empty, starts/ends at the wrong place or time, or
    /// makes an illegal move.
    BadRoute { edge: EdgeId, why: String },
    /// The consumer issues before the producer's value is ready.
    LatencyViolation {
        edge: EdgeId,
        ready: u32,
        consume: u32,
    },
    /// Register over-subscription at a (pe, slot).
    RegisterOverflow {
        pe: PeId,
        slot: u32,
        used: u32,
        capacity: u32,
    },
    /// A spatial mapping (II = 1 one-op-per-PE contract) was promised
    /// but violated.
    NotSpatial,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::ShapeMismatch => write!(f, "placement/route shape mismatch"),
            ValidationError::BadDfg(e) => write!(f, "bad DFG: {e}"),
            ValidationError::BadIi { ii, context_depth } => {
                write!(f, "II {ii} outside 1..={context_depth}")
            }
            ValidationError::UnsupportedOp { node, pe } => {
                write!(f, "op {node} placed on incapable {pe}")
            }
            ValidationError::FuConflict { a, b, pe, slot } => {
                write!(f, "ops {a} and {b} both issue on {pe} slot {slot}")
            }
            ValidationError::BadRoute { edge, why } => write!(f, "edge e{}: {why}", edge.0),
            ValidationError::LatencyViolation {
                edge,
                ready,
                consume,
            } => write!(
                f,
                "edge e{}: consumed at {consume} before ready at {ready}",
                edge.0
            ),
            ValidationError::RegisterOverflow {
                pe,
                slot,
                used,
                capacity,
            } => {
                write!(f, "{pe} slot {slot}: {used} values > {capacity} registers")
            }
            ValidationError::NotSpatial => write!(f, "mapping violates the spatial contract"),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Validate `mapping` for `dfg` on `fabric`. Checks, in order:
/// DFG well-formedness, shape, II bounds, per-op capability, FU
/// exclusivity modulo II, route integrity (endpoints, adjacency,
/// timing), dependence latency, and register capacity with fan-out
/// sharing.
///
/// Builds a throwaway [`TopologyCache`] for the adjacency checks;
/// callers that already hold one should use [`validate_with`].
pub fn validate(mapping: &Mapping, dfg: &Dfg, fabric: &Fabric) -> Result<(), ValidationError> {
    let topo = TopologyCache::build(fabric);
    validate_with(mapping, dfg, fabric, &topo)
}

/// [`validate`] with a caller-supplied topology cache (no rebuild).
pub fn validate_with(
    mapping: &Mapping,
    dfg: &Dfg,
    fabric: &Fabric,
    topo: &TopologyCache,
) -> Result<(), ValidationError> {
    dfg.validate()
        .map_err(|e| ValidationError::BadDfg(e.to_string()))?;
    if mapping.place.len() != dfg.node_count() || mapping.routes.len() != dfg.edge_count() {
        return Err(ValidationError::ShapeMismatch);
    }
    if mapping.ii < 1 || mapping.ii > fabric.context_depth {
        return Err(ValidationError::BadIi {
            ii: mapping.ii,
            context_depth: fabric.context_depth,
        });
    }

    // Capability + FU exclusivity.
    let mut fu: HashMap<(PeId, u32), NodeId> = HashMap::new();
    for (id, node) in dfg.nodes() {
        let p = mapping.placement(id);
        if p.pe.index() >= fabric.num_pes() {
            return Err(ValidationError::UnsupportedOp { node: id, pe: p.pe });
        }
        if !fabric.supports(p.pe, node.op) {
            return Err(ValidationError::UnsupportedOp { node: id, pe: p.pe });
        }
        let slot = p.time % mapping.ii;
        if let Some(&other) = fu.get(&(p.pe, slot)) {
            return Err(ValidationError::FuConflict {
                a: other,
                b: id,
                pe: p.pe,
                slot,
            });
        }
        fu.insert((p.pe, slot), id);
    }

    // Routes.
    for (eid, edge) in dfg.edges() {
        let r = mapping.route(eid);
        let tr = mapping.ready_time(dfg, fabric, edge.src);
        let tc = mapping.consume_time(dfg, eid);
        if tc < tr {
            return Err(ValidationError::LatencyViolation {
                edge: eid,
                ready: tr,
                consume: tc,
            });
        }
        if r.steps.is_empty() {
            return Err(ValidationError::BadRoute {
                edge: eid,
                why: "empty route".into(),
            });
        }
        if r.start_time != tr {
            return Err(ValidationError::BadRoute {
                edge: eid,
                why: format!("starts at {} instead of ready time {tr}", r.start_time),
            });
        }
        if r.steps.len() as u32 != tc - tr + 1 {
            return Err(ValidationError::BadRoute {
                edge: eid,
                why: format!("covers {} cycles, needs {}", r.steps.len(), tc - tr + 1),
            });
        }
        if r.steps[0] != mapping.placement(edge.src).pe {
            return Err(ValidationError::BadRoute {
                edge: eid,
                why: "does not start at the producer".into(),
            });
        }
        if *r.steps.last().unwrap() != mapping.placement(edge.dst).pe {
            return Err(ValidationError::BadRoute {
                edge: eid,
                why: "does not end at the consumer".into(),
            });
        }
        for w in r.steps.windows(2) {
            if w[0] != w[1] && !topo.adjacent(w[0], w[1]) {
                return Err(ValidationError::BadRoute {
                    edge: eid,
                    why: format!("illegal move {} -> {}", w[0], w[1]),
                });
            }
        }
    }

    // Register capacity with fan-out sharing (same producer, same
    // (pe, t) counts once).
    let st: SpaceTime = mapping.occupancy(dfg, fabric);
    for pe in fabric.pe_ids() {
        for slot in 0..mapping.ii {
            let used = st.reg_count(pe, slot);
            if used > fabric.rf_size {
                return Err(ValidationError::RegisterOverflow {
                    pe,
                    slot,
                    used,
                    capacity: fabric.rf_size,
                });
            }
        }
    }
    Ok(())
}

/// Validate and additionally require the spatial contract (II = 1, one
/// op per PE).
pub fn validate_spatial(
    mapping: &Mapping,
    dfg: &Dfg,
    fabric: &Fabric,
) -> Result<(), ValidationError> {
    validate(mapping, dfg, fabric)?;
    if !mapping.is_spatial() {
        return Err(ValidationError::NotSpatial);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{Placement, Route};
    use cgra_arch::Topology;
    use cgra_ir::{kernels, OpKind};

    fn mesh() -> Fabric {
        Fabric::homogeneous(4, 4, Topology::Mesh)
    }

    /// Hand-build a valid II=1 mapping of `accumulate` (in -> add
    /// (self-loop) -> out) on neighbouring PEs.
    fn valid_acc_mapping() -> (Dfg, Fabric, Mapping) {
        let dfg = kernels::accumulate();
        let f = mesh();
        // n0 in@pe0,t0 ; n1 add@pe1,t2 ; n2 out@pe2,t4 — one cycle per
        // hop between neighbouring PEs.
        let place = vec![
            Placement {
                pe: PeId(0),
                time: 0,
            },
            Placement {
                pe: PeId(1),
                time: 2,
            },
            Placement {
                pe: PeId(2),
                time: 4,
            },
        ];
        // Edges in builder order: in->add(p0), add->add carried(p1), add->out.
        let routes = vec![
            Route {
                start_time: 1,
                steps: vec![PeId(0), PeId(1)],
            },
            // ready at 3, consumed at 2 + ii*1 = 3 (ii=1): single step.
            Route {
                start_time: 3,
                steps: vec![PeId(1)],
            },
            Route {
                start_time: 3,
                steps: vec![PeId(1), PeId(2)],
            },
        ];
        let m = Mapping {
            ii: 1,
            place,
            routes,
        };
        (dfg, f, m)
    }

    #[test]
    fn hand_built_mapping_validates() {
        let (dfg, f, m) = valid_acc_mapping();
        validate(&m, &dfg, &f).unwrap();
        assert!(m.is_spatial());
        validate_spatial(&m, &dfg, &f).unwrap();
    }

    #[test]
    fn fu_conflict_detected() {
        let (dfg, f, mut m) = valid_acc_mapping();
        m.place[2] = Placement {
            pe: PeId(1),
            time: 3,
        }; // same PE slot (ii=1)
        let err = validate(&m, &dfg, &f).unwrap_err();
        assert!(matches!(err, ValidationError::FuConflict { .. }));
    }

    #[test]
    fn bad_ii_detected() {
        let (dfg, f, mut m) = valid_acc_mapping();
        m.ii = 0;
        assert!(matches!(
            validate(&m, &dfg, &f),
            Err(ValidationError::BadIi { .. })
        ));
        m.ii = f.context_depth + 1;
        assert!(matches!(
            validate(&m, &dfg, &f),
            Err(ValidationError::BadIi { .. })
        ));
    }

    #[test]
    fn capability_violation_detected() {
        let dfg = kernels::dot_product();
        let mut f = Fabric::adres_like(4, 4);
        f.rf_size = 8;
        // Place the mul on an odd (non-multiplier) column PE; other ops
        // on distinct border PEs so the capability error fires first.
        let mut m = Mapping::empty(&dfg, 4);
        m.place[0] = Placement {
            pe: f.pe_at(0, 0),
            time: 0,
        };
        m.place[1] = Placement {
            pe: f.pe_at(0, 1),
            time: 0,
        };
        m.place[2] = Placement {
            pe: f.pe_at(1, 1),
            time: 0,
        };
        m.place[3] = Placement {
            pe: f.pe_at(0, 2),
            time: 0,
        };
        m.place[4] = Placement {
            pe: f.pe_at(0, 3),
            time: 0,
        };
        let err = validate(&m, &dfg, &f).unwrap_err();
        assert!(matches!(err, ValidationError::UnsupportedOp { .. }));
    }

    #[test]
    fn latency_violation_detected() {
        let (dfg, f, mut m) = valid_acc_mapping();
        // Move consumer of edge 0 to time 0: consumed before ready.
        m.place[1] = Placement {
            pe: PeId(1),
            time: 0,
        };
        let err = validate(&m, &dfg, &f).unwrap_err();
        // Either a latency violation on the input edge or a bad route
        // shape — the first failure reported must be the latency one
        // because the carried self-edge still holds.
        assert!(
            matches!(err, ValidationError::LatencyViolation { .. })
                || matches!(err, ValidationError::BadRoute { .. }),
            "{err}"
        );
    }

    #[test]
    fn route_endpoint_mismatch_detected() {
        let (dfg, f, mut m) = valid_acc_mapping();
        m.routes[0].steps = vec![PeId(0), PeId(4)]; // ends at wrong PE
        let err = validate(&m, &dfg, &f).unwrap_err();
        assert!(matches!(err, ValidationError::BadRoute { .. }));
    }

    #[test]
    fn route_teleport_detected() {
        let (dfg, f, mut m) = valid_acc_mapping();
        // pe0 -> pe5 is a diagonal: not a mesh neighbour.
        m.place[1] = Placement {
            pe: PeId(5),
            time: 2,
        };
        m.routes[0].steps = vec![PeId(0), PeId(5)];
        m.routes[1].steps = vec![PeId(5)];
        m.routes[2] = Route {
            start_time: 3,
            steps: vec![PeId(5), PeId(1)],
        };
        m.place[2] = Placement {
            pe: PeId(1),
            time: 4,
        };
        let err = validate(&m, &dfg, &f).unwrap_err();
        assert!(
            matches!(err, ValidationError::BadRoute { why, .. } if why.contains("illegal move"))
        );
    }

    #[test]
    fn register_overflow_detected() {
        // Force many values to sit on one PE with rf_size 1.
        let mut f = mesh();
        f.rf_size = 1;
        let mut dfg = Dfg::new("pressure");
        let a = dfg.add_node(OpKind::Input(0));
        let b = dfg.add_node(OpKind::Input(1));
        let s = dfg.add_node(OpKind::Add);
        dfg.connect(a, s, 0);
        dfg.connect(b, s, 1);
        // Both operands parked on pe1 at t1..t2 (ii=4: no wrap dedup).
        let m = Mapping {
            ii: 4,
            place: vec![
                Placement {
                    pe: PeId(0),
                    time: 0,
                },
                Placement {
                    pe: PeId(2),
                    time: 0,
                },
                Placement {
                    pe: PeId(1),
                    time: 2,
                },
            ],
            routes: vec![
                Route {
                    start_time: 1,
                    steps: vec![PeId(0), PeId(1)],
                },
                Route {
                    start_time: 1,
                    steps: vec![PeId(2), PeId(1)],
                },
            ],
        };
        let err = validate(&m, &dfg, &f).unwrap_err();
        assert!(matches!(err, ValidationError::RegisterOverflow { .. }));
    }

    #[test]
    fn route_all_output_validates() {
        // End-to-end: place by hand, route with the router, validate.
        let dfg = kernels::sad();
        let f = mesh();
        use cgra_ir::graph::{asap, unit_latency};
        let times = asap(&dfg, &unit_latency);
        // Adjacent PEs along the dependence chain (a, b, sub, abs, add,
        // out), two cycles per ASAP level so every hop fits.
        let pes = [PeId(0), PeId(5), PeId(1), PeId(2), PeId(6), PeId(7)];
        let place: Vec<Placement> = dfg
            .node_ids()
            .map(|n| Placement {
                pe: pes[n.index()],
                time: times[n.index()] * 2,
            })
            .collect();
        let ii = 8;
        let routes = crate::route::route_all(&f, &dfg, &place, ii, 8, true).expect("routable");
        let m = Mapping { ii, place, routes };
        validate(&m, &dfg, &f).unwrap();
    }

    #[test]
    fn shape_mismatch_detected() {
        let (dfg, f, mut m) = valid_acc_mapping();
        m.routes.pop();
        assert_eq!(validate(&m, &dfg, &f), Err(ValidationError::ShapeMismatch));
    }
}
