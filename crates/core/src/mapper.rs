//! The `Mapper` trait, configuration, errors, and the Table I taxonomy.

use crate::mapping::Mapping;
use crate::telemetry::Telemetry;
use cgra_arch::Fabric;
use cgra_ir::Dfg;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Duration;

/// The survey's Table I classification axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Family {
    /// Problem-specific constructive heuristics.
    Heuristic,
    /// Population-based meta-heuristics (GA, QEA).
    MetaPopulation,
    /// Local-search meta-heuristics (SA).
    MetaLocalSearch,
    /// ILP or branch-and-bound exact methods.
    ExactIlp,
    /// Constraint-satisfaction exact methods (CP, SAT, SMT).
    ExactCsp,
}

impl Family {
    /// Approximate vs exact — the top-level split of Table I.
    pub fn is_exact(self) -> bool {
        matches!(self, Family::ExactIlp | Family::ExactCsp)
    }

    pub fn label(self) -> &'static str {
        match self {
            Family::Heuristic => "heuristic",
            Family::MetaPopulation => "meta-heuristic (population)",
            Family::MetaLocalSearch => "meta-heuristic (local search)",
            Family::ExactIlp => "exact (ILP/B&B)",
            Family::ExactCsp => "exact (CSP)",
        }
    }
}

/// Mapper configuration and budgets.
#[derive(Debug, Clone)]
pub struct MapConfig {
    /// Search IIs from MII up to this bound (inclusive).
    pub max_ii: u32,
    /// Cap on the schedule horizon, as a multiple of the critical path.
    pub horizon_factor: u32,
    /// Wall-clock budget.
    pub time_limit: Duration,
    /// RNG seed for stochastic mappers.
    pub seed: u64,
    /// Mapper-specific effort knob (SA sweeps, GA generations, B&B
    /// nodes in thousands, …).
    pub effort: u32,
    /// Optional search-telemetry sink. Disabled by default; when
    /// enabled, mappers record counters and phase spans into it. See
    /// [`crate::telemetry`].
    pub telemetry: Telemetry,
}

impl Default for MapConfig {
    fn default() -> Self {
        MapConfig {
            max_ii: 16,
            horizon_factor: 4,
            time_limit: Duration::from_secs(20),
            seed: 0xC6_12A,
            effort: 100,
            telemetry: Telemetry::off(),
        }
    }
}

impl MapConfig {
    /// A quick-budget configuration for tests.
    pub fn fast() -> Self {
        MapConfig {
            max_ii: 8,
            time_limit: Duration::from_secs(10),
            effort: 20,
            ..Self::default()
        }
    }
}

/// Why a mapper failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// Proven or suspected infeasible within the II/horizon bounds.
    Infeasible(String),
    /// Budget exhausted before a valid mapping was found.
    Timeout,
    /// The DFG uses a feature the mapper does not support.
    Unsupported(String),
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::Infeasible(why) => write!(f, "infeasible: {why}"),
            MapError::Timeout => write!(f, "budget exhausted"),
            MapError::Unsupported(what) => write!(f, "unsupported: {what}"),
        }
    }
}

impl std::error::Error for MapError {}

/// A mapping technique. Implementations must return mappings that pass
/// [`crate::validate::validate`].
pub trait Mapper: Send + Sync {
    /// Short name used in reports ("modulo-list", "sa", "ilp", …).
    fn name(&self) -> &'static str;

    /// Taxonomy cell for the Table I reproduction.
    fn family(&self) -> Family;

    /// True if the mapper produces spatial (II = 1, one-op-per-PE)
    /// mappings rather than temporal ones.
    fn is_spatial(&self) -> bool {
        false
    }

    /// Map `dfg` onto `fabric`.
    fn map(&self, dfg: &Dfg, fabric: &Fabric, cfg: &MapConfig) -> Result<Mapping, MapError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_split() {
        assert!(Family::ExactIlp.is_exact());
        assert!(Family::ExactCsp.is_exact());
        assert!(!Family::Heuristic.is_exact());
        assert!(!Family::MetaPopulation.is_exact());
    }

    #[test]
    fn config_defaults_sane() {
        let c = MapConfig::default();
        assert!(c.max_ii >= 4);
        assert!(c.horizon_factor >= 1);
        let f = MapConfig::fast();
        assert!(f.time_limit <= c.time_limit);
    }
}
