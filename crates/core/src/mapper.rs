//! The `Mapper` trait, configuration, errors, and the Table I taxonomy.

use crate::diagnosis::Diagnosis;
use crate::engine::Budget;
use crate::ledger::Ledger;
use crate::mapping::Mapping;
use crate::telemetry::Telemetry;
use cgra_arch::{Fabric, TopologyCache};
use cgra_ir::Dfg;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// The survey's Table I classification axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Family {
    /// Problem-specific constructive heuristics.
    Heuristic,
    /// Population-based meta-heuristics (GA, QEA).
    MetaPopulation,
    /// Local-search meta-heuristics (SA).
    MetaLocalSearch,
    /// ILP or branch-and-bound exact methods.
    ExactIlp,
    /// Constraint-satisfaction exact methods (CP, SAT, SMT).
    ExactCsp,
}

impl Family {
    /// Approximate vs exact — the top-level split of Table I.
    pub fn is_exact(self) -> bool {
        matches!(self, Family::ExactIlp | Family::ExactCsp)
    }

    pub fn label(self) -> &'static str {
        match self {
            Family::Heuristic => "heuristic",
            Family::MetaPopulation => "meta-heuristic (population)",
            Family::MetaLocalSearch => "meta-heuristic (local search)",
            Family::ExactIlp => "exact (ILP/B&B)",
            Family::ExactCsp => "exact (CSP)",
        }
    }
}

/// Mapper configuration and budgets.
#[derive(Debug, Clone)]
pub struct MapConfig {
    /// Search IIs from `max(MII, min_ii)` up to this bound (inclusive).
    pub max_ii: u32,
    /// Floor on the II search (default 1). The parallel-II engine pins
    /// a job to a single II by setting `min_ii == max_ii`.
    pub min_ii: u32,
    /// Cap on the schedule horizon, as a multiple of the critical path.
    pub horizon_factor: u32,
    /// Wall-clock budget.
    pub time_limit: Duration,
    /// RNG seed for stochastic mappers.
    pub seed: u64,
    /// Mapper-specific effort knob (SA sweeps, GA generations, B&B
    /// nodes in thousands, …).
    pub effort: u32,
    /// Optional search-telemetry sink. Disabled by default; when
    /// enabled, mappers record counters and phase spans into it. See
    /// [`crate::telemetry`].
    pub telemetry: Telemetry,
    /// Optional run-ledger journal. Disabled by default; when enabled,
    /// the engine and the instrumented mappers append timestamped
    /// events (incumbents, race outcomes, II probes) into it. See
    /// [`crate::ledger`].
    pub ledger: Ledger,
    /// Externally imposed budget (deadline + cancel token). Unlimited
    /// by default; mappers derive their per-run budget from it via
    /// [`MapConfig::run_budget`], so a racing engine can cancel a run
    /// mid-search through the shared token. See [`crate::engine`].
    pub budget: Budget,
    /// Optional shared topology cache. `None` by default; mappers
    /// obtain their per-run cache via [`MapConfig::topo_for`], which
    /// reuses this one when it matches the fabric and builds a private
    /// one otherwise. The racing and parallel-II engines pre-seed it so
    /// every concurrent attempt shares a single table.
    pub topo: Option<Arc<TopologyCache>>,
    /// Let exact mappers reuse solver state between candidate IIs
    /// (assumption-based SAT, warm LP bases). On by default; switch off
    /// to force the from-scratch encoding path (the solver bench does
    /// this to measure the speedup).
    pub incremental: bool,
    /// Pool of reusable solver states, keyed by mapper × fabric ×
    /// kernel fingerprints (see [`crate::incremental`]). Shared across
    /// the per-II jobs of one sweep and, in a mapping-as-a-service
    /// setting, across repeated `map()` calls with the same config.
    pub incr: crate::incremental::IncrementalCtx,
    /// Failure forensics: when on, infeasible outcomes carry a
    /// structured [`Diagnosis`] (unsat-core probes in the exact
    /// mappers, the analytic MII decomposition everywhere). Off by
    /// default — the probes re-solve, so they cost real time on the
    /// failure path. See [`crate::diagnosis`].
    pub explain: bool,
}

impl Default for MapConfig {
    fn default() -> Self {
        MapConfig {
            max_ii: 16,
            min_ii: 1,
            horizon_factor: 4,
            time_limit: Duration::from_secs(20),
            seed: 0xC6_12A,
            effort: 100,
            telemetry: Telemetry::off(),
            ledger: Ledger::off(),
            budget: Budget::unlimited(),
            topo: None,
            incremental: true,
            incr: crate::incremental::IncrementalCtx::new(),
            explain: false,
        }
    }
}

impl MapConfig {
    /// A quick-budget configuration for tests.
    pub fn fast() -> Self {
        MapConfig {
            max_ii: 8,
            time_limit: Duration::from_secs(10),
            effort: 20,
            ..Self::default()
        }
    }

    /// A validating builder (rejects zero II/horizon bounds).
    pub fn builder() -> MapConfigBuilder {
        MapConfigBuilder::default()
    }

    /// The budget one mapper run must obey: the externally imposed
    /// [`MapConfig::budget`] tightened by this config's `time_limit`.
    /// Replaces the per-mapper `Instant::now() + time_limit` deadlines.
    pub fn run_budget(&self) -> Budget {
        self.budget.child(self.time_limit)
    }

    /// The topology cache a run against `fabric` should use: the
    /// pre-seeded [`MapConfig::topo`] when its fingerprint matches the
    /// fabric (an `Arc` clone, no table rebuild), or a freshly built
    /// private cache otherwise. Mappers call this once per `map()` and
    /// thread the result through their search.
    pub fn topo_for(&self, fabric: &Fabric) -> Arc<TopologyCache> {
        match &self.topo {
            Some(t) if t.matches(fabric) => Arc::clone(t),
            _ => Arc::new(TopologyCache::build(fabric)),
        }
    }

    /// The II range a temporal mapper must search, given the kernel's
    /// MII — the shared guard of every II loop. `Err` when the fabric
    /// lacks a required resource class (`mii == u32::MAX`) or the range
    /// is empty under `max_ii`/`context_depth`/`min_ii`.
    pub fn ii_range(&self, mii: u32, fabric: &Fabric) -> Result<(u32, u32), MapError> {
        if mii == u32::MAX {
            return Err(MapError::infeasible(
                "fabric lacks a required resource class",
            ));
        }
        let hi = self.max_ii.min(fabric.context_depth);
        let lo = mii.max(self.min_ii);
        if lo > hi {
            return Err(MapError::infeasible(format!(
                "MII {lo} exceeds the II bound {hi}"
            )));
        }
        Ok((lo, hi))
    }

    /// [`MapConfig::ii_range`] plus failure forensics: when the range
    /// is empty (or a required resource class is absent) and
    /// [`MapConfig::explain`] is on, the error carries the analytic
    /// MII-bound [`Diagnosis`] naming the binding resource class. The
    /// shared entry guard of every temporal mapper's II loop.
    pub fn ii_range_for(
        &self,
        dfg: &Dfg,
        mii: u32,
        fabric: &Fabric,
    ) -> Result<(u32, u32), MapError> {
        self.ii_range(mii, fabric).map_err(|e| match e {
            MapError::Infeasible(mut inf) if self.explain => {
                let hi = self.max_ii.min(fabric.context_depth);
                inf.diagnosis = Some(Box::new(crate::diagnosis::diagnose_mii_bound(
                    dfg, fabric, hi,
                )));
                MapError::Infeasible(inf)
            }
            other => other,
        })
    }
}

/// Builder for [`MapConfig`] that validates bounds at `build()`.
///
/// ```
/// use cgra_mapper_core::MapConfig;
/// use std::time::Duration;
///
/// let cfg = MapConfig::builder()
///     .max_ii(8)
///     .time_limit(Duration::from_secs(5))
///     .build()
///     .unwrap();
/// assert_eq!(cfg.max_ii, 8);
/// assert!(MapConfig::builder().max_ii(0).build().is_err());
/// ```
#[derive(Debug, Clone, Default)]
pub struct MapConfigBuilder {
    cfg: MapConfig,
}

impl MapConfigBuilder {
    pub fn max_ii(mut self, max_ii: u32) -> Self {
        self.cfg.max_ii = max_ii;
        self
    }

    pub fn min_ii(mut self, min_ii: u32) -> Self {
        self.cfg.min_ii = min_ii;
        self
    }

    pub fn horizon_factor(mut self, horizon_factor: u32) -> Self {
        self.cfg.horizon_factor = horizon_factor;
        self
    }

    pub fn time_limit(mut self, time_limit: Duration) -> Self {
        self.cfg.time_limit = time_limit;
        self
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    pub fn effort(mut self, effort: u32) -> Self {
        self.cfg.effort = effort;
        self
    }

    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.cfg.telemetry = telemetry;
        self
    }

    pub fn ledger(mut self, ledger: Ledger) -> Self {
        self.cfg.ledger = ledger;
        self
    }

    pub fn budget(mut self, budget: Budget) -> Self {
        self.cfg.budget = budget;
        self
    }

    /// Pre-seed the shared topology cache (see [`MapConfig::topo`]).
    pub fn topo(mut self, topo: Arc<TopologyCache>) -> Self {
        self.cfg.topo = Some(topo);
        self
    }

    /// Enable/disable incremental solver-state reuse (see
    /// [`MapConfig::incremental`]).
    pub fn incremental(mut self, incremental: bool) -> Self {
        self.cfg.incremental = incremental;
        self
    }

    /// Attach an existing incremental-state pool (see
    /// [`MapConfig::incr`]).
    pub fn incr(mut self, incr: crate::incremental::IncrementalCtx) -> Self {
        self.cfg.incr = incr;
        self
    }

    /// Enable failure forensics (see [`MapConfig::explain`]).
    pub fn explain(mut self, explain: bool) -> Self {
        self.cfg.explain = explain;
        self
    }

    /// Validate and produce the config.
    pub fn build(self) -> Result<MapConfig, ConfigError> {
        let c = &self.cfg;
        if c.max_ii == 0 {
            return Err(ConfigError("max_ii must be at least 1".into()));
        }
        if c.min_ii == 0 {
            return Err(ConfigError("min_ii must be at least 1".into()));
        }
        if c.min_ii > c.max_ii {
            return Err(ConfigError(format!(
                "min_ii {} exceeds max_ii {}",
                c.min_ii, c.max_ii
            )));
        }
        if c.horizon_factor == 0 {
            return Err(ConfigError("horizon_factor must be at least 1".into()));
        }
        if c.time_limit.is_zero() {
            return Err(ConfigError("time_limit must be positive".into()));
        }
        Ok(self.cfg)
    }
}

/// An invalid [`MapConfig`] rejected by the builder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(pub String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid map config: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

/// The structured payload of [`MapError::Infeasible`]: the classic
/// prose reason plus, when failure forensics ran, a machine-readable
/// [`Diagnosis`] attributing the failure to a resource class.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Infeasibility {
    /// Human-readable reason (what the old `Infeasible(String)` held).
    pub why: String,
    /// Structured attribution, present when [`MapConfig::explain`] was
    /// on and a diagnosis could be extracted. Boxed so the common
    /// no-diagnosis error stays small on the `Result` hot paths.
    pub diagnosis: Option<Box<Diagnosis>>,
}

impl fmt::Display for Infeasibility {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.why)?;
        if let Some(d) = &self.diagnosis {
            write!(f, " [{}-bound]", d.class.label())?;
        }
        Ok(())
    }
}

impl<S: Into<String>> From<S> for Infeasibility {
    fn from(why: S) -> Self {
        Infeasibility {
            why: why.into(),
            diagnosis: None,
        }
    }
}

/// Why a mapper failed. Structured and serializable so `--json`
/// consumers can dispatch on the variant instead of parsing prose.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MapError {
    /// Proven or suspected infeasible within the II/horizon bounds.
    Infeasible(Infeasibility),
    /// Budget exhausted before a valid mapping was found.
    Timeout,
    /// The run was cancelled through its budget's token (e.g. a rival
    /// mapper won a portfolio race first).
    Cancelled,
    /// The DFG uses a feature the mapper does not support.
    Unsupported(String),
}

impl MapError {
    /// An [`MapError::Infeasible`] with no diagnosis attached — the
    /// construction every mapper uses on its plain failure paths.
    pub fn infeasible(why: impl Into<String>) -> Self {
        MapError::Infeasible(Infeasibility {
            why: why.into(),
            diagnosis: None,
        })
    }

    /// An [`MapError::Infeasible`] carrying failure forensics.
    pub fn infeasible_with(why: impl Into<String>, diagnosis: Diagnosis) -> Self {
        MapError::Infeasible(Infeasibility {
            why: why.into(),
            diagnosis: Some(Box::new(diagnosis)),
        })
    }

    /// The diagnosis, if this is an explained infeasibility.
    pub fn diagnosis(&self) -> Option<&Diagnosis> {
        match self {
            MapError::Infeasible(inf) => inf.diagnosis.as_deref(),
            _ => None,
        }
    }

    /// Stable machine-readable discriminant for reports.
    pub fn kind(&self) -> &'static str {
        match self {
            MapError::Infeasible(_) => "infeasible",
            MapError::Timeout => "timeout",
            MapError::Cancelled => "cancelled",
            MapError::Unsupported(_) => "unsupported",
        }
    }
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::Infeasible(why) => write!(f, "infeasible: {why}"),
            MapError::Timeout => write!(f, "budget exhausted"),
            MapError::Cancelled => write!(f, "cancelled: budget token fired"),
            MapError::Unsupported(what) => write!(f, "unsupported: {what}"),
        }
    }
}

impl std::error::Error for MapError {}

/// A mapping technique. Implementations must return mappings that pass
/// [`crate::validate::validate`].
pub trait Mapper: Send + Sync {
    /// Short name used in reports ("modulo-list", "sa", "ilp", …).
    fn name(&self) -> &'static str;

    /// Taxonomy cell for the Table I reproduction.
    fn family(&self) -> Family;

    /// True if the mapper produces spatial (II = 1, one-op-per-PE)
    /// mappings rather than temporal ones.
    fn is_spatial(&self) -> bool {
        false
    }

    /// Map `dfg` onto `fabric`.
    fn map(&self, dfg: &Dfg, fabric: &Fabric, cfg: &MapConfig) -> Result<Mapping, MapError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_split() {
        assert!(Family::ExactIlp.is_exact());
        assert!(Family::ExactCsp.is_exact());
        assert!(!Family::Heuristic.is_exact());
        assert!(!Family::MetaPopulation.is_exact());
    }

    #[test]
    fn config_defaults_sane() {
        let c = MapConfig::default();
        assert!(c.max_ii >= 4);
        assert!(c.horizon_factor >= 1);
        let f = MapConfig::fast();
        assert!(f.time_limit <= c.time_limit);
    }
}
