//! The mapper registry: every technique registered once, by name.
//!
//! Before this module the mapper zoo lived in three hand-maintained
//! lists (the CLI's lookup, the bench drivers' portfolio, and
//! `mappers::all_mappers`). The registry is the single source of
//! truth: one [`MapperSpec`] per technique — name, Table I family,
//! spatial flag, constructor — and every consumer builds its zoo from
//! [`MapperRegistry::standard`]. Unknown-name errors carry the full
//! list of valid names so `--mapper` typos are self-explanatory.

use crate::mapper::{Family, Mapper};
use crate::mappers::*;
use std::fmt;
use std::sync::OnceLock;

/// One registered mapping technique.
pub struct MapperSpec {
    /// The name reported by [`Mapper::name`] ("modulo-list", "sa", …).
    pub name: &'static str,
    /// Table I taxonomy cell.
    pub family: Family,
    /// True for spatial (II = 1) mappers.
    pub spatial: bool,
    ctor: fn() -> Box<dyn Mapper>,
}

impl MapperSpec {
    /// Construct the mapper at default settings.
    pub fn build(&self) -> Box<dyn Mapper> {
        (self.ctor)()
    }
}

impl fmt::Debug for MapperSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MapperSpec")
            .field("name", &self.name)
            .field("family", &self.family)
            .field("spatial", &self.spatial)
            .finish()
    }
}

/// A name that is not in the registry, with the valid alternatives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownMapper {
    pub requested: String,
    pub valid: Vec<&'static str>,
}

impl fmt::Display for UnknownMapper {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown mapper `{}`; valid mappers: {}",
            self.requested,
            self.valid.join(", ")
        )
    }
}

impl std::error::Error for UnknownMapper {}

/// The registry of mapping techniques.
#[derive(Debug)]
pub struct MapperRegistry {
    specs: Vec<MapperSpec>,
}

macro_rules! spec {
    ($name:literal, $family:expr, $spatial:expr, $ty:ty) => {
        MapperSpec {
            name: $name,
            family: $family,
            spatial: $spatial,
            ctor: || Box::new(<$ty>::default()),
        }
    };
}

impl MapperRegistry {
    /// The standard zoo: every Table I technique, in the canonical
    /// report order (spatial → temporal heuristics → meta-heuristics →
    /// exact methods).
    pub fn standard() -> &'static MapperRegistry {
        static REGISTRY: OnceLock<MapperRegistry> = OnceLock::new();
        REGISTRY.get_or_init(|| MapperRegistry {
            specs: vec![
                spec!("spatial-greedy", Family::Heuristic, true, SpatialGreedy),
                spec!("graph-drawing", Family::Heuristic, true, GraphDrawing),
                spec!("modulo-list", Family::Heuristic, false, ModuloList),
                spec!("edge-centric", Family::Heuristic, false, EdgeCentric),
                spec!("epimap", Family::Heuristic, false, EpiMap),
                spec!("ramp", Family::Heuristic, false, Ramp),
                spec!("himap", Family::Heuristic, false, HiMap),
                spec!("graph-minor", Family::Heuristic, false, GraphMinor),
                spec!("sa", Family::MetaLocalSearch, false, SimulatedAnnealing),
                spec!("ga", Family::MetaPopulation, false, Genetic),
                spec!("qea", Family::MetaPopulation, false, Qea),
                spec!("ilp", Family::ExactIlp, false, IlpMapper),
                spec!("bnb", Family::ExactIlp, false, BranchAndBound),
                spec!("cp", Family::ExactCsp, false, CpMapper),
                spec!("sat", Family::ExactCsp, false, SatMapper),
                spec!("smt", Family::ExactCsp, false, SmtMapper),
            ],
        })
    }

    /// Every registered spec, in report order.
    pub fn specs(&self) -> &[MapperSpec] {
        &self.specs
    }

    /// Every registered name, in report order.
    pub fn names(&self) -> Vec<&'static str> {
        self.specs.iter().map(|s| s.name).collect()
    }

    /// Look a spec up by name.
    pub fn get(&self, name: &str) -> Option<&MapperSpec> {
        self.specs.iter().find(|s| s.name == name)
    }

    /// Construct the named mapper, or an error listing valid names.
    pub fn build(&self, name: &str) -> Result<Box<dyn Mapper>, UnknownMapper> {
        self.get(name)
            .map(MapperSpec::build)
            .ok_or_else(|| UnknownMapper {
                requested: name.to_string(),
                valid: self.names(),
            })
    }

    /// Construct every mapper (the Table I experiment portfolio).
    pub fn build_all(&self) -> Vec<Box<dyn Mapper>> {
        self.specs.iter().map(MapperSpec::build).collect()
    }

    /// Construct the fast constructive-heuristic subset.
    pub fn build_heuristics(&self) -> Vec<Box<dyn Mapper>> {
        self.specs
            .iter()
            .filter(|s| s.family == Family::Heuristic)
            .map(MapperSpec::build)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_metadata_matches_the_mapper() {
        for spec in MapperRegistry::standard().specs() {
            let m = spec.build();
            assert_eq!(m.name(), spec.name, "{}", spec.name);
            assert_eq!(m.family(), spec.family, "{}", spec.name);
            assert_eq!(m.is_spatial(), spec.spatial, "{}", spec.name);
        }
    }

    #[test]
    fn names_are_unique() {
        let names = MapperRegistry::standard().names();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len());
        assert_eq!(names.len(), 16);
    }

    #[test]
    fn unknown_name_lists_alternatives() {
        let err = match MapperRegistry::standard().build("no-such") {
            Err(e) => e,
            Ok(m) => panic!("`no-such` unexpectedly built `{}`", m.name()),
        };
        assert_eq!(err.requested, "no-such");
        assert!(err.valid.contains(&"modulo-list"));
        let msg = err.to_string();
        assert!(msg.contains("no-such") && msg.contains("sat"));
    }

    #[test]
    fn build_by_name_works() {
        let m = MapperRegistry::standard().build("sa").unwrap();
        assert_eq!(m.name(), "sa");
    }
}
