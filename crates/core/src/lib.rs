//! # cgra-mapper-core
//!
//! The unified CGRA mapping framework: one `Mapping` representation,
//! one validator, one router — and an implementation of every mapping
//! technique family classified in Table I of Martin's survey
//! (*Twenty Years of Automated Methods for Mapping Applications on
//! CGRA*, IPDPSW 2022):
//!
//! | Family | Mappers here |
//! |---|---|
//! | Heuristics (spatial) | [`mappers::SpatialGreedy`], [`mappers::GraphDrawing`] |
//! | Heuristics (temporal) | [`mappers::ModuloList`], [`mappers::EdgeCentric`], [`mappers::EpiMap`], [`mappers::Ramp`], [`mappers::HiMap`], [`mappers::GraphMinor`] |
//! | Meta-heuristics | [`mappers::SimulatedAnnealing`], [`mappers::Genetic`], [`mappers::Qea`] |
//! | ILP / B&B | [`mappers::IlpMapper`], [`mappers::BranchAndBound`] |
//! | CSP (CP / SAT / SMT) | [`mappers::CpMapper`], [`mappers::SatMapper`], [`mappers::SmtMapper`] |
//!
//! The mapping model (see [`mapping`]) is the common denominator of the
//! surveyed techniques: operations bind to `(PE, cycle)` pairs, values
//! move one hop per cycle through register files, time folds modulo the
//! initiation interval (II), and a *spatial* mapping is the special
//! case II = 1 with at most one operation per PE.
//!
//! ```
//! use cgra_ir::kernels;
//! use cgra_arch::{Fabric, Topology};
//! use cgra_mapper_core::prelude::*;
//!
//! let dfg = kernels::dot_product();
//! let fabric = Fabric::homogeneous(4, 4, Topology::Mesh);
//! let mapper = ModuloList::default();
//! let mapping = mapper.map(&dfg, &fabric, &MapConfig::default()).unwrap();
//! validate(&mapping, &dfg, &fabric).unwrap();
//! assert!(mapping.ii >= 1);
//! ```

pub mod ctrlflow;
pub mod diagnosis;
pub mod engine;
pub mod incremental;
pub mod ledger;
pub mod mapper;
pub mod mappers;
pub mod mapping;
pub mod memmap;
pub mod metrics;
pub mod portfolio;
pub mod registry;
pub mod report;
pub mod route;
pub mod streaming;
pub mod telemetry;
pub mod validate;

pub use diagnosis::{diagnose_mii_bound, Diagnosis, ResourceClass};
pub use engine::{parallel_ii, race, Budget, CancelToken, RaceOutcome};
pub use incremental::{kernel_fingerprint, IncrKey, IncrementalCtx};
pub use ledger::{EventKind, Ledger, LedgerEvent, RunLedger};
pub use mapper::{
    ConfigError, Family, Infeasibility, MapConfig, MapConfigBuilder, MapError, Mapper,
};
pub use mapping::{Mapping, Placement, Route};
pub use metrics::{Metrics, UtilizationMap};
pub use registry::{MapperRegistry, MapperSpec, UnknownMapper};
pub use report::{ConfigDigest, LatencySummary, RunReport};
pub use telemetry::{
    Counter, Histogram, Phase, SearchStats, SpanRecord, StatsSnapshot, Telemetry, HISTOGRAM_BUCKETS,
};
pub use validate::{validate, validate_with, ValidationError};

/// Everything a mapper user needs.
pub mod prelude {
    pub use crate::diagnosis::{diagnose_mii_bound, Diagnosis, ResourceClass};
    pub use crate::engine::{parallel_ii, race, Budget, CancelToken, RaceOutcome};
    pub use crate::incremental::{kernel_fingerprint, IncrKey, IncrementalCtx};
    pub use crate::ledger::{EventKind, Ledger, LedgerEvent, RunLedger};
    pub use crate::mapper::{
        ConfigError, Family, Infeasibility, MapConfig, MapConfigBuilder, MapError, Mapper,
    };
    pub use crate::mappers::*;
    pub use crate::mapping::{Mapping, Placement, Route};
    pub use crate::metrics::{Metrics, UtilizationMap};
    pub use crate::portfolio::{run_portfolio, PortfolioEntry};
    pub use crate::registry::{MapperRegistry, MapperSpec, UnknownMapper};
    pub use crate::report::{ConfigDigest, LatencySummary, RunReport};
    pub use crate::telemetry::{Counter, Phase, SearchStats, SpanRecord, StatsSnapshot, Telemetry};
    pub use crate::validate::{validate, validate_with};
}
