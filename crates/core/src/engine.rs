//! The map engine: shared budgets, cooperative cancellation, and
//! racing execution modes.
//!
//! Every mapper used to poll its own private `Instant` deadline, which
//! made two things impossible: running the whole Table I zoo against
//! *one* wall-clock budget, and stopping a losing search once a rival
//! had already won. This module centralises both:
//!
//! * [`Budget`] — a deadline plus a shared cancel flag, threaded
//!   through [`MapConfig`](crate::MapConfig) into every mapper and
//!   (via [`Budget::interrupt`]) into the solver engines, with a
//!   stride-amortised [`Budget::expired`] so the hot scheduling loops
//!   pay one relaxed atomic load per poll;
//! * [`race`] — SAT-MapIt-style portfolio racing: all jobs for one
//!   kernel run on the rayon pool under a shared budget, the first
//!   validated mapping (at the target II, if one is set) cancels the
//!   rest, and losers record [`MapError::Cancelled`] with their
//!   telemetry snapshots intact;
//! * [`parallel_ii`] — Walker & Anderson-style per-II sweeps: candidate
//!   IIs race concurrently instead of bottom-up, and a success at II
//!   *k* cancels every job pinned to an II above *k*.

use crate::mapper::{MapConfig, MapError, Mapper};
use crate::mapping::Mapping;
use crate::metrics::{Metrics, UtilizationMap};
use crate::portfolio::PortfolioEntry;
use crate::report::LatencySummary;
use crate::telemetry::{Counter, Telemetry};
use crate::validate::validate_with;
use cgra_arch::Fabric;
use cgra_ir::Dfg;
use cgra_solver::Interrupt;
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A shared cancellation flag. Cloning shares the flag; setting it is
/// one-way (there is no reset — budgets are per-run values).
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Signal every budget sharing this token to stop.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }

    fn flag(&self) -> Arc<AtomicBool> {
        self.0.clone()
    }
}

/// A wall-clock deadline plus a shared cancel flag.
///
/// The hot-path poll is [`Budget::expired`]: the cancel flag is read on
/// every call (a relaxed load), the clock only on every
/// [`Interrupt::STRIDE`]-th call, counted per clone — so a `Budget`
/// can sit in a [`MapConfig`] shared across rayon workers without the
/// poll counter becoming a contended cache line ([`Clone`] resets it).
#[derive(Debug)]
pub struct Budget {
    deadline: Option<Instant>,
    token: CancelToken,
    /// Amortisation counter for deadline polls (fresh per clone).
    probe: AtomicU32,
}

impl Clone for Budget {
    fn clone(&self) -> Self {
        Budget {
            deadline: self.deadline,
            token: self.token.clone(),
            probe: AtomicU32::new(0),
        }
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

impl Budget {
    /// No deadline; stops only if cancelled.
    pub fn unlimited() -> Self {
        Budget {
            deadline: None,
            token: CancelToken::new(),
            probe: AtomicU32::new(0),
        }
    }

    /// Expires `limit` from now.
    pub fn for_duration(limit: Duration) -> Self {
        Budget {
            deadline: Some(Instant::now() + limit),
            token: CancelToken::new(),
            probe: AtomicU32::new(0),
        }
    }

    /// Expires at `deadline`.
    pub fn until(deadline: Instant) -> Self {
        Budget {
            deadline: Some(deadline),
            token: CancelToken::new(),
            probe: AtomicU32::new(0),
        }
    }

    /// A child budget sharing this budget's cancel token, with the
    /// deadline tightened to `min(self.deadline, now + limit)`. This is
    /// how a mapper's per-run `time_limit` composes with an externally
    /// imposed race deadline.
    pub fn child(&self, limit: Duration) -> Budget {
        let local = Instant::now() + limit;
        Budget {
            deadline: Some(self.deadline.map_or(local, |d| d.min(local))),
            token: self.token.clone(),
            probe: AtomicU32::new(0),
        }
    }

    /// A budget under this budget's deadline but with a *fresh* cancel
    /// token, for jobs that must be cancellable individually (per-II
    /// racing). The parent's token is not forwarded; the caller holds
    /// the fork handles and cancels them selectively.
    pub fn fork(&self, limit: Duration) -> Budget {
        let local = Instant::now() + limit;
        Budget {
            deadline: Some(self.deadline.map_or(local, |d| d.min(local))),
            token: CancelToken::new(),
            probe: AtomicU32::new(0),
        }
    }

    /// Amortised stop poll for hot loops: cancel flag every call, clock
    /// every [`Interrupt::STRIDE`]-th call.
    #[inline]
    pub fn expired(&self) -> bool {
        if self.token.is_cancelled() {
            return true;
        }
        if let Some(deadline) = self.deadline {
            if self.probe.fetch_add(1, Ordering::Relaxed) % Interrupt::STRIDE == 0 {
                return Instant::now() > deadline;
            }
        }
        false
    }

    /// Precise stop poll (always reads the clock). For cold paths:
    /// between II attempts, CEGAR rounds, SA sweeps.
    pub fn expired_now(&self) -> bool {
        self.token.is_cancelled() || matches!(self.deadline, Some(d) if Instant::now() > d)
    }

    /// Cancel every budget sharing this token.
    pub fn cancel(&self) {
        self.token.cancel();
    }

    pub fn is_cancelled(&self) -> bool {
        self.token.is_cancelled()
    }

    /// The shared token (to cancel from elsewhere).
    pub fn token(&self) -> CancelToken {
        self.token.clone()
    }

    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Time left before the deadline (`None` = unlimited, zero if past).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// The error a mapper should return when this budget stopped it:
    /// [`MapError::Cancelled`] if the token fired (a rival won),
    /// [`MapError::Timeout`] if the clock ran out.
    pub fn error(&self) -> MapError {
        if self.token.is_cancelled() {
            MapError::Cancelled
        } else {
            MapError::Timeout
        }
    }

    /// The solver-side view of this budget: same deadline, same cancel
    /// flag, its own stride counter. Hand this to
    /// `SatSolver::interrupt`, `CpModel::set_interrupt`,
    /// `IlpModel::set_interrupt` so exact engines abort mid-search.
    pub fn interrupt(&self) -> Interrupt {
        Interrupt::new(self.deadline, Some(self.token.flag()))
    }
}

/// One mapper's result in a [`race`].
#[derive(Debug, Clone)]
pub struct RaceOutcome {
    /// Name of the winning mapper, if any job produced a validated
    /// mapping (at the target II, when one was set).
    pub winner: Option<String>,
    /// The winning mapping.
    pub mapping: Option<Mapping>,
    /// Per-job rows, in mapper order — losers carry
    /// [`MapError::Cancelled`] and their telemetry snapshots.
    pub entries: Vec<PortfolioEntry>,
    /// Wall-clock for the whole race.
    pub wall_ms: f64,
}

impl RaceOutcome {
    /// Winning metrics, if the race was won.
    pub fn metrics(&self, dfg: &Dfg, fabric: &Fabric) -> Option<Metrics> {
        self.mapping.as_ref().map(|m| Metrics::of(m, dfg, fabric))
    }
}

/// Race every mapper on one kernel: jobs run on the rayon pool under a
/// shared budget derived from `cfg` (`cfg.budget` tightened by
/// `cfg.time_limit`); the first job whose mapping passes
/// [`validate`] — and meets `target_ii`, when given — cancels the
/// rest. Losing jobs record [`MapError::Cancelled`] with telemetry
/// snapshots intact, so the race still yields a full effort profile.
pub fn race(
    mappers: &[Box<dyn Mapper>],
    dfg: &Dfg,
    fabric: &Fabric,
    cfg: &MapConfig,
    target_ii: Option<u32>,
) -> RaceOutcome {
    // The race token must be local (`fork`, not `child`): the winner
    // cancels it to stop its rivals, and with a shared token that
    // cancel would outlive the race and poison the caller's budget for
    // every later run under the same config. External cancellation of
    // `cfg.budget` is still honoured at job boundaries below.
    let shared = cfg.budget.fork(cfg.time_limit);
    // One topology table shared by every job and the winner validation.
    let topo = cfg.topo_for(fabric);
    let winner: Mutex<Option<(String, Mapping)>> = Mutex::new(None);
    let start = Instant::now();

    // RaceStart events are emitted sequentially before the jobs spawn,
    // so every later RaceWin/RaceLoss lands after its start in the
    // ledger's claim order (ties in `t_us` resolve causally).
    for mapper in mappers {
        cfg.ledger.race_start(mapper.name());
    }

    let entries: Vec<PortfolioEntry> = mappers
        .par_iter()
        .map(|mapper| {
            let mut job_cfg = cfg.clone();
            job_cfg.telemetry = Telemetry::enabled();
            job_cfg.budget = shared.clone();
            job_cfg.topo = Some(Arc::clone(&topo));
            let job_start = Instant::now();
            // A job that only gets scheduled after the race is decided
            // (or after the caller cancelled the whole race) skips the
            // map call entirely.
            let result = if shared.is_cancelled() || cfg.budget.is_cancelled() {
                Err(MapError::Cancelled)
            } else {
                mapper.map(dfg, fabric, &job_cfg)
            };
            let compile_ms = job_start.elapsed().as_secs_f64() * 1e3;
            let mut won = false;
            let (metrics, utilization, error) = match result {
                Ok(m) => match validate_with(&m, dfg, fabric, &topo) {
                    Ok(()) => {
                        let metrics = Metrics::of(&m, dfg, fabric);
                        let utilization = UtilizationMap::of(&m, dfg, fabric);
                        let on_target = target_ii.is_none_or(|t| metrics.ii <= t);
                        if on_target {
                            let mut w = winner.lock().unwrap();
                            if w.is_none() {
                                *w = Some((mapper.name().to_string(), m));
                                shared.cancel();
                                won = true;
                                cfg.ledger.race_win(mapper.name(), metrics.ii);
                            }
                        }
                        (Some(metrics), Some(utilization), None)
                    }
                    Err(e) => (
                        None,
                        None,
                        Some(MapError::infeasible(format!("INVALID OUTPUT: {e}"))),
                    ),
                },
                Err(e) => (None, None, Some(e)),
            };
            if matches!(error, Some(MapError::Cancelled)) {
                job_cfg.telemetry.bump(Counter::Cancellations);
            }
            match &error {
                // Mapped successfully but another mapper (or a target
                // II miss) decided the race.
                None if !won => cfg.ledger.race_loss(mapper.name(), "beaten"),
                Some(e) => cfg.ledger.race_loss(mapper.name(), e.kind()),
                None => {}
            }
            let diagnosis = error.as_ref().and_then(|e| e.diagnosis().cloned());
            PortfolioEntry {
                mapper: mapper.name().to_string(),
                family_label: mapper.family().label().to_string(),
                exact: mapper.family().is_exact(),
                spatial: mapper.is_spatial(),
                kernel: dfg.name.clone(),
                metrics,
                error_detail: error.clone(),
                error: error.map(|e| e.to_string()),
                compile_ms,
                stats: job_cfg.telemetry.snapshot(),
                // Race jobs share the caller's ledger (the race
                // timeline lives there), so per-entry journals stay
                // empty.
                events: Vec::new(),
                events_dropped: 0,
                diagnosis,
                spans_dropped: job_cfg.telemetry.spans_dropped(),
                latency: LatencySummary::rows_from(&job_cfg.telemetry),
                utilization,
            }
        })
        .collect();

    let (winner, mapping) = match winner.into_inner().unwrap() {
        Some((name, m)) => (Some(name), Some(m)),
        None => (None, None),
    };
    if winner.is_none() && shared.expired_now() {
        cfg.ledger.budget_exhausted("race");
    }
    RaceOutcome {
        winner,
        mapping,
        entries,
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
    }
}

/// Race candidate IIs concurrently instead of bottom-up.
///
/// Each job pins the mapper to a single II (via `min_ii == max_ii`)
/// under its own forked budget; a validated mapping at II *k* cancels
/// every job pinned above *k*, and the smallest successful II wins.
/// Spatial mappers (always II = 1) fall through to a plain call.
pub fn parallel_ii(
    mapper: &dyn Mapper,
    dfg: &Dfg,
    fabric: &Fabric,
    cfg: &MapConfig,
) -> Result<Mapping, MapError> {
    if mapper.is_spatial() {
        return mapper.map(dfg, fabric, cfg);
    }
    let mii = crate::mappers::ModuloList::mii(dfg, fabric);
    let (lo, hi) = cfg.ii_range_for(dfg, mii, fabric)?;
    if lo == hi {
        return mapper.map(dfg, fabric, cfg);
    }

    let parent = cfg.budget.child(cfg.time_limit);
    // One topology table shared by every per-II job.
    let topo = cfg.topo_for(fabric);
    let iis: Vec<u32> = (lo..=hi).collect();
    // One individually cancellable budget per II job.
    let budgets: Vec<Budget> = iis.iter().map(|_| parent.fork(cfg.time_limit)).collect();
    let best: Mutex<Option<(u32, Mapping)>> = Mutex::new(None);
    let best_ii = AtomicU32::new(u32::MAX);

    let errors: Vec<Option<MapError>> = (0..iis.len())
        .into_par_iter()
        .map(|j| {
            let ii = iis[j];
            // Dominated before it started (a lower II already won, or
            // the whole sweep was cancelled from outside).
            if best_ii.load(Ordering::Acquire) <= ii || parent.is_cancelled() {
                cfg.telemetry.bump(Counter::Cancellations);
                return Some(MapError::Cancelled);
            }
            let mut job_cfg = cfg.clone();
            job_cfg.min_ii = ii;
            job_cfg.max_ii = ii;
            job_cfg.budget = budgets[j].clone();
            job_cfg.topo = Some(Arc::clone(&topo));
            // No ledger emission here: the mapper itself journals its
            // `ii_attempt`, exactly as in the sequential bottom-up
            // sweep, so convergence views agree between the two paths.
            match mapper.map(dfg, fabric, &job_cfg) {
                Ok(m) => {
                    if validate_with(&m, dfg, fabric, &topo).is_err() {
                        return Some(MapError::infeasible(format!("INVALID OUTPUT at II {ii}")));
                    }
                    let mut b = best.lock().unwrap();
                    if b.as_ref().is_none_or(|(bi, _)| ii < *bi) {
                        *b = Some((ii, m));
                        best_ii.fetch_min(ii, Ordering::AcqRel);
                        cfg.telemetry.bump(Counter::Incumbents);
                        cfg.ledger.incumbent(mapper.name(), ii, ii as f64);
                        // Cancel every job chasing a worse II.
                        for (k, budget) in budgets.iter().enumerate() {
                            if iis[k] > ii {
                                budget.cancel();
                            }
                        }
                    }
                    None
                }
                Err(e) => {
                    // A job cancelled mid-search (a lower II validated
                    // while it was running) counts like one skipped
                    // before starting.
                    if matches!(e, MapError::Cancelled) {
                        cfg.telemetry.bump(Counter::Cancellations);
                    }
                    Some(e)
                }
            }
        })
        .collect();

    if let Some((_, m)) = best.into_inner().unwrap() {
        return Ok(m);
    }
    // No II succeeded: report a timeout/cancellation if any job hit
    // one, otherwise infeasibility over the whole range.
    if parent.is_cancelled() {
        return Err(MapError::Cancelled);
    }
    if errors.iter().any(|e| matches!(e, Some(MapError::Timeout))) || parent.expired_now() {
        cfg.ledger.budget_exhausted(mapper.name());
        return Err(MapError::Timeout);
    }
    Err(MapError::infeasible(format!(
        "no II in {lo}..={hi} admits a schedule"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mappers::{ModuloList, SpatialGreedy};
    use crate::validate::validate;
    use cgra_arch::Topology;
    use cgra_ir::kernels;

    #[test]
    fn unlimited_budget_never_expires() {
        let b = Budget::unlimited();
        for _ in 0..10_000 {
            assert!(!b.expired());
        }
        assert!(!b.expired_now());
        assert_eq!(b.remaining(), None);
    }

    #[test]
    fn cancel_is_seen_by_every_clone() {
        let b = Budget::for_duration(Duration::from_secs(3600));
        let c = b.clone();
        let child = b.child(Duration::from_secs(3600));
        b.cancel();
        assert!(c.expired());
        assert!(child.expired());
        assert_eq!(child.error(), MapError::Cancelled);
    }

    #[test]
    fn fork_is_isolated_from_siblings() {
        let parent = Budget::for_duration(Duration::from_secs(3600));
        let a = parent.fork(Duration::from_secs(3600));
        let b = parent.fork(Duration::from_secs(3600));
        a.cancel();
        assert!(a.expired_now());
        assert!(!b.expired_now());
        assert!(!parent.is_cancelled());
    }

    #[test]
    fn expired_deadline_reports_timeout() {
        let b = Budget::until(Instant::now() - Duration::from_millis(1));
        assert!(b.expired_now());
        assert_eq!(b.error(), MapError::Timeout);
        assert_eq!(b.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn interrupt_view_shares_the_token() {
        let b = Budget::unlimited();
        let i = b.interrupt();
        assert!(!i.should_stop_now());
        b.cancel();
        assert!(i.should_stop_now());
        assert!(i.is_cancelled());
    }

    #[test]
    fn race_produces_validated_winner() {
        let mappers: Vec<Box<dyn Mapper>> = vec![
            Box::new(SpatialGreedy::default()),
            Box::new(ModuloList::default()),
        ];
        let dfg = kernels::dot_product();
        let fabric = Fabric::homogeneous(4, 4, Topology::Mesh);
        let out = race(&mappers, &dfg, &fabric, &MapConfig::fast(), None);
        assert!(out.winner.is_some());
        let m = out.mapping.as_ref().unwrap();
        validate(m, &dfg, &fabric).unwrap();
        assert_eq!(out.entries.len(), 2);
        assert!(out.entries.iter().all(|e| e.stats.is_some()));
    }

    #[test]
    fn parallel_ii_journals_attempts_like_the_sequential_sweep() {
        use crate::ledger::{EventKind, Ledger};
        let mapper = ModuloList::default();
        let dfg = kernels::fir(4);
        let fabric = Fabric::homogeneous(4, 4, Topology::Mesh);
        let attempts = |l: &Ledger| -> Vec<(String, u32)> {
            l.events()
                .iter()
                .filter_map(|e| match &e.kind {
                    EventKind::IiAttempt { mapper, ii } => Some((mapper.clone(), *ii)),
                    _ => None,
                })
                .collect()
        };
        let seq_ledger = Ledger::enabled();
        let seq_cfg = MapConfig {
            ledger: seq_ledger.clone(),
            ..MapConfig::fast()
        };
        let seq = mapper.map(&dfg, &fabric, &seq_cfg).unwrap();
        let par_ledger = Ledger::enabled();
        let par_cfg = MapConfig {
            ledger: par_ledger.clone(),
            ..MapConfig::fast()
        };
        let par = parallel_ii(&mapper, &dfg, &fabric, &par_cfg).unwrap();
        assert_eq!(par.ii, seq.ii);
        // The engine no longer double-emits on top of the mapper's own
        // journal: each (mapper, II) attempt appears exactly once, as
        // in the sequential sweep, so convergence views agree.
        let par_attempts = attempts(&par_ledger);
        let mut dedup = par_attempts.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(par_attempts.len(), dedup.len(), "duplicate IiAttempt");
        assert!(par_attempts.contains(&("modulo-list".to_string(), par.ii)));
        assert!(attempts(&seq_ledger).contains(&("modulo-list".to_string(), seq.ii)));
    }

    #[test]
    fn parallel_ii_matches_bottom_up_ii() {
        let mapper = ModuloList::default();
        let dfg = kernels::fir(4);
        let fabric = Fabric::homogeneous(4, 4, Topology::Mesh);
        let cfg = MapConfig::fast();
        let seq = mapper.map(&dfg, &fabric, &cfg).unwrap();
        let par = parallel_ii(&mapper, &dfg, &fabric, &cfg).unwrap();
        validate(&par, &dfg, &fabric).unwrap();
        assert_eq!(par.ii, seq.ii);
    }
}
