//! Control-flow mapping: the four if-then-else schemes of the survey's
//! §III-B1 and the hardware-loop support of §III-B2.
//!
//! Given a CDFG diamond (branch → then/else → join), the schemes
//! trade issue slots for control flexibility:
//!
//! * **Full predication** — both branches execute every iteration;
//!   every variable defined in either branch gets a predicate-driven
//!   `Select` at the join, *including* values only used inside the
//!   branches (no dead-code elimination). Largest op count, simplest
//!   hardware.
//! * **Partial predication** — as above, but only join-live values are
//!   merged and dead code is eliminated; the standard if-conversion.
//! * **Dual-issue single execution** — compatible then/else operations
//!   pair up onto one issue slot (the PE holds both configurations and
//!   the predicate picks one at run time). We model the *schedule
//!   footprint*: the DFG is the partial-predication one, and
//!   [`dual_issue_pairs`] reports how many slots pairing saves.
//! * **Direct CDFG mapping** — each basic block is mapped separately
//!   and the CGRA switches configurations at run time; no predication
//!   ops at all, but every taken branch costs a context switch.

use crate::mapper::{MapConfig, MapError, Mapper};
use crate::mapping::Mapping;
use cgra_arch::Fabric;
use cgra_ir::cdfg::{BlockId, Cdfg, ControlKind};
use cgra_ir::{passes, Dfg, NodeId, OpKind};
use std::collections::HashMap;

/// The four ITE mapping schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IteScheme {
    FullPredication,
    PartialPredication,
    DualIssue,
    DirectCdfg,
}

impl IteScheme {
    pub fn label(self) -> &'static str {
        match self {
            IteScheme::FullPredication => "full predication",
            IteScheme::PartialPredication => "partial predication",
            IteScheme::DualIssue => "dual-issue single execution",
            IteScheme::DirectCdfg => "direct CDFG mapping",
        }
    }
}

/// A flattened diamond: one DFG executing branch + both arms + merge.
#[derive(Debug, Clone)]
pub struct PredicatedKernel {
    pub dfg: Dfg,
    /// Input stream names in stream order.
    pub inputs: Vec<String>,
    /// Output stream names in stream order (join-live variables).
    pub outputs: Vec<String>,
}

/// Errors of the control-flow transforms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CtrlFlowError {
    /// The CDFG has no if-then-else diamond.
    NoDiamond,
    /// A block reads a variable defined nowhere on the path.
    Unbound(String),
}

impl std::fmt::Display for CtrlFlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CtrlFlowError::NoDiamond => write!(f, "CDFG contains no if-then-else diamond"),
            CtrlFlowError::Unbound(v) => write!(f, "variable `{v}` undefined on the path"),
        }
    }
}

impl std::error::Error for CtrlFlowError {}

/// Splice `block`'s DFG into `out`, resolving its params through `env`
/// (falling back to fresh `Input` streams registered in `inputs`).
/// Returns the mapping from block-local node ids to `out` ids and
/// updates `env` with the block's defs.
fn splice_block(
    out: &mut Dfg,
    cdfg: &Cdfg,
    block: BlockId,
    env: &mut HashMap<String, NodeId>,
    inputs: &mut Vec<String>,
) -> Vec<NodeId> {
    let bb = cdfg.block(block);
    let mut map = Vec::with_capacity(bb.dfg.node_count());
    let order = bb.dfg.topo_order().expect("validated block");
    let mut placed = vec![NodeId(0); bb.dfg.node_count()];
    for id in order {
        let node = bb.dfg.node(id);
        let new_id = match node.op {
            OpKind::Input(i) => {
                let var = &bb.params[i as usize];
                match env.get(var) {
                    Some(&n) => n,
                    None => {
                        let stream = inputs.len() as u32;
                        inputs.push(var.clone());
                        let n = out.add_named(OpKind::Input(stream), var.clone());
                        env.insert(var.clone(), n);
                        n
                    }
                }
            }
            op => {
                let n = out.add_node(op);
                out.node_mut(n).name = node.name.clone();
                for p in 0..op.ports().count() as u8 {
                    let (_, e) = bb.dfg.operand(id, p).expect("validated block");
                    out.add_edge(cgra_ir::Edge {
                        src: placed[e.src.index()],
                        dst: n,
                        port: p,
                        dist: e.dist,
                        init: e.init.clone(),
                    });
                }
                n
            }
        };
        placed[id.index()] = new_id;
    }
    for id in bb.dfg.node_ids() {
        map.push(placed[id.index()]);
    }
    // Apply defs.
    for (var, node) in &bb.defs {
        env.insert(var.clone(), placed[node.index()]);
    }
    map
}

/// Flatten the first diamond of `cdfg` into a predicated kernel under
/// full or partial predication.
pub fn predicate_diamond(
    cdfg: &Cdfg,
    scheme: IteScheme,
) -> Result<PredicatedKernel, CtrlFlowError> {
    let (branch, then_b, else_b, join) = cdfg.find_diamond().ok_or(CtrlFlowError::NoDiamond)?;
    let mut out = Dfg::new(format!(
        "{}_{}",
        cdfg.name,
        match scheme {
            IteScheme::FullPredication => "fullpred",
            IteScheme::PartialPredication => "partpred",
            IteScheme::DualIssue => "dualissue",
            IteScheme::DirectCdfg => "direct",
        }
    ));
    let mut env: HashMap<String, NodeId> = HashMap::new();
    let mut inputs: Vec<String> = Vec::new();

    // Branch block (computes the predicate).
    let bmap = splice_block(&mut out, cdfg, branch, &mut env, &mut inputs);
    let cond = match cdfg.block(branch).terminator {
        ControlKind::Branch { cond, .. } => bmap[cond.index()],
        _ => unreachable!("diamond head must branch"),
    };

    // Both arms over snapshots of the environment.
    let env_before = env.clone();
    let mut env_then = env_before.clone();
    splice_block(&mut out, cdfg, then_b, &mut env_then, &mut inputs);
    let mut env_else = env_before.clone();
    splice_block(&mut out, cdfg, else_b, &mut env_else, &mut inputs);

    // Merge defs with selects.
    let mut merged: Vec<String> = cdfg
        .block(then_b)
        .defs
        .iter()
        .chain(cdfg.block(else_b).defs.iter())
        .map(|(v, _)| v.clone())
        .collect();
    merged.sort();
    merged.dedup();
    let mut env_join = env_before.clone();
    for var in &merged {
        let t = env_then
            .get(var)
            .or_else(|| env_before.get(var))
            .copied()
            .ok_or_else(|| CtrlFlowError::Unbound(var.clone()))?;
        let e = env_else
            .get(var)
            .or_else(|| env_before.get(var))
            .copied()
            .ok_or_else(|| CtrlFlowError::Unbound(var.clone()))?;
        let sel = if t == e {
            t
        } else {
            let s = out.add_named(OpKind::Select, format!("{var}_phi"));
            out.connect(cond, s, 0);
            out.connect(t, s, 1);
            out.connect(e, s, 2);
            s
        };
        env_join.insert(var.clone(), sel);
    }

    // Join block (may compute further, e.g. uses of merged vars).
    splice_block(&mut out, cdfg, join, &mut env_join, &mut inputs);

    // Outputs: merged variables (the join-live values), in sorted order.
    let mut outputs = Vec::new();
    for (stream, var) in merged.iter().enumerate() {
        let o = out.add_named(OpKind::Output(stream as u32), var.clone());
        out.connect(env_join[var], o, 0);
        outputs.push(var.clone());
    }

    // Full predication keeps everything; partial (and the dual-issue
    // footprint base) eliminate dead code.
    if !matches!(scheme, IteScheme::FullPredication) {
        passes::dce(&mut out);
    }
    Ok(PredicatedKernel {
        dfg: out,
        inputs,
        outputs,
    })
}

/// Dual-issue pairing: then/else operations that could share one issue
/// slot (one op from each arm, paired greedily). Returns the number of
/// saved slots.
pub fn dual_issue_pairs(cdfg: &Cdfg) -> Result<usize, CtrlFlowError> {
    let (_, then_b, else_b, _) = cdfg.find_diamond().ok_or(CtrlFlowError::NoDiamond)?;
    let count = |b: BlockId| {
        cdfg.block(b)
            .dfg
            .nodes()
            .filter(|(_, n)| !matches!(n.op, OpKind::Input(_)))
            .count()
    };
    Ok(count(then_b).min(count(else_b)))
}

/// Direct CDFG mapping: map every basic block's DFG independently.
pub struct DirectMapping {
    /// Per-block mappings, indexed like `cdfg.blocks` (blocks with
    /// empty DFGs map to `None`).
    pub blocks: Vec<Option<Mapping>>,
    /// Configuration contexts consumed in total.
    pub total_contexts: u32,
}

/// Map each block of `cdfg` separately with `mapper` — the direct CDFG
/// scheme: the CGRA switches configurations between blocks at run
/// time.
pub fn map_direct(
    cdfg: &Cdfg,
    mapper: &dyn Mapper,
    fabric: &Fabric,
    cfg: &MapConfig,
) -> Result<DirectMapping, MapError> {
    let mut blocks = Vec::with_capacity(cdfg.blocks.len());
    let mut total = 0u32;
    for id in cdfg.block_ids() {
        let bb = cdfg.block(id);
        if bb.dfg.node_count() == 0 {
            blocks.push(None);
            continue;
        }
        // Block DFGs are straight-line; they already use Input nodes
        // for params, so they map like kernels. Blocks without defined
        // outputs still occupy PEs for their computations.
        let mut dfg = bb.dfg.clone();
        // Give terminal defs Output sinks so validation sees live ops.
        let mut stream = dfg
            .nodes()
            .filter_map(|(_, n)| match n.op {
                OpKind::Output(s) => Some(s + 1),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        let defs: Vec<NodeId> = bb.defs.iter().map(|(_, n)| *n).collect();
        for d in defs {
            let o = dfg.add_node(OpKind::Output(stream));
            dfg.connect(d, o, 0);
            stream += 1;
        }
        if let ControlKind::Branch { cond, .. } = bb.terminator {
            let o = dfg.add_node(OpKind::Output(stream));
            dfg.connect(cond, o, 0);
        }
        let m = mapper.map(&dfg, fabric, cfg)?;
        total += m.ii;
        blocks.push(Some(m));
    }
    Ok(DirectMapping {
        blocks,
        total_contexts: total,
    })
}

/// Errors specific to loop extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoopExtractError {
    /// The loop has more than one body block (multi-block bodies need
    /// predication first).
    MultiBlockBody,
    /// The header defines variables (only the exit test may live there).
    HeaderDefines(String),
    /// A loop-invariant variable has no value in the provided
    /// environment.
    UnknownInvariant(String),
}

impl std::fmt::Display for LoopExtractError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoopExtractError::MultiBlockBody => {
                write!(f, "loop body spans multiple blocks; predicate it first")
            }
            LoopExtractError::HeaderDefines(v) => {
                write!(
                    f,
                    "loop header defines `{v}`; only the exit test may live there"
                )
            }
            LoopExtractError::UnknownInvariant(v) => {
                write!(
                    f,
                    "loop-invariant `{v}` has no value in the entry environment"
                )
            }
        }
    }
}

impl std::error::Error for LoopExtractError {}

/// A loop body extracted from a CDFG as a mappable kernel.
#[derive(Debug, Clone)]
pub struct LoopKernel {
    pub dfg: Dfg,
    /// Loop-carried variables in output-stream order (each is also an
    /// `Output` so the evolution is observable).
    pub carried: Vec<String>,
}

/// Extract a natural loop's body as a loop-body DFG (the survey's
/// Fig. 3: the innermost loop's basic block is what gets mapped).
///
/// Supported shape: a header block holding only the exit test, and a
/// single body block (the latch). Variables the body redefines become
/// loop-carried edges initialised from `entry_env`; variables it only
/// reads become constants from `entry_env` (loop invariants). The loop
/// control itself is assumed to run on a hardware loop unit or the
/// host (§III-B2); wrap with [`with_loop_control`] to model software
/// loop control.
pub fn extract_loop_kernel(
    cdfg: &Cdfg,
    lp: &cgra_ir::cdfg::LoopInfo,
    entry_env: &HashMap<String, i64>,
) -> Result<LoopKernel, LoopExtractError> {
    // Identify the single body block.
    let body_blocks: Vec<BlockId> = lp
        .blocks
        .iter()
        .copied()
        .filter(|&b| b != lp.header)
        .collect();
    let &[body_id] = body_blocks.as_slice() else {
        return Err(LoopExtractError::MultiBlockBody);
    };
    let header = cdfg.block(lp.header);
    if let Some((v, _)) = header.defs.first() {
        return Err(LoopExtractError::HeaderDefines(v.clone()));
    }
    let body = cdfg.block(body_id);

    let mut out = Dfg::new(format!("{}_loop", cdfg.name));
    let defined: Vec<&String> = body.defs.iter().map(|(v, _)| v).collect();

    // Bind body params: carried placeholder for redefined vars,
    // constant for invariants.
    let mut env: HashMap<String, NodeId> = HashMap::new();
    let mut placeholders: Vec<(String, NodeId, i64)> = Vec::new();
    for var in &body.params {
        if defined.contains(&var) {
            let init = *entry_env
                .get(var)
                .ok_or_else(|| LoopExtractError::UnknownInvariant(var.clone()))?;
            let ph = out.add_named(OpKind::Route, format!("{var}@prev"));
            placeholders.push((var.clone(), ph, init));
            env.insert(var.clone(), ph);
        } else {
            let init = *entry_env
                .get(var)
                .ok_or_else(|| LoopExtractError::UnknownInvariant(var.clone()))?;
            let c = out.add_named(OpKind::Const(init), var.clone());
            env.insert(var.clone(), c);
        }
    }

    // Splice the body DFG.
    let mut inputs = Vec::new();
    let map = splice_block(&mut out, cdfg, body_id, &mut env, &mut inputs);
    let _ = map;

    // Outputs: every defined variable, in def order.
    let mut carried = Vec::new();
    for (stream, (var, _)) in body.defs.iter().enumerate() {
        let o = out.add_named(OpKind::Output(stream as u32), var.clone());
        out.connect(env[var], o, 0);
        carried.push(var.clone());
    }

    // Resolve carried placeholders → dist-1 edges from the iteration's
    // final producer.
    let dead: Vec<NodeId> = placeholders
        .iter()
        .filter_map(|(var, ph, init)| {
            let producer = env[var];
            if producer == *ph {
                return None; // never reassigned: keep as is
            }
            for eid in out.edge_ids().collect::<Vec<_>>() {
                let e = out.edge(eid);
                if e.src == *ph {
                    let em = out.edge_mut(eid);
                    em.src = producer;
                    em.dist += 1;
                    em.init = vec![*init; em.dist as usize];
                }
            }
            Some(*ph)
        })
        .collect();
    if !dead.is_empty() {
        out.retain_nodes(|id| !dead.contains(&id));
    }
    Ok(LoopKernel { dfg: out, carried })
}

/// §III-B2 hardware loops: wrap a kernel with explicit software loop
/// control (induction increment + bound compare + predicate output) —
/// what a CGRA *without* a hardware loop unit must execute. Comparing
/// the mapping of `with_loop_control(k)` against `k` on a `hw_loop`
/// fabric quantifies the hardware-loop saving.
pub fn with_loop_control(dfg: &Dfg, bound: i64) -> Dfg {
    let mut g = dfg.clone();
    g.name = format!("{}_swloop", dfg.name);
    let one = g.add_node(OpKind::Const(1));
    let i = g.add_named(OpKind::Add, "i");
    g.connect_carried(i, i, 0, 1, vec![-1]);
    g.connect(one, i, 1);
    let n = g.add_node(OpKind::Const(bound));
    let cmp = g.add_named(OpKind::Lt, "i<n");
    g.connect(i, cmp, 0);
    g.connect(n, cmp, 1);
    let stream = g
        .nodes()
        .filter_map(|(_, nd)| match nd.op {
            OpKind::Output(s) => Some(s + 1),
            _ => None,
        })
        .max()
        .unwrap_or(0);
    let o = g.add_named(OpKind::Output(stream), "continue");
    g.connect(cmp, o, 0);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgra_ir::frontend;
    use cgra_ir::interp::{Interpreter, Tape};
    use std::collections::HashMap;

    const ITE_SRC: &str = "
        func th(x) {
            var y = 0;
            var dead = 0;
            if (x > 10) { y = x - 10; dead = x * 3; } else { y = 10 - x; }
            var z = y + 1;
            return;
        }";

    fn diamond() -> Cdfg {
        frontend::compile_func(ITE_SRC).unwrap()
    }

    fn run_scheme(scheme: IteScheme, x: i64) -> Vec<(String, i64)> {
        let k = predicate_diamond(&diamond(), scheme).unwrap();
        k.dfg.validate().unwrap();
        let tape = Tape {
            inputs: vec![vec![x]; k.inputs.len()],
            memory: vec![],
        };
        let r = Interpreter::run(&k.dfg, 1, &tape).unwrap();
        k.outputs
            .iter()
            .enumerate()
            .map(|(s, v)| (v.clone(), r.outputs[s][0]))
            .collect()
    }

    #[test]
    fn full_and_partial_agree_with_cdfg_semantics() {
        for x in [25, 3] {
            let full = run_scheme(IteScheme::FullPredication, x);
            let part = run_scheme(IteScheme::PartialPredication, x);
            let want_y = if x > 10 { x - 10 } else { 10 - x };
            for (name, got) in full.iter().chain(part.iter()) {
                if name == "y" {
                    assert_eq!(*got, want_y, "x={x}");
                }
            }
            // Reference: execute the CDFG directly.
            let c = diamond();
            let mut env = std::collections::HashMap::new();
            env.insert("x".to_string(), x);
            let (env, _, _) = c.execute(env, vec![], 100).unwrap();
            assert_eq!(env["y"], want_y);
            assert_eq!(env["z"], want_y + 1);
        }
    }

    #[test]
    fn full_predication_issues_more_ops_than_partial() {
        let full = predicate_diamond(&diamond(), IteScheme::FullPredication).unwrap();
        let part = predicate_diamond(&diamond(), IteScheme::PartialPredication).unwrap();
        assert!(
            full.dfg.node_count() > part.dfg.node_count(),
            "full {} !> partial {} (the dead `dead` def must survive full predication)",
            full.dfg.node_count(),
            part.dfg.node_count()
        );
    }

    #[test]
    fn dual_issue_saves_slots() {
        let pairs = dual_issue_pairs(&diamond()).unwrap();
        assert!(pairs >= 1);
    }

    #[test]
    fn direct_mapping_maps_blocks() {
        use crate::mappers::ModuloList;
        let c = diamond();
        let f = cgra_arch::Fabric::homogeneous(4, 4, cgra_arch::Topology::Mesh);
        let d = map_direct(&c, &ModuloList::default(), &f, &MapConfig::fast()).unwrap();
        assert!(
            d.total_contexts >= 2,
            "several blocks must consume contexts"
        );
        let mapped = d.blocks.iter().filter(|b| b.is_some()).count();
        assert!(mapped >= 3);
    }

    #[test]
    fn no_diamond_reported() {
        let c = frontend::compile_func("func f(x) { var y = x + 1; return; }").unwrap();
        assert_eq!(
            predicate_diamond(&c, IteScheme::PartialPredication).unwrap_err(),
            CtrlFlowError::NoDiamond
        );
    }

    #[test]
    fn extract_loop_kernel_matches_cdfg_execution() {
        // triangle sum: the loop body `sum += i; i += 1` becomes a
        // kernel with two carried variables; iterating it must evolve
        // exactly like executing the CDFG.
        let c = frontend::compile_func(
            "func tri(n) {
                var i = 0;
                var sum = 0;
                while (i < n) { sum += i; i += 1; }
                return;
            }",
        )
        .unwrap();
        let loops = c.loops();
        assert_eq!(loops.len(), 1);
        let mut entry = HashMap::new();
        entry.insert("i".to_string(), 0i64);
        entry.insert("sum".to_string(), 0i64);
        entry.insert("n".to_string(), 7i64);
        let lk = super::extract_loop_kernel(&c, &loops[0], &entry).unwrap();
        lk.dfg.validate().unwrap();
        // Run 7 iterations of the extracted kernel.
        let r = Interpreter::run(&lk.dfg, 7, &Tape::default()).unwrap();
        // Reference: execute the CDFG.
        let mut env = HashMap::new();
        env.insert("n".to_string(), 7i64);
        let (env, _, _) = c.execute(env, vec![], 10_000).unwrap();
        let sum_stream = lk.carried.iter().position(|v| v == "sum").unwrap();
        let i_stream = lk.carried.iter().position(|v| v == "i").unwrap();
        assert_eq!(*r.outputs[sum_stream].last().unwrap(), env["sum"]);
        assert_eq!(*r.outputs[i_stream].last().unwrap(), env["i"]);
    }

    #[test]
    fn extracted_loop_maps_and_simulates() {
        use crate::mappers::ModuloList;
        let c = frontend::compile_func(
            "func acc(n) {
                var i = 0;
                var s = 0;
                while (i < n) { s += i * i; i += 1; }
                return;
            }",
        )
        .unwrap();
        let loops = c.loops();
        let mut entry = HashMap::new();
        entry.insert("i".to_string(), 0i64);
        entry.insert("s".to_string(), 0i64);
        let lk = super::extract_loop_kernel(&c, &loops[0], &entry).unwrap();
        let f = cgra_arch::Fabric::homogeneous(4, 4, cgra_arch::Topology::Mesh);
        let m = ModuloList::default()
            .map(&lk.dfg, &f, &MapConfig::fast())
            .unwrap();
        crate::validate::validate(&m, &lk.dfg, &f).unwrap();
    }

    #[test]
    fn loop_extraction_rejects_unknown_invariants() {
        let c =
            frontend::compile_func("func f(n, k) { var i = 0; while (i < n) { i += k; } return; }")
                .unwrap();
        let loops = c.loops();
        let entry = HashMap::new(); // nothing bound
        let err = super::extract_loop_kernel(&c, &loops[0], &entry).unwrap_err();
        assert!(matches!(err, super::LoopExtractError::UnknownInvariant(_)));
    }

    #[test]
    fn loop_control_wrapper_adds_overhead_ops() {
        let k = cgra_ir::kernels::dot_product();
        let sw = with_loop_control(&k, 64);
        sw.validate().unwrap();
        assert_eq!(sw.node_count(), k.node_count() + 5);
        // Semantics of the original streams are preserved.
        let tape = Tape::generate(2, 3, |_, i| i as i64 + 1);
        let orig = Interpreter::run(&k, 3, &tape).unwrap();
        let wrapped = Interpreter::run(&sw, 3, &tape).unwrap();
        assert_eq!(orig.outputs[0], wrapped.outputs[0]);
    }
}
