//! Data mapping (survey §III-C): multi-bank memory conflict analysis,
//! data-placement policy selection, and register allocation for
//! rotating vs unified register files.
//!
//! The memory model matches the multi-bank scratchpads of the
//! memory-aware mapping literature (Kim et al. TODAES 2011, Yin et al.
//! TPDS 2017, Zhao et al. DATE 2018): `banks` single-ported banks, a
//! placement policy deciding which bank an address lives in, and a
//! stall for every extra same-cycle access to one bank.

use crate::mapping::Mapping;
use cgra_arch::Fabric;
use cgra_ir::interp::{Interpreter, Tape};
use cgra_ir::{Dfg, EdgeId, NodeId, OpKind, Value};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How addresses map to banks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BankPolicy {
    /// `bank = addr % banks` — word interleaving.
    Interleaved,
    /// `bank = (addr / block) % banks` — block-cyclic.
    Blocked { block: u32 },
}

impl BankPolicy {
    #[inline]
    pub fn bank_of(self, addr: Value, banks: u32) -> u32 {
        let a = addr.rem_euclid(i64::MAX) as u64;
        match self {
            BankPolicy::Interleaved => (a % banks as u64) as u32,
            BankPolicy::Blocked { block } => ((a / block.max(1) as u64) % banks as u64) as u32,
        }
    }
}

/// Conflict analysis result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BankReport {
    pub policy: BankPolicy,
    pub banks: u32,
    /// Total stall cycles over the analysed iterations.
    pub stalls: u64,
    /// Effective initiation interval including stalls (steady state).
    pub effective_ii: f64,
}

/// Trace the addresses touched by every memory op over `iters`
/// iterations (via the reference interpreter).
pub fn memory_trace(
    dfg: &Dfg,
    iters: usize,
    tape: &Tape,
) -> Result<HashMap<NodeId, Vec<Value>>, cgra_ir::InterpError> {
    // Probe: add an Output per memory op's *address* operand source.
    let mut probe = dfg.clone();
    let mem_ops: Vec<NodeId> = dfg.node_ids().filter(|&n| dfg.op(n).is_memory()).collect();
    let mut stream = probe
        .node_ids()
        .filter_map(|id| match probe.op(id) {
            OpKind::Output(s) => Some(s + 1),
            _ => None,
        })
        .max()
        .unwrap_or(0);
    let mut probe_streams = Vec::new();
    #[allow(clippy::explicit_counter_loop)] // `stream` continues past existing outputs
    for &m in &mem_ops {
        let addr_src = dfg.operand(m, 0).expect("validated").1.src;
        let o = probe.add_node(OpKind::Output(stream));
        probe.connect(addr_src, o, 0);
        probe_streams.push((m, stream as usize));
        stream += 1;
    }
    let r = Interpreter::run(&probe, iters, tape)?;
    Ok(probe_streams
        .into_iter()
        .map(|(m, s)| (m, r.outputs[s].clone()))
        .collect())
}

/// Analyse bank conflicts of a mapped kernel: memory ops sharing a
/// modulo slot that hit the same bank in the same iteration stall.
pub fn bank_conflicts(
    dfg: &Dfg,
    mapping: &Mapping,
    trace: &HashMap<NodeId, Vec<Value>>,
    banks: u32,
    policy: BankPolicy,
) -> BankReport {
    // Group memory ops by modulo slot.
    let mut by_slot: HashMap<u32, Vec<NodeId>> = HashMap::new();
    for n in dfg.node_ids() {
        if dfg.op(n).is_memory() {
            by_slot
                .entry(mapping.placement(n).time % mapping.ii)
                .or_default()
                .push(n);
        }
    }
    let iters = trace.values().map(|v| v.len()).min().unwrap_or(0);
    let mut stalls = 0u64;
    for ops in by_slot.values() {
        if ops.len() < 2 {
            continue;
        }
        #[allow(clippy::needless_range_loop)] // reads every op's trace at iteration `it`
        for it in 0..iters {
            let mut per_bank: HashMap<u32, u32> = HashMap::new();
            for &op in ops {
                let addr = trace[&op][it];
                *per_bank.entry(policy.bank_of(addr, banks)).or_insert(0) += 1;
            }
            stalls += per_bank
                .values()
                .map(|&c| c.saturating_sub(1) as u64)
                .sum::<u64>();
        }
    }
    let effective_ii = mapping.ii as f64 + stalls as f64 / iters.max(1) as f64;
    BankReport {
        policy,
        banks,
        stalls,
        effective_ii,
    }
}

/// Pick the conflict-minimising placement policy for a mapped kernel
/// (the data-placement optimisation step of §III-C).
pub fn choose_policy(
    dfg: &Dfg,
    mapping: &Mapping,
    trace: &HashMap<NodeId, Vec<Value>>,
    banks: u32,
) -> BankReport {
    let candidates = [
        BankPolicy::Interleaved,
        BankPolicy::Blocked { block: 4 },
        BankPolicy::Blocked { block: 16 },
        BankPolicy::Blocked { block: 64 },
    ];
    candidates
        .into_iter()
        .map(|p| bank_conflicts(dfg, mapping, trace, banks, p))
        .min_by(|a, b| a.stalls.cmp(&b.stalls))
        .expect("non-empty candidate set")
}

// ---------------------------------------------------------------------
// Register allocation
// ---------------------------------------------------------------------

/// Register-file discipline (survey §III-C: rotating — ADRES-style —
/// vs unified register files, cf. De Sutter LCTES 2008 / URECA DATE
/// 2018).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RfKind {
    /// Hardware renaming per iteration: a value's interval occupies
    /// only the modulo slots it is live in.
    Rotating,
    /// One flat file: a live value pins its register for the whole II
    /// (software must keep concurrent iteration copies apart).
    Unified,
}

/// A physical register assignment for every route-hold step.
#[derive(Debug, Clone)]
pub struct RegAlloc {
    /// `(edge, step) → register index` for every position a value
    /// holds on a PE.
    pub assignment: HashMap<(EdgeId, usize), u32>,
    /// Peak registers used on any PE.
    pub peak: u32,
}

/// Allocation failure: some PE needs more registers than `rf_size`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegAllocError {
    pub pe: cgra_arch::PeId,
    pub needed: u32,
    pub available: u32,
}

impl std::fmt::Display for RegAllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} needs {} registers but has {}",
            self.pe, self.needed, self.available
        )
    }
}

impl std::error::Error for RegAllocError {}

/// Allocate physical registers for all routed values.
///
/// Values are grouped per PE into intervals (consecutive cycles the
/// value is present, deduplicated per producer); intervals are
/// first-fit coloured. Under [`RfKind::Rotating`] an interval occupies
/// its live modulo slots; under [`RfKind::Unified`] it pins the whole
/// II, which needs more registers for long-lived values — the
/// quantitative gap the §III-C papers report.
pub fn allocate_registers(
    dfg: &Dfg,
    mapping: &Mapping,
    fabric: &Fabric,
    kind: RfKind,
) -> Result<RegAlloc, RegAllocError> {
    let ii = mapping.ii;
    // Collect per-PE intervals: (producer, start, end, edge-steps).
    struct Interval {
        start: u32,
        end: u32,
        steps: Vec<(EdgeId, usize)>,
    }
    let mut per_pe: HashMap<cgra_arch::PeId, Vec<Interval>> = HashMap::new();
    // (producer, pe) → interval merging across fan-out edges.
    let mut index: HashMap<(u32, cgra_arch::PeId, u32), usize> = HashMap::new();
    for (eid, e) in dfg.edges() {
        let r = mapping.route(eid);
        for (i, &pe) in r.steps.iter().enumerate() {
            let t = r.start_time + i as u32;
            let list = per_pe.entry(pe).or_default();
            match index.get(&(e.src.0, pe, t)) {
                Some(&k) => list[k].steps.push((eid, i)),
                None => {
                    // Extend the previous cycle's interval if contiguous.
                    if let Some(&k) = index.get(&(e.src.0, pe, t.wrapping_sub(1))) {
                        list[k].end = list[k].end.max(t);
                        list[k].steps.push((eid, i));
                        index.insert((e.src.0, pe, t), k);
                    } else {
                        list.push(Interval {
                            start: t,
                            end: t,
                            steps: vec![(eid, i)],
                        });
                        index.insert((e.src.0, pe, t), list.len() - 1);
                    }
                }
            }
        }
    }

    let mut assignment = HashMap::new();
    let mut peak = 0u32;
    for (pe, intervals) in per_pe {
        // Slot occupancy per register.
        let slots_of = |iv: &Interval| -> Vec<u32> {
            match kind {
                RfKind::Rotating => {
                    let len = (iv.end - iv.start + 1).min(ii);
                    (0..len).map(|k| (iv.start + k) % ii).collect()
                }
                RfKind::Unified => (0..ii).collect(),
            }
        };
        let mut regs: Vec<Vec<bool>> = Vec::new(); // reg → slot used
        let mut order: Vec<usize> = (0..intervals.len()).collect();
        order.sort_by_key(|&k| intervals[k].start);
        for k in order {
            let iv = &intervals[k];
            let slots = slots_of(iv);
            let mut chosen = None;
            for (r, used) in regs.iter().enumerate() {
                if slots.iter().all(|&s| !used[s as usize]) {
                    chosen = Some(r);
                    break;
                }
            }
            let r = match chosen {
                Some(r) => r,
                None => {
                    regs.push(vec![false; ii as usize]);
                    regs.len() - 1
                }
            };
            for &s in &slots {
                regs[r][s as usize] = true;
            }
            for &(eid, step) in &iv.steps {
                assignment.insert((eid, step), r as u32);
            }
        }
        let used = regs.len() as u32;
        peak = peak.max(used);
        if used > fabric.rf_size {
            return Err(RegAllocError {
                pe,
                needed: used,
                available: fabric.rf_size,
            });
        }
    }
    Ok(RegAlloc { assignment, peak })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::{MapConfig, Mapper};
    use crate::mappers::ModuloList;
    use cgra_arch::Topology;
    use cgra_ir::kernels;

    fn mapped_matmul() -> (Dfg, Fabric, Mapping, HashMap<NodeId, Vec<Value>>) {
        let dfg = kernels::matmul_body();
        let f = Fabric::homogeneous(4, 4, Topology::Mesh);
        let m = ModuloList::default()
            .map(&dfg, &f, &MapConfig::fast())
            .unwrap();
        let tape = Tape::default().with_memory(vec![1; 256]);
        let trace = memory_trace(&dfg, 16, &tape).unwrap();
        (dfg, f, m, trace)
    }

    #[test]
    fn trace_captures_both_loads() {
        let (dfg, _, _, trace) = mapped_matmul();
        assert_eq!(trace.len(), dfg.memory_ops());
        for addrs in trace.values() {
            assert_eq!(addrs.len(), 16);
        }
        // A addresses 0..16, B addresses 64..80.
        let mut firsts: Vec<Value> = trace.values().map(|v| v[0]).collect();
        firsts.sort();
        assert_eq!(firsts, vec![0, 64]);
    }

    #[test]
    fn bank_policies_differ_on_strided_conflict() {
        let (dfg, _, m, trace) = mapped_matmul();
        // With both streams offset by 64 = multiple of 4 banks,
        // interleaved banking conflicts iff both ops share a slot;
        // measure both policies and ensure the report is consistent.
        let inter = bank_conflicts(&dfg, &m, &trace, 4, BankPolicy::Interleaved);
        let blocked = bank_conflicts(&dfg, &m, &trace, 4, BankPolicy::Blocked { block: 64 });
        assert!(inter.effective_ii >= m.ii as f64);
        assert!(blocked.effective_ii >= m.ii as f64);
        let best = choose_policy(&dfg, &m, &trace, 4);
        assert!(best.stalls <= inter.stalls);
        assert!(best.stalls <= blocked.stalls);
    }

    #[test]
    fn no_memory_ops_no_stalls() {
        let dfg = kernels::dot_product();
        let f = Fabric::homogeneous(4, 4, Topology::Mesh);
        let m = ModuloList::default()
            .map(&dfg, &f, &MapConfig::fast())
            .unwrap();
        let report = bank_conflicts(&dfg, &m, &HashMap::new(), 4, BankPolicy::Interleaved);
        assert_eq!(report.stalls, 0);
    }

    #[test]
    fn register_allocation_fits_validated_mapping() {
        let (dfg, f, m, _) = mapped_matmul();
        crate::validate::validate(&m, &dfg, &f).unwrap();
        let alloc = allocate_registers(&dfg, &m, &f, RfKind::Rotating)
            .expect("validated mapping must allocate under rotating RF");
        assert!(alloc.peak <= f.rf_size);
        // Every route step got a register.
        let steps: usize = m.routes.iter().map(|r| r.steps.len()).sum();
        assert!(alloc.assignment.len() <= steps);
        assert!(!alloc.assignment.is_empty());
    }

    #[test]
    fn unified_rf_needs_at_least_as_many_registers() {
        let (dfg, f, m, _) = mapped_matmul();
        let rot = allocate_registers(&dfg, &m, &f, RfKind::Rotating).unwrap();
        match allocate_registers(&dfg, &m, &f, RfKind::Unified) {
            Ok(uni) => assert!(uni.peak >= rot.peak),
            Err(e) => assert!(e.needed > f.rf_size),
        }
    }

    #[test]
    fn bank_of_policies() {
        assert_eq!(BankPolicy::Interleaved.bank_of(5, 4), 1);
        assert_eq!(BankPolicy::Blocked { block: 16 }.bank_of(5, 4), 0);
        assert_eq!(BankPolicy::Blocked { block: 16 }.bank_of(17, 4), 1);
        assert_eq!(BankPolicy::Blocked { block: 16 }.bank_of(64, 4), 0);
    }
}
