//! Quality metrics of a mapping — the columns of the Table I
//! experiment report.

use crate::mapping::Mapping;
use cgra_arch::Fabric;
use cgra_ir::Dfg;
use serde::{Deserialize, Serialize};

/// Measured properties of a valid mapping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Initiation interval: one loop iteration completes every `ii`
    /// cycles in steady state.
    pub ii: u32,
    /// Schedule length of one iteration (pipeline depth).
    pub schedule_len: u32,
    /// Fraction of (PE × II-slot) issue slots used.
    pub fu_utilisation: f64,
    /// Total route hops (wire traffic proxy).
    pub route_hops: usize,
    /// Total register-cycle occupancy.
    pub register_cycles: usize,
    /// Peak register pressure across all (pe, slot).
    pub peak_registers: u32,
    /// Steady-state throughput in iterations per cycle.
    pub throughput: f64,
}

impl Metrics {
    /// Measure a mapping (assumed valid).
    pub fn of(mapping: &Mapping, dfg: &Dfg, fabric: &Fabric) -> Metrics {
        let st = mapping.occupancy(dfg, fabric);
        let mut peak = 0;
        let mut reg_cycles = 0usize;
        for pe in fabric.pe_ids() {
            for slot in 0..mapping.ii {
                let c = st.reg_count(pe, slot);
                peak = peak.max(c);
                reg_cycles += c as usize;
            }
        }
        Metrics {
            ii: mapping.ii,
            schedule_len: mapping.schedule_len(dfg, fabric),
            fu_utilisation: st.fu_utilisation(),
            route_hops: mapping.routes.iter().map(|r| r.hops()).sum(),
            register_cycles: reg_cycles,
            peak_registers: peak,
            throughput: 1.0 / mapping.ii as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{Placement, Route};
    use cgra_arch::{PeId, Topology};
    use cgra_ir::kernels;

    #[test]
    fn metrics_of_simple_mapping() {
        let dfg = kernels::accumulate();
        let f = Fabric::homogeneous(4, 4, Topology::Mesh);
        let m = Mapping {
            ii: 1,
            place: vec![
                Placement {
                    pe: PeId(0),
                    time: 0,
                },
                Placement {
                    pe: PeId(1),
                    time: 2,
                },
                Placement {
                    pe: PeId(2),
                    time: 4,
                },
            ],
            routes: vec![
                Route {
                    start_time: 1,
                    steps: vec![PeId(0), PeId(1)],
                },
                Route {
                    start_time: 3,
                    steps: vec![PeId(1)],
                },
                Route {
                    start_time: 3,
                    steps: vec![PeId(1), PeId(2)],
                },
            ],
        };
        crate::validate::validate(&m, &dfg, &f).unwrap();
        let met = Metrics::of(&m, &dfg, &f);
        assert_eq!(met.ii, 1);
        assert_eq!(met.schedule_len, 5);
        assert_eq!(met.route_hops, 2);
        assert_eq!(met.throughput, 1.0);
        assert!((met.fu_utilisation - 3.0 / 16.0).abs() < 1e-9);
        assert!(met.peak_registers >= 1);
    }
}
