//! Quality metrics of a mapping — the columns of the Table I
//! experiment report.

use crate::mapping::Mapping;
use cgra_arch::Fabric;
use cgra_ir::Dfg;
use serde::{Deserialize, Serialize};

/// Measured properties of a valid mapping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Initiation interval: one loop iteration completes every `ii`
    /// cycles in steady state.
    pub ii: u32,
    /// Schedule length of one iteration (pipeline depth).
    pub schedule_len: u32,
    /// Fraction of (PE × II-slot) issue slots used.
    pub fu_utilisation: f64,
    /// Total route hops (wire traffic proxy).
    pub route_hops: usize,
    /// Total register-cycle occupancy.
    pub register_cycles: usize,
    /// Peak register pressure across all (pe, slot).
    pub peak_registers: u32,
    /// Steady-state throughput in iterations per cycle.
    pub throughput: f64,
}

impl Metrics {
    /// Measure a mapping (assumed valid).
    pub fn of(mapping: &Mapping, dfg: &Dfg, fabric: &Fabric) -> Metrics {
        let st = mapping.occupancy(dfg, fabric);
        let mut peak = 0;
        let mut reg_cycles = 0usize;
        for pe in fabric.pe_ids() {
            for slot in 0..mapping.ii {
                let c = st.reg_count(pe, slot);
                peak = peak.max(c);
                reg_cycles += c as usize;
            }
        }
        Metrics {
            ii: mapping.ii,
            schedule_len: mapping.schedule_len(dfg, fabric),
            fu_utilisation: st.fu_utilisation(),
            route_hops: mapping.routes.iter().map(|r| r.hops()).sum(),
            register_cycles: reg_cycles,
            peak_registers: peak,
            throughput: 1.0 / mapping.ii as f64,
        }
    }
}

/// Per-cell fabric occupancy of a mapping, folded modulo II — the data
/// behind the utilization heatmaps. Integer fields only, so the JSON
/// form round-trips exactly and renders are deterministic.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UtilizationMap {
    pub rows: u16,
    pub cols: u16,
    pub ii: u32,
    /// Issue slots occupied per PE over one II window (0..=ii), indexed
    /// by PE id (row-major).
    pub fu_used: Vec<u32>,
    /// Register-cycles held per PE over one II window — the routing
    /// pressure each cell carries for values passing through.
    pub reg_used: Vec<u32>,
}

impl UtilizationMap {
    /// Measure a mapping (assumed valid).
    pub fn of(mapping: &Mapping, dfg: &Dfg, fabric: &Fabric) -> UtilizationMap {
        let st = mapping.occupancy(dfg, fabric);
        let mut fu_used = Vec::with_capacity(fabric.num_pes());
        let mut reg_used = Vec::with_capacity(fabric.num_pes());
        for pe in fabric.pe_ids() {
            let mut fu = 0;
            let mut reg = 0;
            for slot in 0..mapping.ii {
                fu += st.fu_count(pe, slot);
                reg += st.reg_count(pe, slot);
            }
            fu_used.push(fu);
            reg_used.push(reg);
        }
        UtilizationMap {
            rows: fabric.rows,
            cols: fabric.cols,
            ii: mapping.ii,
            fu_used,
            reg_used,
        }
    }

    /// Hand-parse from a JSON tree; `None` if the shape is missing.
    pub fn from_json(v: &serde::Value) -> Option<UtilizationMap> {
        use serde::Value;
        let nums = |k: &str| -> Vec<u32> {
            match v.get(k) {
                Some(Value::Array(items)) => items
                    .iter()
                    .filter_map(Value::as_u64)
                    .map(|n| n as u32)
                    .collect(),
                _ => Vec::new(),
            }
        };
        Some(UtilizationMap {
            rows: v.get("rows")?.as_u64()? as u16,
            cols: v.get("cols")?.as_u64()? as u16,
            ii: v.get("ii").and_then(Value::as_u64).unwrap_or(1) as u32,
            fu_used: nums("fu_used"),
            reg_used: nums("reg_used"),
        })
    }

    /// ASCII heatmap of issue-slot occupancy (full scale = II).
    pub fn render_fu(&self, fabric: &Fabric) -> String {
        cgra_arch::render_heatmap(fabric, &self.fu_used, self.ii, "fu occupancy / II window")
    }

    /// ASCII heatmap of register pressure (full scale = RF capacity
    /// over one II window).
    pub fn render_reg(&self, fabric: &Fabric) -> String {
        cgra_arch::render_heatmap(
            fabric,
            &self.reg_used,
            fabric.rf_size * self.ii,
            "register pressure / II window",
        )
    }

    /// Both heatmaps rendered from the serialized data alone — what
    /// report viewers use when only the JSON artifact survives, not
    /// the fabric object. Register pressure is scaled to its observed
    /// peak (RF capacity is not stored in the map).
    pub fn render_standalone(&self, arch: &str) -> String {
        let reg_peak = self.reg_used.iter().copied().max().unwrap_or(0);
        format!(
            "{}{}",
            cgra_arch::render_heatmap_grid(
                arch,
                self.rows,
                self.cols,
                &self.fu_used,
                self.ii,
                "fu occupancy / II window",
            ),
            cgra_arch::render_heatmap_grid(
                arch,
                self.rows,
                self.cols,
                &self.reg_used,
                reg_peak,
                "register pressure / II window (scale = observed peak)",
            ),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{Placement, Route};
    use cgra_arch::{PeId, Topology};
    use cgra_ir::kernels;

    #[test]
    fn metrics_of_simple_mapping() {
        let dfg = kernels::accumulate();
        let f = Fabric::homogeneous(4, 4, Topology::Mesh);
        let m = Mapping {
            ii: 1,
            place: vec![
                Placement {
                    pe: PeId(0),
                    time: 0,
                },
                Placement {
                    pe: PeId(1),
                    time: 2,
                },
                Placement {
                    pe: PeId(2),
                    time: 4,
                },
            ],
            routes: vec![
                Route {
                    start_time: 1,
                    steps: vec![PeId(0), PeId(1)],
                },
                Route {
                    start_time: 3,
                    steps: vec![PeId(1)],
                },
                Route {
                    start_time: 3,
                    steps: vec![PeId(1), PeId(2)],
                },
            ],
        };
        crate::validate::validate(&m, &dfg, &f).unwrap();
        let met = Metrics::of(&m, &dfg, &f);
        assert_eq!(met.ii, 1);
        assert_eq!(met.schedule_len, 5);
        assert_eq!(met.route_hops, 2);
        assert_eq!(met.throughput, 1.0);
        assert!((met.fu_utilisation - 3.0 / 16.0).abs() < 1e-9);
        assert!(met.peak_registers >= 1);

        let u = UtilizationMap::of(&m, &dfg, &f);
        assert_eq!((u.rows, u.cols, u.ii), (4, 4, 1));
        assert_eq!(u.fu_used.len(), 16);
        // The three ops sit on pe0..pe2; everything else is idle.
        assert_eq!(u.fu_used[..3], [1, 1, 1]);
        assert!(u.fu_used[3..].iter().all(|&v| v == 0));
        // Routes pass through pe0/pe1; total register-cycles must match
        // the scalar metric.
        assert_eq!(u.reg_used.iter().sum::<u32>() as usize, met.register_cycles);
        let fu_map = u.render_fu(&f);
        let reg_map = u.render_reg(&f);
        assert!(fu_map.contains("fu occupancy"));
        assert!(reg_map.contains("register pressure"));
        assert_eq!(fu_map, u.render_fu(&f), "render must be deterministic");
    }
}
