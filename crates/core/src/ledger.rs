//! The run ledger: a bounded, lock-free-append journal of search
//! events — *when* each mapper found each improving solution, who was
//! winning a race at t=50ms, which II probes ran.
//!
//! PR 1's counters answer "how much effort"; the ledger answers "what
//! happened when". SAT-MapIt and the connectivity-ILP mapper both
//! report per-instance solve trajectories as first-class results; the
//! ledger is the substrate for those trajectories here. Events are
//! written by the engine's [`crate::engine::race`] /
//! [`crate::engine::parallel_ii`] and by the improving-move paths of
//! the meta-heuristic (SA/GA/QEA) and exact (B&B, SAT/CP/ILP incumbent
//! callbacks) mappers, and serialised three ways: the versioned
//! [`crate::report::RunReport`] artifact, Chrome `trace_event` JSON
//! (`cgra-map --chrome-trace`), and the `--trace` JSONL stream.
//!
//! Design constraints mirror [`crate::telemetry`]:
//!
//! 1. **Disabled must be free.** [`Ledger`] wraps
//!    `Option<Arc<RunLedger>>`; every emit on a disabled handle is a
//!    null check, and event payloads (strings) are only built when a
//!    sink is attached.
//! 2. **Lock-free append.** A fixed slot array plus an atomic cursor:
//!    writers claim a slot with one `fetch_add` and publish through a
//!    `OnceLock`, so racing mappers never contend on a mutex in their
//!    improving-move paths. Appends past capacity are counted, not
//!    stored.
//! 3. **Deterministic modulo time.** [`RunLedger::events`] returns
//!    events stably sorted by `t_us`; slot order is claim order, which
//!    is causally consistent, so a same-seed run replays the same
//!    event sequence (timestamps aside) — tested per registry mapper.

use serde::{Serialize, Value};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// What happened. Every variant carries the emitting mapper's name so
/// multi-mapper ledgers (races, portfolios) stay attributable.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// The mapper found an improving solution: a routable binding, a
    /// solver model, or a better objective value. `cost` is the
    /// mapper's own objective (binding cost, ILP objective, CEGAR
    /// round) — comparable within one mapper, not across mappers.
    Incumbent { mapper: String, ii: u32, cost: f64 },
    /// The mapper entered a portfolio race.
    RaceStart { mapper: String },
    /// The mapper won the race with a validated mapping at `ii`.
    RaceWin { mapper: String, ii: u32 },
    /// The mapper lost the race; `reason` is the typed error kind
    /// (`cancelled`, `timeout`, `infeasible`, `unsupported`).
    RaceLoss { mapper: String, reason: String },
    /// The run stopped because its budget ran out before any mapping
    /// was found.
    BudgetExhausted { mapper: String },
    /// One candidate II was probed.
    IiAttempt { mapper: String, ii: u32 },
}

impl EventKind {
    /// Snake-case discriminant used in traces and reports.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::Incumbent { .. } => "incumbent",
            EventKind::RaceStart { .. } => "race_start",
            EventKind::RaceWin { .. } => "race_win",
            EventKind::RaceLoss { .. } => "race_loss",
            EventKind::BudgetExhausted { .. } => "budget_exhausted",
            EventKind::IiAttempt { .. } => "ii_attempt",
        }
    }

    /// The emitting mapper.
    pub fn mapper(&self) -> &str {
        match self {
            EventKind::Incumbent { mapper, .. }
            | EventKind::RaceStart { mapper }
            | EventKind::RaceWin { mapper, .. }
            | EventKind::RaceLoss { mapper, .. }
            | EventKind::BudgetExhausted { mapper }
            | EventKind::IiAttempt { mapper, .. } => mapper,
        }
    }

    /// The II the event refers to, when it has one.
    pub fn ii(&self) -> Option<u32> {
        match self {
            EventKind::Incumbent { ii, .. }
            | EventKind::RaceWin { ii, .. }
            | EventKind::IiAttempt { ii, .. } => Some(*ii),
            _ => None,
        }
    }
}

/// One journal entry: a kind plus microseconds since the ledger was
/// created.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerEvent {
    /// Microseconds since the ledger epoch.
    pub t_us: u64,
    pub kind: EventKind,
}

impl LedgerEvent {
    /// Flat JSON rendering (`{"t_us":…,"event":…,"mapper":…,…}`) used
    /// by the JSONL trace and the `RunReport` artifact. Flat rather
    /// than enum-tagged so stream consumers dispatch on one `event`
    /// field.
    pub fn to_json(&self) -> Value {
        let mut pairs = vec![
            ("t_us".to_string(), Value::UInt(self.t_us)),
            ("event".to_string(), Value::Str(self.kind.label().into())),
            ("mapper".to_string(), Value::Str(self.kind.mapper().into())),
        ];
        match &self.kind {
            EventKind::Incumbent { ii, cost, .. } => {
                pairs.push(("ii".to_string(), Value::UInt(*ii as u64)));
                pairs.push(("cost".to_string(), Value::Float(*cost)));
            }
            EventKind::RaceWin { ii, .. } | EventKind::IiAttempt { ii, .. } => {
                pairs.push(("ii".to_string(), Value::UInt(*ii as u64)));
            }
            EventKind::RaceLoss { reason, .. } => {
                pairs.push(("reason".to_string(), Value::Str(reason.clone())));
            }
            EventKind::RaceStart { .. } | EventKind::BudgetExhausted { .. } => {}
        }
        Value::Object(pairs)
    }

    /// Parse the flat rendering back. `None` on unknown or malformed
    /// events, so readers skip what future versions may add.
    pub fn from_json(v: &Value) -> Option<LedgerEvent> {
        let t_us = v.get("t_us")?.as_u64()?;
        let mapper = v.get("mapper")?.as_str()?.to_string();
        let ii = || v.get("ii").and_then(Value::as_u64).map(|x| x as u32);
        let kind = match v.get("event")?.as_str()? {
            "incumbent" => EventKind::Incumbent {
                mapper,
                ii: ii()?,
                cost: v.get("cost").and_then(Value::as_f64).unwrap_or(0.0),
            },
            "race_start" => EventKind::RaceStart { mapper },
            "race_win" => EventKind::RaceWin { mapper, ii: ii()? },
            "race_loss" => EventKind::RaceLoss {
                mapper,
                reason: v
                    .get("reason")
                    .and_then(Value::as_str)
                    .unwrap_or("")
                    .to_string(),
            },
            "budget_exhausted" => EventKind::BudgetExhausted { mapper },
            "ii_attempt" => EventKind::IiAttempt { mapper, ii: ii()? },
            _ => return None,
        };
        Some(LedgerEvent { t_us, kind })
    }
}

impl Serialize for LedgerEvent {
    fn to_value(&self) -> Value {
        self.to_json()
    }
}

/// Journal capacity: incumbents and II probes are rare (tens to
/// hundreds per run); this bounds a pathological emitter without
/// growing allocations on the append path.
pub const MAX_EVENTS: usize = 8_192;

/// The shared journal: a fixed slot array, an atomic claim cursor, and
/// an overflow counter.
pub struct RunLedger {
    slots: Box<[OnceLock<LedgerEvent>]>,
    next: AtomicUsize,
    dropped: AtomicU64,
    epoch: Instant,
}

impl Default for RunLedger {
    fn default() -> Self {
        Self::new()
    }
}

impl RunLedger {
    pub fn new() -> Self {
        Self::with_capacity(MAX_EVENTS)
    }

    pub fn with_capacity(capacity: usize) -> Self {
        RunLedger {
            slots: (0..capacity).map(|_| OnceLock::new()).collect(),
            next: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// Append one event. Lock-free: one `fetch_add` claims a slot, a
    /// `OnceLock::set` publishes it. Past capacity the event is counted
    /// in [`RunLedger::dropped`] and discarded.
    pub fn push(&self, kind: EventKind) {
        let t_us = self.epoch.elapsed().as_micros() as u64;
        let i = self.next.fetch_add(1, Ordering::AcqRel);
        if i >= self.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let _ = self.slots[i].set(LedgerEvent { t_us, kind });
    }

    /// Events recorded so far, stably sorted by `t_us`. Stability keeps
    /// equal-timestamp events in claim order, which is causally
    /// consistent (a `RaceWin` is always claimed after its
    /// `RaceStart`), so ordering properties hold by construction.
    pub fn events(&self) -> Vec<LedgerEvent> {
        let claimed = self.next.load(Ordering::Acquire).min(self.slots.len());
        let mut out: Vec<LedgerEvent> = self.slots[..claimed]
            .iter()
            .filter_map(|s| s.get().cloned())
            .collect();
        out.sort_by_key(|e| e.t_us);
        out
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.next.load(Ordering::Acquire).min(self.slots.len())
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events discarded because the journal was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for RunLedger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunLedger")
            .field("events", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

/// The handle mappers and the engine hold: either connected to a
/// shared [`RunLedger`] or disabled (the default). Cloning is a
/// refcount bump; disabled emits are a null check and build no
/// payload.
#[derive(Clone, Default)]
pub struct Ledger(Option<Arc<RunLedger>>);

impl Ledger {
    /// A disabled handle (every emit is a no-op).
    pub fn off() -> Self {
        Ledger(None)
    }

    /// A fresh enabled journal.
    pub fn enabled() -> Self {
        Ledger(Some(Arc::new(RunLedger::new())))
    }

    /// Attach to an existing journal.
    pub fn with_sink(sink: Arc<RunLedger>) -> Self {
        Ledger(Some(sink))
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    pub fn sink(&self) -> Option<&Arc<RunLedger>> {
        self.0.as_ref()
    }

    /// Append an event built on demand (payload strings are only
    /// allocated when a sink is attached).
    #[inline]
    pub fn emit(&self, kind: impl FnOnce() -> EventKind) {
        if let Some(l) = &self.0 {
            l.push(kind());
        }
    }

    #[inline]
    pub fn incumbent(&self, mapper: &str, ii: u32, cost: f64) {
        self.emit(|| EventKind::Incumbent {
            mapper: mapper.to_string(),
            ii,
            cost,
        });
    }

    #[inline]
    pub fn race_start(&self, mapper: &str) {
        self.emit(|| EventKind::RaceStart {
            mapper: mapper.to_string(),
        });
    }

    #[inline]
    pub fn race_win(&self, mapper: &str, ii: u32) {
        self.emit(|| EventKind::RaceWin {
            mapper: mapper.to_string(),
            ii,
        });
    }

    #[inline]
    pub fn race_loss(&self, mapper: &str, reason: &str) {
        self.emit(|| EventKind::RaceLoss {
            mapper: mapper.to_string(),
            reason: reason.to_string(),
        });
    }

    #[inline]
    pub fn budget_exhausted(&self, mapper: &str) {
        self.emit(|| EventKind::BudgetExhausted {
            mapper: mapper.to_string(),
        });
    }

    #[inline]
    pub fn ii_attempt(&self, mapper: &str, ii: u32) {
        self.emit(|| EventKind::IiAttempt {
            mapper: mapper.to_string(),
            ii,
        });
    }

    /// Recorded events sorted by `t_us` (empty when disabled).
    pub fn events(&self) -> Vec<LedgerEvent> {
        self.0.as_ref().map(|l| l.events()).unwrap_or_default()
    }

    /// Events discarded on overflow (zero when disabled).
    pub fn events_dropped(&self) -> u64 {
        self.0.as_ref().map(|l| l.dropped()).unwrap_or(0)
    }
}

impl std::fmt::Debug for Ledger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            None => write!(f, "Ledger(off)"),
            Some(l) => write!(f, "Ledger(on, {} events)", l.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_record_in_order() {
        let l = Ledger::enabled();
        l.race_start("sa");
        l.ii_attempt("sa", 2);
        l.incumbent("sa", 2, 14.0);
        l.race_win("sa", 2);
        let events = l.events();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].kind.label(), "race_start");
        assert_eq!(
            events[3].kind,
            EventKind::RaceWin {
                mapper: "sa".into(),
                ii: 2
            }
        );
        assert!(events.windows(2).all(|w| w[0].t_us <= w[1].t_us));
        assert_eq!(l.events_dropped(), 0);
    }

    #[test]
    fn disabled_is_inert() {
        let l = Ledger::off();
        assert!(!l.is_enabled());
        l.incumbent("sa", 1, 0.0);
        l.race_start("sa");
        assert!(l.events().is_empty());
        assert_eq!(l.events_dropped(), 0);
        assert!(l.sink().is_none());
    }

    #[test]
    fn overflow_counts_instead_of_growing() {
        let sink = Arc::new(RunLedger::with_capacity(4));
        let l = Ledger::with_sink(sink.clone());
        for ii in 0..10 {
            l.ii_attempt("bnb", ii);
        }
        assert_eq!(l.events().len(), 4);
        assert_eq!(l.events_dropped(), 6);
        assert_eq!(sink.len(), 4);
    }

    #[test]
    fn concurrent_appends_lose_nothing() {
        let l = Ledger::enabled();
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let h = l.clone();
                s.spawn(move || {
                    for i in 0..500 {
                        h.ii_attempt("sa", t * 1000 + i);
                    }
                });
            }
        });
        let events = l.events();
        assert_eq!(events.len(), 2000);
        assert!(events.windows(2).all(|w| w[0].t_us <= w[1].t_us));
    }

    #[test]
    fn json_round_trips_every_kind() {
        let kinds = vec![
            EventKind::Incumbent {
                mapper: "ilp".into(),
                ii: 3,
                cost: 42.5,
            },
            EventKind::RaceStart {
                mapper: "sa".into(),
            },
            EventKind::RaceWin {
                mapper: "sa".into(),
                ii: 2,
            },
            EventKind::RaceLoss {
                mapper: "ga".into(),
                reason: "cancelled".into(),
            },
            EventKind::BudgetExhausted {
                mapper: "cp".into(),
            },
            EventKind::IiAttempt {
                mapper: "bnb".into(),
                ii: 7,
            },
        ];
        for (i, kind) in kinds.into_iter().enumerate() {
            let e = LedgerEvent {
                t_us: i as u64 * 10,
                kind,
            };
            let back = LedgerEvent::from_json(&e.to_json()).expect("parses");
            assert_eq!(back, e);
        }
    }

    #[test]
    fn unknown_events_parse_to_none() {
        let v = Value::Object(vec![
            ("t_us".into(), Value::UInt(1)),
            ("event".into(), Value::Str("warp_drive".into())),
            ("mapper".into(), Value::Str("sa".into())),
        ]);
        assert!(LedgerEvent::from_json(&v).is_none());
        assert!(LedgerEvent::from_json(&Value::Null).is_none());
    }
}
