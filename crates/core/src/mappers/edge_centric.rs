//! Edge-centric modulo scheduling (EMS lineage — Park et al.,
//! PACT 2008).
//!
//! Where node-centric schedulers pick a slot for an operation and then
//! check that its edges route, EMS inverts the loop: the *router*
//! decides placement. For each operation, a space-time Dijkstra is run
//! from every placed producer; the operation lands on the `(pe, cycle)`
//! whose summed route cost is lowest. Placement is a by-product of
//! routing.

use super::state::SchedState;
use crate::engine::Budget;
use crate::mapper::{Family, MapConfig, MapError, Mapper};
use crate::mapping::Mapping;
use crate::telemetry::{Counter, Phase, Telemetry};
use cgra_arch::{Fabric, PeId, SpaceTime, TopologyCache};
use cgra_ir::{graph, Dfg, NodeId, OpKind};

/// The edge-centric mapper.
#[derive(Debug, Clone)]
pub struct EdgeCentric {
    /// Time window (in IIs) scanned per operation.
    pub window_iis: u32,
}

impl Default for EdgeCentric {
    fn default() -> Self {
        EdgeCentric { window_iis: 3 }
    }
}

/// Cost of the cheapest route from `(from, tr)` to every `(pe, t)` in
/// `tr..=t_max`, as a dense grid (`u64::MAX` = unreachable). This is
/// the single-source profile EMS uses to steer placement.
fn route_cost_field(
    fabric: &Fabric,
    topo: &TopologyCache,
    st: &SpaceTime,
    from: PeId,
    tr: u32,
    t_max: u32,
) -> Vec<Vec<u64>> {
    let span = (t_max.saturating_sub(tr)) as usize + 1;
    let n = fabric.num_pes();
    let mut dist = vec![vec![u64::MAX; n]; span];
    let enter = |pe: PeId, t: u32| -> Option<u64> {
        let headroom = st.reg_headroom(pe, t);
        if headroom == 0 {
            None
        } else {
            Some(100)
        }
    };
    if enter(from, tr).is_none() {
        return dist;
    }
    dist[0][from.index()] = 100;
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u16, usize)>> =
        std::collections::BinaryHeap::new();
    heap.push(std::cmp::Reverse((100, from.0, 0)));
    while let Some(std::cmp::Reverse((d, pe_raw, step))) = heap.pop() {
        let pe = PeId(pe_raw);
        if d > dist[step][pe.index()] {
            continue;
        }
        if step + 1 == span {
            continue;
        }
        let t_next = tr + step as u32 + 1;
        // CSR slice plus "stay put" — no per-expansion allocation.
        for &nxt in topo.neighbors(pe).iter().chain(std::iter::once(&pe)) {
            if let Some(c) = enter(nxt, t_next) {
                let nd = d + c;
                if nd < dist[step + 1][nxt.index()] {
                    dist[step + 1][nxt.index()] = nd;
                    heap.push(std::cmp::Reverse((nd, nxt.0, step + 1)));
                }
            }
        }
    }
    dist
}

impl EdgeCentric {
    fn try_ii(
        &self,
        dfg: &Dfg,
        fabric: &Fabric,
        ii: u32,
        topo: &TopologyCache,
        budget: &Budget,
        tele: &Telemetry,
    ) -> Option<Mapping> {
        tele.bump(Counter::IiAttempts);
        let _span = tele.span_ii(Phase::Map, ii);
        let mut state = SchedState::new(dfg, fabric, ii, topo, tele.clone());
        let lat = |op: OpKind| fabric.latency_of(op);
        let height = graph::height(dfg, &lat);
        let mut order: Vec<NodeId> = dfg.topo_order().ok()?;
        order.sort_by_key(|n| std::cmp::Reverse(height[n.index()]));

        for &n in &order {
            if budget.expired() {
                return None;
            }
            let est = state.est(n);
            let window_end = match state.lst(n) {
                Some(l) => l.min(est + self.window_iis * ii),
                None => est + self.window_iis * ii,
            };
            if window_end < est {
                return None;
            }

            // Build route-cost fields from every placed dist-0 producer.
            let producers: Vec<(NodeId, PeId, u32)> = dfg
                .in_edges(n)
                .filter(|(_, e)| e.dist == 0 && e.src != n)
                .filter_map(|(_, e)| {
                    state
                        .placed(e.src)
                        .map(|p| (e.src, p.pe, p.time + fabric.latency_of(dfg.op(e.src))))
                })
                .collect();
            let fields: Vec<Vec<Vec<u64>>> = producers
                .iter()
                .map(|&(_, pe, tr)| route_cost_field(fabric, topo, &state.st, pe, tr, window_end))
                .collect();

            // Score every (t, pe): summed producer route costs.
            let op = dfg.op(n);
            let mut candidates: Vec<(u64, u32, PeId)> = Vec::new();
            for t in est..=window_end {
                for pe in fabric.pe_ids() {
                    if !fabric.supports(pe, op) || !state.st.fu_free(pe, t) {
                        continue;
                    }
                    let mut cost = 0u64;
                    let mut reachable = true;
                    for (f, &(_, _, tr)) in fields.iter().zip(&producers) {
                        if t < tr {
                            reachable = false;
                            break;
                        }
                        let step = (t - tr) as usize;
                        match f.get(step).map(|row| row[pe.index()]) {
                            Some(c) if c != u64::MAX => cost += c,
                            _ => {
                                reachable = false;
                                break;
                            }
                        }
                    }
                    if !reachable {
                        continue;
                    }
                    // Prefer earlier slots and short future wires.
                    cost += t as u64;
                    candidates.push((cost, t, pe));
                }
            }
            candidates.sort();
            let mut placed = false;
            for (_, t, pe) in candidates.into_iter().take(48) {
                if state.try_place(n, pe, t) {
                    placed = true;
                    break;
                }
            }
            if !placed {
                return None;
            }
        }
        state.into_mapping()
    }
}

impl Mapper for EdgeCentric {
    fn name(&self) -> &'static str {
        "edge-centric"
    }

    fn family(&self) -> Family {
        Family::Heuristic
    }

    fn map(&self, dfg: &Dfg, fabric: &Fabric, cfg: &MapConfig) -> Result<Mapping, MapError> {
        dfg.validate()
            .map_err(|e| MapError::Unsupported(e.to_string()))?;
        let mii = super::ModuloList::mii(dfg, fabric);
        let (min_ii, max_ii) = cfg.ii_range_for(dfg, mii, fabric)?;
        let topo = cfg.topo_for(fabric);
        let budget = cfg.run_budget();
        for ii in min_ii..=max_ii {
            cfg.ledger.ii_attempt("edge-centric", ii);
            if let Some(m) = self.try_ii(dfg, fabric, ii, &topo, &budget, &cfg.telemetry) {
                cfg.telemetry.bump(Counter::Incumbents);
                cfg.ledger.incumbent("edge-centric", ii, ii as f64);
                return Ok(m);
            }
            if budget.expired_now() {
                return Err(budget.error());
            }
        }
        Err(MapError::infeasible(format!(
            "no II in {min_ii}..={max_ii} admits a schedule"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;
    use cgra_arch::Topology;
    use cgra_ir::kernels;

    #[test]
    fn maps_suite_on_4x4() {
        let f = Fabric::homogeneous(4, 4, Topology::Mesh);
        for dfg in kernels::suite() {
            let m = EdgeCentric::default()
                .map(&dfg, &f, &MapConfig::fast())
                .unwrap_or_else(|e| panic!("{}: {e}", dfg.name));
            validate(&m, &dfg, &f).unwrap_or_else(|e| panic!("{}: {e}", dfg.name));
        }
    }

    #[test]
    fn placement_follows_routability() {
        // On a 1-wide fabric (a 1x4 row), routes are forced through the
        // line; EMS must still find them.
        let f = Fabric::homogeneous(1, 4, Topology::Mesh);
        let dfg = kernels::accumulate();
        let m = EdgeCentric::default()
            .map(&dfg, &f, &MapConfig::fast())
            .unwrap();
        validate(&m, &dfg, &f).unwrap();
    }

    #[test]
    fn respects_io_policy() {
        let f = Fabric::adres_like(4, 4);
        let dfg = kernels::dot_product();
        let m = EdgeCentric::default()
            .map(&dfg, &f, &MapConfig::fast())
            .unwrap();
        validate(&m, &dfg, &f).unwrap();
        for (id, node) in dfg.nodes() {
            if matches!(
                node.op,
                cgra_ir::OpKind::Input(_) | cgra_ir::OpKind::Output(_)
            ) {
                assert!(f.is_border(m.placement(id).pe));
            }
        }
    }
}
