//! Graph-minor mapping (Chen & Mitra, ACM TRETS 2014).
//!
//! The DFG is embedded as a *minor* of the time-extended CGRA: each
//! operation owns a connected branch set of TEC nodes (its issue slot
//! plus the registers its value routes through), and DFG edges become
//! TEC edges between branch sets. Operationally the algorithm proceeds
//! level by level: the operations of each schedule level are matched
//! to PEs as a group (cheapest-cost greedy matching against the
//! previous level's branch sets), levels are re-matched under a
//! different permutation when the downstream embedding fails, and the
//! branch sets are materialised by the router at the end.

use crate::engine::Budget;
use crate::mapper::{Family, MapConfig, MapError, Mapper};
use crate::mapping::{Mapping, Placement};
use crate::route::route_all_with;
use crate::telemetry::{Counter, Phase, Telemetry};
use cgra_arch::{Fabric, PeId, TopologyCache};
use cgra_ir::{graph, Dfg, NodeId, OpKind};

/// The level-matching minor-embedding mapper.
#[derive(Debug, Clone)]
pub struct GraphMinor {
    /// Matching permutations tried per level before backtracking.
    pub retries_per_level: usize,
}

impl Default for GraphMinor {
    fn default() -> Self {
        GraphMinor {
            retries_per_level: 6,
        }
    }
}

impl GraphMinor {
    fn try_ii(
        &self,
        dfg: &Dfg,
        fabric: &Fabric,
        ii: u32,
        topo: &TopologyCache,
        budget: &Budget,
        tele: &Telemetry,
    ) -> Option<Mapping> {
        tele.bump(Counter::IiAttempts);
        let _span = tele.span_ii(Phase::Map, ii);
        let lat = |op: OpKind| fabric.latency_of(op);
        let levels = graph::asap(dfg, &lat);
        let max_level = levels.iter().copied().max().unwrap_or(0);
        // Group ops by level.
        let mut by_level: Vec<Vec<NodeId>> = vec![Vec::new(); max_level as usize + 1];
        for n in dfg.node_ids() {
            by_level[levels[n.index()] as usize].push(n);
        }
        // Time of a level: spread levels `spacing` cycles apart so hops
        // have slack; spacing grows on retry.
        for spacing in 1..=3u32 {
            if budget.expired_now() {
                return None;
            }
            if let Some(m) = self.embed(dfg, fabric, ii, topo, &by_level, spacing, budget, tele) {
                return Some(m);
            }
        }
        None
    }

    #[allow(clippy::too_many_arguments)]
    fn embed(
        &self,
        dfg: &Dfg,
        fabric: &Fabric,
        ii: u32,
        topo: &TopologyCache,
        by_level: &[Vec<NodeId>],
        spacing: u32,
        budget: &Budget,
        tele: &Telemetry,
    ) -> Option<Mapping> {
        let mut place: Vec<Option<Placement>> = vec![None; dfg.node_count()];
        let mut fu: std::collections::HashSet<(PeId, u32)> = std::collections::HashSet::new();

        for (lvl, ops) in by_level.iter().enumerate() {
            if budget.expired() {
                return None;
            }
            let t = lvl as u32 * spacing;
            let slot = t % ii;
            let mut matched = false;
            // Try a few greedy matchings with rotated op order.
            for rot in 0..self.retries_per_level.max(1) {
                let mut trial_fu = fu.clone();
                let mut trial_place = place.clone();
                let mut ok = true;
                let k = ops.len();
                for i in 0..k {
                    let n = ops[(i + rot) % k];
                    let op = dfg.op(n);
                    // Cheapest compatible PE w.r.t. placed producers.
                    let best = fabric
                        .pe_ids()
                        .filter(|&pe| fabric.supports(pe, op) && !trial_fu.contains(&(pe, slot)))
                        .filter(|&pe| {
                            // Minor condition: slack ≥ hop distance for
                            // every placed neighbour.
                            dfg.in_edges(n).all(|(_, e)| {
                                if e.src == n {
                                    return true;
                                }
                                match trial_place[e.src.index()] {
                                    Some(p) => {
                                        let tr = p.time + fabric.latency_of(dfg.op(e.src));
                                        let tc = t + ii * e.dist;
                                        tc >= tr && topo.hops(p.pe, pe) <= tc - tr
                                    }
                                    None => true,
                                }
                            })
                        })
                        .min_by_key(|&pe| {
                            let mut c = 0u32;
                            for (_, e) in dfg.in_edges(n) {
                                if let Some(p) = trial_place[e.src.index()] {
                                    c += topo.hops(p.pe, pe);
                                }
                            }
                            (c, pe.0)
                        });
                    match best {
                        Some(pe) => {
                            tele.bump(Counter::PlacementsTried);
                            trial_fu.insert((pe, slot));
                            trial_place[n.index()] = Some(Placement { pe, time: t });
                        }
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    fu = trial_fu;
                    place = trial_place;
                    matched = true;
                    break;
                }
            }
            if !matched {
                return None;
            }
        }
        let place: Vec<Placement> = place.into_iter().collect::<Option<_>>()?;
        // Materialise branch sets (routes).
        let routes = route_all_with(fabric, topo, dfg, &place, ii, 12, true, tele)?;
        Some(Mapping { ii, place, routes })
    }
}

impl Mapper for GraphMinor {
    fn name(&self) -> &'static str {
        "graph-minor"
    }

    fn family(&self) -> Family {
        Family::Heuristic
    }

    fn map(&self, dfg: &Dfg, fabric: &Fabric, cfg: &MapConfig) -> Result<Mapping, MapError> {
        dfg.validate()
            .map_err(|e| MapError::Unsupported(e.to_string()))?;
        let mii = super::ModuloList::mii(dfg, fabric);
        let (min_ii, max_ii) = cfg.ii_range_for(dfg, mii, fabric)?;
        let topo = cfg.topo_for(fabric);
        let budget = cfg.run_budget();
        for ii in min_ii..=max_ii {
            cfg.ledger.ii_attempt("graph-minor", ii);
            if let Some(m) = self.try_ii(dfg, fabric, ii, &topo, &budget, &cfg.telemetry) {
                cfg.telemetry.bump(Counter::Incumbents);
                cfg.ledger.incumbent("graph-minor", ii, ii as f64);
                return Ok(m);
            }
            if budget.expired_now() {
                return Err(budget.error());
            }
        }
        Err(MapError::infeasible(format!(
            "no II in {min_ii}..={max_ii} admits a minor embedding"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;
    use cgra_arch::Topology;
    use cgra_ir::kernels;

    #[test]
    fn maps_most_of_suite_on_4x4() {
        // Level matching is the weakest heuristic here; it must map the
        // easy kernels and must never return an invalid mapping.
        let f = Fabric::homogeneous(4, 4, Topology::Mesh);
        let mut successes = 0;
        for dfg in kernels::suite() {
            if let Ok(m) = GraphMinor::default().map(&dfg, &f, &MapConfig::fast()) {
                validate(&m, &dfg, &f).unwrap_or_else(|e| panic!("{}: {e}", dfg.name));
                successes += 1;
            }
        }
        assert!(successes >= 8, "only {successes} kernels mapped");
    }

    #[test]
    fn level_structure_respected() {
        let f = Fabric::homogeneous(4, 4, Topology::Mesh);
        let dfg = kernels::horner4();
        let m = GraphMinor::default()
            .map(&dfg, &f, &MapConfig::fast())
            .unwrap();
        validate(&m, &dfg, &f).unwrap();
    }
}
