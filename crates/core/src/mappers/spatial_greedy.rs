//! Spatial mapping, greedy baseline: one operation per PE, II = 1.
//!
//! Spatial computation is the FPGA-like mode of the survey's Fig. 3
//! ("spatial mapping"): every PE executes the same operation every
//! cycle and data streams through the array. Mapping reduces to the
//! binding problem plus routing; the schedule follows from the longest
//! dependence path including hop delays.

use crate::mapper::{Family, MapConfig, MapError, Mapper};
use crate::mapping::{Mapping, Placement};
use crate::route::route_all_with;
use crate::telemetry::{Counter, Telemetry};
use cgra_arch::{Fabric, PeId, TopologyCache};
use cgra_ir::{Dfg, NodeId};

/// BFS placement: operations in topological order grab the nearest
/// capability-feasible free PE to their predecessors.
#[derive(Debug, Clone, Default)]
pub struct SpatialGreedy {
    /// Ablation: disable negotiated routing (single feasible pass).
    pub plain_routing: bool,
}

/// Solve issue times for a fixed spatial binding: the difference
/// constraints `t(dst) + ii·d ≥ t(src) + lat(src) + hops(src,dst)`
/// by Bellman-Ford longest path. Returns `None` on a positive cycle
/// (recurrence too tight for the binding).
pub(crate) fn schedule_times(
    dfg: &Dfg,
    fabric: &Fabric,
    topo: &TopologyCache,
    pes: &[PeId],
    ii: u32,
) -> Option<Vec<u32>> {
    let n = dfg.node_count();
    let mut t = vec![0i64; n];
    for round in 0..=n {
        let mut changed = false;
        for (_, e) in dfg.edges() {
            let lat = fabric.latency_of(dfg.op(e.src)) as i64;
            let hops = topo.hops(pes[e.src.index()], pes[e.dst.index()]) as i64;
            let lb = t[e.src.index()] + lat + hops - (ii as i64) * e.dist as i64;
            if lb > t[e.dst.index()] {
                t[e.dst.index()] = lb;
                changed = true;
            }
        }
        if !changed {
            let min = t.iter().copied().min().unwrap_or(0);
            return Some(t.iter().map(|&x| (x - min) as u32).collect());
        }
        if round == n {
            return None;
        }
    }
    None
}

/// Build a spatial mapping from a one-op-per-PE binding by scheduling
/// and routing it. Shared by the spatial mappers and the meta-heuristics
/// in spatial mode.
pub(crate) fn finish_spatial(
    dfg: &Dfg,
    fabric: &Fabric,
    topo: &TopologyCache,
    pes: &[PeId],
    negotiated: bool,
    tele: &Telemetry,
) -> Option<Mapping> {
    let times = schedule_times(dfg, fabric, topo, pes, 1)?;
    let place: Vec<Placement> = pes
        .iter()
        .zip(&times)
        .map(|(&pe, &time)| Placement { pe, time })
        .collect();
    let routes = route_all_with(fabric, topo, dfg, &place, 1, 12, negotiated, tele)?;
    Some(Mapping {
        ii: 1,
        place,
        routes,
    })
}

impl Mapper for SpatialGreedy {
    fn name(&self) -> &'static str {
        "spatial-greedy"
    }

    fn family(&self) -> Family {
        Family::Heuristic
    }

    fn is_spatial(&self) -> bool {
        true
    }

    fn map(&self, dfg: &Dfg, fabric: &Fabric, cfg: &MapConfig) -> Result<Mapping, MapError> {
        dfg.validate()
            .map_err(|e| MapError::Unsupported(e.to_string()))?;
        if dfg.node_count() > fabric.num_pes() {
            return Err(MapError::infeasible(format!(
                "{} ops > {} PEs",
                dfg.node_count(),
                fabric.num_pes()
            )));
        }
        let topo = cfg.topo_for(fabric);
        let order = dfg
            .topo_order()
            .map_err(|n| MapError::Unsupported(format!("zero-distance cycle at {n}")))?;

        let mut pes: Vec<Option<PeId>> = vec![None; dfg.node_count()];
        let mut used = vec![false; fabric.num_pes()];
        for &n in &order {
            let op = dfg.op(n);
            let best = fabric
                .pe_ids()
                .filter(|&pe| !used[pe.index()] && fabric.supports(pe, op))
                .min_by_key(|&pe| {
                    let mut cost = 0u32;
                    let mut any = false;
                    for (_, e) in dfg.in_edges(n) {
                        if let Some(p) = pes[e.src.index()] {
                            cost += topo.hops(p, pe);
                            any = true;
                        }
                    }
                    // Sources anchor near the border (I/O side) centre.
                    if !any {
                        cost = topo.hops(PeId(0), pe);
                    }
                    (cost, pe.0)
                });
            match best {
                Some(pe) => {
                    used[pe.index()] = true;
                    pes[n.index()] = Some(pe);
                }
                None => return Err(MapError::infeasible(format!("no free capable PE for {n}"))),
            }
        }
        let pes: Vec<PeId> = pes.into_iter().map(|p| p.unwrap()).collect();
        let m = finish_spatial(
            dfg,
            fabric,
            &topo,
            &pes,
            !self.plain_routing,
            &cfg.telemetry,
        )
        .ok_or_else(|| MapError::infeasible("binding found but routing failed"))?;
        cfg.telemetry.bump(Counter::Incumbents);
        cfg.ledger.incumbent("spatial-greedy", m.ii, m.ii as f64);
        Ok(m)
    }
}

/// Expose a helper for tests and other mappers: all input nodes.
#[allow(dead_code)]
pub(crate) fn source_nodes(dfg: &Dfg) -> Vec<NodeId> {
    dfg.node_ids().filter(|&n| dfg.op(n).is_source()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::{validate, validate_spatial};
    use cgra_arch::Topology;
    use cgra_ir::kernels;

    fn mesh() -> Fabric {
        Fabric::homogeneous(4, 4, Topology::Mesh)
    }

    #[test]
    fn dot_product_spatial() {
        let dfg = kernels::dot_product();
        let f = mesh();
        let m = SpatialGreedy::default()
            .map(&dfg, &f, &MapConfig::fast())
            .unwrap();
        validate_spatial(&m, &dfg, &f).unwrap();
        assert_eq!(m.ii, 1);
    }

    #[test]
    fn too_many_ops_rejected() {
        let dfg = kernels::unrolled_mac(8); // 33+ ops
        let f = Fabric::homogeneous(2, 2, Topology::Mesh);
        assert!(matches!(
            SpatialGreedy::default().map(&dfg, &f, &MapConfig::fast()),
            Err(MapError::Infeasible(_))
        ));
    }

    #[test]
    fn suite_small_kernels_spatially_mappable() {
        let f = Fabric::homogeneous(6, 6, Topology::Mesh);
        for dfg in [
            kernels::dot_product(),
            kernels::accumulate(),
            kernels::sad(),
            kernels::threshold(),
            kernels::horner4(),
            kernels::fir(3),
        ] {
            let m = SpatialGreedy::default()
                .map(&dfg, &f, &MapConfig::fast())
                .unwrap_or_else(|e| panic!("{}: {e}", dfg.name));
            validate_spatial(&m, &dfg, &f).unwrap_or_else(|e| panic!("{}: {e}", dfg.name));
        }
    }

    #[test]
    fn schedule_times_respects_hops() {
        let dfg = kernels::horner4();
        let f = mesh();
        let topo = TopologyCache::build(&f);
        // Everything on one diagonal-ish walk of distinct PEs.
        let pes: Vec<PeId> = (0..dfg.node_count() as u16).map(PeId).collect();
        let times = schedule_times(&dfg, &f, &topo, &pes, 1).unwrap();
        for (_, e) in dfg.edges() {
            let lat = f.latency_of(dfg.op(e.src));
            let h = topo.hops(pes[e.src.index()], pes[e.dst.index()]);
            assert!(
                times[e.dst.index()] + e.dist >= times[e.src.index()] + lat + h,
                "edge violated"
            );
        }
    }

    #[test]
    fn tight_recurrence_on_distant_pes_fails_scheduling() {
        // accumulate's self edge needs hop 0; placing a 1-dist carried
        // cycle across distant PEs is infeasible at II=1.
        let mut dfg = Dfg::new("farrec");
        let a = dfg.add_node(cgra_ir::OpKind::Not);
        let b = dfg.add_node(cgra_ir::OpKind::Not);
        dfg.connect(a, b, 0);
        dfg.connect_carried(b, a, 0, 1, vec![0]);
        let f = mesh();
        let topo = TopologyCache::build(&f);
        // a at pe0, b at pe15: cycle latency 2 + hops 12 > d=1 at II=1.
        let times = schedule_times(&dfg, &f, &topo, &[PeId(0), PeId(15)], 1);
        assert!(times.is_none());
        // Adjacent PEs still fail (cycle latency 2 + 2 hops > 1) —
        // same-PE placement is impossible spatially, so this DFG is
        // spatially unmappable; the mapper must say infeasible.
        let r = SpatialGreedy::default().map(&dfg, &f, &MapConfig::fast());
        assert!(r.is_err());
    }

    #[test]
    fn plain_routing_ablation_runs() {
        let dfg = kernels::sad();
        let f = mesh();
        let m = SpatialGreedy {
            plain_routing: true,
        }
        .map(&dfg, &f, &MapConfig::fast());
        if let Ok(m) = m {
            validate(&m, &dfg, &f).unwrap();
        }
        // Single-pass routing may legitimately fail; both outcomes OK.
    }
}
