//! All mapping techniques, one module per Table I lineage.
//!
//! Every mapper implements [`crate::Mapper`] and returns mappings that
//! pass [`crate::validate::validate`]. See the crate docs for the
//! family ↔ mapper table.

mod bnb;
mod cp_mapper;
mod edge_centric;
mod epimap;
pub(crate) mod exact_common;
mod ga;
mod graph_drawing;
mod graph_minor;
mod himap;
mod ilp_mapper;
pub(crate) mod meta_common;
mod modulo_list;
mod qea;
mod ramp;
mod sa;
mod sat_mapper;
mod smt_mapper;
mod spatial_greedy;
pub(crate) mod state;

pub use bnb::BranchAndBound;
pub use cp_mapper::CpMapper;
pub use edge_centric::EdgeCentric;
pub use epimap::EpiMap;
pub use ga::Genetic;
pub use graph_drawing::GraphDrawing;
pub use graph_minor::GraphMinor;
pub use himap::HiMap;
pub use ilp_mapper::IlpMapper;
pub use modulo_list::{IiSearch, ModuloList};
pub use qea::Qea;
pub use ramp::Ramp;
pub use sa::{Cooling, SimulatedAnnealing};
pub use sat_mapper::SatMapper;
pub use smt_mapper::SmtMapper;
pub use spatial_greedy::SpatialGreedy;

use crate::mapper::Mapper;
use crate::registry::MapperRegistry;

/// Every mapper at default settings — the Table I experiment
/// portfolio. Built from [`MapperRegistry::standard`].
pub fn all_mappers() -> Vec<Box<dyn Mapper>> {
    MapperRegistry::standard().build_all()
}

/// The fast heuristic subset (used where exact mappers would blow the
/// budget). Built from [`MapperRegistry::standard`].
pub fn heuristic_mappers() -> Vec<Box<dyn Mapper>> {
    MapperRegistry::standard().build_heuristics()
}
