//! All mapping techniques, one module per Table I lineage.
//!
//! Every mapper implements [`crate::Mapper`] and returns mappings that
//! pass [`crate::validate::validate`]. See the crate docs for the
//! family ↔ mapper table.

mod bnb;
pub(crate) mod exact_common;
pub(crate) mod meta_common;
pub(crate) mod state;
mod cp_mapper;
mod edge_centric;
mod epimap;
mod ga;
mod graph_drawing;
mod graph_minor;
mod himap;
mod ilp_mapper;
mod modulo_list;
mod qea;
mod ramp;
mod sa;
mod sat_mapper;
mod smt_mapper;
mod spatial_greedy;

pub use bnb::BranchAndBound;
pub use cp_mapper::CpMapper;
pub use edge_centric::EdgeCentric;
pub use epimap::EpiMap;
pub use ga::Genetic;
pub use graph_drawing::GraphDrawing;
pub use graph_minor::GraphMinor;
pub use himap::HiMap;
pub use ilp_mapper::IlpMapper;
pub use modulo_list::{IiSearch, ModuloList};
pub use qea::Qea;
pub use ramp::Ramp;
pub use sa::{Cooling, SimulatedAnnealing};
pub use sat_mapper::SatMapper;
pub use smt_mapper::SmtMapper;
pub use spatial_greedy::SpatialGreedy;

use crate::mapper::Mapper;

/// Every mapper at default settings — the Table I experiment portfolio.
pub fn all_mappers() -> Vec<Box<dyn Mapper>> {
    vec![
        Box::new(SpatialGreedy::default()),
        Box::new(GraphDrawing::default()),
        Box::new(ModuloList::default()),
        Box::new(EdgeCentric::default()),
        Box::new(EpiMap::default()),
        Box::new(Ramp::default()),
        Box::new(HiMap::default()),
        Box::new(GraphMinor::default()),
        Box::new(SimulatedAnnealing::default()),
        Box::new(Genetic::default()),
        Box::new(Qea::default()),
        Box::new(IlpMapper::default()),
        Box::new(BranchAndBound::default()),
        Box::new(CpMapper::default()),
        Box::new(SatMapper::default()),
        Box::new(SmtMapper::default()),
    ]
}

/// The fast heuristic subset (used where exact mappers would blow the
/// budget).
pub fn heuristic_mappers() -> Vec<Box<dyn Mapper>> {
    vec![
        Box::new(SpatialGreedy::default()),
        Box::new(GraphDrawing::default()),
        Box::new(ModuloList::default()),
        Box::new(EdgeCentric::default()),
        Box::new(EpiMap::default()),
        Box::new(Ramp::default()),
        Box::new(HiMap::default()),
        Box::new(GraphMinor::default()),
    ]
}
