//! SAT-based mapping (Miyasaka et al., VLSI-SoC 2021).
//!
//! The mapping at a fixed II is encoded in CNF over "operation `o`
//! sits at position `p`" variables: exactly-one per operation,
//! at-most-one per `(pe, modulo slot)`, and per-edge implication
//! clauses restricting consumers to hop-reachable positions. The CDCL
//! solver ([`cgra_solver::SatSolver`]) finds a model; routing is then
//! materialised, and a routing failure (register congestion the
//! encoding cannot see) blocks that exact placement with a no-good
//! clause and re-solves — a CEGAR loop.
//!
//! ## Incremental II sweep
//!
//! With `MapConfig::incremental` (the default) the bottom-up sweep uses
//! *one* persistent solver per [`SWEEP_CHUNK`]-sized run of adjacent
//! candidate IIs instead of a fresh encoding per II (chunking keeps the
//! union encoding proportional to the IIs actually visited — a kernel
//! feasible at `min_ii` never pays for the tail of the sweep). Within a
//! chunk, variables range over the union of its IIs' candidate spaces
//! ([`SweepSpace`]), built once per chunk; each II's constraints are
//! encoded lazily under a per-II selector literal and activated by
//! [`SatSolver::solve_with_assumptions`]. A refuted II retires its
//! selector permanently, CEGAR no-goods accumulate under the selector
//! of the II they belong to, and variable activities and saved phases
//! carry from the II=k refutation into the II=k+1 search. The solver is
//! parked in [`MapConfig::incr`](crate::IncrementalCtx) between calls,
//! keyed by fabric fingerprint, kernel fingerprint, and the encoding
//! knobs, so re-mapping the same kernel resumes with every layer
//! already encoded, every learnt clause intact, and refuted IIs
//! answered without a solve. Each II's own candidate list inside the
//! union is exactly the from-scratch [`PositionSpace`], so both paths
//! see the same feasible set per II and achieve identical IIs.

use super::exact_common::{add_solver_stats, edge_compatible, realise, PositionSpace, SweepSpace};
use crate::diagnosis::{cap_list, cell_name, op_name, Diagnosis, ResourceClass};
use crate::engine::Budget;
use crate::incremental::{kernel_fingerprint, IncrKey};
use crate::ledger::Ledger;
use crate::mapper::{Family, MapConfig, MapError, Mapper};
use crate::mapping::Mapping;
use crate::telemetry::{Counter, Phase, Telemetry};
use cgra_arch::{Fabric, PeId, TopologyCache};
use cgra_ir::{Dfg, NodeId};
use cgra_solver::cnf::{at_most_one, exactly_one, AmoEncoding};
use cgra_solver::{Interrupt, Lit, SatResult, SatSolver};
use std::collections::{BTreeMap, HashSet};

/// The SAT mapper.
#[derive(Debug, Clone)]
pub struct SatMapper {
    /// At-most-one encoding (ablation: pairwise vs sequential).
    pub amo: AmoEncoding,
    /// CEGAR rounds (placements tried per II).
    pub cegar_rounds: u32,
    /// Candidate positions per op (None = full window).
    pub position_cap: Option<usize>,
    pub window_iis: u32,
}

impl Default for SatMapper {
    fn default() -> Self {
        SatMapper {
            amo: AmoEncoding::Pairwise,
            cegar_rounds: 40,
            position_cap: Some(48),
            window_iis: 2,
        }
    }
}

/// Adjacent IIs share one persistent solver in runs of this size. The
/// chunk bounds the union encoding (and the structural exactly-one)
/// while still letting learnt clauses from the II=k refutation prune
/// II=k+1; sweeps that exhaust a chunk roll into the next one cold.
const SWEEP_CHUNK: usize = 4;

/// Reusable cross-II solver state for the incremental sweep: one CDCL
/// instance holding the union-space structural encoding, the per-II
/// selector-guarded layers encoded so far, and every learnt clause.
struct SweepState {
    solver: SatSolver,
    space: SweepSpace,
    /// `vars[op][u]` ⇔ "op sits at union position `u`".
    vars: Vec<Vec<Lit>>,
    /// One selector literal per candidate II, assumption-activated.
    sels: Vec<Lit>,
    /// Which II layers have been encoded into the solver.
    encoded: Vec<bool>,
    /// IIs proven UNSAT (their selector has been retired).
    infeasible: Vec<bool>,
}

impl SatMapper {
    /// Digest of every knob that shapes the incremental encoding; part
    /// of the [`IncrKey`] so state never outlives an encoding change.
    fn knobs(&self, min_ii: u32, max_ii: u32) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        format!("{:?}", self.amo).hash(&mut h);
        self.position_cap.hash(&mut h);
        self.window_iis.hash(&mut h);
        (min_ii, max_ii).hash(&mut h);
        h.finish()
    }

    /// Cold-start a sweep state: variables over the union of the
    /// chunk's candidate spaces, one selector per II. All constraints —
    /// including each II's exactly-one — live in the guarded per-II
    /// layers ([`Self::encode_layer`]), so an II the sweep never reaches
    /// costs nothing beyond its share of (unconstrained) variables.
    fn build_state(&self, dfg: &Dfg, fabric: &Fabric, iis: &[u32]) -> SweepState {
        let space = SweepSpace::build(dfg, fabric, iis, self.window_iis, self.position_cap);
        let mut solver = SatSolver::new();
        let vars: Vec<Vec<Lit>> = space
            .union
            .iter()
            .map(|ps| ps.iter().map(|_| Lit::pos(solver.new_var())).collect())
            .collect();
        let sels: Vec<Lit> = iis.iter().map(|_| solver.new_selector()).collect();
        SweepState {
            solver,
            space,
            vars,
            sels,
            encoded: vec![false; iis.len()],
            infeasible: vec![false; iis.len()],
        }
    }

    /// Encode II layer `k` under its selector: union positions outside
    /// this II's window are forbidden, plus FU exclusivity per modulo
    /// slot and per-edge reachability over this II's candidates.
    fn encode_layer(
        &self,
        st: &mut SweepState,
        k: usize,
        dfg: &Dfg,
        fabric: &Fabric,
        topo: &TopologyCache,
    ) {
        let ii = st.space.iis[k];
        let sel = st.sels[k];
        for (op, members) in st.space.member[k].iter().enumerate() {
            let mut keep = vec![false; st.space.union[op].len()];
            for &u in members {
                keep[u] = true;
            }
            // Union positions outside this II's window are forbidden,
            // so under this selector the variable space collapses to
            // exactly the from-scratch per-II candidate lists.
            for (u, keep) in keep.iter().enumerate() {
                if !keep {
                    st.solver.add_clause_under(sel, &[st.vars[op][u].negate()]);
                }
            }
            // Exactly one of this II's candidates per op: at-least-one
            // over the members, at-most-one pairwise (the guarded twin
            // of the from-scratch default encoding).
            let lits: Vec<Lit> = members.iter().map(|&u| st.vars[op][u]).collect();
            st.solver.add_clause_under(sel, &lits);
            for i in 0..lits.len() {
                for j in i + 1..lits.len() {
                    st.solver
                        .add_clause_under(sel, &[lits[i].negate(), lits[j].negate()]);
                }
            }
        }
        // FU exclusivity: at most one op per (pe, slot), pairwise under
        // the guard (each II's slot lists are position-cap sized, the
        // same as the from-scratch pairwise encoding).
        let mut by_slot: BTreeMap<(PeId, u32), Vec<Lit>> = BTreeMap::new();
        for (op, members) in st.space.member[k].iter().enumerate() {
            for &u in members {
                let (pe, t) = st.space.union[op][u];
                by_slot
                    .entry((pe, t % ii))
                    .or_default()
                    .push(st.vars[op][u]);
            }
        }
        for lits in by_slot.values() {
            for i in 0..lits.len() {
                for j in i + 1..lits.len() {
                    st.solver
                        .add_clause_under(sel, &[lits[i].negate(), lits[j].negate()]);
                }
            }
        }
        // Edge implications: src at a → dst somewhere compatible.
        for (_, e) in dfg.edges() {
            let src_op = dfg.op(e.src);
            for &ua in &st.space.member[k][e.src.index()] {
                let a = st.space.union[e.src.index()][ua];
                let mut clause: Vec<Lit> = vec![st.vars[e.src.index()][ua].negate()];
                for &ub in &st.space.member[k][e.dst.index()] {
                    if e.src == e.dst && ua != ub {
                        continue; // self edge: same position both sides
                    }
                    let b = st.space.union[e.dst.index()][ub];
                    if edge_compatible(fabric, topo, ii, src_op, e.dist, a, b) {
                        clause.push(st.vars[e.dst.index()][ub]);
                    }
                }
                st.solver.add_clause_under(sel, &clause);
            }
        }
    }

    /// One II attempt on the persistent solver: solve under this II's
    /// selector, realise models, block routing failures under the same
    /// selector (a no-good at II=k says nothing about II=k+1).
    #[allow(clippy::too_many_arguments)]
    fn try_ii_incremental(
        &self,
        st: &mut SweepState,
        k: usize,
        dfg: &Dfg,
        fabric: &Fabric,
        topo: &TopologyCache,
        budget: &Budget,
        tele: &Telemetry,
        ledger: &Ledger,
    ) -> Result<Option<Mapping>, MapError> {
        let ii = st.space.iis[k];
        tele.bump(Counter::IiAttempts);
        ledger.ii_attempt("sat", ii);
        let _span = tele.span_ii(Phase::Map, ii);
        if st.infeasible[k] {
            return Ok(None);
        }
        if st.space.member[k].iter().any(|m| m.is_empty()) {
            st.infeasible[k] = true;
            return Ok(None);
        }
        let before = st.solver.stats();
        if !st.encoded[k] {
            self.encode_layer(st, k, dfg, fabric, topo);
            st.encoded[k] = true;
        }
        let sel = st.sels[k];
        let result: Result<Option<Mapping>, MapError> = 'cegar: {
            for round in 0..self.cegar_rounds.max(1) {
                if budget.expired_now() {
                    break 'cegar Err(budget.error());
                }
                match st.solver.solve_with_assumptions(&[sel]) {
                    SatResult::Unsat => {
                        st.solver.retire_selector(sel);
                        st.infeasible[k] = true;
                        break 'cegar Ok(None);
                    }
                    SatResult::Unknown => break 'cegar Err(budget.error()),
                    SatResult::Sat(model) => {
                        tele.bump(Counter::Incumbents);
                        ledger.incumbent("sat", ii, round as f64);
                        let chosen: Vec<(PeId, u32)> = st.space.member[k]
                            .iter()
                            .enumerate()
                            .map(|(op, members)| {
                                let u = members
                                    .iter()
                                    .copied()
                                    .find(|&u| model[st.vars[op][u].var().0 as usize])
                                    .expect("exactly-one guarantees a member choice");
                                st.space.union[op][u]
                            })
                            .collect();
                        if let Some(m) = realise(dfg, fabric, topo, ii, &chosen, tele) {
                            break 'cegar Ok(Some(m));
                        }
                        // Block this exact placement at this II only.
                        let blocking: Vec<Lit> = st.space.member[k]
                            .iter()
                            .enumerate()
                            .map(|(op, members)| {
                                let u = members
                                    .iter()
                                    .copied()
                                    .find(|&u| st.space.union[op][u] == chosen[op])
                                    .unwrap();
                                st.vars[op][u].negate()
                            })
                            .collect();
                        st.solver.add_clause_under(sel, &blocking);
                    }
                }
            }
            Ok(None)
        };
        add_solver_stats(tele, st.solver.stats().since(&before));
        result
    }

    /// The incremental bottom-up sweep: take (or build) the persistent
    /// solver, walk the candidate IIs under per-II assumptions, and
    /// park the state back in the pool for the next call.
    fn map_incremental(
        &self,
        dfg: &Dfg,
        fabric: &Fabric,
        cfg: &MapConfig,
        min_ii: u32,
        max_ii: u32,
    ) -> Result<Mapping, MapError> {
        let topo = cfg.topo_for(fabric);
        let budget = cfg.run_budget();
        let all: Vec<u32> = (min_ii..=max_ii).collect();
        let kernel_fp = kernel_fingerprint(dfg);
        for chunk in all.chunks(SWEEP_CHUNK) {
            let key = IncrKey {
                mapper: "sat",
                fabric_fp: topo.fingerprint64(),
                kernel_fp,
                knobs: self.knobs(chunk[0], *chunk.last().unwrap()),
            };
            let mut st = cfg
                .incr
                .take_as::<SweepState>(&key)
                .unwrap_or_else(|| Box::new(self.build_state(dfg, fabric, chunk)));
            st.solver.interrupt = budget.interrupt();
            let mut outcome: Option<Result<Mapping, MapError>> = None;
            for k in 0..chunk.len() {
                match self.try_ii_incremental(
                    &mut st,
                    k,
                    dfg,
                    fabric,
                    &topo,
                    &budget,
                    &cfg.telemetry,
                    &cfg.ledger,
                ) {
                    Ok(Some(m)) => {
                        outcome = Some(Ok(m));
                        break;
                    }
                    Ok(None) => {}
                    Err(e) => {
                        outcome = Some(Err(e));
                        break;
                    }
                }
            }
            // Detach the per-run stop signal before pooling: the budget
            // dies with this call, the solver state does not.
            st.solver.interrupt = Interrupt::none();
            cfg.incr.put(key, st);
            if let Some(out) = outcome {
                return out;
            }
        }
        Err(MapError::infeasible(format!(
            "UNSAT for every II in {min_ii}..={max_ii} (within the candidate window)"
        )))
    }

    #[allow(clippy::too_many_arguments)]
    fn try_ii(
        &self,
        dfg: &Dfg,
        fabric: &Fabric,
        ii: u32,
        topo: &TopologyCache,
        budget: &Budget,
        tele: &Telemetry,
        ledger: &Ledger,
    ) -> Result<Option<Mapping>, MapError> {
        tele.bump(Counter::IiAttempts);
        ledger.ii_attempt("sat", ii);
        let _span = tele.span_ii(Phase::Map, ii);
        let space = PositionSpace::build(dfg, fabric, ii, self.window_iis, self.position_cap);
        let mut solver = SatSolver::new();
        solver.interrupt = budget.interrupt();

        // Variables.
        let vars: Vec<Vec<Lit>> = space
            .positions
            .iter()
            .map(|ps| ps.iter().map(|_| Lit::pos(solver.new_var())).collect())
            .collect();

        // Exactly one position per op.
        for ovars in &vars {
            if ovars.is_empty() {
                return Ok(None);
            }
            exactly_one(&mut solver, ovars, self.amo);
        }

        // FU exclusivity: at most one op per (pe, slot).
        let mut by_slot: BTreeMap<(PeId, u32), Vec<Lit>> = BTreeMap::new();
        for (o, ps) in space.positions.iter().enumerate() {
            for (k, &(pe, t)) in ps.iter().enumerate() {
                by_slot.entry((pe, t % ii)).or_default().push(vars[o][k]);
            }
        }
        for lits in by_slot.values() {
            if lits.len() > 1 {
                at_most_one(&mut solver, lits, self.amo);
            }
        }

        // Edge implications: src at a → dst somewhere compatible.
        for (_, e) in dfg.edges() {
            let src_op = dfg.op(e.src);
            for (ka, &a) in space.positions[e.src.index()].iter().enumerate() {
                let mut clause: Vec<Lit> = vec![vars[e.src.index()][ka].negate()];
                for (kb, &b) in space.positions[e.dst.index()].iter().enumerate() {
                    if e.src == e.dst && ka != kb {
                        continue; // self edge: same position both sides
                    }
                    if edge_compatible(fabric, topo, ii, src_op, e.dist, a, b) {
                        clause.push(vars[e.dst.index()][kb]);
                    }
                }
                solver.add_clause(&clause);
            }
        }

        // CEGAR: solve, route, block, repeat.
        let result: Result<Option<Mapping>, MapError> = 'cegar: {
            for round in 0..self.cegar_rounds.max(1) {
                if budget.expired_now() {
                    break 'cegar Err(budget.error());
                }
                match solver.solve() {
                    SatResult::Unsat => break 'cegar Ok(None),
                    SatResult::Unknown => break 'cegar Err(budget.error()),
                    SatResult::Sat(model) => {
                        // Each model is an anytime incumbent placement;
                        // cost = CEGAR rounds spent reaching it.
                        tele.bump(Counter::Incumbents);
                        ledger.incumbent("sat", ii, round as f64);
                        let chosen: Vec<(PeId, u32)> = space
                            .positions
                            .iter()
                            .enumerate()
                            .map(|(o, ps)| {
                                let k = ps
                                    .iter()
                                    .enumerate()
                                    .position(|(k, _)| model[vars[o][k].var().0 as usize])
                                    .expect("exactly-one guarantees a choice");
                                ps[k]
                            })
                            .collect();
                        if let Some(m) = realise(dfg, fabric, topo, ii, &chosen, tele) {
                            break 'cegar Ok(Some(m));
                        }
                        // Block this exact placement.
                        let blocking: Vec<Lit> = space
                            .positions
                            .iter()
                            .enumerate()
                            .map(|(o, ps)| {
                                let k = ps.iter().position(|&p| p == chosen[o]).unwrap();
                                vars[o][k].negate()
                            })
                            .collect();
                        solver.add_clause(&blocking);
                    }
                }
            }
            Ok(None)
        };
        add_solver_stats(tele, solver.stats());
        result
    }

    /// Failure forensics at a single II: a from-scratch re-encoding
    /// with every constraint class guarded by its own assumption
    /// literal — one per op for the at-least-one layer, one per PE for
    /// slot exclusivity, one each for the dependence-latency and
    /// routing-reachability edge layers. The solver's final-conflict
    /// core ([`SatSolver::failed_assumptions`]) then names exactly the
    /// groups that participated in the refutation.
    fn diagnose_ii(
        &self,
        dfg: &Dfg,
        fabric: &Fabric,
        ii: u32,
        mii: u32,
        topo: &TopologyCache,
        budget: &Budget,
    ) -> Diagnosis {
        let space = PositionSpace::build(dfg, fabric, ii, self.window_iis, self.position_cap);
        if let Some(o) = space.positions.iter().position(|ps| ps.is_empty()) {
            let n = NodeId(o as u32);
            let mut d = Diagnosis::new(
                ResourceClass::Capability,
                ii,
                mii,
                format!(
                    "{} has no candidate position at II {ii}: \
                     no capable cell inside the placement window",
                    op_name(dfg, n)
                ),
            );
            d.ops = vec![op_name(dfg, n)];
            return d;
        }
        let mut solver = SatSolver::new();
        solver.interrupt = budget.interrupt();
        let vars: Vec<Vec<Lit>> = space
            .positions
            .iter()
            .map(|ps| ps.iter().map(|_| Lit::pos(solver.new_var())).collect())
            .collect();
        let op_sels: Vec<Lit> = (0..vars.len()).map(|_| solver.new_selector()).collect();
        let pe_sels: Vec<Lit> = fabric.pe_ids().map(|_| solver.new_selector()).collect();
        let s_lat = solver.new_selector();
        let s_route = solver.new_selector();
        // Capability layer: each op must sit somewhere (at-least-one),
        // guarded per op so the core can name the ops. The at-most-one
        // half is structural — dropping a position never causes UNSAT —
        // and stays unguarded.
        for (o, ovars) in vars.iter().enumerate() {
            solver.add_clause_under(op_sels[o], ovars);
            for i in 0..ovars.len() {
                for j in i + 1..ovars.len() {
                    solver.add_clause(&[ovars[i].negate(), ovars[j].negate()]);
                }
            }
        }
        // Slot-exclusivity layer, guarded per PE so cores name cells.
        let mut by_slot: BTreeMap<(PeId, u32), Vec<Lit>> = BTreeMap::new();
        for (o, ps) in space.positions.iter().enumerate() {
            for (k, &(pe, t)) in ps.iter().enumerate() {
                by_slot.entry((pe, t % ii)).or_default().push(vars[o][k]);
            }
        }
        for ((pe, _), lits) in &by_slot {
            let sel = pe_sels[pe.0 as usize];
            for i in 0..lits.len() {
                for j in i + 1..lits.len() {
                    solver.add_clause_under(sel, &[lits[i].negate(), lits[j].negate()]);
                }
            }
        }
        // Edge layers: latency feasibility (consumer no earlier than
        // producer-ready) and full hop-reachability, separately guarded
        // so a core can tell "values cannot wait long enough" apart
        // from "values cannot travel far enough".
        for (_, e) in dfg.edges() {
            let src_op = dfg.op(e.src);
            for (ka, &a) in space.positions[e.src.index()].iter().enumerate() {
                let mut lat_clause = vec![vars[e.src.index()][ka].negate()];
                let mut route_clause = lat_clause.clone();
                for (kb, &b) in space.positions[e.dst.index()].iter().enumerate() {
                    if e.src == e.dst && ka != kb {
                        continue; // self edge: same position both sides
                    }
                    let tr = a.1 + fabric.latency_of(src_op);
                    let tc = b.1 + ii * e.dist;
                    if tc >= tr {
                        lat_clause.push(vars[e.dst.index()][kb]);
                        if topo.hops(a.0, b.0) <= tc - tr {
                            route_clause.push(vars[e.dst.index()][kb]);
                        }
                    }
                }
                solver.add_clause_under(s_lat, &lat_clause);
                solver.add_clause_under(s_route, &route_clause);
            }
        }
        let mut assumptions: Vec<Lit> = Vec::new();
        assumptions.extend(&op_sels);
        assumptions.extend(&pe_sels);
        assumptions.push(s_lat);
        assumptions.push(s_route);
        match solver.solve_with_assumptions(&assumptions) {
            SatResult::Sat(_) => {
                let mut d = Diagnosis::new(
                    ResourceClass::Register,
                    ii,
                    mii,
                    format!(
                        "the placement CNF is satisfiable at II {ii}; every model \
                         failed route realisation within {} CEGAR rounds \
                         (register/congestion pressure the encoding cannot see)",
                        self.cegar_rounds.max(1)
                    ),
                );
                d.core = vec!["register".into()];
                d
            }
            SatResult::Unknown => Diagnosis::new(
                ResourceClass::Routing,
                ii,
                mii,
                format!("diagnostic probe at II {ii} interrupted before a core was extracted"),
            ),
            SatResult::Unsat => {
                let failed: HashSet<Lit> = solver.failed_assumptions().iter().copied().collect();
                let ops: Vec<String> = op_sels
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| failed.contains(s))
                    .map(|(o, _)| op_name(dfg, NodeId(o as u32)))
                    .collect();
                let cells: Vec<String> = fabric
                    .pe_ids()
                    .filter(|pe| failed.contains(&pe_sels[pe.0 as usize]))
                    .map(|pe| cell_name(fabric, pe))
                    .collect();
                let lat = failed.contains(&s_lat);
                let route = failed.contains(&s_route);
                // The most specific layer in the conflict wins: edge
                // layers only appear when they actually bind, cell
                // exclusivity next, bare op constraints mean the
                // candidate sets themselves are starved.
                let class = if route {
                    ResourceClass::Routing
                } else if lat {
                    ResourceClass::DependenceLatency
                } else if !cells.is_empty() {
                    ResourceClass::SlotExclusive
                } else {
                    ResourceClass::Capability
                };
                let mut core = Vec::new();
                if !ops.is_empty() {
                    core.push(ResourceClass::Capability.label().to_string());
                }
                if !cells.is_empty() {
                    core.push(ResourceClass::SlotExclusive.label().to_string());
                }
                if lat {
                    core.push(ResourceClass::DependenceLatency.label().to_string());
                }
                if route {
                    core.push(ResourceClass::Routing.label().to_string());
                }
                let mut d = Diagnosis::new(
                    class,
                    ii,
                    mii,
                    format!(
                        "final-conflict core at II {ii}: {} op placement constraint(s), \
                         {} cell exclusivity group(s){}{}",
                        ops.len(),
                        cells.len(),
                        if lat {
                            ", the dependence-latency layer"
                        } else {
                            ""
                        },
                        if route {
                            ", the routing-reachability layer"
                        } else {
                            ""
                        }
                    ),
                );
                d.ops = cap_list(ops);
                d.cells = cap_list(cells);
                d.core = core;
                d
            }
        }
    }

    /// Attach a probe-derived [`Diagnosis`] to a bare infeasibility
    /// when forensics are on (an error that already carries one — e.g.
    /// from the empty-II-range analysis — passes through untouched).
    fn explain_failure(
        &self,
        err: MapError,
        dfg: &Dfg,
        fabric: &Fabric,
        cfg: &MapConfig,
        mii: u32,
        probe_ii: u32,
    ) -> MapError {
        match err {
            MapError::Infeasible(mut inf) if cfg.explain && inf.diagnosis.is_none() => {
                let topo = cfg.topo_for(fabric);
                let budget = cfg.run_budget();
                inf.diagnosis = Some(Box::new(
                    self.diagnose_ii(dfg, fabric, probe_ii, mii, &topo, &budget),
                ));
                MapError::Infeasible(inf)
            }
            other => other,
        }
    }
}

impl Mapper for SatMapper {
    fn name(&self) -> &'static str {
        "sat"
    }

    fn family(&self) -> Family {
        Family::ExactCsp
    }

    fn map(&self, dfg: &Dfg, fabric: &Fabric, cfg: &MapConfig) -> Result<Mapping, MapError> {
        dfg.validate()
            .map_err(|e| MapError::Unsupported(e.to_string()))?;
        let mii = super::ModuloList::mii(dfg, fabric);
        let (min_ii, max_ii) = cfg.ii_range_for(dfg, mii, fabric)?;
        if cfg.incremental {
            return self
                .map_incremental(dfg, fabric, cfg, min_ii, max_ii)
                .map_err(|e| self.explain_failure(e, dfg, fabric, cfg, mii, max_ii));
        }
        let topo = cfg.topo_for(fabric);
        let budget = cfg.run_budget();
        for ii in min_ii..=max_ii {
            match self.try_ii(dfg, fabric, ii, &topo, &budget, &cfg.telemetry, &cfg.ledger) {
                Ok(Some(m)) => return Ok(m),
                Ok(None) => {}
                Err(e) => return Err(e),
            }
        }
        Err(self.explain_failure(
            MapError::infeasible(format!(
                "UNSAT for every II in {min_ii}..={max_ii} (within the candidate window)"
            )),
            dfg,
            fabric,
            cfg,
            mii,
            max_ii,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;
    use cgra_arch::Topology;
    use cgra_ir::kernels;

    #[test]
    fn sat_maps_small_suite() {
        let f = Fabric::homogeneous(4, 4, Topology::Mesh);
        for dfg in kernels::small_suite() {
            let m = SatMapper::default()
                .map(&dfg, &f, &MapConfig::fast())
                .unwrap_or_else(|e| panic!("{}: {e}", dfg.name));
            validate(&m, &dfg, &f).unwrap_or_else(|e| panic!("{}: {e}", dfg.name));
        }
    }

    #[test]
    fn incremental_and_from_scratch_achieve_identical_ii() {
        // The acceptance bar for the incremental sweep: same achieved
        // II as the per-II re-encoding, kernel by kernel.
        let f = Fabric::homogeneous(4, 4, Topology::Mesh);
        for dfg in kernels::small_suite() {
            let inc = SatMapper::default().map(&dfg, &f, &MapConfig::fast());
            let cold_cfg = MapConfig {
                incremental: false,
                ..MapConfig::fast()
            };
            let cold = SatMapper::default().map(&dfg, &f, &cold_cfg);
            match (inc, cold) {
                (Ok(a), Ok(b)) => assert_eq!(a.ii, b.ii, "{} diverged", dfg.name),
                (a, b) => panic!("{}: {:?} vs {:?}", dfg.name, a.err(), b.err()),
            }
        }
    }

    #[test]
    fn pooled_state_is_reused_across_calls() {
        let f = Fabric::homogeneous(4, 4, Topology::Mesh);
        let dfg = kernels::dot_product();
        let cfg = MapConfig::fast();
        let a = SatMapper::default().map(&dfg, &f, &cfg).unwrap();
        assert_eq!(cfg.incr.len(), 1, "sweep state must be parked");
        let b = SatMapper::default().map(&dfg, &f, &cfg).unwrap();
        assert_eq!(a.ii, b.ii, "resumed state must reproduce the II");
        assert_eq!(cfg.incr.len(), 1, "state must be parked again");
    }

    #[test]
    fn both_amo_encodings_agree_on_feasibility() {
        let f = Fabric::homogeneous(3, 3, Topology::Mesh);
        let dfg = kernels::dot_product();
        let pairwise = SatMapper {
            amo: AmoEncoding::Pairwise,
            ..Default::default()
        }
        .map(&dfg, &f, &MapConfig::fast());
        let sequential = SatMapper {
            amo: AmoEncoding::Sequential,
            ..Default::default()
        }
        .map(&dfg, &f, &MapConfig::fast());
        assert_eq!(pairwise.is_ok(), sequential.is_ok());
        if let (Ok(a), Ok(b)) = (pairwise, sequential) {
            // Different encodings yield different models, so the CEGAR
            // realisation can land on neighbouring IIs; the *encoded*
            // feasibility must agree.
            assert!(
                a.ii.abs_diff(b.ii) <= 1,
                "encodings diverged: {} vs {}",
                a.ii,
                b.ii
            );
        }
    }

    /// 2×2 mesh where only pe0 multiplies — the capability-starved
    /// forensics fixture.
    fn mul_starved() -> Fabric {
        let mut f = Fabric::homogeneous(2, 2, Topology::Mesh);
        for pe in 1..4 {
            f.cells[pe].mul = false;
        }
        f
    }

    #[test]
    fn explain_attaches_deterministic_diagnosis() {
        // 4 tap-multiplies, one mul-capable cell, II pinned below MII:
        // the empty II range yields the analytic capability diagnosis.
        let f = mul_starved();
        let dfg = kernels::fir(4);
        let cfg = MapConfig {
            max_ii: 1,
            explain: true,
            ..MapConfig::fast()
        };
        let e1 = SatMapper::default().map(&dfg, &f, &cfg).unwrap_err();
        let e2 = SatMapper::default().map(&dfg, &f, &cfg).unwrap_err();
        let d = e1.diagnosis().expect("explain must attach a diagnosis");
        assert_eq!(Some(d), e2.diagnosis(), "diagnosis must be deterministic");
        assert_eq!(d.class, crate::diagnosis::ResourceClass::Capability);
        assert!(d.render().contains("multiplier"), "{}", d.render());
        assert!(!d.ops.is_empty() && !d.cells.is_empty());
        // Without --explain the same failure carries no diagnosis and
        // renders the same prose as before.
        let plain_cfg = MapConfig {
            max_ii: 1,
            ..MapConfig::fast()
        };
        let plain = SatMapper::default().map(&dfg, &f, &plain_cfg).unwrap_err();
        assert!(plain.diagnosis().is_none());
    }

    #[test]
    fn diagnose_ii_extracts_a_final_conflict_core() {
        let f = mul_starved();
        let dfg = kernels::fir(4);
        let cfg = MapConfig::fast();
        let topo = cfg.topo_for(&f);
        let m = SatMapper::default();
        let d = m.diagnose_ii(&dfg, &f, 1, 4, &topo, &cfg.run_budget());
        let d2 = m.diagnose_ii(&dfg, &f, 1, 4, &topo, &cfg.run_budget());
        assert_eq!(d, d2, "probe must be deterministic");
        assert!(!d.core.is_empty());
        assert_eq!(d.ii, 1);
        assert_eq!(d.mii, 4);
        // 4 muls contending for pe0 at II 1: the core names ops and/or
        // the contended cell, never the register fallback.
        assert_ne!(d.class, crate::diagnosis::ResourceClass::Register);
        assert!(
            !d.ops.is_empty() || !d.cells.is_empty(),
            "core must implicate ops or cells: {}",
            d.render()
        );
    }

    #[test]
    fn sat_finds_near_minimum_ii_dot_product() {
        // The CNF encodes hop-feasibility, not register congestion; an
        // II=1 model the router cannot realise falls through CEGAR to
        // II=2. Either is acceptable; anything larger is a regression.
        let f = Fabric::homogeneous(4, 4, Topology::Mesh);
        let dfg = kernels::dot_product();
        let m = SatMapper::default()
            .map(&dfg, &f, &MapConfig::fast())
            .unwrap();
        assert!(
            m.ii <= 2,
            "II {} too large for the dot product on 4x4",
            m.ii
        );
    }
}
