//! SAT-based mapping (Miyasaka et al., VLSI-SoC 2021).
//!
//! The mapping at a fixed II is encoded in CNF over "operation `o`
//! sits at position `p`" variables: exactly-one per operation,
//! at-most-one per `(pe, modulo slot)`, and per-edge implication
//! clauses restricting consumers to hop-reachable positions. The CDCL
//! solver ([`cgra_solver::SatSolver`]) finds a model; routing is then
//! materialised, and a routing failure (register congestion the
//! encoding cannot see) blocks that exact placement with a no-good
//! clause and re-solves — a CEGAR loop.

use super::exact_common::{add_solver_stats, edge_compatible, realise, PositionSpace};
use crate::engine::Budget;
use crate::ledger::Ledger;
use crate::mapper::{Family, MapConfig, MapError, Mapper};
use crate::mapping::Mapping;
use crate::telemetry::{Counter, Phase, Telemetry};
use cgra_arch::{Fabric, PeId, TopologyCache};
use cgra_ir::Dfg;
use cgra_solver::cnf::{at_most_one, exactly_one, AmoEncoding};
use cgra_solver::{Lit, SatResult, SatSolver};
use std::collections::HashMap;

/// The SAT mapper.
#[derive(Debug, Clone)]
pub struct SatMapper {
    /// At-most-one encoding (ablation: pairwise vs sequential).
    pub amo: AmoEncoding,
    /// CEGAR rounds (placements tried per II).
    pub cegar_rounds: u32,
    /// Candidate positions per op (None = full window).
    pub position_cap: Option<usize>,
    pub window_iis: u32,
}

impl Default for SatMapper {
    fn default() -> Self {
        SatMapper {
            amo: AmoEncoding::Pairwise,
            cegar_rounds: 40,
            position_cap: Some(48),
            window_iis: 2,
        }
    }
}

impl SatMapper {
    #[allow(clippy::too_many_arguments)]
    fn try_ii(
        &self,
        dfg: &Dfg,
        fabric: &Fabric,
        ii: u32,
        topo: &TopologyCache,
        budget: &Budget,
        tele: &Telemetry,
        ledger: &Ledger,
    ) -> Result<Option<Mapping>, MapError> {
        tele.bump(Counter::IiAttempts);
        ledger.ii_attempt("sat", ii);
        let _span = tele.span_ii(Phase::Map, ii);
        let space = PositionSpace::build(dfg, fabric, ii, self.window_iis, self.position_cap);
        let mut solver = SatSolver::new();
        solver.interrupt = budget.interrupt();

        // Variables.
        let vars: Vec<Vec<Lit>> = space
            .positions
            .iter()
            .map(|ps| ps.iter().map(|_| Lit::pos(solver.new_var())).collect())
            .collect();

        // Exactly one position per op.
        for ovars in &vars {
            if ovars.is_empty() {
                return Ok(None);
            }
            exactly_one(&mut solver, ovars, self.amo);
        }

        // FU exclusivity: at most one op per (pe, slot).
        let mut by_slot: HashMap<(PeId, u32), Vec<Lit>> = HashMap::new();
        for (o, ps) in space.positions.iter().enumerate() {
            for (k, &(pe, t)) in ps.iter().enumerate() {
                by_slot.entry((pe, t % ii)).or_default().push(vars[o][k]);
            }
        }
        for lits in by_slot.values() {
            if lits.len() > 1 {
                at_most_one(&mut solver, lits, self.amo);
            }
        }

        // Edge implications: src at a → dst somewhere compatible.
        for (_, e) in dfg.edges() {
            let src_op = dfg.op(e.src);
            for (ka, &a) in space.positions[e.src.index()].iter().enumerate() {
                let mut clause: Vec<Lit> = vec![vars[e.src.index()][ka].negate()];
                for (kb, &b) in space.positions[e.dst.index()].iter().enumerate() {
                    if e.src == e.dst && ka != kb {
                        continue; // self edge: same position both sides
                    }
                    if edge_compatible(fabric, topo, ii, src_op, e.dist, a, b) {
                        clause.push(vars[e.dst.index()][kb]);
                    }
                }
                solver.add_clause(&clause);
            }
        }

        // CEGAR: solve, route, block, repeat.
        let result: Result<Option<Mapping>, MapError> = 'cegar: {
            for round in 0..self.cegar_rounds.max(1) {
                if budget.expired_now() {
                    break 'cegar Err(budget.error());
                }
                match solver.solve() {
                    SatResult::Unsat => break 'cegar Ok(None),
                    SatResult::Unknown => break 'cegar Err(budget.error()),
                    SatResult::Sat(model) => {
                        // Each model is an anytime incumbent placement;
                        // cost = CEGAR rounds spent reaching it.
                        tele.bump(Counter::Incumbents);
                        ledger.incumbent("sat", ii, round as f64);
                        let chosen: Vec<(PeId, u32)> = space
                            .positions
                            .iter()
                            .enumerate()
                            .map(|(o, ps)| {
                                let k = ps
                                    .iter()
                                    .enumerate()
                                    .position(|(k, _)| model[vars[o][k].var().0 as usize])
                                    .expect("exactly-one guarantees a choice");
                                ps[k]
                            })
                            .collect();
                        if let Some(m) = realise(dfg, fabric, topo, ii, &chosen, tele) {
                            break 'cegar Ok(Some(m));
                        }
                        // Block this exact placement.
                        let blocking: Vec<Lit> = space
                            .positions
                            .iter()
                            .enumerate()
                            .map(|(o, ps)| {
                                let k = ps.iter().position(|&p| p == chosen[o]).unwrap();
                                vars[o][k].negate()
                            })
                            .collect();
                        solver.add_clause(&blocking);
                    }
                }
            }
            Ok(None)
        };
        add_solver_stats(tele, solver.stats());
        result
    }
}

impl Mapper for SatMapper {
    fn name(&self) -> &'static str {
        "sat"
    }

    fn family(&self) -> Family {
        Family::ExactCsp
    }

    fn map(&self, dfg: &Dfg, fabric: &Fabric, cfg: &MapConfig) -> Result<Mapping, MapError> {
        dfg.validate()
            .map_err(|e| MapError::Unsupported(e.to_string()))?;
        let mii = super::ModuloList::mii(dfg, fabric);
        let (min_ii, max_ii) = cfg.ii_range(mii, fabric)?;
        let topo = cfg.topo_for(fabric);
        let budget = cfg.run_budget();
        for ii in min_ii..=max_ii {
            match self.try_ii(dfg, fabric, ii, &topo, &budget, &cfg.telemetry, &cfg.ledger) {
                Ok(Some(m)) => return Ok(m),
                Ok(None) => {}
                Err(e) => return Err(e),
            }
        }
        Err(MapError::Infeasible(format!(
            "UNSAT for every II in {min_ii}..={max_ii} (within the candidate window)"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;
    use cgra_arch::Topology;
    use cgra_ir::kernels;

    #[test]
    fn sat_maps_small_suite() {
        let f = Fabric::homogeneous(4, 4, Topology::Mesh);
        for dfg in kernels::small_suite() {
            let m = SatMapper::default()
                .map(&dfg, &f, &MapConfig::fast())
                .unwrap_or_else(|e| panic!("{}: {e}", dfg.name));
            validate(&m, &dfg, &f).unwrap_or_else(|e| panic!("{}: {e}", dfg.name));
        }
    }

    #[test]
    fn both_amo_encodings_agree_on_feasibility() {
        let f = Fabric::homogeneous(3, 3, Topology::Mesh);
        let dfg = kernels::dot_product();
        let pairwise = SatMapper {
            amo: AmoEncoding::Pairwise,
            ..Default::default()
        }
        .map(&dfg, &f, &MapConfig::fast());
        let sequential = SatMapper {
            amo: AmoEncoding::Sequential,
            ..Default::default()
        }
        .map(&dfg, &f, &MapConfig::fast());
        assert_eq!(pairwise.is_ok(), sequential.is_ok());
        if let (Ok(a), Ok(b)) = (pairwise, sequential) {
            // Different encodings yield different models, so the CEGAR
            // realisation can land on neighbouring IIs; the *encoded*
            // feasibility must agree.
            assert!(
                a.ii.abs_diff(b.ii) <= 1,
                "encodings diverged: {} vs {}",
                a.ii,
                b.ii
            );
        }
    }

    #[test]
    fn sat_finds_near_minimum_ii_dot_product() {
        // The CNF encodes hop-feasibility, not register congestion; an
        // II=1 model the router cannot realise falls through CEGAR to
        // II=2. Either is acceptable; anything larger is a regression.
        let f = Fabric::homogeneous(4, 4, Topology::Mesh);
        let dfg = kernels::dot_product();
        let m = SatMapper::default()
            .map(&dfg, &f, &MapConfig::fast())
            .unwrap();
        assert!(
            m.ii <= 2,
            "II {} too large for the dot product on 4x4",
            m.ii
        );
    }
}
