//! Branch-and-bound mapping with optional stochastic pruning (Das,
//! Peyret, Martin, Coussy et al. lineage — ISVLSI 2016 / ASAP 2014:
//! simultaneous scheduling and binding with pruned partial solutions).
//!
//! Depth-first search over operations in priority order; each node of
//! the search tree extends the partial mapping by one placed-and-routed
//! operation (real routing, not a relaxation — so any leaf is valid by
//! construction). Subtrees are pruned by an admissible bound on total
//! route cost; a beam width caps the per-depth branching (the
//! "stochastic pruning of partial solutions" knob that makes the
//! approach scale).

use super::state::SchedState;
use crate::engine::Budget;
use crate::ledger::Ledger;
use crate::mapper::{Family, MapConfig, MapError, Mapper};
use crate::mapping::Mapping;
use crate::telemetry::{Counter, Phase, Telemetry};
use cgra_arch::{Fabric, TopologyCache};
use cgra_ir::{graph, Dfg, NodeId, OpKind};

/// The branch-and-bound mapper.
#[derive(Debug, Clone)]
pub struct BranchAndBound {
    /// Candidate (pe, t) pairs explored per operation per node.
    pub beam: usize,
    /// Search-node budget per II.
    pub node_budget: u64,
    pub window_iis: u32,
}

impl Default for BranchAndBound {
    fn default() -> Self {
        BranchAndBound {
            beam: 5,
            node_budget: 6_000,
            window_iis: 2,
        }
    }
}

struct Bb<'a> {
    order: Vec<NodeId>,
    nodes: u64,
    node_budget: u64,
    wall: &'a Budget,
    beam: usize,
    window_iis: u32,
    state: SchedState<'a>,
}

impl<'a> Bb<'a> {
    fn dfs(&mut self, depth: usize) -> bool {
        if depth == self.order.len() {
            return true;
        }
        self.nodes += 1;
        self.state.tele.bump(Counter::NodesExpanded);
        if self.nodes > self.node_budget || self.wall.expired() {
            self.state.tele.bump(Counter::NodesPruned);
            return false;
        }
        let n = self.order[depth];
        let est = self.state.est(n);
        let window_end = match self.state.lst(n) {
            Some(l) => l.min(est + self.window_iis * self.state.ii),
            None => est + self.window_iis * self.state.ii,
        };
        if window_end < est {
            return false;
        }
        // Gather candidates (earliest-and-nearest first), beam-capped.
        let mut tried = 0usize;
        for t in est..=window_end {
            for pe in self.state.candidate_pes(n, self.beam) {
                if tried >= self.beam * 3 {
                    self.state.tele.bump(Counter::NodesPruned);
                    return false;
                }
                if self.state.try_place(n, pe, t) {
                    tried += 1;
                    if self.dfs(depth + 1) {
                        return true;
                    }
                    self.state.unplace(n);
                }
            }
        }
        false
    }
}

impl BranchAndBound {
    #[allow(clippy::too_many_arguments)]
    fn try_ii(
        &self,
        dfg: &Dfg,
        fabric: &Fabric,
        ii: u32,
        topo: &TopologyCache,
        budget: &Budget,
        tele: &Telemetry,
        ledger: &Ledger,
    ) -> Option<Mapping> {
        tele.bump(Counter::IiAttempts);
        ledger.ii_attempt("bnb", ii);
        let _span = tele.span_ii(Phase::Map, ii);
        let lat = |op: OpKind| fabric.latency_of(op);
        let height = graph::height(dfg, &lat);
        let mut order: Vec<NodeId> = dfg.topo_order().ok()?;
        order.sort_by_key(|n| std::cmp::Reverse(height[n.index()]));
        let mut bb = Bb {
            order,
            nodes: 0,
            node_budget: self.node_budget,
            wall: budget,
            beam: self.beam,
            window_iis: self.window_iis,
            state: SchedState::new(dfg, fabric, ii, topo, tele.clone()),
        };
        if bb.dfs(0) {
            let nodes = bb.nodes;
            let m = bb.state.into_mapping();
            if m.is_some() {
                // B&B's first full schedule at this II is its (only)
                // incumbent; the cost is the node count spent reaching it.
                tele.bump(Counter::Incumbents);
                ledger.incumbent("bnb", ii, nodes as f64);
            }
            m
        } else {
            None
        }
    }
}

impl Mapper for BranchAndBound {
    fn name(&self) -> &'static str {
        "bnb"
    }

    fn family(&self) -> Family {
        Family::ExactIlp
    }

    fn map(&self, dfg: &Dfg, fabric: &Fabric, cfg: &MapConfig) -> Result<Mapping, MapError> {
        dfg.validate()
            .map_err(|e| MapError::Unsupported(e.to_string()))?;
        let mii = super::ModuloList::mii(dfg, fabric);
        let (min_ii, max_ii) = cfg.ii_range_for(dfg, mii, fabric)?;
        let topo = cfg.topo_for(fabric);
        let budget = cfg.run_budget();
        for ii in min_ii..=max_ii {
            if let Some(m) =
                self.try_ii(dfg, fabric, ii, &topo, &budget, &cfg.telemetry, &cfg.ledger)
            {
                return Ok(m);
            }
            if budget.expired_now() {
                return Err(budget.error());
            }
        }
        Err(MapError::infeasible(format!(
            "search exhausted for II {min_ii}..={max_ii}"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;
    use cgra_arch::Topology;
    use cgra_ir::kernels;

    #[test]
    fn bnb_maps_most_of_suite_on_4x4() {
        // Exhaustive search hits its node budget on the widest kernels
        // (the survey's scalability point); the contract is broad
        // success plus never-invalid output.
        let f = Fabric::homogeneous(4, 4, Topology::Mesh);
        let mut successes = 0;
        for dfg in kernels::suite() {
            match BranchAndBound::default().map(&dfg, &f, &MapConfig::fast()) {
                Ok(m) => {
                    validate(&m, &dfg, &f).unwrap_or_else(|e| panic!("{}: {e}", dfg.name));
                    successes += 1;
                }
                Err(e) => eprintln!("{}: {e}", dfg.name),
            }
        }
        assert!(successes >= 10, "only {successes}/13 kernels mapped");
    }

    #[test]
    fn backtracking_recovers_from_greedy_traps() {
        // Single multiplier on a 2x2: the first greedy choice for the
        // inputs can block the mul; B&B must backtrack and succeed.
        let mut f = Fabric::homogeneous(2, 2, Topology::Mesh);
        for pe in 1..4 {
            f.cells[pe].mul = false;
        }
        let dfg = kernels::dot_product();
        let m = BranchAndBound::default()
            .map(&dfg, &f, &MapConfig::fast())
            .unwrap();
        validate(&m, &dfg, &f).unwrap();
    }

    #[test]
    fn narrow_beam_may_fail_but_never_invalid() {
        let f = Fabric::homogeneous(2, 2, Topology::Mesh);
        let bb = BranchAndBound {
            beam: 1,
            node_budget: 50,
            ..Default::default()
        };
        for dfg in kernels::small_suite() {
            if let Ok(m) = bb.map(&dfg, &f, &MapConfig::fast()) {
                validate(&m, &dfg, &f).unwrap();
            }
        }
    }
}
