//! Shared incremental place-and-route state used by the constructive
//! mappers (modulo list scheduling, EMS, RAMP, HiMap, branch & bound).
//!
//! Holds a partial placement, the routes of all edges whose endpoints
//! are both placed, and the corresponding MRRG occupancy. Placement
//! attempts are transactional: `try_place` either commits (operation
//! placed, all incident placeable edges routed, occupancy updated) or
//! leaves the state untouched.

use crate::mapping::{Mapping, Placement, Route};
use crate::route::{find_route_with, RouteOpts, RouterScratch};
use crate::telemetry::{Counter, Phase, Telemetry};
use cgra_arch::{Fabric, PeId, SpaceTime, TopologyCache};
use cgra_ir::{Dfg, EdgeId, NodeId};
use std::collections::HashSet;

pub(crate) struct SchedState<'a> {
    pub dfg: &'a Dfg,
    pub fabric: &'a Fabric,
    pub ii: u32,
    pub topo: &'a TopologyCache,
    pub place: Vec<Option<Placement>>,
    pub routes: Vec<Option<Route>>,
    pub st: SpaceTime,
    pub tele: Telemetry,
    /// Router buffers reused across every `try_place` route search.
    scratch: RouterScratch,
}

impl<'a> SchedState<'a> {
    pub fn new(
        dfg: &'a Dfg,
        fabric: &'a Fabric,
        ii: u32,
        topo: &'a TopologyCache,
        tele: Telemetry,
    ) -> Self {
        SchedState {
            dfg,
            fabric,
            ii,
            topo,
            place: vec![None; dfg.node_count()],
            routes: vec![None; dfg.edge_count()],
            st: SpaceTime::new(fabric, ii),
            tele,
            scratch: RouterScratch::new(),
        }
    }

    #[inline]
    pub fn placed(&self, n: NodeId) -> Option<Placement> {
        self.place[n.index()]
    }

    /// Earliest feasible issue time from placed distance-0 predecessors
    /// (time component only; hops are enforced by routing).
    pub fn est(&self, n: NodeId) -> u32 {
        let mut t = 0;
        for (_, e) in self.dfg.in_edges(n) {
            if let Some(p) = self.place[e.src.index()] {
                let ready = p.time + self.fabric.latency_of(self.dfg.op(e.src));
                let bound = ready.saturating_sub(self.ii * e.dist);
                t = t.max(bound);
            }
        }
        t
    }

    /// Latest feasible issue time from placed successors, or `None` if
    /// unbounded.
    pub fn lst(&self, n: NodeId) -> Option<u32> {
        let mut t: Option<u32> = None;
        let lat = self.fabric.latency_of(self.dfg.op(n));
        for (_, e) in self.dfg.out_edges(n) {
            if let Some(p) = self.place[e.dst.index()] {
                let consume = p.time + self.ii * e.dist;
                let latest = consume.checked_sub(lat)?;
                t = Some(t.map(|x: u32| x.min(latest)).unwrap_or(latest));
            }
        }
        t
    }

    /// Positions already used by routed edges of producer `src`.
    fn shared(&self, src: NodeId) -> HashSet<(PeId, u32)> {
        let mut set = HashSet::new();
        for (eid, e) in self.dfg.edges() {
            if e.src == src {
                if let Some(r) = &self.routes[eid.index()] {
                    for (i, &pe) in r.steps.iter().enumerate() {
                        set.insert((pe, r.start_time + i as u32));
                    }
                }
            }
        }
        set
    }

    /// Edges of `n` whose other endpoint is already placed (and the
    /// edge not yet routed).
    fn routable_edges(&self, n: NodeId) -> Vec<EdgeId> {
        self.dfg
            .edges()
            .filter(|(eid, e)| {
                self.routes[eid.index()].is_none()
                    && ((e.src == n && (e.dst == n || self.place[e.dst.index()].is_some()))
                        || (e.dst == n && self.place[e.src.index()].is_some()))
            })
            .map(|(eid, _)| eid)
            .collect()
    }

    /// Attempt to place `n` at `(pe, t)`: checks capability and FU
    /// availability, then routes every edge between `n` and already
    /// placed nodes. Commits and returns true on success.
    pub fn try_place(&mut self, n: NodeId, pe: PeId, t: u32) -> bool {
        self.tele.bump(Counter::PlacementsTried);
        if !self.fabric.supports(pe, self.dfg.op(n)) || !self.st.fu_free(pe, t) {
            return false;
        }
        let saved_place = self.place[n.index()];
        self.place[n.index()] = Some(Placement { pe, time: t });

        let mut trial = self.st.clone();
        trial.occupy_fu(pe, t);
        let mut new_routes: Vec<(EdgeId, Route)> = Vec::new();
        let routable = self.routable_edges(n);
        // Integrated P&R has no separate routing pass; account the
        // incremental edge-routing time as Route so profiles from
        // constructive mappers line up with the explicit-route families.
        let _route_span = (!routable.is_empty()).then(|| self.tele.span_ii(Phase::Route, self.ii));
        for eid in routable {
            let e = self.dfg.edge(eid);
            let sp = self.place[e.src.index()].expect("endpoint placed");
            let dp = self.place[e.dst.index()].expect("endpoint placed");
            let tr = sp.time + self.fabric.latency_of(self.dfg.op(e.src));
            let tc = dp.time + self.ii * e.dist;
            if tc < tr {
                self.place[n.index()] = saved_place;
                return false;
            }
            let mut shared = self.shared(e.src);
            for (prev_eid, prev_route) in &new_routes {
                if self.dfg.edge(*prev_eid).src == e.src {
                    for (i, &p2) in prev_route.steps.iter().enumerate() {
                        shared.insert((p2, prev_route.start_time + i as u32));
                    }
                }
            }
            self.tele.bump(Counter::RoutingCalls);
            let route_t0 = self.tele.is_enabled().then(std::time::Instant::now);
            let routed = find_route_with(
                self.fabric,
                self.topo,
                &trial,
                sp.pe,
                tr,
                dp.pe,
                tc,
                &shared,
                None,
                RouteOpts::default(),
                &mut self.scratch,
            );
            if let Some(t0) = route_t0 {
                self.tele.record_route_us(t0.elapsed().as_micros() as u64);
            }
            match routed {
                Some(r) => {
                    for (i, &p2) in r.steps.iter().enumerate() {
                        let tt = r.start_time + i as u32;
                        if !shared.contains(&(p2, tt)) {
                            trial.occupy_reg(p2, tt);
                        }
                    }
                    new_routes.push((eid, r));
                }
                None => {
                    self.tele.bump(Counter::RoutingFailures);
                    self.place[n.index()] = saved_place;
                    return false;
                }
            }
        }
        // Final integrity guard: the router tracks its own path's
        // self-wrap pressure but not revisits; reject any residual
        // over-subscription so committed states are always valid.
        if trial.overuse() != 0 {
            self.place[n.index()] = saved_place;
            return false;
        }
        // Commit.
        self.st = trial;
        for (eid, r) in new_routes {
            self.routes[eid.index()] = Some(r);
        }
        true
    }

    /// Remove `n`'s placement and every route touching it, rebuilding
    /// occupancy from scratch.
    pub fn unplace(&mut self, n: NodeId) {
        if self.place[n.index()].is_none() {
            return;
        }
        self.tele.bump(Counter::Backtracks);
        self.place[n.index()] = None;
        for (eid, e) in self.dfg.edges() {
            if e.src == n || e.dst == n {
                self.routes[eid.index()] = None;
            }
        }
        self.rebuild_occupancy();
    }

    /// Recompute `st` from the current placement and routes.
    pub fn rebuild_occupancy(&mut self) {
        let mut st = SpaceTime::new(self.fabric, self.ii);
        for p in self.place.iter().flatten() {
            st.occupy_fu(p.pe, p.time);
        }
        let mut seen: HashSet<(u32, PeId, u32)> = HashSet::new();
        for (eid, e) in self.dfg.edges() {
            if let Some(r) = &self.routes[eid.index()] {
                for (i, &pe) in r.steps.iter().enumerate() {
                    let t = r.start_time + i as u32;
                    if seen.insert((e.src.0, pe, t)) {
                        st.occupy_reg(pe, t);
                    }
                }
            }
        }
        self.st = st;
    }

    /// Candidate PEs for `n`, cheapest first by summed hop distance to
    /// placed neighbours (capped at `cap` candidates).
    pub fn candidate_pes(&self, n: NodeId, cap: usize) -> Vec<PeId> {
        let op = self.dfg.op(n);
        let mut scored: Vec<(u32, PeId)> = self
            .fabric
            .pe_ids()
            .filter(|&pe| self.fabric.supports(pe, op))
            .map(|pe| {
                let mut cost = 0u32;
                for (_, e) in self.dfg.in_edges(n) {
                    if let Some(p) = self.place[e.src.index()] {
                        cost += self.topo.hops(p.pe, pe);
                    }
                }
                for (_, e) in self.dfg.out_edges(n) {
                    if e.src != e.dst {
                        if let Some(p) = self.place[e.dst.index()] {
                            cost += self.topo.hops(pe, p.pe);
                        }
                    }
                }
                (cost, pe)
            })
            .collect();
        scored.sort_by_key(|&(c, pe)| (c, pe.0));
        scored.into_iter().take(cap).map(|(_, pe)| pe).collect()
    }

    /// Finish: all nodes placed and all edges routed?
    pub fn into_mapping(self) -> Option<Mapping> {
        let place: Option<Vec<Placement>> = self.place.into_iter().collect();
        let routes: Option<Vec<Route>> = self.routes.into_iter().collect();
        Some(Mapping {
            ii: self.ii,
            place: place?,
            routes: routes?,
        })
    }
}
