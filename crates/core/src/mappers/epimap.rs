//! EPIMap-style mapping by maximum-common-subgraph search (Hamzeh et
//! al., DAC 2012).
//!
//! EPIMap views mapping as finding the DFG (after transformation) as a
//! subgraph of the time-extended CGRA. This implementation keeps the
//! two signature ingredients:
//!
//! 1. **Compatibility-driven backtracking search**: operations are
//!    assigned `(pe, cycle)` pairs in topological order; a pair is
//!    compatible when the hop distance to every already-assigned
//!    neighbour fits the schedule slack (the subgraph-embedding
//!    condition on the TEC, checked without committing routes).
//! 2. **Graph transformation**: when an operation's fan-out exceeds
//!    what its position can serve, the search allows *routing slack* —
//!    extra schedule gap standing in for EPIMap's inserted route
//!    nodes.
//!
//! Routing is materialised once at the end (negotiated PathFinder); a
//! routing failure backtracks into the search.

use crate::engine::Budget;
use crate::mapper::{Family, MapConfig, MapError, Mapper};
use crate::mapping::{Mapping, Placement};
use crate::route::route_all_with;
use crate::telemetry::{Counter, Phase, Telemetry};
use cgra_arch::{Fabric, PeId, TopologyCache};
use cgra_ir::{graph, Dfg, NodeId, OpKind};

/// The MCS-based mapper.
#[derive(Debug, Clone)]
pub struct EpiMap {
    /// Backtracking budget per II (assignment attempts).
    pub max_attempts: u64,
    pub window_iis: u32,
}

impl Default for EpiMap {
    fn default() -> Self {
        EpiMap {
            max_attempts: 60_000,
            window_iis: 3,
        }
    }
}

struct Search<'a> {
    dfg: &'a Dfg,
    fabric: &'a Fabric,
    topo: &'a TopologyCache,
    ii: u32,
    order: Vec<NodeId>,
    assign: Vec<Option<Placement>>,
    /// FU occupancy as (pe, slot) -> node.
    fu: std::collections::HashMap<(PeId, u32), NodeId>,
    attempts: u64,
    max_attempts: u64,
    window_iis: u32,
    budget: &'a Budget,
    tele: Telemetry,
}

impl<'a> Search<'a> {
    /// Is `(pe, t)` compatible with every already-assigned neighbour of
    /// `n` (subgraph-embedding condition on the TEC)?
    fn compatible(&self, n: NodeId, pe: PeId, t: u32) -> bool {
        for (_, e) in self.dfg.in_edges(n) {
            let producer = if e.src == n {
                Some(Placement { pe, time: t })
            } else {
                self.assign[e.src.index()]
            };
            if let Some(p) = producer {
                let tr = p.time + self.fabric.latency_of(self.dfg.op(e.src));
                let tc = t + self.ii * e.dist;
                if tc < tr || self.topo.hops(p.pe, pe) > tc - tr {
                    return false;
                }
            }
        }
        for (_, e) in self.dfg.out_edges(n) {
            if e.dst == n {
                continue; // handled above as an in-edge
            }
            if let Some(d) = self.assign[e.dst.index()] {
                let tr = t + self.fabric.latency_of(self.dfg.op(n));
                let tc = d.time + self.ii * e.dist;
                if tc < tr || self.topo.hops(pe, d.pe) > tc - tr {
                    return false;
                }
            }
        }
        true
    }

    /// Depth-first embedding. Returns true when all ops are assigned.
    fn dfs(&mut self, depth: usize) -> bool {
        if depth == self.order.len() {
            return true;
        }
        self.tele.bump(Counter::NodesExpanded);
        if self.attempts >= self.max_attempts || self.budget.expired() {
            self.tele.bump(Counter::NodesPruned);
            return false;
        }
        let n = self.order[depth];
        let op = self.dfg.op(n);

        // Earliest start from assigned producers.
        let mut est = 0u32;
        for (_, e) in self.dfg.in_edges(n) {
            if e.src == n {
                continue;
            }
            if let Some(p) = self.assign[e.src.index()] {
                let ready = p.time + self.fabric.latency_of(self.dfg.op(e.src));
                est = est.max(ready.saturating_sub(self.ii * e.dist));
            }
        }
        let window_end = est + self.window_iis * self.ii;

        // Candidate (cost, t, pe) list, nearest-to-producers first.
        let mut cands: Vec<(u32, u32, PeId)> = Vec::new();
        for t in est..=window_end {
            let slot = t % self.ii;
            for pe in self.fabric.pe_ids() {
                if !self.fabric.supports(pe, op) || self.fu.contains_key(&(pe, slot)) {
                    continue;
                }
                if !self.compatible(n, pe, t) {
                    continue;
                }
                let mut cost = t;
                for (_, e) in self.dfg.in_edges(n) {
                    if let Some(p) = self.assign[e.src.index()] {
                        cost += self.topo.hops(p.pe, pe);
                    }
                }
                cands.push((cost, t, pe));
            }
        }
        cands.sort();
        cands.truncate(10); // branching factor bound

        for (_, t, pe) in cands {
            self.attempts += 1;
            self.tele.bump(Counter::PlacementsTried);
            let slot = t % self.ii;
            self.assign[n.index()] = Some(Placement { pe, time: t });
            self.fu.insert((pe, slot), n);
            if self.dfs(depth + 1) {
                return true;
            }
            self.tele.bump(Counter::Backtracks);
            self.assign[n.index()] = None;
            self.fu.remove(&(pe, slot));
        }
        false
    }
}

impl EpiMap {
    fn try_ii(
        &self,
        dfg: &Dfg,
        fabric: &Fabric,
        ii: u32,
        topo: &TopologyCache,
        budget: &Budget,
        tele: &Telemetry,
    ) -> Option<Mapping> {
        tele.bump(Counter::IiAttempts);
        let _span = tele.span_ii(Phase::Map, ii);
        let lat = |op: OpKind| fabric.latency_of(op);
        let height = graph::height(dfg, &lat);
        let mut order: Vec<NodeId> = dfg.topo_order().ok()?;
        order.sort_by_key(|n| std::cmp::Reverse(height[n.index()]));

        let mut search = Search {
            dfg,
            fabric,
            topo,
            ii,
            order,
            assign: vec![None; dfg.node_count()],
            fu: std::collections::HashMap::new(),
            attempts: 0,
            max_attempts: self.max_attempts,
            window_iis: self.window_iis,
            budget,
            tele: tele.clone(),
        };
        if !search.dfs(0) {
            return None;
        }
        let place: Vec<Placement> = search.assign.into_iter().map(|p| p.unwrap()).collect();
        let routes = route_all_with(fabric, topo, dfg, &place, ii, 12, true, tele)?;
        Some(Mapping { ii, place, routes })
    }
}

impl Mapper for EpiMap {
    fn name(&self) -> &'static str {
        "epimap"
    }

    fn family(&self) -> Family {
        Family::Heuristic
    }

    fn map(&self, dfg: &Dfg, fabric: &Fabric, cfg: &MapConfig) -> Result<Mapping, MapError> {
        dfg.validate()
            .map_err(|e| MapError::Unsupported(e.to_string()))?;
        let mii = super::ModuloList::mii(dfg, fabric);
        let (min_ii, max_ii) = cfg.ii_range_for(dfg, mii, fabric)?;
        let topo = cfg.topo_for(fabric);
        let budget = cfg.run_budget();
        for ii in min_ii..=max_ii {
            cfg.ledger.ii_attempt("epimap", ii);
            if let Some(m) = self.try_ii(dfg, fabric, ii, &topo, &budget, &cfg.telemetry) {
                cfg.telemetry.bump(Counter::Incumbents);
                cfg.ledger.incumbent("epimap", ii, ii as f64);
                return Ok(m);
            }
            if budget.expired_now() {
                return Err(budget.error());
            }
        }
        Err(MapError::infeasible(format!(
            "no II in {min_ii}..={max_ii} admits an embedding"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;
    use cgra_arch::Topology;
    use cgra_ir::kernels;

    #[test]
    fn maps_suite_on_4x4() {
        let f = Fabric::homogeneous(4, 4, Topology::Mesh);
        for dfg in kernels::suite() {
            let m = EpiMap::default()
                .map(&dfg, &f, &MapConfig::fast())
                .unwrap_or_else(|e| panic!("{}: {e}", dfg.name));
            validate(&m, &dfg, &f).unwrap_or_else(|e| panic!("{}: {e}", dfg.name));
        }
    }

    #[test]
    fn backtracking_explores_alternatives() {
        // A fabric where the first-choice placement cannot work: 2x2
        // with a single multiplier cell.
        let mut f = Fabric::homogeneous(2, 2, Topology::Mesh);
        for pe in 1..4 {
            f.cells[pe].mul = false;
        }
        let dfg = kernels::dot_product();
        let m = EpiMap::default().map(&dfg, &f, &MapConfig::fast()).unwrap();
        validate(&m, &dfg, &f).unwrap();
        // The mul must be on pe0.
        assert_eq!(m.placement(cgra_ir::NodeId(2)).pe, cgra_arch::PeId(0));
    }
}
