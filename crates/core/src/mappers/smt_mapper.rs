//! SMT-based mapping over difference logic (Donovick et al.,
//! ReConFig 2019: agile SMT-based mapping for CGRAs with restricted
//! routing networks).
//!
//! Binding is propositional (one PE-selector variable per operation ×
//! PE); issue times are *integer theory variables*. Dependence timing
//! becomes conditional difference-logic atoms —
//! `x[src,p1] ∧ x[dst,p2] → (t_src − t_dst ≤ II·d − lat − hop(p1,p2))`
//! — and same-PE exclusivity becomes a disjunction of strict orderings.
//! The CDCL(T) solver ([`cgra_solver::SmtSolver`]) handles the
//! interplay; the schedule horizon is fixed per probe, and the
//! resulting mapping is a (non-modulo) spatio-temporal one: II equals
//! the horizon, matching the restricted-routing setting of the lineage
//! paper.

use super::exact_common::{add_solver_stats, capability_bitsets};
use crate::engine::Budget;
use crate::ledger::Ledger;
use crate::mapper::{Family, MapConfig, MapError, Mapper};
use crate::mapping::Mapping;
use crate::route::route_all_with;
use crate::telemetry::{Counter, Phase, Telemetry};
use cgra_arch::{Fabric, PeId, TopologyCache};
use cgra_ir::{graph, Dfg, OpKind};
use cgra_solver::{Lit, SmtResult, SmtSolver};

/// The SMT mapper.
#[derive(Debug, Clone)]
pub struct SmtMapper {
    /// Horizon probes: start at the critical path, multiply by 2 up to
    /// the fabric context depth.
    pub max_probes: u32,
}

impl Default for SmtMapper {
    fn default() -> Self {
        SmtMapper { max_probes: 4 }
    }
}

impl SmtMapper {
    #[allow(clippy::too_many_arguments)]
    fn try_horizon(
        &self,
        dfg: &Dfg,
        fabric: &Fabric,
        horizon: u32,
        caps: &[Vec<bool>],
        topo: &TopologyCache,
        budget: &Budget,
        tele: &Telemetry,
        ledger: &Ledger,
    ) -> Result<Option<Mapping>, MapError> {
        tele.bump(Counter::IiAttempts);
        ledger.ii_attempt("smt", horizon);
        let _span = tele.span_ii(Phase::Map, horizon);
        let n = dfg.node_count();
        // Theory vars: one time per op, plus a zero reference.
        let mut smt = SmtSolver::new(n + 1);
        let zero = n;

        // Binding selectors, gated by the horizon-independent
        // capability bitsets computed once per map() call.
        let pes: Vec<PeId> = fabric.pe_ids().collect();
        let sel: Vec<Vec<Lit>> = caps
            .iter()
            .map(|row| {
                row.iter()
                    .map(|&supported| {
                        if supported {
                            Lit::pos(smt.sat.new_var())
                        } else {
                            // Unsupported: a fresh var forced false.
                            let v = Lit::pos(smt.sat.new_var());
                            smt.add_clause(&[v.negate()]);
                            v
                        }
                    })
                    .collect()
            })
            .collect();
        for (o, row) in sel.iter().enumerate() {
            let _ = o;
            smt.add_clause(row); // at least one PE
            for i in 0..row.len() {
                for j in (i + 1)..row.len() {
                    smt.add_clause(&[row[i].negate(), row[j].negate()]);
                }
            }
        }

        // Horizon bounds: 0 ≤ t_o ≤ horizon − lat.
        for id in dfg.node_ids() {
            let lat = fabric.latency_of(dfg.op(id));
            let lo = smt.diff_le(zero, id.index(), 0); // 0 - t ≤ 0
            let hi = smt.diff_le(id.index(), zero, (horizon - lat.min(horizon)) as i64);
            smt.add_clause(&[lo]);
            smt.add_clause(&[hi]);
        }

        // Conditional dependence-timing atoms.
        for (_, e) in dfg.edges() {
            let lat = fabric.latency_of(dfg.op(e.src)) as i64;
            let slack_gain = (horizon * e.dist) as i64;
            for (i, &p1) in pes.iter().enumerate() {
                for (j, &p2) in pes.iter().enumerate() {
                    if e.src == e.dst && i != j {
                        continue;
                    }
                    let h = topo.hops(p1, p2) as i64;
                    // t_src - t_dst ≤ II·d − lat − hop
                    let c = slack_gain - lat - h;
                    if e.src == e.dst {
                        // Self edge: constraint on a single op; if
                        // violated the PE choice is simply forbidden.
                        if c < 0 {
                            smt.add_clause(&[sel[e.src.index()][i].negate()]);
                        }
                        continue;
                    }
                    let atom = smt.diff_le(e.src.index(), e.dst.index(), c);
                    smt.add_clause(&[
                        sel[e.src.index()][i].negate(),
                        sel[e.dst.index()][j].negate(),
                        atom,
                    ]);
                }
            }
        }

        // Same-PE exclusivity: distinct times (strict order one way or
        // the other).
        for a in 0..n {
            for b in (a + 1)..n {
                let lt = smt.diff_le(a, b, -1);
                let gt = smt.diff_le(b, a, -1);
                for (i, _) in pes.iter().enumerate() {
                    smt.add_clause(&[sel[a][i].negate(), sel[b][i].negate(), lt, gt]);
                }
            }
        }

        if budget.expired_now() {
            return Err(budget.error());
        }
        smt.sat.conflict_budget = 2_000_000;
        smt.sat.interrupt = budget.interrupt();
        let outcome = smt.solve();
        add_solver_stats(tele, smt.stats());
        match outcome {
            SmtResult::Unsat => Ok(None),
            SmtResult::Unknown => Err(budget.error()),
            SmtResult::Sat { model, values } => {
                // The theory model is this horizon's incumbent
                // schedule; cost = the horizon probed.
                tele.bump(Counter::Incumbents);
                ledger.incumbent("smt", horizon, horizon as f64);
                // Decode binding and times (normalise to t_zero).
                let t0 = values[zero];
                let mut chosen = Vec::with_capacity(n);
                for (o, row) in sel.iter().enumerate() {
                    let pe = row
                        .iter()
                        .position(|l| model[l.var().0 as usize])
                        .map(|k| pes[k]);
                    let Some(pe) = pe else { return Ok(None) };
                    let t = (values[o] - t0).max(0) as u32;
                    chosen.push(crate::mapping::Placement { pe, time: t });
                }
                let ii = horizon.min(fabric.context_depth);
                let routes = route_all_with(fabric, topo, dfg, &chosen, ii, 12, true, tele);
                match routes {
                    Some(routes) => Ok(Some(Mapping {
                        ii,
                        place: chosen,
                        routes,
                    })),
                    None => Ok(None),
                }
            }
        }
    }
}

impl Mapper for SmtMapper {
    fn name(&self) -> &'static str {
        "smt"
    }

    fn family(&self) -> Family {
        Family::ExactCsp
    }

    fn map(&self, dfg: &Dfg, fabric: &Fabric, cfg: &MapConfig) -> Result<Mapping, MapError> {
        dfg.validate()
            .map_err(|e| MapError::Unsupported(e.to_string()))?;
        let lat = |op: OpKind| fabric.latency_of(op);
        let cp = graph::critical_path(dfg, &lat).max(1);
        let budget = cfg.run_budget();
        let topo = cfg.topo_for(fabric);
        let caps = capability_bitsets(dfg, fabric);

        let mut horizon = cp.max(cfg.min_ii);
        for _ in 0..self.max_probes.max(1) {
            let h = horizon.min(fabric.context_depth);
            match self.try_horizon(
                dfg,
                fabric,
                h,
                &caps,
                &topo,
                &budget,
                &cfg.telemetry,
                &cfg.ledger,
            ) {
                Ok(Some(m)) => return Ok(m),
                Ok(None) => {}
                Err(e) => return Err(e),
            }
            if h == fabric.context_depth {
                break;
            }
            horizon *= 2;
        }
        Err(MapError::infeasible(format!(
            "no horizon up to {} admits an SMT model",
            fabric.context_depth
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;
    use cgra_arch::Topology;
    use cgra_ir::kernels;

    #[test]
    fn smt_maps_tiny_kernels() {
        let f = Fabric::homogeneous(3, 3, Topology::Mesh);
        for dfg in [
            kernels::dot_product(),
            kernels::accumulate(),
            kernels::threshold(),
        ] {
            let m = SmtMapper::default()
                .map(&dfg, &f, &MapConfig::fast())
                .unwrap_or_else(|e| panic!("{}: {e}", dfg.name));
            validate(&m, &dfg, &f).unwrap_or_else(|e| panic!("{}: {e}", dfg.name));
        }
    }

    #[test]
    fn smt_mapping_is_non_modulo() {
        let f = Fabric::homogeneous(3, 3, Topology::Mesh);
        let dfg = kernels::dot_product();
        let m = SmtMapper::default()
            .map(&dfg, &f, &MapConfig::fast())
            .unwrap();
        // The II equals the probed horizon: each op's slot is unique.
        let mut slots = std::collections::HashSet::new();
        for p in &m.place {
            assert!(slots.insert((p.pe, p.time % m.ii)));
        }
    }
}
