//! Shared machinery for the exact mappers (ILP, B&B, CP, SAT, SMT):
//! the candidate position space and the pairwise compatibility
//! predicate, plus the CEGAR finishing loop that turns a chosen
//! placement into a routed mapping.
//!
//! Exactness is *relative to the candidate space*: positions are
//! restricted to a scheduling window derived from ASAP levels (and
//! optionally the K nearest PEs), which is the standard
//! region-pruning of published ILP/SAT mapping formulations. The
//! compatibility predicate (`slack ≥ hop distance`) is necessary but
//! not sufficient for routability; register congestion is handled by
//! the CEGAR loop (route, and on failure block the exact placement and
//! re-solve).

use crate::mapping::{Mapping, Placement};
use crate::route::route_all_with;
use crate::telemetry::{Counter, Telemetry};
use cgra_arch::{Fabric, PeId, TopologyCache};
use cgra_ir::{graph, Dfg, OpKind};
use cgra_solver::SolverStats;

/// A candidate `(pe, time)` pair.
pub(crate) type Pos = (PeId, u32);

/// Candidate positions per operation at a fixed II.
pub(crate) struct PositionSpace {
    #[allow(dead_code)]
    pub ii: u32,
    pub positions: Vec<Vec<Pos>>,
}

impl PositionSpace {
    /// Build the space: times in `[asap, routed-asap + window_iis·ii]`,
    /// all capability-feasible PEs, optionally capped to `cap`
    /// candidates per op.
    ///
    /// The upper bound uses a *routing-aware* ASAP (every edge charged
    /// latency + one hop), because consecutive operations on distinct
    /// PEs need at least one move cycle each — without the allowance,
    /// low-II windows cannot hold any placement whose chain actually
    /// crosses the fabric. The cap keeps a spread across time layers
    /// (round-robin by cycle, centre-most PEs first) rather than only
    /// the earliest cycles.
    pub fn build(dfg: &Dfg, fabric: &Fabric, ii: u32, window_iis: u32, cap: Option<usize>) -> Self {
        let lat = |op: OpKind| fabric.latency_of(op);
        let asap = graph::asap(dfg, &lat);
        let lat_hop = |op: OpKind| fabric.latency_of(op) + 1;
        let asap_routed = graph::asap(dfg, &lat_hop);
        let positions = dfg
            .node_ids()
            .map(|n| {
                let op = dfg.op(n);
                let t0 = asap[n.index()];
                let t1 = asap_routed[n.index()] + window_iis * ii;
                let mut layers: Vec<Vec<Pos>> = Vec::new();
                for t in t0..=t1 {
                    let mut layer: Vec<Pos> = fabric
                        .pe_ids()
                        .filter(|&pe| fabric.supports(pe, op))
                        .map(|pe| (pe, t))
                        .collect();
                    layer.sort_by_key(|&(pe, _)| {
                        let (r, c) = fabric.coords(pe);
                        let centre = (r as i32 - fabric.rows as i32 / 2).abs()
                            + (c as i32 - fabric.cols as i32 / 2).abs();
                        (centre, pe.0)
                    });
                    layers.push(layer);
                }
                match cap {
                    None => layers.into_iter().flatten().collect(),
                    Some(cap) => {
                        // Round-robin across time layers.
                        let mut list = Vec::with_capacity(cap);
                        let mut idx = 0usize;
                        while list.len() < cap {
                            let mut any = false;
                            for layer in &layers {
                                if let Some(&pos) = layer.get(idx) {
                                    list.push(pos);
                                    any = true;
                                    if list.len() == cap {
                                        break;
                                    }
                                }
                            }
                            if !any {
                                break;
                            }
                            idx += 1;
                        }
                        list
                    }
                }
            })
            .collect();
        PositionSpace { ii, positions }
    }

    /// Total number of (op, position) pairs.
    #[allow(dead_code)]
    pub fn size(&self) -> usize {
        self.positions.iter().map(|p| p.len()).sum()
    }
}

/// Can edge `e` connect a producer at `a` to a consumer at `b`?
/// (Latency + hop-distance feasibility on the TEC.)
pub(crate) fn edge_compatible(
    fabric: &Fabric,
    topo: &TopologyCache,
    ii: u32,
    src_op: OpKind,
    dist: u32,
    a: Pos,
    b: Pos,
) -> bool {
    let tr = a.1 + fabric.latency_of(src_op);
    let tc = b.1 + ii * dist;
    tc >= tr && topo.hops(a.0, b.0) <= tc - tr
}

/// Route a chosen placement; `None` if the router cannot realise it.
pub(crate) fn realise(
    dfg: &Dfg,
    fabric: &Fabric,
    topo: &TopologyCache,
    ii: u32,
    chosen: &[Pos],
    tele: &Telemetry,
) -> Option<Mapping> {
    let place: Vec<Placement> = chosen
        .iter()
        .map(|&(pe, time)| Placement { pe, time })
        .collect();
    let routes = route_all_with(fabric, topo, dfg, &place, ii, 12, true, tele)?;
    Some(Mapping { ii, place, routes })
}

/// Fold a solver-engine stats snapshot into the telemetry counters.
pub(crate) fn add_solver_stats(tele: &Telemetry, s: SolverStats) {
    tele.add(Counter::SolverDecisions, s.decisions);
    tele.add(Counter::SolverPropagations, s.propagations);
    tele.add(Counter::SolverConflicts, s.conflicts);
    tele.add(Counter::SolverRestarts, s.restarts);
    tele.add(Counter::SolverAssumptionSolves, s.assumption_solves);
    tele.add(Counter::SolverLearntKept, s.learnt_kept);
    tele.add(Counter::SolverLearntGcd, s.learnt_gcd);
    tele.add(Counter::SolverWarmPivotsSaved, s.warm_pivots_saved);
}

/// The union position space of an II sweep: per-II candidate lists
/// (each computed exactly as the from-scratch [`PositionSpace`] would)
/// merged into one deduplicated list per op, with membership indices
/// back into the union. Incremental mappers encode II-independent
/// structure once over the union and guard per-II constraints by
/// selector literals over each II's membership set.
pub(crate) struct SweepSpace {
    /// Candidate IIs covered, ascending.
    pub iis: Vec<u32>,
    /// `union[op]` = deduplicated candidates across every covered II.
    pub union: Vec<Vec<Pos>>,
    /// `member[k][op]` = indices into `union[op]` of the candidates
    /// that II `iis[k]`'s own space contains, in that space's order.
    pub member: Vec<Vec<Vec<usize>>>,
}

impl SweepSpace {
    pub fn build(
        dfg: &Dfg,
        fabric: &Fabric,
        iis: &[u32],
        window_iis: u32,
        cap: Option<usize>,
    ) -> Self {
        use std::collections::HashMap;
        let spaces: Vec<PositionSpace> = iis
            .iter()
            .map(|&ii| PositionSpace::build(dfg, fabric, ii, window_iis, cap))
            .collect();
        let nops = dfg.node_count();
        let mut union: Vec<Vec<Pos>> = vec![Vec::new(); nops];
        let mut index: Vec<HashMap<Pos, usize>> = vec![HashMap::new(); nops];
        for sp in &spaces {
            for (op, list) in sp.positions.iter().enumerate() {
                for &p in list {
                    index[op].entry(p).or_insert_with(|| {
                        union[op].push(p);
                        union[op].len() - 1
                    });
                }
            }
        }
        let member = spaces
            .iter()
            .map(|sp| {
                sp.positions
                    .iter()
                    .enumerate()
                    .map(|(op, list)| list.iter().map(|p| index[op][p]).collect())
                    .collect()
            })
            .collect();
        SweepSpace {
            iis: iis.to_vec(),
            union,
            member,
        }
    }

    /// Materialise II `iis[k]`'s own position space from the union —
    /// identical, list for list, to what the from-scratch
    /// [`PositionSpace::build`] would produce for that II. Mappers that
    /// cannot hold solver state across IIs still reuse the
    /// II-independent structural work (ASAP levels, capability
    /// filtering, window sorting) through this view.
    pub fn per_ii(&self, k: usize) -> PositionSpace {
        PositionSpace {
            ii: self.iis[k],
            positions: self.member[k]
                .iter()
                .enumerate()
                .map(|(op, ms)| ms.iter().map(|&u| self.union[op][u]).collect())
                .collect(),
        }
    }
}

/// Per-op supported-PE bitsets (`caps[op][pe]`): the II- and
/// horizon-independent capability layer shared by every exact encoding,
/// computed once per `map()` call instead of once per probe.
pub(crate) fn capability_bitsets(dfg: &Dfg, fabric: &Fabric) -> Vec<Vec<bool>> {
    dfg.node_ids()
        .map(|n| {
            let op = dfg.op(n);
            fabric.pe_ids().map(|pe| fabric.supports(pe, op)).collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgra_arch::Topology;
    use cgra_ir::kernels;

    #[test]
    fn position_space_shapes() {
        let dfg = kernels::dot_product();
        let f = Fabric::homogeneous(4, 4, Topology::Mesh);
        let ps = PositionSpace::build(&dfg, &f, 2, 1, None);
        assert_eq!(ps.positions.len(), dfg.node_count());
        for (o, positions) in ps.positions.iter().enumerate() {
            assert!(!positions.is_empty(), "op {o} has no candidates");
            // Windows include the routing allowance: deeper ops see
            // strictly later maximum times.
            let times: Vec<u32> = positions.iter().map(|&(_, t)| t).collect();
            assert!(times.iter().max() > times.iter().min() || dfg.node_count() == 1);
        }
        let capped = PositionSpace::build(&dfg, &f, 2, 1, Some(10));
        assert!(capped.positions.iter().all(|p| p.len() == 10));
        assert!(capped.size() <= ps.size());
        // The cap must keep a spread of time layers, not just the
        // earliest cycles.
        for positions in &capped.positions {
            let distinct_times: std::collections::HashSet<u32> =
                positions.iter().map(|&(_, t)| t).collect();
            assert!(distinct_times.len() >= 2);
        }
    }

    #[test]
    fn heterogeneous_positions_respect_caps() {
        let dfg = kernels::dot_product();
        let f = Fabric::adres_like(4, 4);
        let ps = PositionSpace::build(&dfg, &f, 2, 1, None);
        // The mul (node 2) may only use even columns.
        for &(pe, _) in &ps.positions[2] {
            let (_, c) = f.coords(pe);
            assert_eq!(c % 2, 0);
        }
    }

    #[test]
    fn sweep_space_per_ii_matches_from_scratch() {
        // The key lemma behind the incremental mappers' identical-II
        // guarantee: each II's view of the union equals the space a
        // from-scratch encoding would build.
        let dfg = kernels::fir(4);
        let f = Fabric::homogeneous(4, 4, Topology::Mesh);
        let iis = [2u32, 3, 4];
        let sweep = SweepSpace::build(&dfg, &f, &iis, 2, Some(16));
        for (k, &ii) in iis.iter().enumerate() {
            let fresh = PositionSpace::build(&dfg, &f, ii, 2, Some(16));
            assert_eq!(sweep.per_ii(k).positions, fresh.positions, "II {ii}");
        }
    }

    #[test]
    fn capability_bitsets_match_fabric_support() {
        let dfg = kernels::dot_product();
        let f = Fabric::adres_like(4, 4);
        let caps = capability_bitsets(&dfg, &f);
        assert_eq!(caps.len(), dfg.node_count());
        for (n, row) in dfg.node_ids().zip(&caps) {
            for (pe, &ok) in f.pe_ids().zip(row) {
                assert_eq!(ok, f.supports(pe, dfg.op(n)));
            }
        }
    }

    #[test]
    fn compatibility_is_hop_and_latency() {
        let f = Fabric::homogeneous(4, 4, Topology::Mesh);
        let topo = TopologyCache::build(&f);
        // pe0 -> pe3 is 3 hops.
        let src = OpKind::Add;
        assert!(edge_compatible(
            &f,
            &topo,
            4,
            src,
            0,
            (PeId(0), 0),
            (PeId(3), 4)
        ));
        assert!(!edge_compatible(
            &f,
            &topo,
            4,
            src,
            0,
            (PeId(0), 0),
            (PeId(3), 2)
        ));
        // Carried edge at dist 1 gains ii cycles of slack.
        assert!(edge_compatible(
            &f,
            &topo,
            4,
            src,
            1,
            (PeId(0), 0),
            (PeId(3), 0)
        ));
        // Consumption before ready is never compatible.
        assert!(!edge_compatible(
            &f,
            &topo,
            4,
            src,
            0,
            (PeId(0), 5),
            (PeId(0), 3)
        ));
    }
}
