//! Quantum-inspired evolutionary mapping (Lee, Choi & Dutt lineage —
//! IEEE TCAD 2011).
//!
//! Instead of a population of concrete bindings, QEA maintains a
//! *probabilistic* individual: a probability distribution over PEs for
//! every operation (the "qubit register"). Each generation samples
//! concrete bindings ("observation"), evaluates them, and rotates the
//! distribution towards the best observed binding (the rotation-gate
//! update). Convergence is tracked by distribution entropy; a mapping
//! is materialised from the best observation.

use super::meta_common::{eval_binding, finish_binding, legal_schedule};
use crate::mapper::{Family, MapConfig, MapError, Mapper};
use crate::mapping::Mapping;
use crate::telemetry::{Counter, Phase};
use cgra_arch::{Fabric, PeId};
use cgra_ir::Dfg;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The QEA mapper.
#[derive(Debug, Clone)]
pub struct Qea {
    /// Observations sampled per generation.
    pub samples: usize,
    pub generations: u32,
    /// Rotation step towards the best binding (per mille of mass).
    pub rotation_pm: u32,
}

impl Default for Qea {
    fn default() -> Self {
        Qea {
            samples: 24,
            generations: 80,
            rotation_pm: 120,
        }
    }
}

impl Mapper for Qea {
    fn name(&self) -> &'static str {
        "qea"
    }

    fn family(&self) -> Family {
        Family::MetaPopulation
    }

    fn map(&self, dfg: &Dfg, fabric: &Fabric, cfg: &MapConfig) -> Result<Mapping, MapError> {
        dfg.validate()
            .map_err(|e| MapError::Unsupported(e.to_string()))?;
        let mii = super::ModuloList::mii(dfg, fabric);
        let (min_ii, max_ii) = cfg.ii_range_for(dfg, mii, fabric)?;
        let topo = cfg.topo_for(fabric);
        let budget = cfg.run_budget();
        let n = dfg.node_count();

        for ii in min_ii..=max_ii {
            cfg.telemetry.bump(Counter::IiAttempts);
            cfg.ledger.ii_attempt("qea", ii);
            let _span = cfg.telemetry.span_ii(Phase::Map, ii);
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ (ii as u64) << 7);
            // Feasible PE sets and uniform initial distributions.
            let feasible: Vec<Vec<PeId>> = dfg
                .node_ids()
                .map(|id| {
                    fabric
                        .pe_ids()
                        .filter(|&pe| fabric.supports(pe, dfg.op(id)))
                        .collect()
                })
                .collect();
            if feasible.iter().any(|f| f.is_empty()) {
                return Err(MapError::infeasible("an op has no capable PE"));
            }
            let mut prob: Vec<Vec<f64>> = feasible
                .iter()
                .map(|f| vec![1.0 / f.len() as f64; f.len()])
                .collect();
            let mut best: Option<(u64, Vec<PeId>)> = None;

            for _gen in 0..self.generations {
                if budget.expired_now() {
                    break;
                }
                // Observe.
                let mut observations: Vec<(u64, Vec<PeId>)> = (0..self.samples.max(2))
                    .map(|_| {
                        let binding: Vec<PeId> = (0..n)
                            .map(|i| {
                                let r: f64 = rng.random();
                                let mut acc = 0.0;
                                for (k, &p) in prob[i].iter().enumerate() {
                                    acc += p;
                                    if r <= acc {
                                        return feasible[i][k];
                                    }
                                }
                                *feasible[i].last().unwrap()
                            })
                            .collect();
                        let c = eval_binding(dfg, fabric, &topo, &binding, ii).cost;
                        cfg.telemetry.bump(Counter::MovesProposed);
                        (c, binding)
                    })
                    .collect();
                observations.sort_by_key(|(c, _)| *c);
                let gen_best = observations.remove(0);
                let improved = best.as_ref().map(|(c, _)| gen_best.0 < *c).unwrap_or(true);
                if improved {
                    cfg.telemetry.bump(Counter::MovesAccepted);
                    cfg.telemetry.bump(Counter::Incumbents);
                    cfg.ledger.incumbent("qea", ii, gen_best.0 as f64);
                    best = Some(gen_best.clone());
                }
                // Rotate distributions towards the all-time best.
                let target = &best.as_ref().unwrap().1;
                let step = self.rotation_pm as f64 / 1000.0;
                for i in 0..n {
                    let chosen = feasible[i]
                        .iter()
                        .position(|&pe| pe == target[i])
                        .unwrap_or(0);
                    let k = prob[i].len();
                    for (j, p) in prob[i].iter_mut().enumerate() {
                        if j == chosen {
                            *p += step * (1.0 - *p);
                        } else {
                            *p *= 1.0 - step;
                        }
                    }
                    // Keep a floor of exploration mass.
                    let floor = 0.005 / k as f64;
                    let mut total = 0.0;
                    for p in prob[i].iter_mut() {
                        *p = p.max(floor);
                        total += *p;
                    }
                    for p in prob[i].iter_mut() {
                        *p /= total;
                    }
                }
            }

            if let Some((_, binding)) = best {
                if let Some(times) = legal_schedule(dfg, fabric, &topo, &binding, ii) {
                    if let Some(m) =
                        finish_binding(dfg, fabric, &topo, &binding, &times, ii, &cfg.telemetry)
                    {
                        return Ok(m);
                    }
                }
            }
            if budget.expired_now() {
                return Err(budget.error());
            }
        }
        Err(MapError::infeasible(format!(
            "no routable observation in II {min_ii}..={max_ii}"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;
    use cgra_arch::Topology;
    use cgra_ir::kernels;

    #[test]
    fn qea_maps_small_kernels() {
        let f = Fabric::homogeneous(4, 4, Topology::Mesh);
        for dfg in [
            kernels::dot_product(),
            kernels::accumulate(),
            kernels::sad(),
        ] {
            let m = Qea::default()
                .map(&dfg, &f, &MapConfig::fast())
                .unwrap_or_else(|e| panic!("{}: {e}", dfg.name));
            validate(&m, &dfg, &f).unwrap_or_else(|e| panic!("{}: {e}", dfg.name));
        }
    }

    #[test]
    fn qea_respects_heterogeneity() {
        let f = Fabric::adres_like(4, 4);
        let dfg = kernels::dot_product();
        let m = Qea::default().map(&dfg, &f, &MapConfig::fast()).unwrap();
        validate(&m, &dfg, &f).unwrap();
    }
}
