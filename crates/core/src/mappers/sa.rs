//! Simulated-annealing mapping (SPR / DRESC lineage — Friedman et al.
//! FPGA 2009, Mei et al. FPT 2002).
//!
//! Classic local search over bindings: start from a random
//! capability-feasible binding, propose moves (relocate one operation,
//! or swap two operations' PEs), accept downhill always and uphill
//! with probability `exp(-Δ/T)` under a geometric cooling schedule.
//! Multiple independent chains run in parallel (rayon) and the best
//! champion is routed.

use super::meta_common::{eval_binding, finish_binding, legal_schedule, random_binding};
use crate::engine::Budget;
use crate::mapper::{Family, MapConfig, MapError, Mapper};
use crate::mapping::Mapping;
use crate::telemetry::{Counter, Phase, Telemetry};
use cgra_arch::{Fabric, PeId, TopologyCache};
use cgra_ir::Dfg;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Cooling schedule — an ablation axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Cooling {
    /// `T ← 0.95·T` per sweep (classic geometric).
    #[default]
    Geometric,
    /// Linear ramp to zero.
    Linear,
}

/// The annealing mapper.
#[derive(Debug, Clone)]
pub struct SimulatedAnnealing {
    pub cooling: Cooling,
    /// Independent restart chains (run in parallel).
    pub chains: usize,
    /// Moves per temperature step scales with `effort`.
    pub sweeps: u32,
}

impl Default for SimulatedAnnealing {
    fn default() -> Self {
        SimulatedAnnealing {
            cooling: Cooling::Geometric,
            chains: 4,
            sweeps: 40,
        }
    }
}

impl SimulatedAnnealing {
    #[allow(clippy::too_many_arguments)]
    fn anneal_chain(
        &self,
        dfg: &Dfg,
        fabric: &Fabric,
        topo: &TopologyCache,
        ii: u32,
        seed: u64,
        budget: &Budget,
        tele: &Telemetry,
    ) -> Option<(u64, Vec<PeId>)> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut binding = random_binding(dfg, fabric, &mut rng);
        let mut cost = eval_binding(dfg, fabric, topo, &binding, ii).cost;
        let mut best = (cost, binding.clone());
        let n = dfg.node_count();

        let mut temp = 1000.0f64;
        let sweeps = self.sweeps.max(4);
        for sweep in 0..sweeps {
            if budget.expired_now() {
                break;
            }
            for _ in 0..(3 * n) {
                if budget.expired() {
                    break;
                }
                // Propose: relocate (70%) or swap (30%).
                tele.bump(Counter::MovesProposed);
                let mut cand = binding.clone();
                if rng.random_range(0..10) < 7 {
                    let op = cgra_ir::NodeId(rng.random_range(0..n as u32));
                    let feasible: Vec<PeId> = fabric
                        .pe_ids()
                        .filter(|&pe| fabric.supports(pe, dfg.op(op)))
                        .collect();
                    if feasible.is_empty() {
                        continue;
                    }
                    cand[op.index()] = feasible[rng.random_range(0..feasible.len())];
                } else {
                    let a = rng.random_range(0..n);
                    let b = rng.random_range(0..n);
                    cand.swap(a, b);
                }
                let c = eval_binding(dfg, fabric, topo, &cand, ii).cost;
                let accept = c <= cost || {
                    let delta = (c - cost) as f64;
                    rng.random::<f64>() < (-delta / temp.max(1e-9)).exp()
                };
                if accept {
                    tele.bump(Counter::MovesAccepted);
                    binding = cand;
                    cost = c;
                    if cost < best.0 {
                        best = (cost, binding.clone());
                    }
                }
            }
            temp = match self.cooling {
                Cooling::Geometric => temp * 0.85,
                Cooling::Linear => 1000.0 * (1.0 - (sweep as f64 + 1.0) / sweeps as f64),
            };
        }
        Some(best)
    }
}

impl Mapper for SimulatedAnnealing {
    fn name(&self) -> &'static str {
        "sa"
    }

    fn family(&self) -> Family {
        Family::MetaLocalSearch
    }

    fn map(&self, dfg: &Dfg, fabric: &Fabric, cfg: &MapConfig) -> Result<Mapping, MapError> {
        dfg.validate()
            .map_err(|e| MapError::Unsupported(e.to_string()))?;
        let mii = super::ModuloList::mii(dfg, fabric);
        let (min_ii, max_ii) = cfg.ii_range_for(dfg, mii, fabric)?;
        let topo = cfg.topo_for(fabric);
        let budget = cfg.run_budget();

        for ii in min_ii..=max_ii {
            cfg.telemetry.bump(Counter::IiAttempts);
            cfg.ledger.ii_attempt("sa", ii);
            let _span = cfg.telemetry.span_ii(Phase::Map, ii);
            // Parallel chains; pick the champion.
            let champions: Vec<(u64, Vec<PeId>)> = (0..self.chains.max(1))
                .into_par_iter()
                .filter_map(|c| {
                    self.anneal_chain(
                        dfg,
                        fabric,
                        &topo,
                        ii,
                        cfg.seed ^ (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ ii as u64,
                        &budget,
                        &cfg.telemetry,
                    )
                })
                .collect();
            let mut champs = champions;
            champs.sort_by_key(|(c, _)| *c);
            // The chain champion is this II's anytime incumbent; record
            // it sequentially (after collect) so same-seed runs produce
            // identical ledgers.
            if let Some((c, _)) = champs.first() {
                cfg.telemetry.bump(Counter::Incumbents);
                cfg.ledger.incumbent("sa", ii, *c as f64);
            }
            for (_, binding) in champs.into_iter().take(2) {
                if let Some(times) = legal_schedule(dfg, fabric, &topo, &binding, ii) {
                    if let Some(m) =
                        finish_binding(dfg, fabric, &topo, &binding, &times, ii, &cfg.telemetry)
                    {
                        return Ok(m);
                    }
                }
            }
            if budget.expired_now() {
                return Err(budget.error());
            }
        }
        Err(MapError::infeasible(format!(
            "annealing found no routable binding in II {min_ii}..={max_ii}"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;
    use cgra_arch::Topology;
    use cgra_ir::kernels;

    #[test]
    fn anneals_small_kernels() {
        let f = Fabric::homogeneous(4, 4, Topology::Mesh);
        for dfg in kernels::small_suite() {
            let m = SimulatedAnnealing::default()
                .map(&dfg, &f, &MapConfig::fast())
                .unwrap_or_else(|e| panic!("{}: {e}", dfg.name));
            validate(&m, &dfg, &f).unwrap_or_else(|e| panic!("{}: {e}", dfg.name));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let f = Fabric::homogeneous(4, 4, Topology::Mesh);
        let dfg = kernels::dot_product();
        let cfg = MapConfig::fast();
        let sa = SimulatedAnnealing {
            chains: 1,
            ..Default::default()
        };
        let m1 = sa.map(&dfg, &f, &cfg).unwrap();
        let m2 = sa.map(&dfg, &f, &cfg).unwrap();
        assert_eq!(m1.place, m2.place);
    }

    #[test]
    fn linear_cooling_also_works() {
        let f = Fabric::homogeneous(4, 4, Topology::Mesh);
        let dfg = kernels::accumulate();
        let m = SimulatedAnnealing {
            cooling: Cooling::Linear,
            ..Default::default()
        }
        .map(&dfg, &f, &MapConfig::fast())
        .unwrap();
        validate(&m, &dfg, &f).unwrap();
    }
}
