//! Modulo list scheduling with integrated place-and-route — the
//! DRESC-lineage workhorse (Rau's iterative modulo scheduling adapted
//! to CGRAs; Mei et al. FPT'02, De Sutter et al.).
//!
//! For each candidate II starting at the MII, operations are scheduled
//! in height-priority order. Each operation scans a time window from
//! its earliest start and, per cycle, the capability-feasible PEs
//! nearest its placed neighbours; the first `(pe, t)` where every edge
//! to already-placed operations routes, wins. If any operation
//! exhausts its window, the II is bumped — the classic "increase II
//! until it fits" loop of the survey's modulo-scheduling section.

use super::state::SchedState;
use crate::engine::Budget;
use crate::mapper::{Family, MapConfig, MapError, Mapper};
use crate::mapping::Mapping;
use crate::telemetry::{Counter, Phase, Telemetry};
use cgra_arch::{Fabric, TopologyCache};
use cgra_ir::graph;
use cgra_ir::{Dfg, NodeId, OpKind};

/// How the II space is searched — an ablation axis (DESIGN.md §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IiSearch {
    /// Bottom-up from MII (guarantees minimal II among found).
    #[default]
    BottomUp,
    /// Binary search between MII and `max_ii` (fewer, bigger probes).
    Binary,
}

/// The modulo list scheduler.
#[derive(Debug, Clone)]
pub struct ModuloList {
    pub ii_search: IiSearch,
    /// Cap on candidate PEs per (op, cycle) probe.
    pub pe_candidates: usize,
    /// Time window length in IIs.
    pub window_iis: u32,
}

impl Default for ModuloList {
    fn default() -> Self {
        ModuloList {
            ii_search: IiSearch::BottomUp,
            pe_candidates: 24,
            window_iis: 3,
        }
    }
}

impl ModuloList {
    /// Compute the MII for `dfg` on `fabric`.
    pub fn mii(dfg: &Dfg, fabric: &Fabric) -> u32 {
        let (alu, mul, mem, io) = fabric.slot_counts();
        let lat = |op: OpKind| fabric.latency_of(op);
        let io_ops = dfg
            .nodes()
            .filter(|(_, n)| matches!(n.op, OpKind::Input(_) | OpKind::Output(_)))
            .count();
        let io_mii = if io == 0 && io_ops > 0 {
            u32::MAX
        } else if io_ops > 0 {
            (io_ops as u32).div_ceil(io as u32).max(1)
        } else {
            1
        };
        graph::mii(dfg, &lat, alu, mul, mem).max(io_mii)
    }

    /// Attempt one II. Returns the mapping on success.
    pub fn try_ii(
        &self,
        dfg: &Dfg,
        fabric: &Fabric,
        ii: u32,
        topo: &TopologyCache,
        budget: &Budget,
        tele: &Telemetry,
    ) -> Option<Mapping> {
        tele.bump(Counter::IiAttempts);
        let _span = tele.span_ii(Phase::Map, ii);
        let mut state = SchedState::new(dfg, fabric, ii, topo, tele.clone());
        let lat = |op: OpKind| fabric.latency_of(op);
        let height = graph::height(dfg, &lat);
        let mut order: Vec<NodeId> = dfg.topo_order().ok()?;
        // Stable height-descending priority within topological order.
        order.sort_by_key(|n| std::cmp::Reverse(height[n.index()]));

        for &n in &order {
            if budget.expired() {
                return None;
            }
            let est = state.est(n);
            let lst = state.lst(n);
            let window_end = match lst {
                Some(l) => l.min(est + self.window_iis * ii),
                None => est + self.window_iis * ii,
            };
            if window_end < est {
                return None;
            }
            let mut placed = false;
            't: for t in est..=window_end {
                for pe in state.candidate_pes(n, self.pe_candidates) {
                    if state.try_place(n, pe, t) {
                        placed = true;
                        break 't;
                    }
                }
            }
            if !placed {
                return None;
            }
        }
        state.into_mapping()
    }
}

impl Mapper for ModuloList {
    fn name(&self) -> &'static str {
        "modulo-list"
    }

    fn family(&self) -> Family {
        Family::Heuristic
    }

    fn map(&self, dfg: &Dfg, fabric: &Fabric, cfg: &MapConfig) -> Result<Mapping, MapError> {
        dfg.validate()
            .map_err(|e| MapError::Unsupported(e.to_string()))?;
        let (min_ii, max_ii) = cfg.ii_range_for(dfg, Self::mii(dfg, fabric), fabric)?;
        let topo = cfg.topo_for(fabric);
        let budget = cfg.run_budget();

        match self.ii_search {
            IiSearch::BottomUp => {
                for ii in min_ii..=max_ii {
                    cfg.ledger.ii_attempt("modulo-list", ii);
                    if let Some(m) = self.try_ii(dfg, fabric, ii, &topo, &budget, &cfg.telemetry) {
                        cfg.telemetry.bump(Counter::Incumbents);
                        cfg.ledger.incumbent("modulo-list", ii, ii as f64);
                        return Ok(m);
                    }
                    if budget.expired_now() {
                        return Err(budget.error());
                    }
                }
                Err(MapError::infeasible(format!(
                    "no II in {min_ii}..={max_ii} admits a schedule"
                )))
            }
            IiSearch::Binary => {
                // Feasibility is not monotone for greedy list scheduling,
                // but binary search is still the classic fast probe: find
                // the smallest II in the probe set that succeeds.
                let (mut lo, mut hi) = (min_ii, max_ii);
                let mut best: Option<Mapping> = None;
                while lo <= hi {
                    let mid = lo + (hi - lo) / 2;
                    cfg.ledger.ii_attempt("modulo-list", mid);
                    match self.try_ii(dfg, fabric, mid, &topo, &budget, &cfg.telemetry) {
                        Some(m) => {
                            cfg.telemetry.bump(Counter::Incumbents);
                            cfg.ledger.incumbent("modulo-list", mid, mid as f64);
                            best = Some(m);
                            if mid == 0 {
                                break;
                            }
                            hi = mid.saturating_sub(1);
                            if hi < lo {
                                break;
                            }
                        }
                        None => {
                            lo = mid + 1;
                        }
                    }
                    if budget.expired_now() {
                        break;
                    }
                }
                best.ok_or(MapError::infeasible(format!(
                    "no II in {min_ii}..={max_ii} admits a schedule"
                )))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;
    use cgra_arch::Topology;
    use cgra_ir::kernels;

    fn mesh() -> Fabric {
        Fabric::homogeneous(4, 4, Topology::Mesh)
    }

    #[test]
    fn maps_dot_product_at_low_ii() {
        let dfg = kernels::dot_product();
        let f = mesh();
        let m = ModuloList::default()
            .map(&dfg, &f, &MapConfig::fast())
            .unwrap();
        validate(&m, &dfg, &f).unwrap();
        assert!(m.ii <= 2, "II {} too large for a 5-op kernel", m.ii);
    }

    #[test]
    fn maps_entire_suite_on_4x4() {
        let f = mesh();
        for dfg in kernels::suite() {
            let m = ModuloList::default()
                .map(&dfg, &f, &MapConfig::fast())
                .unwrap_or_else(|e| panic!("{}: {e}", dfg.name));
            validate(&m, &dfg, &f).unwrap_or_else(|e| panic!("{}: {e}", dfg.name));
        }
    }

    #[test]
    fn respects_recurrence_mii() {
        let dfg = kernels::iir1();
        let f = mesh();
        let m = ModuloList::default()
            .map(&dfg, &f, &MapConfig::fast())
            .unwrap();
        // RecMII of iir1 under unit latency is 3.
        assert!(m.ii >= 3);
    }

    #[test]
    fn heterogeneous_fabric_constrains_muls() {
        let dfg = kernels::fft_butterfly();
        let f = Fabric::adres_like(4, 4);
        let m = ModuloList::default()
            .map(&dfg, &f, &MapConfig::fast())
            .unwrap();
        validate(&m, &dfg, &f).unwrap();
        // Every multiplier op must sit on an even column.
        for (id, node) in dfg.nodes() {
            if node.op.needs_multiplier() {
                let (_, c) = f.coords(m.placement(id).pe);
                assert_eq!(c % 2, 0);
            }
        }
    }

    #[test]
    fn infeasible_when_mii_exceeds_bound() {
        let dfg = kernels::unrolled_mac(40); // 160+ ops on 4 PEs
        let mut f = Fabric::homogeneous(2, 2, Topology::Mesh);
        f.context_depth = 4; // max II 4: ResMII is far larger
        let err = ModuloList::default()
            .map(&dfg, &f, &MapConfig::fast())
            .unwrap_err();
        assert!(matches!(err, MapError::Infeasible(_)));
    }

    #[test]
    fn binary_search_also_succeeds() {
        let dfg = kernels::fir(4);
        let f = mesh();
        let m = ModuloList {
            ii_search: IiSearch::Binary,
            ..Default::default()
        }
        .map(&dfg, &f, &MapConfig::fast())
        .unwrap();
        validate(&m, &dfg, &f).unwrap();
    }

    #[test]
    fn multi_cycle_latency_model() {
        let dfg = kernels::iir1();
        let mut f = mesh();
        f.latency = cgra_arch::LatencyModel::multi_cycle();
        let m = ModuloList::default()
            .map(&dfg, &f, &MapConfig::fast())
            .unwrap();
        validate(&m, &dfg, &f).unwrap();
        // Recurrence mul(2) + shr(1) + add(1) = 4.
        assert!(m.ii >= 4);
    }

    #[test]
    fn mii_accounts_for_io_ports() {
        use cgra_ir::{Dfg, OpKind};
        // 3 I/O ops against a single I/O-capable cell force II >= 3.
        let mut f = Fabric::homogeneous(2, 2, Topology::Mesh);
        for pe in 1..4 {
            f.cells[pe].io = false;
        }
        let mut g = Dfg::new("io3");
        let a = g.add_node(OpKind::Input(0));
        let b = g.add_node(OpKind::Input(1));
        let s = g.add_node(OpKind::Add);
        g.connect(a, s, 0);
        g.connect(b, s, 1);
        let o = g.add_node(OpKind::Output(0));
        g.connect(s, o, 0);
        g.validate().unwrap();
        assert_eq!(ModuloList::mii(&g, &f), 3);
        let f2 = Fabric::homogeneous(2, 2, Topology::Mesh);
        assert_eq!(ModuloList::mii(&g, &f2), 1);
    }
}
