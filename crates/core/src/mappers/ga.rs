//! Genetic-algorithm mapping (GenMap lineage — Kojima et al., IEEE
//! TVLSI 2020).
//!
//! The chromosome is the binding vector (one PE gene per operation).
//! Tournament selection, uniform crossover, per-gene mutation to a
//! random capability-feasible PE, elitism, and a fitness that rewards
//! schedulability first and wirelength second (GenMap optimises
//! energy ∝ wirelength under its mapping-feasibility constraint).
//! Population fitness is evaluated in parallel with rayon.

use super::meta_common::{eval_binding, finish_binding, legal_schedule, random_binding};
use crate::engine::Budget;
use crate::ledger::Ledger;
use crate::mapper::{Family, MapConfig, MapError, Mapper};
use crate::mapping::Mapping;
use crate::telemetry::{Counter, Phase, Telemetry};
use cgra_arch::{Fabric, PeId, TopologyCache};
use cgra_ir::Dfg;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// The GA mapper.
#[derive(Debug, Clone)]
pub struct Genetic {
    pub population: usize,
    pub generations: u32,
    pub tournament: usize,
    /// Per-gene mutation probability (per mille).
    pub mutation_pm: u32,
    pub elitism: usize,
}

impl Default for Genetic {
    fn default() -> Self {
        Genetic {
            population: 36,
            generations: 48,
            tournament: 3,
            mutation_pm: 60,
            elitism: 2,
        }
    }
}

impl Genetic {
    #[allow(clippy::too_many_arguments)]
    fn evolve(
        &self,
        dfg: &Dfg,
        fabric: &Fabric,
        topo: &TopologyCache,
        ii: u32,
        seed: u64,
        budget: &Budget,
        tele: &Telemetry,
        ledger: &Ledger,
    ) -> Vec<(u64, Vec<PeId>)> {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = dfg.node_count();
        let feasible: Vec<Vec<PeId>> = dfg
            .node_ids()
            .map(|id| {
                fabric
                    .pe_ids()
                    .filter(|&pe| fabric.supports(pe, dfg.op(id)))
                    .collect()
            })
            .collect();

        let mut pop: Vec<Vec<PeId>> = (0..self.population.max(4))
            .map(|_| random_binding(dfg, fabric, &mut rng))
            .collect();
        let mut scored: Vec<(u64, Vec<PeId>)> = Vec::new();
        let mut best_cost = u64::MAX;

        for _gen in 0..self.generations {
            if budget.expired_now() {
                break;
            }
            scored = pop
                .par_iter()
                .map(|b| (eval_binding(dfg, fabric, topo, b, ii).cost, b.clone()))
                .collect();
            scored.sort_by_key(|(c, _)| *c);
            // A generation whose champion improves on the best seen so
            // far counts as an accepted move of the population search.
            if let Some(&(c, _)) = scored.first() {
                if c < best_cost {
                    best_cost = c;
                    tele.bump(Counter::MovesAccepted);
                    tele.bump(Counter::Incumbents);
                    ledger.incumbent("ga", ii, c as f64);
                }
            }

            let mut next: Vec<Vec<PeId>> = scored
                .iter()
                .take(self.elitism)
                .map(|(_, b)| b.clone())
                .collect();
            while next.len() < pop.len() {
                // Tournament selection of two parents.
                let pick = |rng: &mut StdRng| -> &Vec<PeId> {
                    let mut best: Option<&(u64, Vec<PeId>)> = None;
                    for _ in 0..self.tournament.max(1) {
                        let c = &scored[rng.random_range(0..scored.len())];
                        if best.map(|b| c.0 < b.0).unwrap_or(true) {
                            best = Some(c);
                        }
                    }
                    &best.unwrap().1
                };
                let pa = pick(&mut rng).clone();
                let pb = pick(&mut rng).clone();
                // Uniform crossover + mutation.
                let mut child = Vec::with_capacity(n);
                for i in 0..n {
                    let gene = if rng.random::<bool>() { pa[i] } else { pb[i] };
                    let gene = if rng.random_range(0..1000) < self.mutation_pm
                        && !feasible[i].is_empty()
                    {
                        feasible[i][rng.random_range(0..feasible[i].len())]
                    } else {
                        gene
                    };
                    child.push(gene);
                }
                tele.bump(Counter::MovesProposed);
                next.push(child);
            }
            pop = next;
        }
        if scored.is_empty() {
            scored = pop
                .par_iter()
                .map(|b| (eval_binding(dfg, fabric, topo, b, ii).cost, b.clone()))
                .collect();
            scored.sort_by_key(|(c, _)| *c);
        }
        scored
    }
}

impl Mapper for Genetic {
    fn name(&self) -> &'static str {
        "ga"
    }

    fn family(&self) -> Family {
        Family::MetaPopulation
    }

    fn map(&self, dfg: &Dfg, fabric: &Fabric, cfg: &MapConfig) -> Result<Mapping, MapError> {
        dfg.validate()
            .map_err(|e| MapError::Unsupported(e.to_string()))?;
        let mii = super::ModuloList::mii(dfg, fabric);
        let (min_ii, max_ii) = cfg.ii_range_for(dfg, mii, fabric)?;
        let topo = cfg.topo_for(fabric);
        let budget = cfg.run_budget();

        for ii in min_ii..=max_ii {
            cfg.telemetry.bump(Counter::IiAttempts);
            cfg.ledger.ii_attempt("ga", ii);
            let _span = cfg.telemetry.span_ii(Phase::Map, ii);
            let scored = self.evolve(
                dfg,
                fabric,
                &topo,
                ii,
                cfg.seed ^ ii as u64,
                &budget,
                &cfg.telemetry,
                &cfg.ledger,
            );
            for (_, binding) in scored.into_iter().take(3) {
                if let Some(times) = legal_schedule(dfg, fabric, &topo, &binding, ii) {
                    if let Some(m) =
                        finish_binding(dfg, fabric, &topo, &binding, &times, ii, &cfg.telemetry)
                    {
                        return Ok(m);
                    }
                }
            }
            if budget.expired_now() {
                return Err(budget.error());
            }
        }
        Err(MapError::infeasible(format!(
            "no routable individual in II {min_ii}..={max_ii}"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use crate::validate::validate;
    use cgra_arch::Topology;
    use cgra_ir::kernels;

    #[test]
    fn evolves_small_kernels() {
        let f = Fabric::homogeneous(4, 4, Topology::Mesh);
        for dfg in kernels::small_suite() {
            let m = Genetic::default()
                .map(&dfg, &f, &MapConfig::fast())
                .unwrap_or_else(|e| panic!("{}: {e}", dfg.name));
            validate(&m, &dfg, &f).unwrap_or_else(|e| panic!("{}: {e}", dfg.name));
        }
    }

    #[test]
    fn fitness_pressure_shortens_wires() {
        // GA's wirelength objective should not produce absurdly long
        // routes on a kernel with an obvious linear layout.
        let f = Fabric::homogeneous(4, 4, Topology::Mesh);
        let dfg = kernels::accumulate();
        let m = Genetic::default()
            .map(&dfg, &f, &MapConfig::fast())
            .unwrap();
        let met = Metrics::of(&m, &dfg, &f);
        assert!(met.route_hops <= 8, "hops {}", met.route_hops);
    }
}
