//! ILP mapping (architecture-agnostic formulation lineage — Chin &
//! Anderson DAC 2018, Guo et al. DAC 2021).
//!
//! Binary variables select one candidate `(pe, cycle)` position per
//! operation; linear constraints enforce the assignment, per-`(pe,
//! slot)` exclusivity, and per-edge reachability (an implication row
//! per producer position). The 0/1 branch-and-bound solver
//! ([`cgra_solver::IlpModel`]) proves optimality of the objective
//! (earliest schedule, shortest wires) within the candidate space; a
//! CEGAR loop handles register congestion the linear model cannot see.
//!
//! ## Incremental solving
//!
//! In incremental mode ([`MapConfig::incremental`]) the CEGAR loop
//! keeps one persistent model per II: each round appends a blocking row
//! and re-solves, warm-starting the root relaxation from the basis of
//! the placement that just failed to route — one row away. Between
//! `map()` calls the mapper parks its state in
//! [`MapConfig::incr`](crate::IncrementalCtx): completed per-II
//! infeasibility proofs (re-answered without a solve) and the achieved
//! II's model, root basis, and accepted assignment. A re-map of the
//! same kernel on the same fabric re-enters the solver with the old
//! optimum as a validated warm incumbent, turning the solve into a
//! bound-pruned optimality proof. From-scratch mode re-encodes the
//! model every CEGAR round and never touches the pool; both paths
//! explore the same candidate spaces and achieve identical IIs.

use super::exact_common::{add_solver_stats, edge_compatible, realise, PositionSpace};
use crate::diagnosis::{cap_list, cell_name, op_name, Diagnosis, ResourceClass};
use crate::engine::Budget;
use crate::incremental::{kernel_fingerprint, IncrKey};
use crate::ledger::Ledger;
use crate::mapper::{Family, MapConfig, MapError, Mapper};
use crate::mapping::Mapping;
use crate::telemetry::{Counter, Phase, Telemetry};
use cgra_arch::{Fabric, PeId, TopologyCache};
use cgra_ir::{Dfg, NodeId};
use cgra_solver::ilp::IlpConfig;
use cgra_solver::{Cmp, IlpModel, IlpResult, IlpVar, IlpWarmStart, IncumbentHook};
use std::collections::{BTreeMap, HashSet};
use std::time::Duration;

/// The ILP mapper.
#[derive(Debug, Clone)]
pub struct IlpMapper {
    /// Candidate positions per op (keeps the dense simplex tractable).
    pub position_cap: usize,
    pub cegar_rounds: u32,
    pub window_iis: u32,
}

impl Default for IlpMapper {
    fn default() -> Self {
        IlpMapper {
            position_cap: 12,
            cegar_rounds: 8,
            window_iis: 1,
        }
    }
}

/// Solver state pooled across `map()` calls (see
/// [`crate::IncrementalCtx`]).
#[derive(Default)]
struct IlpPool {
    /// IIs with a *completed* infeasibility proof — an empty candidate
    /// space or an exhausted branch-and-bound refutation. Budget stops
    /// and CEGAR round caps are never cached.
    infeasible: HashSet<u32>,
    /// The achieved II's solver state, re-entered warm on a re-map.
    solved: Option<Box<IlpSolved>>,
}

/// A solved II: the persistent model with every CEGAR blocking row,
/// the root basis of its last solve, and the accepted assignment.
struct IlpSolved {
    ii: u32,
    model: IlpModel,
    vars: Vec<Vec<IlpVar>>,
    warm: IlpWarmStart,
}

/// Row-tag taxonomy for infeasibility forensics: every constraint row
/// is stamped with the resource class it encodes, so the drop-group
/// probe ([`IlpModel::probe_without`]) can attribute an infeasible
/// model to the class whose removal restores feasibility.
const TAG_CAPABILITY: u32 = 1;
const TAG_SLOT: u32 = 2;
const TAG_ROUTE: u32 = 3;
const TAG_REGISTER: u32 = 4;

/// Outcome of one II attempt.
enum TryIi {
    Mapped(Mapping, Option<Box<IlpSolved>>),
    /// Proven infeasible at this II (cacheable across calls).
    Infeasible,
    /// Gave up (CEGAR round cap) without a proof.
    Unknown,
}

impl IlpMapper {
    /// Digest of every knob that shapes the encoding; part of the
    /// [`IncrKey`] so pooled state never outlives an encoding change.
    fn knobs(&self, min_ii: u32, max_ii: u32) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.position_cap.hash(&mut h);
        self.cegar_rounds.hash(&mut h);
        self.window_iis.hash(&mut h);
        (min_ii, max_ii).hash(&mut h);
        h.finish()
    }

    #[allow(clippy::too_many_arguments)]
    fn try_ii(
        &self,
        dfg: &Dfg,
        fabric: &Fabric,
        ii: u32,
        topo: &TopologyCache,
        budget: &Budget,
        tele: &Telemetry,
        ledger: &Ledger,
        incremental: bool,
        pooled: Option<Box<IlpSolved>>,
    ) -> Result<TryIi, MapError> {
        tele.bump(Counter::IiAttempts);
        ledger.ii_attempt("ilp", ii);
        let _span = tele.span_ii(Phase::Map, ii);
        let space = PositionSpace::build(dfg, fabric, ii, self.window_iis, Some(self.position_cap));
        if space.positions.iter().any(|ps| ps.is_empty()) {
            return Ok(TryIi::Infeasible);
        }

        let hook = || {
            let led = ledger.clone();
            let tel = tele.clone();
            // Surface the solver's anytime incumbents (improving
            // integral solutions) straight into the run ledger.
            IncumbentHook::new(move |obj| {
                tel.bump(Counter::Incumbents);
                led.incumbent("ilp", ii, obj);
            })
        };
        // Encode the assignment at this II: one binary per candidate
        // position, exactly-one per op, per-(pe, slot) exclusivity, and
        // per-edge reachability rows.
        let encode = || {
            let mut model = IlpModel::new(false); // minimise
            let vars: Vec<Vec<IlpVar>> = space
                .positions
                .iter()
                .map(|ps| {
                    ps.iter()
                        .map(|&(pe, t)| {
                            // Objective: early issue + central placement.
                            let (r, c) = fabric.coords(pe);
                            let centre = (r as i32 - fabric.rows as i32 / 2).abs()
                                + (c as i32 - fabric.cols as i32 / 2).abs();
                            model.add_var(t as f64 + centre as f64 * 0.1)
                        })
                        .collect()
                })
                .collect();

            model.set_row_tag(TAG_CAPABILITY);
            for ovars in &vars {
                model.exactly_one(ovars);
            }

            // BTreeMap: row order must not depend on the process hash
            // seed, or simplex pivot order (and with it the whole B&B
            // trajectory) varies run to run.
            model.set_row_tag(TAG_SLOT);
            let mut by_slot: BTreeMap<(PeId, u32), Vec<IlpVar>> = BTreeMap::new();
            for (o, ps) in space.positions.iter().enumerate() {
                for (k, &(pe, t)) in ps.iter().enumerate() {
                    by_slot.entry((pe, t % ii)).or_default().push(vars[o][k]);
                }
            }
            for slot_vars in by_slot.values() {
                if slot_vars.len() > 1 {
                    model.at_most_one(slot_vars);
                }
            }

            // Edge reachability: x_src_a ≤ Σ compatible x_dst_b.
            model.set_row_tag(TAG_ROUTE);
            for (_, e) in dfg.edges() {
                let src_op = dfg.op(e.src);
                for (ka, &a) in space.positions[e.src.index()].iter().enumerate() {
                    let mut row: Vec<(IlpVar, f64)> = vec![(vars[e.src.index()][ka], 1.0)];
                    for (kb, &b) in space.positions[e.dst.index()].iter().enumerate() {
                        if e.src == e.dst && ka != kb {
                            continue;
                        }
                        if edge_compatible(fabric, topo, ii, src_op, e.dist, a, b) {
                            row.push((vars[e.dst.index()][kb], -1.0));
                        }
                    }
                    model.add_constraint(&row, Cmp::Le, 0.0);
                }
            }
            model.set_row_tag(TAG_REGISTER);

            model.set_interrupt(budget.interrupt());
            model.set_on_incumbent(hook());
            (model, vars)
        };

        // Incremental mode keeps one persistent model: CEGAR rounds
        // append a blocking row and re-solve it, warm-started. A pooled
        // model from a previous map() call re-enters with its root
        // basis and the old optimum as a validated warm incumbent.
        // From-scratch mode re-encodes the whole model every round
        // (with all blocking rows re-added) — the baseline the
        // incremental path is measured against.
        let mut warm = IlpWarmStart::default();
        let mut persistent = match pooled {
            Some(s) if incremental && s.ii == ii => {
                let s = *s;
                let mut model = s.model;
                model.set_interrupt(budget.interrupt());
                model.set_on_incumbent(hook());
                warm = s.warm;
                Some((model, s.vars))
            }
            _ => incremental.then(&encode),
        };
        let mut blocked: Vec<Vec<(IlpVar, f64)>> = Vec::new();
        let mut proven = false;
        let result: Result<Option<(Mapping, Vec<bool>)>, MapError> = 'cegar: {
            for _ in 0..self.cegar_rounds.max(1) {
                if budget.expired_now() {
                    break 'cegar Err(budget.error());
                }
                let mut scratch = None;
                let from_scratch = persistent.is_none();
                let (model, vars) = match persistent.as_mut() {
                    Some(mv) => mv,
                    None => {
                        let mv = scratch.insert(encode());
                        for row in &blocked {
                            mv.0.add_constraint(row, Cmp::Le, row.len() as f64 - 1.0);
                        }
                        mv
                    }
                };
                let (result, basis) = model.solve_warm(
                    cgra_solver::ilp::IlpConfig {
                        time_limit: budget.remaining().unwrap_or(Duration::MAX),
                        node_limit: 4_000,
                        warm_lp: incremental,
                    },
                    Some(&warm),
                );
                warm.basis = basis;
                // A warm incumbent is only valid for the solve it was
                // recorded against; the blocking row below cuts it off.
                warm.incumbent = None;
                if from_scratch {
                    // A from-scratch round's model dies with the round;
                    // record its work now. (The persistent model keeps
                    // accumulating and is flushed once, below.)
                    add_solver_stats(tele, model.stats());
                }
                let values = match result {
                    IlpResult::Optimal { values, .. } => values,
                    IlpResult::Infeasible => {
                        proven = true;
                        break 'cegar Ok(None);
                    }
                    IlpResult::Budget {
                        values: Some(v), ..
                    } => v,
                    IlpResult::Budget { values: None, .. } => break 'cegar Err(budget.error()),
                };
                // Decode.
                let mut chosen: Vec<(PeId, u32)> = Vec::with_capacity(dfg.node_count());
                let mut var_index = 0usize;
                let mut complete = true;
                for ps in &space.positions {
                    let mut pick = None;
                    for (k, &pos) in ps.iter().enumerate() {
                        if values[var_index + k] {
                            pick = Some(pos);
                        }
                    }
                    var_index += ps.len();
                    match pick {
                        Some(p) => chosen.push(p),
                        None => complete = false, // should not happen
                    }
                }
                if !complete {
                    break 'cegar Ok(None);
                }
                if let Some(m) = realise(dfg, fabric, topo, ii, &chosen, tele) {
                    break 'cegar Ok(Some((m, values)));
                }
                // Block this exact placement (sum of its choices ≤ n-1).
                // Incremental: appended to the live model. From-scratch:
                // remembered and re-added to the next round's rebuild.
                let mut row: Vec<(IlpVar, f64)> = Vec::new();
                for (o, &pos) in chosen.iter().enumerate() {
                    if let Some(k) = space.positions[o].iter().position(|&p| p == pos) {
                        row.push((vars[o][k], 1.0));
                    }
                }
                model.add_constraint(&row, Cmp::Le, row.len() as f64 - 1.0);
                blocked.push(row);
            }
            Ok(None)
        };
        if let Some((model, _)) = &persistent {
            add_solver_stats(tele, model.stats());
        }
        match result {
            Err(e) => Err(e),
            Ok(Some((m, values))) => {
                // Pool the incumbent but NOT the basis: a replayed basis
                // can land the root relaxation on a different optimal
                // vertex, which reorders the branching and (measured)
                // can blow the tree up by orders of magnitude. A cold
                // root keeps the re-map trajectory identical to the
                // from-scratch one, and the incumbent then prunes it to
                // a subset.
                let solved = persistent.map(|(model, vars)| {
                    Box::new(IlpSolved {
                        ii,
                        model,
                        vars,
                        warm: IlpWarmStart {
                            basis: None,
                            incumbent: Some(values),
                        },
                    })
                });
                Ok(TryIi::Mapped(m, solved))
            }
            Ok(None) if proven => Ok(TryIi::Infeasible),
            Ok(None) => Ok(TryIi::Unknown),
        }
    }

    /// Failure forensics at a single II: rebuild the tagged model and
    /// run the drop-group probe — the resource class whose rows, when
    /// removed, restore feasibility is the binding one.
    fn diagnose_ii(
        &self,
        dfg: &Dfg,
        fabric: &Fabric,
        ii: u32,
        mii: u32,
        topo: &TopologyCache,
        budget: &Budget,
    ) -> Diagnosis {
        let space = PositionSpace::build(dfg, fabric, ii, self.window_iis, Some(self.position_cap));
        if let Some(o) = space.positions.iter().position(|ps| ps.is_empty()) {
            let n = NodeId(o as u32);
            let mut d = Diagnosis::new(
                ResourceClass::Capability,
                ii,
                mii,
                format!(
                    "{} has no candidate position at II {ii}: \
                     no capable cell inside the placement window",
                    op_name(dfg, n)
                ),
            );
            d.ops = vec![op_name(dfg, n)];
            return d;
        }
        let mut model = IlpModel::new(false);
        let vars: Vec<Vec<IlpVar>> = space
            .positions
            .iter()
            .map(|ps| ps.iter().map(|&(_, t)| model.add_var(t as f64)).collect())
            .collect();
        model.set_row_tag(TAG_CAPABILITY);
        for ovars in &vars {
            model.exactly_one(ovars);
        }
        model.set_row_tag(TAG_SLOT);
        let mut by_slot: BTreeMap<(PeId, u32), Vec<IlpVar>> = BTreeMap::new();
        for (o, ps) in space.positions.iter().enumerate() {
            for (k, &(pe, t)) in ps.iter().enumerate() {
                by_slot.entry((pe, t % ii)).or_default().push(vars[o][k]);
            }
        }
        for slot_vars in by_slot.values() {
            if slot_vars.len() > 1 {
                model.at_most_one(slot_vars);
            }
        }
        model.set_row_tag(TAG_ROUTE);
        for (_, e) in dfg.edges() {
            let src_op = dfg.op(e.src);
            for (ka, &a) in space.positions[e.src.index()].iter().enumerate() {
                let mut row: Vec<(IlpVar, f64)> = vec![(vars[e.src.index()][ka], 1.0)];
                for (kb, &b) in space.positions[e.dst.index()].iter().enumerate() {
                    if e.src == e.dst && ka != kb {
                        continue;
                    }
                    if edge_compatible(fabric, topo, ii, src_op, e.dist, a, b) {
                        row.push((vars[e.dst.index()][kb], -1.0));
                    }
                }
                model.add_constraint(&row, Cmp::Le, 0.0);
            }
        }
        model.set_interrupt(budget.interrupt());
        let ilp_cfg = IlpConfig {
            time_limit: budget.remaining().unwrap_or(Duration::MAX),
            node_limit: 4_000,
            warm_lp: false,
        };
        match model.solve_with(ilp_cfg) {
            IlpResult::Optimal { .. } => {
                let mut d = Diagnosis::new(
                    ResourceClass::Register,
                    ii,
                    mii,
                    format!(
                        "the ILP relaxation is feasible at II {ii}; every assignment \
                         failed route realisation within {} CEGAR rounds \
                         (register/congestion pressure the linear model cannot see)",
                        self.cegar_rounds.max(1)
                    ),
                );
                d.core = vec!["register".into()];
                d
            }
            IlpResult::Budget { .. } => Diagnosis::new(
                ResourceClass::Routing,
                ii,
                mii,
                format!("diagnostic probe at II {ii} hit its budget before a verdict"),
            ),
            IlpResult::Infeasible => {
                let groups = [
                    (TAG_CAPABILITY, ResourceClass::Capability),
                    (TAG_SLOT, ResourceClass::SlotExclusive),
                    (TAG_ROUTE, ResourceClass::Routing),
                ];
                let binding: Vec<ResourceClass> = groups
                    .iter()
                    .filter(|(tag, _)| {
                        matches!(
                            model.probe_without(*tag, ilp_cfg),
                            IlpResult::Optimal { .. }
                        )
                    })
                    .map(|&(_, class)| class)
                    .collect();
                let (class, detail) = match binding.first() {
                    Some(&c) => (
                        c,
                        format!(
                            "drop-group probe at II {ii}: removing the {c} rows \
                             restores feasibility"
                        ),
                    ),
                    None => (
                        ResourceClass::Capability,
                        format!(
                            "no single constraint group is individually binding at \
                             II {ii}; the conflict spans several resource classes"
                        ),
                    ),
                };
                let mut d = Diagnosis::new(class, ii, mii, detail);
                d.core = if binding.is_empty() {
                    groups.iter().map(|(_, c)| c.label().to_string()).collect()
                } else {
                    binding.iter().map(|c| c.label().to_string()).collect()
                };
                match class {
                    ResourceClass::Capability => {
                        // Ops whose candidate sets are the most starved.
                        let min = space.positions.iter().map(|ps| ps.len()).min().unwrap_or(0);
                        d.ops = cap_list(
                            space
                                .positions
                                .iter()
                                .enumerate()
                                .filter(|(_, ps)| ps.len() == min)
                                .map(|(o, _)| op_name(dfg, NodeId(o as u32)))
                                .collect(),
                        );
                    }
                    ResourceClass::SlotExclusive => {
                        // Cells whose (pe, slot) groups are the most
                        // oversubscribed.
                        let peak = by_slot.values().map(Vec::len).max().unwrap_or(0);
                        let mut cells: Vec<PeId> = by_slot
                            .iter()
                            .filter(|(_, v)| v.len() == peak)
                            .map(|(&(pe, _), _)| pe)
                            .collect();
                        cells.sort_by_key(|pe| pe.0);
                        cells.dedup();
                        d.cells =
                            cap_list(cells.into_iter().map(|pe| cell_name(fabric, pe)).collect());
                    }
                    _ => {}
                }
                d
            }
        }
    }
}

impl Mapper for IlpMapper {
    fn name(&self) -> &'static str {
        "ilp"
    }

    fn family(&self) -> Family {
        Family::ExactIlp
    }

    fn map(&self, dfg: &Dfg, fabric: &Fabric, cfg: &MapConfig) -> Result<Mapping, MapError> {
        dfg.validate()
            .map_err(|e| MapError::Unsupported(e.to_string()))?;
        let mii = super::ModuloList::mii(dfg, fabric);
        let (min_ii, max_ii) = cfg.ii_range_for(dfg, mii, fabric)?;
        let topo = cfg.topo_for(fabric);
        let budget = cfg.run_budget();
        let key = IncrKey {
            mapper: "ilp",
            fabric_fp: topo.fingerprint64(),
            kernel_fp: kernel_fingerprint(dfg),
            knobs: self.knobs(min_ii, max_ii),
        };
        let mut pool: Box<IlpPool> = if cfg.incremental {
            cfg.incr.take_as::<IlpPool>(&key).unwrap_or_default()
        } else {
            Box::default()
        };
        for ii in min_ii..=max_ii {
            if cfg.incremental && pool.infeasible.contains(&ii) {
                // Answered from the pooled proof; keep the observable
                // sweep ledger identical to an uncached run.
                cfg.telemetry.bump(Counter::IiAttempts);
                cfg.ledger.ii_attempt("ilp", ii);
                continue;
            }
            let pooled = if pool.solved.as_ref().is_some_and(|s| s.ii == ii) {
                pool.solved.take()
            } else {
                None
            };
            let out = self.try_ii(
                dfg,
                fabric,
                ii,
                &topo,
                &budget,
                &cfg.telemetry,
                &cfg.ledger,
                cfg.incremental,
                pooled,
            );
            match out {
                Ok(TryIi::Mapped(m, solved)) => {
                    if cfg.incremental {
                        pool.solved = solved;
                        cfg.incr.put(key, pool);
                    }
                    return Ok(m);
                }
                Ok(TryIi::Infeasible) => {
                    pool.infeasible.insert(ii);
                }
                Ok(TryIi::Unknown) => {}
                Err(e) => {
                    // Completed proofs stay valid; park them before
                    // surfacing the budget error.
                    if cfg.incremental {
                        cfg.incr.put(key, pool);
                    }
                    return Err(e);
                }
            }
        }
        if cfg.incremental {
            cfg.incr.put(key, pool);
        }
        let why = format!("ILP infeasible for every II in {min_ii}..={max_ii} (candidate window)");
        if cfg.explain {
            let probe_budget = cfg.run_budget();
            let d = self.diagnose_ii(dfg, fabric, max_ii, mii, &topo, &probe_budget);
            Err(MapError::infeasible_with(why, d))
        } else {
            Err(MapError::infeasible(why))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;
    use cgra_arch::Topology;
    use cgra_ir::kernels;

    #[test]
    fn explain_attaches_diagnosis_and_drop_group_probe_is_deterministic() {
        let mut f = Fabric::homogeneous(2, 2, Topology::Mesh);
        for pe in 1..4 {
            f.cells[pe].mul = false;
        }
        let dfg = kernels::fir(4);
        // II pinned below MII: analytic capability diagnosis.
        let cfg = MapConfig {
            max_ii: 1,
            explain: true,
            ..MapConfig::fast()
        };
        let err = IlpMapper::default().map(&dfg, &f, &cfg).unwrap_err();
        let d = err.diagnosis().expect("explain must attach a diagnosis");
        assert_eq!(d.class, ResourceClass::Capability);
        // The tagged-model probe itself, at a feasible-range II.
        let base = MapConfig::fast();
        let topo = base.topo_for(&f);
        let m = IlpMapper::default();
        let p1 = m.diagnose_ii(&dfg, &f, 1, 4, &topo, &base.run_budget());
        let p2 = m.diagnose_ii(&dfg, &f, 1, 4, &topo, &base.run_budget());
        assert_eq!(p1, p2, "probe must be deterministic");
        assert!(!p1.core.is_empty());
        assert_ne!(p1.class, ResourceClass::Register);
    }

    #[test]
    fn ilp_maps_tiny_kernels() {
        let f = Fabric::homogeneous(3, 3, Topology::Mesh);
        for dfg in [kernels::dot_product(), kernels::accumulate()] {
            let m = IlpMapper::default()
                .map(&dfg, &f, &MapConfig::fast())
                .unwrap_or_else(|e| panic!("{}: {e}", dfg.name));
            validate(&m, &dfg, &f).unwrap_or_else(|e| panic!("{}: {e}", dfg.name));
        }
    }

    #[test]
    fn warm_and_cold_ilp_mapper_agree_on_ii() {
        let f = Fabric::homogeneous(3, 3, Topology::Mesh);
        for dfg in [kernels::dot_product(), kernels::accumulate()] {
            let warm = IlpMapper::default()
                .map(&dfg, &f, &MapConfig::fast())
                .unwrap();
            let cold_cfg = MapConfig {
                incremental: false,
                ..MapConfig::fast()
            };
            let cold = IlpMapper::default().map(&dfg, &f, &cold_cfg).unwrap();
            assert_eq!(warm.ii, cold.ii, "{} diverged", dfg.name);
        }
    }

    #[test]
    fn remap_reuses_pooled_state_and_agrees_on_ii() {
        // A second map() with the same config must answer from the
        // pooled model (warm incumbent + cached proofs) and land on the
        // same II as the first.
        let f = Fabric::homogeneous(3, 3, Topology::Mesh);
        let cfg = MapConfig::fast();
        let dfg = kernels::dot_product();
        let mapper = IlpMapper::default();
        let first = mapper.map(&dfg, &f, &cfg).unwrap();
        assert!(!cfg.incr.is_empty(), "success must park pooled state");
        let second = mapper.map(&dfg, &f, &cfg).unwrap();
        assert_eq!(first.ii, second.ii);
        validate(&second, &dfg, &f).unwrap();
        assert!(!cfg.incr.is_empty(), "remap must re-park pooled state");
    }

    #[test]
    fn ilp_objective_prefers_early_schedules() {
        let f = Fabric::homogeneous(3, 3, Topology::Mesh);
        let dfg = kernels::accumulate();
        let m = IlpMapper::default()
            .map(&dfg, &f, &MapConfig::fast())
            .unwrap();
        // Minimising Σt keeps the 3-op chain tight.
        assert!(m.schedule_len(&dfg, &f) <= 6);
    }
}
