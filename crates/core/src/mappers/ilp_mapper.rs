//! ILP mapping (architecture-agnostic formulation lineage — Chin &
//! Anderson DAC 2018, Guo et al. DAC 2021).
//!
//! Binary variables select one candidate `(pe, cycle)` position per
//! operation; linear constraints enforce the assignment, per-`(pe,
//! slot)` exclusivity, and per-edge reachability (an implication row
//! per producer position). The 0/1 branch-and-bound solver
//! ([`cgra_solver::IlpModel`]) proves optimality of the objective
//! (earliest schedule, shortest wires) within the candidate space; a
//! CEGAR loop handles register congestion the linear model cannot see.

use super::exact_common::{add_solver_stats, edge_compatible, realise, PositionSpace};
use crate::engine::Budget;
use crate::ledger::Ledger;
use crate::mapper::{Family, MapConfig, MapError, Mapper};
use crate::mapping::Mapping;
use crate::telemetry::{Counter, Phase, Telemetry};
use cgra_arch::{Fabric, PeId, TopologyCache};
use cgra_ir::Dfg;
use cgra_solver::{Cmp, IlpModel, IlpResult, IlpVar, IncumbentHook};
use std::collections::HashMap;
use std::time::Duration;

/// The ILP mapper.
#[derive(Debug, Clone)]
pub struct IlpMapper {
    /// Candidate positions per op (keeps the dense simplex tractable).
    pub position_cap: usize,
    pub cegar_rounds: u32,
    pub window_iis: u32,
}

impl Default for IlpMapper {
    fn default() -> Self {
        IlpMapper {
            position_cap: 12,
            cegar_rounds: 8,
            window_iis: 1,
        }
    }
}

impl IlpMapper {
    #[allow(clippy::too_many_arguments)]
    fn try_ii(
        &self,
        dfg: &Dfg,
        fabric: &Fabric,
        ii: u32,
        topo: &TopologyCache,
        budget: &Budget,
        tele: &Telemetry,
        ledger: &Ledger,
    ) -> Result<Option<Mapping>, MapError> {
        tele.bump(Counter::IiAttempts);
        ledger.ii_attempt("ilp", ii);
        let _span = tele.span_ii(Phase::Map, ii);
        let space = PositionSpace::build(dfg, fabric, ii, self.window_iis, Some(self.position_cap));
        let mut blocked: Vec<Vec<(PeId, u32)>> = Vec::new();

        for _ in 0..self.cegar_rounds.max(1) {
            if budget.expired_now() {
                return Err(budget.error());
            }
            let mut model = IlpModel::new(false); // minimise
            let vars: Vec<Vec<IlpVar>> = space
                .positions
                .iter()
                .map(|ps| {
                    ps.iter()
                        .map(|&(pe, t)| {
                            // Objective: early issue + central placement.
                            let (r, c) = fabric.coords(pe);
                            let centre = (r as i32 - fabric.rows as i32 / 2).abs()
                                + (c as i32 - fabric.cols as i32 / 2).abs();
                            model.add_var(t as f64 + centre as f64 * 0.1)
                        })
                        .collect()
                })
                .collect();

            for (o, ovars) in vars.iter().enumerate() {
                if ovars.is_empty() {
                    return Ok(None);
                }
                let _ = o;
                model.exactly_one(ovars);
            }

            let mut by_slot: HashMap<(PeId, u32), Vec<IlpVar>> = HashMap::new();
            for (o, ps) in space.positions.iter().enumerate() {
                for (k, &(pe, t)) in ps.iter().enumerate() {
                    by_slot.entry((pe, t % ii)).or_default().push(vars[o][k]);
                }
            }
            for slot_vars in by_slot.values() {
                if slot_vars.len() > 1 {
                    model.at_most_one(slot_vars);
                }
            }

            // Edge reachability: x_src_a ≤ Σ compatible x_dst_b.
            for (_, e) in dfg.edges() {
                let src_op = dfg.op(e.src);
                for (ka, &a) in space.positions[e.src.index()].iter().enumerate() {
                    let mut row: Vec<(IlpVar, f64)> = vec![(vars[e.src.index()][ka], 1.0)];
                    for (kb, &b) in space.positions[e.dst.index()].iter().enumerate() {
                        if e.src == e.dst && ka != kb {
                            continue;
                        }
                        if edge_compatible(fabric, topo, ii, src_op, e.dist, a, b) {
                            row.push((vars[e.dst.index()][kb], -1.0));
                        }
                    }
                    model.add_constraint(&row, Cmp::Le, 0.0);
                }
            }

            // CEGAR blocking rows: a previously failed placement may
            // not be fully re-selected (sum of its choices ≤ n-1).
            for bl in &blocked {
                let mut row: Vec<(IlpVar, f64)> = Vec::new();
                for (o, &pos) in bl.iter().enumerate() {
                    if let Some(k) = space.positions[o].iter().position(|&p| p == pos) {
                        row.push((vars[o][k], 1.0));
                    }
                }
                model.add_constraint(&row, Cmp::Le, bl.len() as f64 - 1.0);
            }

            model.set_interrupt(budget.interrupt());
            // Surface the solver's anytime incumbents (improving
            // integral solutions) straight into the run ledger.
            {
                let led = ledger.clone();
                let tel = tele.clone();
                model.set_on_incumbent(IncumbentHook::new(move |obj| {
                    tel.bump(Counter::Incumbents);
                    led.incumbent("ilp", ii, obj);
                }));
            }
            let result = model.solve_with(cgra_solver::ilp::IlpConfig {
                time_limit: budget.remaining().unwrap_or(Duration::MAX),
                node_limit: 4_000,
            });
            add_solver_stats(tele, model.stats());
            let values = match result {
                IlpResult::Optimal { values, .. } => values,
                IlpResult::Infeasible => return Ok(None),
                IlpResult::Budget {
                    values: Some(v), ..
                } => v,
                IlpResult::Budget { values: None, .. } => return Err(budget.error()),
            };
            // Decode.
            let mut chosen: Vec<(PeId, u32)> = Vec::with_capacity(dfg.node_count());
            let mut var_index = 0usize;
            for ps in &space.positions {
                let mut pick = None;
                for (k, &pos) in ps.iter().enumerate() {
                    if values[var_index + k] {
                        pick = Some(pos);
                    }
                }
                var_index += ps.len();
                match pick {
                    Some(p) => chosen.push(p),
                    None => return Ok(None), // should not happen
                }
            }
            if let Some(m) = realise(dfg, fabric, topo, ii, &chosen, tele) {
                return Ok(Some(m));
            }
            blocked.push(chosen);
        }
        Ok(None)
    }
}

impl Mapper for IlpMapper {
    fn name(&self) -> &'static str {
        "ilp"
    }

    fn family(&self) -> Family {
        Family::ExactIlp
    }

    fn map(&self, dfg: &Dfg, fabric: &Fabric, cfg: &MapConfig) -> Result<Mapping, MapError> {
        dfg.validate()
            .map_err(|e| MapError::Unsupported(e.to_string()))?;
        let mii = super::ModuloList::mii(dfg, fabric);
        let (min_ii, max_ii) = cfg.ii_range(mii, fabric)?;
        let topo = cfg.topo_for(fabric);
        let budget = cfg.run_budget();
        for ii in min_ii..=max_ii {
            match self.try_ii(dfg, fabric, ii, &topo, &budget, &cfg.telemetry, &cfg.ledger) {
                Ok(Some(m)) => return Ok(m),
                Ok(None) => {}
                Err(e) => return Err(e),
            }
        }
        Err(MapError::Infeasible(format!(
            "ILP infeasible for every II in {min_ii}..={max_ii} (candidate window)"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;
    use cgra_arch::Topology;
    use cgra_ir::kernels;

    #[test]
    fn ilp_maps_tiny_kernels() {
        let f = Fabric::homogeneous(3, 3, Topology::Mesh);
        for dfg in [kernels::dot_product(), kernels::accumulate()] {
            let m = IlpMapper::default()
                .map(&dfg, &f, &MapConfig::fast())
                .unwrap_or_else(|e| panic!("{}: {e}", dfg.name));
            validate(&m, &dfg, &f).unwrap_or_else(|e| panic!("{}: {e}", dfg.name));
        }
    }

    #[test]
    fn ilp_objective_prefers_early_schedules() {
        let f = Fabric::homogeneous(3, 3, Topology::Mesh);
        let dfg = kernels::accumulate();
        let m = IlpMapper::default()
            .map(&dfg, &f, &MapConfig::fast())
            .unwrap();
        // Minimising Σt keeps the 3-op chain tight.
        assert!(m.schedule_len(&dfg, &f) <= 6);
    }
}
