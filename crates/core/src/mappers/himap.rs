//! HiMap-style hierarchical mapping (Wijerathne et al., DATE 2021).
//!
//! The scalability answer of the survey's §IV-B: instead of placing
//! every operation on the flat fabric, (1) cluster the DFG into
//! strongly-connected groups of bounded size, (2) place *clusters*
//! onto fabric regions via a coarse wirelength-driven assignment, and
//! (3) place each operation inside (or near) its cluster's region with
//! the usual window scan. The candidate-PE sets shrink from `O(PEs)`
//! to `O(region)`, which is what makes 16×16+ fabrics tractable. The
//! algorithm iterates — growing regions and II — until a valid mapping
//! is found (HiMap "terminates when a valid mapping is found").

use super::state::SchedState;
use crate::engine::Budget;
use crate::mapper::{Family, MapConfig, MapError, Mapper};
use crate::mapping::Mapping;
use crate::telemetry::{Counter, Phase, Telemetry};
use cgra_arch::{Fabric, PeId, TopologyCache};
use cgra_ir::{graph, Dfg, NodeId, OpKind};

/// The hierarchical mapper.
#[derive(Debug, Clone)]
pub struct HiMap {
    /// Target operations per cluster.
    pub cluster_size: usize,
    /// Candidate PEs considered inside a region.
    pub region_candidates: usize,
    pub window_iis: u32,
}

impl Default for HiMap {
    fn default() -> Self {
        HiMap {
            cluster_size: 6,
            region_candidates: 12,
            window_iis: 3,
        }
    }
}

/// Greedy affinity clustering: repeatedly merge the pair of clusters
/// with the most connecting edges, subject to the size bound.
pub(crate) fn cluster_dfg(dfg: &Dfg, max_size: usize) -> Vec<usize> {
    let n = dfg.node_count();
    let mut cluster: Vec<usize> = (0..n).collect();
    let mut size = vec![1usize; n];
    let find = |cluster: &Vec<usize>, mut x: usize| -> usize {
        while cluster[x] != x {
            x = cluster[x];
        }
        x
    };
    // Edge list sorted by nothing fancy; multiple passes merge greedily.
    let mut merged = true;
    while merged {
        merged = false;
        for (_, e) in dfg.edges() {
            let a = find(&cluster, e.src.index());
            let b = find(&cluster, e.dst.index());
            if a != b && size[a] + size[b] <= max_size {
                cluster[b] = a;
                size[a] += size[b];
                merged = true;
            }
        }
    }
    // Flatten to dense cluster ids.
    let mut dense = std::collections::HashMap::new();
    (0..n)
        .map(|i| {
            let root = find(&cluster, i);
            let next = dense.len();
            *dense.entry(root).or_insert(next)
        })
        .collect()
}

impl HiMap {
    /// Region centres: clusters laid out over the fabric by a
    /// cluster-level barycentric sweep.
    fn region_centres(&self, dfg: &Dfg, clusters: &[usize], fabric: &Fabric) -> Vec<(f64, f64)> {
        let num_clusters = clusters.iter().copied().max().map(|m| m + 1).unwrap_or(0);
        // Cluster adjacency weights.
        let mut weight = vec![vec![0u32; num_clusters]; num_clusters];
        for (_, e) in dfg.edges() {
            let (a, b) = (clusters[e.src.index()], clusters[e.dst.index()]);
            if a != b {
                weight[a][b] += 1;
                weight[b][a] += 1;
            }
        }
        // Initial grid layout, then a few barycentric relaxation sweeps.
        let side = (num_clusters as f64).sqrt().ceil() as usize;
        let mut pos: Vec<(f64, f64)> = (0..num_clusters)
            .map(|c| {
                (
                    (c % side) as f64 / side.max(1) as f64 * (fabric.cols - 1) as f64,
                    (c / side) as f64 / side.max(1) as f64 * (fabric.rows - 1) as f64,
                )
            })
            .collect();
        for _ in 0..8 {
            for c in 0..num_clusters {
                let (mut sx, mut sy, mut sw) = (0.0, 0.0, 0.0);
                for o in 0..num_clusters {
                    let w = weight[c][o] as f64;
                    if w > 0.0 {
                        sx += pos[o].0 * w;
                        sy += pos[o].1 * w;
                        sw += w;
                    }
                }
                if sw > 0.0 {
                    // Pull halfway towards the barycenter.
                    pos[c].0 = (pos[c].0 + sx / sw) / 2.0;
                    pos[c].1 = (pos[c].1 + sy / sw) / 2.0;
                }
            }
        }
        pos
    }

    #[allow(clippy::too_many_arguments)]
    fn try_ii(
        &self,
        dfg: &Dfg,
        fabric: &Fabric,
        ii: u32,
        topo: &TopologyCache,
        clusters: &[usize],
        centres: &[(f64, f64)],
        region_radius: u32,
        budget: &Budget,
        tele: &Telemetry,
    ) -> Option<Mapping> {
        tele.bump(Counter::IiAttempts);
        let _span = tele.span_ii(Phase::Map, ii);
        let mut state = SchedState::new(dfg, fabric, ii, topo, tele.clone());
        let lat = |op: OpKind| fabric.latency_of(op);
        let height = graph::height(dfg, &lat);
        let mut order: Vec<NodeId> = dfg.topo_order().ok()?;
        order.sort_by_key(|n| std::cmp::Reverse(height[n.index()]));

        for &n in &order {
            if budget.expired() {
                return None;
            }
            let est = state.est(n);
            let window_end = match state.lst(n) {
                Some(l) => l.min(est + self.window_iis * ii),
                None => est + self.window_iis * ii,
            };
            if window_end < est {
                return None;
            }
            // Candidate PEs: within the cluster's region first.
            let (cx, cy) = centres[clusters[n.index()]];
            let op = dfg.op(n);
            let mut cands: Vec<(u64, PeId)> = fabric
                .pe_ids()
                .filter(|&pe| fabric.supports(pe, op))
                .filter_map(|pe| {
                    let (r, c) = fabric.coords(pe);
                    let d2 = (r as f64 - cy).powi(2) + (c as f64 - cx).powi(2);
                    if d2.sqrt() <= region_radius as f64 {
                        Some(((d2 * 100.0) as u64, pe))
                    } else {
                        None
                    }
                })
                .collect();
            cands.sort();
            let mut placed = false;
            't: for t in est..=window_end {
                for &(_, pe) in cands.iter().take(self.region_candidates) {
                    if state.try_place(n, pe, t) {
                        placed = true;
                        break 't;
                    }
                }
            }
            if !placed {
                return None;
            }
        }
        state.into_mapping()
    }
}

impl Mapper for HiMap {
    fn name(&self) -> &'static str {
        "himap"
    }

    fn family(&self) -> Family {
        Family::Heuristic
    }

    fn map(&self, dfg: &Dfg, fabric: &Fabric, cfg: &MapConfig) -> Result<Mapping, MapError> {
        dfg.validate()
            .map_err(|e| MapError::Unsupported(e.to_string()))?;
        let mii = super::ModuloList::mii(dfg, fabric);
        let (min_ii, max_ii) = cfg.ii_range_for(dfg, mii, fabric)?;
        let topo = cfg.topo_for(fabric);
        let clusters = cluster_dfg(dfg, self.cluster_size);
        let centres = self.region_centres(dfg, &clusters, fabric);
        let budget = cfg.run_budget();
        let max_radius = (fabric.rows.max(fabric.cols)) as u32 + 1;

        // Iterate: grow the region radius, then the II — terminating
        // when a valid mapping is found.
        for ii in min_ii..=max_ii {
            cfg.ledger.ii_attempt("himap", ii);
            let mut radius = 2;
            while radius <= max_radius {
                if let Some(m) = self.try_ii(
                    dfg,
                    fabric,
                    ii,
                    &topo,
                    &clusters,
                    &centres,
                    radius,
                    &budget,
                    &cfg.telemetry,
                ) {
                    cfg.telemetry.bump(Counter::Incumbents);
                    cfg.ledger.incumbent("himap", ii, radius as f64);
                    return Ok(m);
                }
                if budget.expired_now() {
                    return Err(budget.error());
                }
                radius *= 2;
            }
        }
        Err(MapError::infeasible(format!(
            "no II in {min_ii}..={max_ii} admits a hierarchical mapping"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;
    use cgra_arch::Topology;
    use cgra_ir::kernels;

    #[test]
    fn clustering_respects_size_bound() {
        let dfg = kernels::sobel();
        let clusters = cluster_dfg(&dfg, 5);
        let mut counts = std::collections::HashMap::new();
        for &c in &clusters {
            *counts.entry(c).or_insert(0usize) += 1;
        }
        assert!(counts.values().all(|&c| c <= 5));
        // Clusters must cover all nodes.
        assert_eq!(clusters.len(), dfg.node_count());
    }

    #[test]
    fn maps_suite_on_4x4() {
        let f = Fabric::homogeneous(4, 4, Topology::Mesh);
        for dfg in kernels::suite() {
            let m = HiMap::default()
                .map(&dfg, &f, &MapConfig::fast())
                .unwrap_or_else(|e| panic!("{}: {e}", dfg.name));
            validate(&m, &dfg, &f).unwrap_or_else(|e| panic!("{}: {e}", dfg.name));
        }
    }

    #[test]
    fn scales_to_large_fabric_and_kernel() {
        // The scalability scenario: a 64-lane MAC tree on a 16x16 array.
        let f = Fabric::homogeneous(16, 16, Topology::Mesh);
        let dfg = kernels::unrolled_mac(24);
        let m = HiMap::default()
            .map(&dfg, &f, &MapConfig::default())
            .expect("hierarchical mapping should handle the large fabric");
        validate(&m, &dfg, &f).unwrap();
    }
}
