//! Constraint-programming mapping (Raffin, Wolinski, Charot &
//! Kuchcinski lineage — DASIP 2010, built on the JaCoP CP solver).
//!
//! One finite-domain variable per operation over its candidate-position
//! indices; binary compatibility constraints per edge (latency + hop
//! feasibility on the TEC) and pairwise FU-exclusivity constraints;
//! solved by the AC-3 + MRV engine of [`cgra_solver::CpModel`]. A
//! CEGAR loop blocks placements the router cannot realise.

use super::exact_common::{add_solver_stats, edge_compatible, realise, PositionSpace, SweepSpace};
use crate::engine::Budget;
use crate::ledger::Ledger;
use crate::mapper::{Family, MapConfig, MapError, Mapper};
use crate::mapping::Mapping;
use crate::telemetry::{Counter, Phase, Telemetry};
use cgra_arch::{Fabric, PeId, TopologyCache};
use cgra_ir::Dfg;
use cgra_solver::cp::CpConfig;
use cgra_solver::{CpModel, CpSolution, CpVar};
use std::sync::Arc;

/// The CP mapper.
#[derive(Debug, Clone)]
pub struct CpMapper {
    pub position_cap: Option<usize>,
    pub cegar_rounds: u32,
    pub window_iis: u32,
}

impl Default for CpMapper {
    fn default() -> Self {
        CpMapper {
            position_cap: Some(40),
            cegar_rounds: 12,
            window_iis: 2,
        }
    }
}

impl CpMapper {
    #[allow(clippy::too_many_arguments)]
    fn try_ii(
        &self,
        dfg: &Dfg,
        fabric: &Fabric,
        ii: u32,
        space: &PositionSpace,
        topo: &Arc<TopologyCache>,
        budget: &Budget,
        tele: &Telemetry,
        ledger: &Ledger,
    ) -> Result<Option<Mapping>, MapError> {
        tele.bump(Counter::IiAttempts);
        ledger.ii_attempt("cp", ii);
        let _span = tele.span_ii(Phase::Map, ii);
        let mut blocked: Vec<Vec<(PeId, u32)>> = Vec::new();

        for round in 0..self.cegar_rounds.max(1) {
            if budget.expired_now() {
                return Err(budget.error());
            }
            let mut model = CpModel::new();
            let vars: Vec<CpVar> = space
                .positions
                .iter()
                .map(|ps| model.add_var(ps.len().max(1) as u32))
                .collect();
            for (o, ps) in space.positions.iter().enumerate() {
                if ps.is_empty() {
                    return Ok(None);
                }
                let _ = o;
            }

            // Edge compatibility.
            for (_, e) in dfg.edges() {
                let src_op = dfg.op(e.src);
                let sp: Vec<(PeId, u32)> = space.positions[e.src.index()].clone();
                let dp: Vec<(PeId, u32)> = space.positions[e.dst.index()].clone();
                let fabric2 = fabric.clone();
                let topo2 = Arc::clone(topo);
                let dist = e.dist;
                if e.src == e.dst {
                    // Self edge: the position must be self-compatible.
                    for (k, &a) in sp.iter().enumerate() {
                        if !edge_compatible(fabric, topo, ii, src_op, dist, a, a) {
                            model.forbid(vars[e.src.index()], k as u32);
                        }
                    }
                } else {
                    model.binary_table(vars[e.src.index()], vars[e.dst.index()], move |a, b| {
                        edge_compatible(
                            &fabric2,
                            &topo2,
                            ii,
                            src_op,
                            dist,
                            sp[a as usize],
                            dp[b as usize],
                        )
                    });
                }
            }

            // FU exclusivity: pairwise (pe, slot) difference.
            for a in 0..vars.len() {
                for b in (a + 1)..vars.len() {
                    let pa: Vec<(PeId, u32)> = space.positions[a].clone();
                    let pb: Vec<(PeId, u32)> = space.positions[b].clone();
                    model.binary_table(vars[a], vars[b], move |x, y| {
                        let (pe1, t1) = pa[x as usize];
                        let (pe2, t2) = pb[y as usize];
                        pe1 != pe2 || t1 % ii != t2 % ii
                    });
                }
            }

            // CEGAR restart: this engine has no tuple no-goods, so each
            // failed placement is excluded by forbidding one pivot op's
            // value (a different pivot per round). This over-prunes —
            // solutions differing only elsewhere are lost — trading
            // completeness for progress; the ILP/SAT mappers keep exact
            // tuple blocking.
            for (round, bl) in blocked.iter().enumerate() {
                let pivot = round % vars.len();
                if let Some(k) = space.positions[pivot].iter().position(|&p| p == bl[pivot]) {
                    model.forbid(vars[pivot], k as u32);
                }
            }

            model.set_interrupt(budget.interrupt());
            let sol = model.solve_with(CpConfig {
                time_limit: budget.remaining().unwrap_or(std::time::Duration::MAX),
                node_limit: 500_000,
            });
            add_solver_stats(tele, model.stats());
            match sol {
                CpSolution::Unsat => return Ok(None),
                CpSolution::Unknown => return Err(budget.error()),
                CpSolution::Sat(values) => {
                    // Each model is an anytime incumbent placement;
                    // cost = CEGAR rounds spent reaching it.
                    tele.bump(Counter::Incumbents);
                    ledger.incumbent("cp", ii, round as f64);
                    let chosen: Vec<(PeId, u32)> = values
                        .iter()
                        .enumerate()
                        .map(|(o, &k)| space.positions[o][k as usize])
                        .collect();
                    if let Some(m) = realise(dfg, fabric, topo, ii, &chosen, tele) {
                        return Ok(Some(m));
                    }
                    blocked.push(chosen);
                }
            }
        }
        Ok(None)
    }
}

impl Mapper for CpMapper {
    fn name(&self) -> &'static str {
        "cp"
    }

    fn family(&self) -> Family {
        Family::ExactCsp
    }

    fn map(&self, dfg: &Dfg, fabric: &Fabric, cfg: &MapConfig) -> Result<Mapping, MapError> {
        dfg.validate()
            .map_err(|e| MapError::Unsupported(e.to_string()))?;
        let mii = super::ModuloList::mii(dfg, fabric);
        let (min_ii, max_ii) = cfg.ii_range_for(dfg, mii, fabric)?;
        let topo = cfg.topo_for(fabric);
        let budget = cfg.run_budget();
        // Incremental sweeps build the union space once and view each
        // II's lists out of it, so the II-independent structural work
        // (ASAP levels, capability filtering, window sorting) is not
        // redone per II.
        let iis: Vec<u32> = (min_ii..=max_ii).collect();
        let sweep = cfg
            .incremental
            .then(|| SweepSpace::build(dfg, fabric, &iis, self.window_iis, self.position_cap));
        for (k, &ii) in iis.iter().enumerate() {
            let space = match &sweep {
                Some(s) => s.per_ii(k),
                None => PositionSpace::build(dfg, fabric, ii, self.window_iis, self.position_cap),
            };
            match self.try_ii(
                dfg,
                fabric,
                ii,
                &space,
                &topo,
                &budget,
                &cfg.telemetry,
                &cfg.ledger,
            ) {
                Ok(Some(m)) => return Ok(m),
                Ok(None) => {}
                Err(e) => return Err(e),
            }
        }
        Err(MapError::infeasible(format!(
            "CP infeasible for every II in {min_ii}..={max_ii} (candidate window)"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;
    use cgra_arch::Topology;
    use cgra_ir::kernels;

    #[test]
    fn cp_maps_small_suite() {
        let f = Fabric::homogeneous(4, 4, Topology::Mesh);
        for dfg in kernels::small_suite() {
            let m = CpMapper::default()
                .map(&dfg, &f, &MapConfig::fast())
                .unwrap_or_else(|e| panic!("{}: {e}", dfg.name));
            validate(&m, &dfg, &f).unwrap_or_else(|e| panic!("{}: {e}", dfg.name));
        }
    }

    #[test]
    fn cp_handles_heterogeneous_fabric() {
        let f = Fabric::adres_like(4, 4);
        let dfg = kernels::dot_product();
        let m = CpMapper::default()
            .map(&dfg, &f, &MapConfig::fast())
            .unwrap();
        validate(&m, &dfg, &f).unwrap();
    }
}
