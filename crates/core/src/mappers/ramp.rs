//! RAMP-style resource-aware remapping (Dave et al., DAC 2018).
//!
//! RAMP's insight is that mapping failures are *local*: when an
//! operation cannot be placed, do not give up on the II — identify the
//! blocking resources, rip the offending neighbourhood up, and remap
//! with the failed operation given priority. Only when repeated
//! rip-up/remap rounds fail does the II increase.

use super::state::SchedState;
use crate::engine::Budget;
use crate::mapper::{Family, MapConfig, MapError, Mapper};
use crate::mapping::Mapping;
use crate::telemetry::{Counter, Phase, Telemetry};
use cgra_arch::{Fabric, TopologyCache};
use cgra_ir::{graph, Dfg, NodeId, OpKind};
use std::collections::VecDeque;

/// The failure-driven remapping mapper.
#[derive(Debug, Clone)]
pub struct Ramp {
    /// Rip-up/remap rounds per II before escalating.
    pub max_ripups: u32,
    /// Time window (in IIs) scanned per placement attempt.
    pub window_iis: u32,
}

impl Default for Ramp {
    fn default() -> Self {
        Ramp {
            max_ripups: 40,
            window_iis: 3,
        }
    }
}

impl Ramp {
    fn try_ii(
        &self,
        dfg: &Dfg,
        fabric: &Fabric,
        ii: u32,
        topo: &TopologyCache,
        budget: &Budget,
        tele: &Telemetry,
    ) -> Option<Mapping> {
        tele.bump(Counter::IiAttempts);
        let _span = tele.span_ii(Phase::Map, ii);
        let mut state = SchedState::new(dfg, fabric, ii, topo, tele.clone());
        let lat = |op: OpKind| fabric.latency_of(op);
        let height = graph::height(dfg, &lat);
        let mut order: Vec<NodeId> = dfg.topo_order().ok()?;
        order.sort_by_key(|n| std::cmp::Reverse(height[n.index()]));

        let mut queue: VecDeque<NodeId> = order.iter().copied().collect();
        let mut ripups = 0u32;

        while let Some(n) = queue.pop_front() {
            if budget.expired() {
                return None;
            }
            if state.placed(n).is_some() {
                continue;
            }
            let est = state.est(n);
            let window_end = match state.lst(n) {
                Some(l) => l.min(est + self.window_iis * ii),
                None => est + self.window_iis * ii,
            };
            let mut placed = false;
            if window_end >= est {
                't: for t in est..=window_end {
                    for pe in state.candidate_pes(n, 24) {
                        if state.try_place(n, pe, t) {
                            placed = true;
                            break 't;
                        }
                    }
                }
            }
            if placed {
                continue;
            }
            // Failure: rip up the most attractive neighbourhood and
            // retry with this op first.
            ripups += 1;
            if ripups > self.max_ripups {
                return None;
            }
            let victims = self.pick_victims(&state, n, est);
            if victims.is_empty() {
                return None; // nothing to rip up: genuinely stuck
            }
            for v in &victims {
                state.unplace(*v);
            }
            // Failed op first, then victims by priority.
            queue.push_front(n);
            let mut vs = victims;
            vs.sort_by_key(|v| std::cmp::Reverse(height[v.index()]));
            for v in vs {
                queue.push_back(v);
            }
        }
        state.into_mapping()
    }

    /// Victims: placed ops occupying the failed op's preferred PEs in
    /// its preferred time band.
    fn pick_victims(&self, state: &SchedState<'_>, n: NodeId, est: u32) -> Vec<NodeId> {
        let prefs = state.candidate_pes(n, 6);
        let band_lo = est;
        let band_hi = est + state.ii * self.window_iis;
        let mut victims = Vec::new();
        for (i, p) in state.place.iter().enumerate() {
            if let Some(p) = p {
                let same_slot_band = (band_lo..=band_hi).any(|t| t % state.ii == p.time % state.ii);
                if prefs.contains(&p.pe) && same_slot_band {
                    victims.push(NodeId(i as u32));
                }
            }
        }
        victims.truncate(4);
        victims
    }
}

impl Mapper for Ramp {
    fn name(&self) -> &'static str {
        "ramp"
    }

    fn family(&self) -> Family {
        Family::Heuristic
    }

    fn map(&self, dfg: &Dfg, fabric: &Fabric, cfg: &MapConfig) -> Result<Mapping, MapError> {
        dfg.validate()
            .map_err(|e| MapError::Unsupported(e.to_string()))?;
        let mii = super::ModuloList::mii(dfg, fabric);
        let (min_ii, max_ii) = cfg.ii_range_for(dfg, mii, fabric)?;
        let topo = cfg.topo_for(fabric);
        let budget = cfg.run_budget();
        for ii in min_ii..=max_ii {
            cfg.ledger.ii_attempt("ramp", ii);
            if let Some(m) = self.try_ii(dfg, fabric, ii, &topo, &budget, &cfg.telemetry) {
                cfg.telemetry.bump(Counter::Incumbents);
                cfg.ledger.incumbent("ramp", ii, ii as f64);
                return Ok(m);
            }
            if budget.expired_now() {
                return Err(budget.error());
            }
        }
        Err(MapError::infeasible(format!(
            "no II in {min_ii}..={max_ii} admits a schedule"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use crate::validate::validate;
    use cgra_arch::Topology;
    use cgra_ir::kernels;

    #[test]
    fn maps_suite_on_4x4() {
        let f = Fabric::homogeneous(4, 4, Topology::Mesh);
        for dfg in kernels::suite() {
            let m = Ramp::default()
                .map(&dfg, &f, &MapConfig::fast())
                .unwrap_or_else(|e| panic!("{}: {e}", dfg.name));
            validate(&m, &dfg, &f).unwrap_or_else(|e| panic!("{}: {e}", dfg.name));
        }
    }

    #[test]
    fn pressure_fabric_exercises_ripup() {
        // A tiny 2x2 fabric with rf 2: dense kernels force failures and
        // remapping rounds.
        let mut f = Fabric::homogeneous(2, 2, Topology::Mesh);
        f.rf_size = 2;
        let dfg = kernels::sad();
        let m = Ramp::default().map(&dfg, &f, &MapConfig::fast());
        if let Ok(m) = m {
            validate(&m, &dfg, &f).unwrap();
        }
        // Failing is acceptable on this adversarial fabric; panicking
        // or returning an invalid mapping is not.
    }

    #[test]
    fn ramp_ii_not_worse_than_much_larger() {
        let f = Fabric::homogeneous(4, 4, Topology::Mesh);
        let dfg = kernels::fir(4);
        let m = Ramp::default().map(&dfg, &f, &MapConfig::fast()).unwrap();
        let met = Metrics::of(&m, &dfg, &f);
        assert!(met.ii <= 4, "II {} unexpectedly large", met.ii);
    }
}
