//! Graph-drawing-based spatial mapping (Yoon et al., SPKM lineage,
//! IEEE TVLSI 2009).
//!
//! The DFG is drawn: each operation gets a 2-D coordinate — row from
//! its ASAP level (dependence depth flows down the array), column from
//! the barycenter of its predecessors' columns (minimising edge
//! length) — and the drawing is then legalised onto the fabric by
//! snapping every operation to the nearest free, capability-feasible
//! PE. Scheduling and routing reuse the spatial pipeline.

use super::spatial_greedy::finish_spatial;
use crate::mapper::{Family, MapConfig, MapError, Mapper};
use crate::mapping::Mapping;
use crate::telemetry::Counter;
use cgra_arch::{Fabric, PeId};
use cgra_ir::graph::{asap, unit_latency};
use cgra_ir::Dfg;

/// The graph-drawing spatial mapper.
#[derive(Debug, Clone, Default)]
pub struct GraphDrawing;

impl Mapper for GraphDrawing {
    fn name(&self) -> &'static str {
        "graph-drawing"
    }

    fn family(&self) -> Family {
        Family::Heuristic
    }

    fn is_spatial(&self) -> bool {
        true
    }

    fn map(&self, dfg: &Dfg, fabric: &Fabric, cfg: &MapConfig) -> Result<Mapping, MapError> {
        dfg.validate()
            .map_err(|e| MapError::Unsupported(e.to_string()))?;
        if dfg.node_count() > fabric.num_pes() {
            return Err(MapError::infeasible(format!(
                "{} ops > {} PEs",
                dfg.node_count(),
                fabric.num_pes()
            )));
        }
        let order = dfg
            .topo_order()
            .map_err(|n| MapError::Unsupported(format!("zero-distance cycle at {n}")))?;

        // 1. Draw: row = scaled ASAP level, column = predecessor
        //    barycenter (sources spread uniformly).
        let levels = asap(dfg, &unit_latency);
        let max_level = levels.iter().copied().max().unwrap_or(0).max(1);
        let n = dfg.node_count();
        let mut x = vec![0.0f64; n];
        let mut y = vec![0.0f64; n];
        let mut source_seen = 0usize;
        let source_total = order
            .iter()
            .filter(|&&id| dfg.in_edges(id).next().is_none())
            .count()
            .max(1);
        for &id in &order {
            y[id.index()] = levels[id.index()] as f64 / max_level as f64 * (fabric.rows - 1) as f64;
            let preds: Vec<f64> = dfg
                .in_edges(id)
                .filter(|(_, e)| e.dist == 0)
                .map(|(_, e)| x[e.src.index()])
                .collect();
            x[id.index()] = if preds.is_empty() {
                let col =
                    (source_seen as f64 + 0.5) / source_total as f64 * (fabric.cols - 1) as f64;
                source_seen += 1;
                col
            } else {
                preds.iter().sum::<f64>() / preds.len() as f64
            };
        }

        // 2. Legalise: snap to the nearest free feasible PE (drawing
        //    order = topological, so congested levels spill outward).
        let mut used = vec![false; fabric.num_pes()];
        let mut pes: Vec<PeId> = vec![PeId(0); n];
        for &id in &order {
            let op = dfg.op(id);
            let (tx, ty) = (x[id.index()], y[id.index()]);
            let best = fabric
                .pe_ids()
                .filter(|&pe| !used[pe.index()] && fabric.supports(pe, op))
                .min_by(|&a, &b| {
                    let da = dist2(fabric, a, tx, ty);
                    let db = dist2(fabric, b, tx, ty);
                    da.partial_cmp(&db).unwrap().then(a.0.cmp(&b.0))
                });
            match best {
                Some(pe) => {
                    used[pe.index()] = true;
                    pes[id.index()] = pe;
                }
                None => return Err(MapError::infeasible(format!("no free capable PE for {id}"))),
            }
        }

        // 3. Schedule + route.
        let topo = cfg.topo_for(fabric);
        let m = finish_spatial(dfg, fabric, &topo, &pes, true, &cfg.telemetry)
            .ok_or_else(|| MapError::infeasible("drawing legalised but unroutable"))?;
        cfg.telemetry.bump(Counter::Incumbents);
        cfg.ledger.incumbent("graph-drawing", m.ii, m.ii as f64);
        Ok(m)
    }
}

fn dist2(fabric: &Fabric, pe: PeId, tx: f64, ty: f64) -> f64 {
    let (r, c) = fabric.coords(pe);
    let dr = r as f64 - ty;
    let dc = c as f64 - tx;
    dr * dr + dc * dc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use crate::validate::validate_spatial;
    use cgra_arch::Topology;
    use cgra_ir::kernels;

    fn mesh6() -> Fabric {
        Fabric::homogeneous(6, 6, Topology::Mesh)
    }

    #[test]
    fn draws_and_maps_ilp_rich_kernels() {
        // Spatial mapping of wide kernels can legitimately fail on
        // register pressure (the survey's "mapping might fail"); the
        // contract is that at least the moderate kernels succeed and
        // nothing invalid is ever returned.
        let f = mesh6();
        let mut successes = 0;
        for dfg in [kernels::sobel(), kernels::yuv2rgb(), kernels::laplacian()] {
            match GraphDrawing.map(&dfg, &f, &MapConfig::fast()) {
                Ok(m) => {
                    validate_spatial(&m, &dfg, &f).unwrap_or_else(|e| panic!("{}: {e}", dfg.name));
                    successes += 1;
                }
                Err(e) => eprintln!("{}: {e}", dfg.name),
            }
        }
        assert!(successes >= 2, "only {successes}/3 spatial kernels mapped");
    }

    #[test]
    fn drawing_tends_to_shorten_wires_vs_greedy() {
        // Not a strict guarantee, but on the ILP-rich Sobel kernel the
        // level-based drawing should not be drastically worse than
        // greedy BFS placement; compare total route hops.
        let f = mesh6();
        let dfg = kernels::sobel();
        let gd = GraphDrawing.map(&dfg, &f, &MapConfig::fast()).unwrap();
        let sg = super::super::SpatialGreedy::default()
            .map(&dfg, &f, &MapConfig::fast())
            .unwrap();
        let gd_m = Metrics::of(&gd, &dfg, &f);
        let sg_m = Metrics::of(&sg, &dfg, &f);
        assert!(
            gd_m.route_hops as f64 <= sg_m.route_hops as f64 * 2.0 + 8.0,
            "drawing {} vs greedy {}",
            gd_m.route_hops,
            sg_m.route_hops
        );
    }

    #[test]
    fn rejects_oversized_kernels() {
        let dfg = kernels::unrolled_mac(12);
        let f = Fabric::homogeneous(3, 3, Topology::Mesh);
        assert!(GraphDrawing.map(&dfg, &f, &MapConfig::fast()).is_err());
    }
}
