//! Shared machinery for the meta-heuristic mappers (SA, GA, QEA).
//!
//! All three search the *binding* space (one PE per operation, the
//! chromosome of GenMap). A binding is evaluated by deriving a legal
//! schedule for it: Bellman-Ford over the dependence difference
//! constraints `t(dst) + II·d ≥ t(src) + lat + hops(pe_src, pe_dst)`,
//! followed by modulo-reservation repair (bump an op's lower bound
//! when its `(pe, slot)` collides and re-solve). The cost function
//! rewards feasibility first, then wirelength — routing is only
//! materialised for candidate champions.

use crate::mapping::{Mapping, Placement};
use crate::route::route_all_with;
use crate::telemetry::Telemetry;
use cgra_arch::{Fabric, PeId, TopologyCache};
use cgra_ir::Dfg;

/// Large penalty steps keep the cost lexicographic:
/// capability > schedulability > FU conflicts > wirelength.
const CAP_PENALTY: u64 = 1 << 40;
const SCHED_PENALTY: u64 = 1 << 30;
const CONFLICT_PENALTY: u64 = 1 << 20;

/// Evaluation of one binding at one II.
pub(crate) struct BindingEval {
    pub cost: u64,
    /// Legal issue times when the binding schedules cleanly (champions
    /// re-derive them via `legal_schedule`; kept for diagnostics).
    #[allow(dead_code)]
    pub times: Option<Vec<u32>>,
}

/// Bellman-Ford with per-node lower bounds. Returns `None` on a
/// positive cycle (recurrence unsatisfiable for this binding).
fn bf_times(
    dfg: &Dfg,
    fabric: &Fabric,
    topo: &TopologyCache,
    pes: &[PeId],
    ii: u32,
    lb: &[u32],
) -> Option<Vec<u32>> {
    let n = dfg.node_count();
    let mut t: Vec<i64> = lb.iter().map(|&x| x as i64).collect();
    for round in 0..=n {
        let mut changed = false;
        for (_, e) in dfg.edges() {
            let lat = fabric.latency_of(dfg.op(e.src)) as i64;
            let hops = topo.hops(pes[e.src.index()], pes[e.dst.index()]) as i64;
            let bound = t[e.src.index()] + lat + hops - (ii as i64) * e.dist as i64;
            if bound > t[e.dst.index()] {
                t[e.dst.index()] = bound;
                changed = true;
            }
        }
        if !changed {
            return Some(t.iter().map(|&x| x as u32).collect());
        }
        if round == n {
            return None;
        }
    }
    None
}

/// Derive a conflict-free schedule for `pes` at `ii`, bumping lower
/// bounds to resolve modulo-reservation collisions. `None` if the
/// binding cannot schedule.
pub(crate) fn legal_schedule(
    dfg: &Dfg,
    fabric: &Fabric,
    topo: &TopologyCache,
    pes: &[PeId],
    ii: u32,
) -> Option<Vec<u32>> {
    let n = dfg.node_count();
    // At II = 1 every cycle folds to the same slot: two operations on
    // one PE can never be separated, so duplicate PEs are hopeless.
    if ii == 1 {
        let mut seen = std::collections::HashSet::new();
        if !pes.iter().all(|pe| seen.insert(*pe)) {
            return None;
        }
    }
    let mut lb = vec![0u32; n];
    for _ in 0..(2 * n * ii as usize).max(16) {
        let times = bf_times(dfg, fabric, topo, pes, ii, &lb)?;
        // Find the first FU conflict.
        let mut seen: std::collections::HashMap<(PeId, u32), usize> =
            std::collections::HashMap::new();
        let mut conflict: Option<usize> = None;
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| (times[i], i));
        for &i in &order {
            let key = (pes[i], times[i] % ii);
            if let Some(&_first) = seen.get(&key) {
                conflict = Some(i);
                break;
            }
            seen.insert(key, i);
        }
        match conflict {
            None => return Some(times),
            Some(i) => {
                lb[i] = times[i] + 1;
                // Cap runaway schedules.
                if lb[i] > 16 * ii + 64 {
                    return None;
                }
            }
        }
    }
    None
}

/// Evaluate a binding: lexicographic cost plus (optionally) the legal
/// times for champions.
pub(crate) fn eval_binding(
    dfg: &Dfg,
    fabric: &Fabric,
    topo: &TopologyCache,
    pes: &[PeId],
    ii: u32,
) -> BindingEval {
    // Capability violations.
    let mut cost = 0u64;
    for (id, node) in dfg.nodes() {
        if !fabric.supports(pes[id.index()], node.op) {
            cost += CAP_PENALTY;
        }
    }
    if cost > 0 {
        return BindingEval { cost, times: None };
    }
    // Wirelength always contributes (ties broken by shorter wires).
    let wire: u64 = dfg
        .edges()
        .map(|(_, e)| topo.hops(pes[e.src.index()], pes[e.dst.index()]) as u64)
        .sum();
    match legal_schedule(dfg, fabric, topo, pes, ii) {
        Some(times) => {
            let makespan = times.iter().copied().max().unwrap_or(0) as u64;
            BindingEval {
                cost: wire + makespan,
                times: Some(times),
            }
        }
        None => {
            // Distinguish "recurrence infeasible" from "conflicts
            // unresolvable" only by magnitude; both need fixing. Count
            // the PE collisions so the search has a gradient.
            let base = bf_times(dfg, fabric, topo, pes, ii, &vec![0; dfg.node_count()]);
            let mut dups = 0u64;
            let mut seen = std::collections::HashMap::new();
            for pe in pes {
                *seen.entry(*pe).or_insert(0u64) += 1;
            }
            for c in seen.values() {
                dups += c.saturating_sub(1);
            }
            let penalty = if base.is_none() {
                SCHED_PENALTY
            } else {
                CONFLICT_PENALTY
            };
            BindingEval {
                cost: penalty + dups * (CONFLICT_PENALTY / 8) + wire,
                times: None,
            }
        }
    }
}

/// Materialise a mapping from a binding with legal times.
pub(crate) fn finish_binding(
    dfg: &Dfg,
    fabric: &Fabric,
    topo: &TopologyCache,
    pes: &[PeId],
    times: &[u32],
    ii: u32,
    tele: &Telemetry,
) -> Option<Mapping> {
    let place: Vec<Placement> = pes
        .iter()
        .zip(times)
        .map(|(&pe, &time)| Placement { pe, time })
        .collect();
    let routes = route_all_with(fabric, topo, dfg, &place, ii, 12, true, tele)?;
    Some(Mapping { ii, place, routes })
}

/// Random capability-feasible binding.
pub(crate) fn random_binding<R: rand::Rng>(dfg: &Dfg, fabric: &Fabric, rng: &mut R) -> Vec<PeId> {
    dfg.node_ids()
        .map(|n| {
            let op = dfg.op(n);
            let feasible: Vec<PeId> = fabric
                .pe_ids()
                .filter(|&pe| fabric.supports(pe, op))
                .collect();
            if feasible.is_empty() {
                PeId(0)
            } else {
                feasible[rng.random_range(0..feasible.len())]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgra_arch::Topology;
    use cgra_ir::kernels;
    use rand::SeedableRng;

    #[test]
    fn legal_schedule_resolves_conflicts() {
        let dfg = kernels::sad();
        let f = Fabric::homogeneous(2, 2, Topology::Mesh);
        let topo = TopologyCache::build(&f);
        // Everything on pe0/pe1 alternating: guaranteed FU collisions
        // that repair must resolve.
        let pes: Vec<PeId> = dfg.node_ids().map(|n| PeId((n.0 % 2) as u16)).collect();
        let ii = 4;
        if let Some(times) = legal_schedule(&dfg, &f, &topo, &pes, ii) {
            let mut seen = std::collections::HashSet::new();
            for (i, &t) in times.iter().enumerate() {
                assert!(seen.insert((pes[i], t % ii)), "collision at op {i}");
            }
        }
    }

    #[test]
    fn eval_ranks_feasible_below_infeasible() {
        let dfg = kernels::dot_product();
        let f = Fabric::homogeneous(4, 4, Topology::Mesh);
        let topo = TopologyCache::build(&f);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let good = random_binding(&dfg, &f, &mut rng);
        let eval_good = eval_binding(&dfg, &f, &topo, &good, 2);
        // An adversarial binding violating capability on a mul-less fabric.
        let mut f2 = f.clone();
        for c in &mut f2.cells {
            c.mul = false;
        }
        let eval_bad = eval_binding(&dfg, &f2, &topo, &good, 2);
        assert!(eval_bad.cost > eval_good.cost);
    }

    #[test]
    fn finish_binding_round_trips() {
        let dfg = kernels::accumulate();
        let f = Fabric::homogeneous(4, 4, Topology::Mesh);
        let topo = TopologyCache::build(&f);
        // A sane binding: chain on adjacent PEs.
        let pes = vec![PeId(0), PeId(1), PeId(2)];
        let ii = 2;
        let times = legal_schedule(&dfg, &f, &topo, &pes, ii).unwrap();
        let m = finish_binding(&dfg, &f, &topo, &pes, &times, ii, &Telemetry::off()).unwrap();
        crate::validate::validate(&m, &dfg, &f).unwrap();
    }
}
