//! The versioned `RunReport` artifact and its renderings.
//!
//! One [`RunReport`] captures everything needed to replay a mapping
//! run offline: the instance and architecture, a digest of the
//! [`MapConfig`], the final metrics (or typed failure), the counter
//! snapshot, and the run-ledger event timeline. Reports round-trip
//! through JSON files — written by `cgra-map`, `table1 --report`, and
//! loaded back by `cgra-report` for convergence tables and the
//! regression gate — and render as Chrome `trace_event` JSON
//! ([`chrome_trace`]) loadable in `chrome://tracing` / Perfetto.
//!
//! Loading hand-parses `serde_json::Value` (the vendored serde has no
//! typed deserialisation); unknown fields are ignored and missing
//! optional fields default, so version-1 readers tolerate later
//! additive changes.

use crate::diagnosis::Diagnosis;
use crate::ledger::LedgerEvent;
use crate::mapper::MapConfig;
use crate::metrics::{Metrics, UtilizationMap};
use crate::telemetry::{Histogram, Phase, SpanRecord, StatsSnapshot, Telemetry};
use serde::{Deserialize, Serialize, Value};
use std::path::Path;

/// Format version written into every report; bump on breaking changes.
pub const RUN_REPORT_VERSION: u32 = 1;

/// The reproducibility-relevant subset of [`MapConfig`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ConfigDigest {
    pub max_ii: u32,
    pub min_ii: u32,
    pub horizon_factor: u32,
    pub time_limit_ms: u64,
    pub seed: u64,
    pub effort: u32,
}

impl ConfigDigest {
    pub fn of(cfg: &MapConfig) -> ConfigDigest {
        ConfigDigest {
            max_ii: cfg.max_ii,
            min_ii: cfg.min_ii,
            horizon_factor: cfg.horizon_factor,
            time_limit_ms: cfg.time_limit.as_millis() as u64,
            seed: cfg.seed,
            effort: cfg.effort,
        }
    }

    fn from_json(v: &Value) -> ConfigDigest {
        let g = |k: &str| v.get(k).and_then(Value::as_u64).unwrap_or(0);
        ConfigDigest {
            max_ii: g("max_ii") as u32,
            min_ii: g("min_ii") as u32,
            horizon_factor: g("horizon_factor") as u32,
            time_limit_ms: g("time_limit_ms"),
            seed: g("seed"),
            effort: g("effort") as u32,
        }
    }
}

/// Percentile summary of one latency histogram (µs): one row per
/// pipeline phase that recorded spans, plus the per-route-call
/// distribution. Reports carry the summary rows, not the raw buckets.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Phase label (`"map"`, `"route"`, …) or `"route-call"` for the
    /// per-router-invocation distribution.
    pub phase: String,
    pub count: u64,
    pub p50_us: u64,
    pub p90_us: u64,
    pub p99_us: u64,
}

impl LatencySummary {
    fn of(phase: &str, h: &Histogram) -> LatencySummary {
        LatencySummary {
            phase: phase.to_string(),
            count: h.count(),
            p50_us: h.p50(),
            p90_us: h.p90(),
            p99_us: h.p99(),
        }
    }

    /// Summary rows for every non-empty histogram in `tele`, in
    /// [`Phase::ALL`] order, route-call distribution last. Empty when
    /// telemetry was disabled.
    pub fn rows_from(tele: &Telemetry) -> Vec<LatencySummary> {
        let mut rows = Vec::new();
        for p in Phase::ALL {
            if let Some(h) = tele.phase_histogram(p) {
                if !h.is_empty() {
                    rows.push(LatencySummary::of(p.label(), &h));
                }
            }
        }
        if let Some(h) = tele.route_histogram() {
            if !h.is_empty() {
                rows.push(LatencySummary::of("route-call", &h));
            }
        }
        rows
    }

    fn from_json(v: &Value) -> Option<LatencySummary> {
        let g = |k: &str| v.get(k).and_then(Value::as_u64).unwrap_or(0);
        Some(LatencySummary {
            phase: v.get("phase")?.as_str()?.to_string(),
            count: g("count"),
            p50_us: g("p50_us"),
            p90_us: g("p90_us"),
            p99_us: g("p99_us"),
        })
    }
}

/// One mapping run, replayable offline.
#[derive(Debug, Clone, Serialize)]
pub struct RunReport {
    pub version: u32,
    /// Kernel name.
    pub instance: String,
    /// Fabric name ("4x4 mesh", "4x4 adres", …).
    pub arch: String,
    pub mapper: String,
    pub config: ConfigDigest,
    /// Final metrics on success, `None` on failure.
    pub metrics: Option<Metrics>,
    /// Human-readable failure, `None` on success.
    pub error: Option<String>,
    /// Structured failure forensics (when the run failed with
    /// `--explain` on).
    pub diagnosis: Option<Diagnosis>,
    pub compile_ms: f64,
    /// Search-effort counters (when telemetry was enabled).
    pub snapshot: Option<StatsSnapshot>,
    /// The run-ledger timeline, sorted by `t_us`.
    pub events: Vec<LedgerEvent>,
    /// Ledger events lost to journal overflow.
    pub events_dropped: u64,
    /// Phase spans discarded once the span log hit its cap (the
    /// latency summaries below remain exact regardless).
    pub spans_dropped: u64,
    /// p50/p90/p99 latency rows per phase plus the route-call
    /// distribution (empty when telemetry was disabled).
    pub latency: Vec<LatencySummary>,
    /// Per-cell occupancy of the final mapping, for heatmap rendering
    /// (`None` on failure or when not measured).
    pub utilization: Option<UtilizationMap>,
}

impl RunReport {
    pub fn succeeded(&self) -> bool {
        self.metrics.is_some()
    }

    /// The achieved II, on success.
    pub fn ii(&self) -> Option<u32> {
        self.metrics.as_ref().map(|m| m.ii)
    }

    /// A filename-safe `instance__arch__mapper.json` stem unique per
    /// report key.
    pub fn file_stem(&self) -> String {
        let clean = |s: &str| {
            s.chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
                .collect::<String>()
        };
        format!(
            "{}__{}__{}",
            clean(&self.instance),
            clean(&self.arch),
            clean(&self.mapper)
        )
    }

    /// Write the report as pretty JSON.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        let json = serde_json::to_string_pretty(self).map_err(|e| e.to_string())?;
        std::fs::write(path, json + "\n").map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Read one report back. `Err` on unreadable files or on a version
    /// this reader does not understand.
    pub fn load(path: &Path) -> Result<RunReport, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let v = serde_json::from_str(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        RunReport::from_json(&v).ok_or_else(|| {
            format!(
                "{}: not a RunReport (missing or unsupported fields)",
                path.display()
            )
        })
    }

    /// Load every `*.json` RunReport in `dir`, sorted by file name.
    /// Non-report JSON files are skipped silently so a results
    /// directory can mix artifacts.
    pub fn load_dir(dir: &Path) -> Result<Vec<RunReport>, String> {
        let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
            .map_err(|e| format!("{}: {e}", dir.display()))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
            .collect();
        paths.sort();
        let mut reports = Vec::new();
        for p in paths {
            let Ok(text) = std::fs::read_to_string(&p) else {
                continue;
            };
            if let Ok(v) = serde_json::from_str(&text) {
                if let Some(r) = RunReport::from_json(&v) {
                    reports.push(r);
                }
            }
        }
        Ok(reports)
    }

    /// Hand-parse a report from its JSON tree.
    pub fn from_json(v: &Value) -> Option<RunReport> {
        let version = v.get("version")?.as_u64()? as u32;
        if version == 0 || version > RUN_REPORT_VERSION {
            return None;
        }
        let s = |k: &str| v.get(k).and_then(Value::as_str).map(str::to_string);
        let events = match v.get("events") {
            Some(Value::Array(items)) => items.iter().filter_map(LedgerEvent::from_json).collect(),
            _ => Vec::new(),
        };
        Some(RunReport {
            version,
            instance: s("instance")?,
            arch: s("arch")?,
            mapper: s("mapper")?,
            config: v
                .get("config")
                .map(ConfigDigest::from_json)
                .unwrap_or_else(|| ConfigDigest::of(&MapConfig::default())),
            metrics: v.get("metrics").and_then(metrics_from_json),
            error: s("error"),
            diagnosis: v.get("diagnosis").and_then(Diagnosis::from_json),
            compile_ms: v.get("compile_ms").and_then(Value::as_f64).unwrap_or(0.0),
            snapshot: v.get("snapshot").and_then(snapshot_from_json),
            events,
            events_dropped: v.get("events_dropped").and_then(Value::as_u64).unwrap_or(0),
            spans_dropped: v.get("spans_dropped").and_then(Value::as_u64).unwrap_or(0),
            latency: match v.get("latency") {
                Some(Value::Array(items)) => {
                    items.iter().filter_map(LatencySummary::from_json).collect()
                }
                _ => Vec::new(),
            },
            utilization: v.get("utilization").and_then(UtilizationMap::from_json),
        })
    }
}

fn metrics_from_json(v: &Value) -> Option<Metrics> {
    Some(Metrics {
        ii: v.get("ii")?.as_u64()? as u32,
        schedule_len: v.get("schedule_len").and_then(Value::as_u64).unwrap_or(0) as u32,
        fu_utilisation: v
            .get("fu_utilisation")
            .and_then(Value::as_f64)
            .unwrap_or(0.0),
        route_hops: v.get("route_hops").and_then(Value::as_u64).unwrap_or(0) as usize,
        register_cycles: v
            .get("register_cycles")
            .and_then(Value::as_u64)
            .unwrap_or(0) as usize,
        peak_registers: v.get("peak_registers").and_then(Value::as_u64).unwrap_or(0) as u32,
        throughput: v.get("throughput").and_then(Value::as_f64).unwrap_or(0.0),
    })
}

fn snapshot_from_json(v: &Value) -> Option<StatsSnapshot> {
    if !matches!(v, Value::Object(_)) {
        return None;
    }
    let g = |k: &str| v.get(k).and_then(Value::as_u64).unwrap_or(0);
    Some(StatsSnapshot {
        ii_attempts: g("ii_attempts"),
        placements_tried: g("placements_tried"),
        backtracks: g("backtracks"),
        routing_calls: g("routing_calls"),
        routing_failures: g("routing_failures"),
        moves_proposed: g("moves_proposed"),
        moves_accepted: g("moves_accepted"),
        nodes_expanded: g("nodes_expanded"),
        nodes_pruned: g("nodes_pruned"),
        solver_decisions: g("solver_decisions"),
        solver_propagations: g("solver_propagations"),
        solver_conflicts: g("solver_conflicts"),
        solver_restarts: g("solver_restarts"),
        solver_assumption_solves: g("solver_assumption_solves"),
        solver_learnt_kept: g("solver_learnt_kept"),
        solver_learnt_gcd: g("solver_learnt_gcd"),
        solver_warm_pivots_saved: g("solver_warm_pivots_saved"),
        cancellations: g("cancellations"),
        incumbents: g("incumbents"),
    })
}

/// Render phase spans plus ledger events as Chrome `trace_event` JSON
/// (the object form: `{"traceEvents":[…]}`), loadable in
/// `chrome://tracing` and Perfetto.
///
/// Track layout: tid 0 is the pipeline (one complete event per phase
/// span); each mapper appearing in the ledger gets its own tid, named
/// via `thread_name` metadata. `RaceStart`…`RaceWin`/`RaceLoss` pairs
/// become complete ("X") events spanning the mapper's racing window;
/// incumbents and II probes become instant ("i") events on the
/// mapper's track. Latency-summary rows (p50/p90/p99 per phase) land
/// as instant events on the pipeline track so percentiles survive even
/// when the span log was truncated.
pub fn chrome_trace(
    spans: &[SpanRecord],
    events: &[LedgerEvent],
    latency: &[LatencySummary],
) -> Value {
    let mut out: Vec<Value> = Vec::new();
    let pid = 1u64;

    out.push(serde_json::json!({
        "ph": "M", "name": "process_name", "pid": pid,
        "args": serde_json::json!({"name": "cgra-map"}),
    }));
    out.push(serde_json::json!({
        "ph": "M", "name": "thread_name", "pid": pid, "tid": 0,
        "args": serde_json::json!({"name": "pipeline"}),
    }));
    for s in spans {
        let name = match s.ii {
            Some(ii) => format!("{} ii={ii}", s.phase.label()),
            None => s.phase.label().to_string(),
        };
        out.push(serde_json::json!({
            "ph": "X", "name": name, "cat": "phase", "pid": pid, "tid": 0,
            "ts": s.start_us, "dur": s.dur_us,
        }));
    }

    // One track per mapper, in first-appearance order.
    let mut mappers: Vec<&str> = Vec::new();
    for e in events {
        if !mappers.contains(&e.kind.mapper()) {
            mappers.push(e.kind.mapper());
        }
    }
    let tid_of =
        |mapper: &str| -> u64 { mappers.iter().position(|m| *m == mapper).unwrap_or(0) as u64 + 1 };
    for m in &mappers {
        out.push(serde_json::json!({
            "ph": "M", "name": "thread_name", "pid": pid, "tid": tid_of(m),
            "args": serde_json::json!({"name": *m}),
        }));
    }

    let last_t = events.last().map(|e| e.t_us).unwrap_or(0);
    for (i, e) in events.iter().enumerate() {
        let tid = tid_of(e.kind.mapper());
        match &e.kind {
            crate::ledger::EventKind::RaceStart { mapper } => {
                // Span until this mapper's win/loss (or the last event).
                let end = events[i + 1..]
                    .iter()
                    .find(|later| {
                        later.kind.mapper() == mapper
                            && matches!(
                                later.kind,
                                crate::ledger::EventKind::RaceWin { .. }
                                    | crate::ledger::EventKind::RaceLoss { .. }
                            )
                    })
                    .map(|later| later.t_us)
                    .unwrap_or(last_t);
                let outcome = events[i + 1..]
                    .iter()
                    .find_map(|later| match &later.kind {
                        crate::ledger::EventKind::RaceWin { mapper: m, .. } if m == mapper => {
                            Some("win")
                        }
                        crate::ledger::EventKind::RaceLoss { mapper: m, .. } if m == mapper => {
                            Some("loss")
                        }
                        _ => None,
                    })
                    .unwrap_or("unresolved");
                out.push(serde_json::json!({
                    "ph": "X", "name": format!("race: {mapper}"), "cat": "race",
                    "pid": pid, "tid": tid,
                    "ts": e.t_us, "dur": end.saturating_sub(e.t_us).max(1),
                    "args": serde_json::json!({"outcome": outcome}),
                }));
            }
            crate::ledger::EventKind::Incumbent { ii, cost, .. } => {
                out.push(serde_json::json!({
                    "ph": "i", "s": "t", "name": format!("incumbent ii={ii}"),
                    "cat": "incumbent", "pid": pid, "tid": tid, "ts": e.t_us,
                    "args": serde_json::json!({"ii": *ii, "cost": *cost}),
                }));
            }
            crate::ledger::EventKind::RaceWin { ii, .. } => {
                out.push(serde_json::json!({
                    "ph": "i", "s": "g", "name": format!("race win ii={ii}"),
                    "cat": "race", "pid": pid, "tid": tid, "ts": e.t_us,
                    "args": serde_json::json!({"ii": *ii}),
                }));
            }
            crate::ledger::EventKind::RaceLoss { reason, .. } => {
                out.push(serde_json::json!({
                    "ph": "i", "s": "t", "name": "race loss",
                    "cat": "race", "pid": pid, "tid": tid, "ts": e.t_us,
                    "args": serde_json::json!({"reason": reason.clone()}),
                }));
            }
            crate::ledger::EventKind::BudgetExhausted { .. } => {
                out.push(serde_json::json!({
                    "ph": "i", "s": "t", "name": "budget exhausted",
                    "cat": "budget", "pid": pid, "tid": tid, "ts": e.t_us,
                }));
            }
            crate::ledger::EventKind::IiAttempt { ii, .. } => {
                out.push(serde_json::json!({
                    "ph": "i", "s": "t", "name": format!("try ii={ii}"),
                    "cat": "ii", "pid": pid, "tid": tid, "ts": e.t_us,
                    "args": serde_json::json!({"ii": *ii}),
                }));
            }
        }
    }

    let last_span_t = spans
        .iter()
        .map(|s| s.start_us + s.dur_us)
        .max()
        .unwrap_or(0);
    for row in latency {
        out.push(serde_json::json!({
            "ph": "i", "s": "g",
            "name": format!("latency {}: p50={}us p90={}us p99={}us",
                            row.phase, row.p50_us, row.p90_us, row.p99_us),
            "cat": "latency", "pid": pid, "tid": 0,
            "ts": last_span_t.max(last_t),
            "args": serde_json::json!({
                "phase": row.phase.clone(), "count": row.count,
                "p50_us": row.p50_us, "p90_us": row.p90_us, "p99_us": row.p99_us,
            }),
        }));
    }

    serde_json::json!({
        "traceEvents": out,
        "displayTimeUnit": "ms",
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::Ledger;
    use crate::telemetry::{Phase, Telemetry};

    fn sample_report() -> RunReport {
        let ledger = Ledger::enabled();
        ledger.race_start("sa");
        ledger.incumbent("sa", 2, 10.0);
        ledger.race_win("sa", 2);
        RunReport {
            version: RUN_REPORT_VERSION,
            instance: "dot_product".into(),
            arch: "4x4 mesh".into(),
            mapper: "sa".into(),
            config: ConfigDigest::of(&MapConfig::fast()),
            metrics: Some(Metrics {
                ii: 2,
                schedule_len: 6,
                fu_utilisation: 0.5,
                route_hops: 7,
                register_cycles: 9,
                peak_registers: 2,
                throughput: 0.5,
            }),
            error: None,
            diagnosis: Some(crate::diagnosis::Diagnosis::new(
                crate::diagnosis::ResourceClass::Capability,
                1,
                4,
                "sample",
            )),
            compile_ms: 12.5,
            snapshot: Some(StatsSnapshot {
                ii_attempts: 2,
                incumbents: 1,
                ..StatsSnapshot::default()
            }),
            events: ledger.events(),
            events_dropped: 0,
            spans_dropped: 3,
            latency: vec![LatencySummary {
                phase: "map".into(),
                count: 2,
                p50_us: 127,
                p90_us: 255,
                p99_us: 255,
            }],
            utilization: Some(crate::metrics::UtilizationMap {
                rows: 2,
                cols: 2,
                ii: 2,
                fu_used: vec![2, 1, 0, 0],
                reg_used: vec![0, 3, 0, 0],
            }),
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = sample_report();
        let v = serde_json::from_str(&serde_json::to_string(&r).unwrap()).unwrap();
        let back = RunReport::from_json(&v).expect("parses");
        assert_eq!(back.instance, r.instance);
        assert_eq!(back.arch, r.arch);
        assert_eq!(back.mapper, r.mapper);
        assert_eq!(back.config, r.config);
        assert_eq!(back.ii(), Some(2));
        assert_eq!(back.compile_ms, r.compile_ms);
        assert_eq!(back.snapshot.unwrap(), r.snapshot.unwrap());
        assert_eq!(back.events, r.events);
        assert!(back.succeeded());
        // Forensics fields round-trip exactly.
        assert_eq!(back.diagnosis, r.diagnosis);
        assert_eq!(back.spans_dropped, 3);
        assert_eq!(back.latency, r.latency);
        assert_eq!(back.utilization, r.utilization);
        // A version-1 report written before these fields existed still
        // parses, with defaults.
        let mut old = serde_json::from_str(&serde_json::to_string(&r).unwrap()).unwrap();
        if let Value::Object(fields) = &mut old {
            fields.retain(|(k, _)| {
                !matches!(
                    k.as_str(),
                    "diagnosis" | "spans_dropped" | "latency" | "utilization"
                )
            });
        }
        let legacy = RunReport::from_json(&old).expect("legacy reports still parse");
        assert_eq!(legacy.diagnosis, None);
        assert_eq!(legacy.spans_dropped, 0);
        assert!(legacy.latency.is_empty());
        assert_eq!(legacy.utilization, None);
    }

    #[test]
    fn save_load_dir_skips_foreign_json() {
        let dir = std::env::temp_dir().join("cgra-report-tests");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let r = sample_report();
        r.save(&dir.join(format!("{}.json", r.file_stem())))
            .unwrap();
        std::fs::write(dir.join("other.json"), "{\"not\": \"a report\"}").unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();
        let loaded = RunReport::load_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].mapper, "sa");
        let one = RunReport::load(&dir.join(format!("{}.json", r.file_stem()))).unwrap();
        assert_eq!(one.instance, "dot_product");
    }

    #[test]
    fn future_versions_are_rejected() {
        let mut r = sample_report();
        r.version = RUN_REPORT_VERSION + 1;
        let v = serde_json::from_str(&serde_json::to_string(&r).unwrap()).unwrap();
        assert!(RunReport::from_json(&v).is_none());
    }

    #[test]
    fn chrome_trace_has_a_track_per_mapper_and_instants() {
        let tele = Telemetry::enabled();
        {
            let _g = tele.span(Phase::Parse);
        }
        let ledger = Ledger::enabled();
        ledger.race_start("sa");
        ledger.race_start("ilp");
        ledger.incumbent("sa", 2, 10.0);
        ledger.race_win("sa", 2);
        ledger.race_loss("ilp", "cancelled");
        let trace = chrome_trace(
            &tele.spans(),
            &ledger.events(),
            &LatencySummary::rows_from(&tele),
        );
        let lat_events: Vec<&Value> = trace["traceEvents"]
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| e["cat"] == "latency")
            .collect();
        assert_eq!(lat_events.len(), 1, "one summary row for the parse span");
        assert_eq!(lat_events[0]["args"]["phase"], "parse");
        let events = trace.get("traceEvents").unwrap().as_array().unwrap();
        // Named tracks: pipeline + sa + ilp (plus the process name).
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e["ph"] == "M" && e["name"] == "thread_name")
            .map(|e| e["args"]["name"].as_str().unwrap())
            .collect();
        assert_eq!(names, vec!["pipeline", "sa", "ilp"]);
        // One complete event per racing mapper, with its outcome.
        let races: Vec<&Value> = events
            .iter()
            .filter(|e| e["ph"] == "X" && e["cat"] == "race")
            .collect();
        assert_eq!(races.len(), 2);
        assert_eq!(races[0]["args"]["outcome"], "win");
        assert_eq!(races[1]["args"]["outcome"], "loss");
        // The incumbent appears as an instant event on sa's track.
        let inc = events
            .iter()
            .find(|e| e["ph"] == "i" && e["cat"] == "incumbent")
            .expect("incumbent instant");
        assert_eq!(inc["tid"], races[0]["tid"]);
        // Every event carries the same pid (one process).
        assert!(events.iter().all(|e| e["pid"] == 1u64));
    }
}
