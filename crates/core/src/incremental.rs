//! Cross-solve state pool for incremental exact mappers.
//!
//! The SAT-MapIt lineage gets most of its speed from *reusing solver
//! state* between closely related queries: the II=k+1 solve starts from
//! the clauses (and learnt clauses) of the II=k solve instead of
//! re-encoding from scratch. [`IncrementalCtx`] is the carrier for that
//! state: a shared, type-erased pool keyed by mapper, fabric
//! fingerprint, kernel fingerprint, and the mapper's encoding knobs.
//!
//! ## Contract
//!
//! * An entry is only ever valid for the exact `(mapper, fabric_fp,
//!   kernel_fp, knobs)` it was stored under; any change to the fabric
//!   (via [`TopologyCache::fingerprint64`]) or the kernel (via
//!   [`kernel_fingerprint`]) produces a different key, so stale state
//!   is never replayed — it is simply never found.
//! * `take` removes the entry; the caller owns the state while solving
//!   and `put`s it back when done. Concurrent takers of the same key
//!   therefore never share a live solver: the second taker misses and
//!   falls back to a cold start.
//! * States are opaque (`Box<dyn Any + Send>`); a mapper that changes
//!   its encoding between versions should change its `knobs` word so
//!   old state is dropped on downcast failure rather than misused.
//!
//! [`TopologyCache::fingerprint64`]: cgra_arch::TopologyCache::fingerprint64

use std::any::Any;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use cgra_ir::Dfg;

/// Identity of one reusable solver context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IncrKey {
    /// Registry name of the owning mapper (`"sat"`, `"ilp"`, …).
    pub mapper: &'static str,
    /// [`TopologyCache::fingerprint64`](cgra_arch::TopologyCache::fingerprint64)
    /// of the fabric the state was built for.
    pub fabric_fp: u64,
    /// [`kernel_fingerprint`] of the DFG the state was built for.
    pub kernel_fp: u64,
    /// Digest of whatever encoding knobs affect clause/row layout
    /// (position caps, window sizes, AMO encoding, …).
    pub knobs: u64,
}

/// Shared pool of opaque solver states, cloneable by refcount so one
/// pool can ride inside `MapConfig` across per-II jobs and re-mapping
/// calls.
#[derive(Clone, Default)]
pub struct IncrementalCtx {
    pool: Arc<Mutex<HashMap<IncrKey, Box<dyn Any + Send>>>>,
}

impl IncrementalCtx {
    pub fn new() -> Self {
        Self::default()
    }

    /// Remove and return the state stored under `key`, if any.
    pub fn take(&self, key: &IncrKey) -> Option<Box<dyn Any + Send>> {
        self.pool.lock().ok()?.remove(key)
    }

    /// Remove the state under `key` and downcast it to `T`. State of
    /// the wrong type (an encoding change without a `knobs` bump) is
    /// dropped, forcing a clean cold start.
    pub fn take_as<T: 'static>(&self, key: &IncrKey) -> Option<Box<T>> {
        self.take(key).and_then(|b| b.downcast::<T>().ok())
    }

    /// Store `state` under `key`, replacing any previous entry.
    pub fn put(&self, key: IncrKey, state: Box<dyn Any + Send>) {
        if let Ok(mut pool) = self.pool.lock() {
            pool.insert(key, state);
        }
    }

    /// Number of pooled states (diagnostics only).
    pub fn len(&self) -> usize {
        self.pool.lock().map(|p| p.len()).unwrap_or(0)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for IncrementalCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "IncrementalCtx({} pooled)", self.len())
    }
}

/// Content hash of a kernel DFG: name, operations, and the full edge
/// list (ports, distances, initial values). Two DFGs with equal
/// fingerprints produce identical encodings in every exact mapper.
/// Stable within a process; not a cross-process format.
pub fn kernel_fingerprint(dfg: &Dfg) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    dfg.name.hash(&mut h);
    dfg.node_count().hash(&mut h);
    for (id, node) in dfg.nodes() {
        id.0.hash(&mut h);
        // OpKind carries no Hash impl (it can embed floats via edge
        // init values elsewhere); the Debug form is canonical enough
        // for an in-process cache key.
        format!("{:?}", node.op).hash(&mut h);
    }
    for (_, e) in dfg.edges() {
        (e.src.0, e.dst.0, e.port, e.dist).hash(&mut h);
        format!("{:?}", e.init).hash(&mut h);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgra_ir::kernels;

    #[test]
    fn take_removes_and_put_restores() {
        let ctx = IncrementalCtx::new();
        let key = IncrKey {
            mapper: "sat",
            fabric_fp: 1,
            kernel_fp: 2,
            knobs: 3,
        };
        assert!(ctx.take_as::<u32>(&key).is_none());
        ctx.put(key, Box::new(7u32));
        assert_eq!(ctx.len(), 1);
        assert_eq!(*ctx.take_as::<u32>(&key).unwrap(), 7);
        assert!(ctx.is_empty(), "take must remove the entry");
    }

    #[test]
    fn wrong_type_is_dropped_not_returned() {
        let ctx = IncrementalCtx::new();
        let key = IncrKey {
            mapper: "ilp",
            fabric_fp: 0,
            kernel_fp: 0,
            knobs: 0,
        };
        ctx.put(key, Box::new("stale".to_string()));
        assert!(ctx.take_as::<u64>(&key).is_none());
        assert!(ctx.is_empty(), "mismatched state must be dropped");
    }

    #[test]
    fn kernel_fingerprints_separate_kernels() {
        let a = kernel_fingerprint(&kernels::dot_product());
        let b = kernel_fingerprint(&kernels::fir(4));
        let a2 = kernel_fingerprint(&kernels::dot_product());
        assert_eq!(a, a2, "fingerprint must be deterministic");
        assert_ne!(a, b, "distinct kernels must not collide");
    }

    #[test]
    fn pool_is_shared_across_clones() {
        let ctx = IncrementalCtx::new();
        let clone = ctx.clone();
        let key = IncrKey {
            mapper: "sat",
            fabric_fp: 9,
            kernel_fp: 9,
            knobs: 9,
        };
        clone.put(key, Box::new(1u8));
        assert_eq!(*ctx.take_as::<u8>(&key).unwrap(), 1);
    }
}
