//! The CGRA fabric: cells, capabilities, topology, and latency model.

use cgra_ir::OpKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a processing element (row-major).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PeId(pub u16);

impl PeId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pe{}", self.0)
    }
}

/// What a cell's functional unit can do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CellCaps {
    /// Plain ALU operations (always true in practice).
    pub alu: bool,
    /// Multiplier-class operations (`mul`, `div`, `rem`).
    pub mul: bool,
    /// Memory port (`ld`, `st`).
    pub mem: bool,
    /// Stream I/O (`in`, `out`).
    pub io: bool,
}

impl CellCaps {
    pub const FULL: CellCaps = CellCaps {
        alu: true,
        mul: true,
        mem: true,
        io: true,
    };

    /// Can this cell issue `op`?
    pub fn supports(&self, op: OpKind) -> bool {
        match op {
            OpKind::Input(_) | OpKind::Output(_) => self.io,
            OpKind::Load | OpKind::Store => self.mem,
            _ if op.needs_multiplier() => self.mul,
            OpKind::Route => true, // routing through the FU is always possible
            _ => self.alu,
        }
    }
}

/// Operand-network topologies from the literature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Topology {
    /// 4-neighbour 2-D mesh (N/S/E/W) — ADRES/MorphoSys baseline.
    Mesh,
    /// Mesh plus the four diagonals (8 neighbours).
    MeshPlus,
    /// Mesh with wrap-around links.
    Torus,
    /// Mesh plus same-row/same-column one-hop bypass (distance-2 links),
    /// as in one-hop CGRAs.
    OneHop,
}

/// Where stream I/O operations may be placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IoPolicy {
    /// Only border cells have stream ports (common in tiled CGRAs).
    BorderOnly,
    /// Any cell may perform stream I/O.
    Anywhere,
}

/// Per-operation-class latencies (issue → result available), in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyModel {
    pub alu: u32,
    pub mul: u32,
    pub mem: u32,
}

impl Default for LatencyModel {
    fn default() -> Self {
        // The unit-latency model used by most mapping papers.
        LatencyModel {
            alu: 1,
            mul: 1,
            mem: 1,
        }
    }
}

impl LatencyModel {
    /// A model with a 2-cycle multiplier and memory port, stressing
    /// recurrence-limited kernels.
    pub fn multi_cycle() -> Self {
        LatencyModel {
            alu: 1,
            mul: 2,
            mem: 2,
        }
    }

    /// Latency of `op`.
    pub fn of(&self, op: OpKind) -> u32 {
        if op.needs_multiplier() {
            self.mul
        } else if op.is_memory() {
            self.mem
        } else {
            self.alu
        }
    }
}

/// A CGRA fabric description. See the crate docs for the model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fabric {
    pub name: String,
    pub rows: u16,
    pub cols: u16,
    /// Row-major per-cell capabilities.
    pub cells: Vec<CellCaps>,
    pub topology: Topology,
    /// Values each PE can hold per cycle (register-file capacity).
    pub rf_size: u32,
    /// Whether the register file rotates (one window per II slot, as in
    /// ADRES) — affects register allocation, not routing capacity.
    pub rf_rotating: bool,
    /// Configuration-memory depth: the maximum supported II.
    pub context_depth: u32,
    /// Dedicated hardware loop unit (survey §III-B2 "hardware loops").
    pub hw_loop: bool,
    /// Number of memory banks behind the memory ports.
    pub mem_banks: u32,
    pub io_policy: IoPolicy,
    pub latency: LatencyModel,
}

impl Fabric {
    /// A fully homogeneous fabric: every cell does everything, border
    /// I/O, RF of 8, context depth 32.
    pub fn homogeneous(rows: u16, cols: u16, topology: Topology) -> Self {
        let cells = vec![CellCaps::FULL; rows as usize * cols as usize];
        Fabric {
            name: format!("homogeneous_{rows}x{cols}"),
            rows,
            cols,
            cells,
            topology,
            rf_size: 8,
            rf_rotating: false,
            context_depth: 32,
            hw_loop: false,
            mem_banks: 4,
            io_policy: IoPolicy::Anywhere,
            latency: LatencyModel::default(),
        }
    }

    /// An ADRES-like heterogeneous fabric: memory ports on the first
    /// column, multipliers on even columns, I/O on the border, and a
    /// small 4-entry register file (the constrained design point).
    pub fn adres_like(rows: u16, cols: u16) -> Self {
        let mut f = Fabric::homogeneous(rows, cols, Topology::Mesh);
        f.name = format!("adres_like_{rows}x{cols}");
        f.rf_size = 4;
        f.io_policy = IoPolicy::BorderOnly;
        for r in 0..rows {
            for c in 0..cols {
                let idx = (r * cols + c) as usize;
                f.cells[idx] = CellCaps {
                    alu: true,
                    mul: c % 2 == 0,
                    mem: c == 0,
                    io: r == 0 || c == 0 || r == rows - 1 || c == cols - 1,
                };
            }
        }
        f
    }

    /// The minimal 4×4 mesh of the survey's Figure 2.
    pub fn figure2() -> Self {
        let mut f = Fabric::homogeneous(4, 4, Topology::Mesh);
        f.name = "figure2_4x4".into();
        f
    }

    #[inline]
    pub fn num_pes(&self) -> usize {
        self.rows as usize * self.cols as usize
    }

    pub fn pe_ids(&self) -> impl Iterator<Item = PeId> + '_ {
        (0..self.num_pes() as u16).map(PeId)
    }

    #[inline]
    pub fn pe_at(&self, row: u16, col: u16) -> PeId {
        PeId(row * self.cols + col)
    }

    #[inline]
    pub fn coords(&self, pe: PeId) -> (u16, u16) {
        (pe.0 / self.cols, pe.0 % self.cols)
    }

    #[inline]
    pub fn caps(&self, pe: PeId) -> CellCaps {
        self.cells[pe.index()]
    }

    /// Can `op` issue on `pe` (capabilities + I/O policy)?
    pub fn supports(&self, pe: PeId, op: OpKind) -> bool {
        if matches!(op, OpKind::Input(_) | OpKind::Output(_))
            && self.io_policy == IoPolicy::BorderOnly
            && !self.is_border(pe)
        {
            return false;
        }
        self.caps(pe).supports(op)
    }

    /// Is `pe` on the array border?
    pub fn is_border(&self, pe: PeId) -> bool {
        let (r, c) = self.coords(pe);
        r == 0 || c == 0 || r == self.rows - 1 || c == self.cols - 1
    }

    /// Operand-network neighbours of `pe` (excluding itself; "stay put"
    /// is always possible and not listed).
    pub fn neighbors(&self, pe: PeId) -> Vec<PeId> {
        let (r, c) = self.coords(pe);
        let (rows, cols) = (self.rows as i32, self.cols as i32);
        let (r, c) = (r as i32, c as i32);
        let mut offs: Vec<(i32, i32)> = vec![(-1, 0), (1, 0), (0, -1), (0, 1)];
        match self.topology {
            Topology::Mesh => {}
            Topology::MeshPlus => offs.extend([(-1, -1), (-1, 1), (1, -1), (1, 1)]),
            Topology::OneHop => offs.extend([(-2, 0), (2, 0), (0, -2), (0, 2)]),
            Topology::Torus => {}
        }
        let mut out = Vec::with_capacity(offs.len());
        for (dr, dc) in offs {
            let (mut nr, mut nc) = (r + dr, c + dc);
            if self.topology == Topology::Torus {
                nr = nr.rem_euclid(rows);
                nc = nc.rem_euclid(cols);
            }
            if nr >= 0 && nr < rows && nc >= 0 && nc < cols && (nr, nc) != (r, c) {
                let id = self.pe_at(nr as u16, nc as u16);
                if !out.contains(&id) {
                    out.push(id);
                }
            }
        }
        out
    }

    /// All-pairs hop distance over the operand network (BFS from every
    /// PE). `hop[a][b]` is the minimum number of move cycles between
    /// the two cells; used as the admissible routing lower bound by
    /// exact mappers and as the wirelength term of meta-heuristics.
    pub fn hop_distance(&self) -> Vec<Vec<u32>> {
        let n = self.num_pes();
        let mut dist = vec![vec![u32::MAX; n]; n];
        for (s, row) in dist.iter_mut().enumerate() {
            let mut q = std::collections::VecDeque::new();
            row[s] = 0;
            q.push_back(PeId(s as u16));
            while let Some(p) = q.pop_front() {
                let d = row[p.index()];
                for nb in self.neighbors(p) {
                    if row[nb.index()] == u32::MAX {
                        row[nb.index()] = d + 1;
                        q.push_back(nb);
                    }
                }
            }
        }
        dist
    }

    /// Total issue slots per cycle for each op class:
    /// `(alu, mul, mem, io)` — inputs to ResMII.
    pub fn slot_counts(&self) -> (usize, usize, usize, usize) {
        let mut alu = 0;
        let mut mul = 0;
        let mut mem = 0;
        let mut io = 0;
        for pe in self.pe_ids() {
            let c = self.caps(pe);
            if c.alu {
                alu += 1;
            }
            if c.mul {
                mul += 1;
            }
            if c.mem {
                mem += 1;
            }
            if c.io && (self.io_policy == IoPolicy::Anywhere || self.is_border(pe)) {
                io += 1;
            }
        }
        (alu, mul, mem, io)
    }

    /// Latency of `op` on this fabric.
    #[inline]
    pub fn latency_of(&self, op: OpKind) -> u32 {
        self.latency.of(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_neighbour_counts() {
        let f = Fabric::homogeneous(4, 4, Topology::Mesh);
        assert_eq!(f.neighbors(f.pe_at(0, 0)).len(), 2); // corner
        assert_eq!(f.neighbors(f.pe_at(0, 1)).len(), 3); // edge
        assert_eq!(f.neighbors(f.pe_at(1, 1)).len(), 4); // interior
    }

    #[test]
    fn meshplus_has_diagonals() {
        let f = Fabric::homogeneous(4, 4, Topology::MeshPlus);
        assert_eq!(f.neighbors(f.pe_at(1, 1)).len(), 8);
        assert_eq!(f.neighbors(f.pe_at(0, 0)).len(), 3);
    }

    #[test]
    fn torus_wraps() {
        let f = Fabric::homogeneous(4, 4, Topology::Torus);
        let n = f.neighbors(f.pe_at(0, 0));
        assert_eq!(n.len(), 4);
        assert!(n.contains(&f.pe_at(3, 0)));
        assert!(n.contains(&f.pe_at(0, 3)));
    }

    #[test]
    fn onehop_has_distance_two_links() {
        let f = Fabric::homogeneous(4, 4, Topology::OneHop);
        let n = f.neighbors(f.pe_at(0, 0));
        assert!(n.contains(&f.pe_at(2, 0)));
        assert!(n.contains(&f.pe_at(0, 2)));
    }

    #[test]
    fn hop_distance_is_manhattan_on_mesh() {
        let f = Fabric::homogeneous(4, 4, Topology::Mesh);
        let d = f.hop_distance();
        for a in f.pe_ids() {
            for b in f.pe_ids() {
                let (ar, ac) = f.coords(a);
                let (br, bc) = f.coords(b);
                let manhattan = (ar.abs_diff(br) + ac.abs_diff(bc)) as u32;
                assert_eq!(d[a.index()][b.index()], manhattan);
            }
        }
    }

    #[test]
    fn hop_distance_torus_shrinks() {
        let f = Fabric::homogeneous(4, 4, Topology::Torus);
        let d = f.hop_distance();
        assert_eq!(d[0][15], 2); // (0,0) -> (3,3) wraps both ways
    }

    #[test]
    fn adres_like_heterogeneity() {
        let f = Fabric::adres_like(4, 4);
        // Column 0 is memory-capable.
        assert!(f.supports(f.pe_at(1, 0), OpKind::Load));
        assert!(!f.supports(f.pe_at(1, 1), OpKind::Load));
        // Odd columns lack multipliers.
        assert!(!f.supports(f.pe_at(1, 1), OpKind::Mul));
        assert!(f.supports(f.pe_at(1, 2), OpKind::Mul));
        // Interior cells cannot do I/O under BorderOnly.
        assert!(!f.supports(f.pe_at(1, 1), OpKind::Input(0)));
        assert!(f.supports(f.pe_at(0, 1), OpKind::Input(0)));
    }

    #[test]
    fn slot_counts_reflect_caps() {
        let f = Fabric::adres_like(4, 4);
        let (alu, mul, mem, io) = f.slot_counts();
        assert_eq!(alu, 16);
        assert_eq!(mul, 8);
        assert_eq!(mem, 4);
        assert_eq!(io, 12); // border cells
    }

    #[test]
    fn latency_model_classes() {
        let m = LatencyModel::multi_cycle();
        assert_eq!(m.of(OpKind::Mul), 2);
        assert_eq!(m.of(OpKind::Load), 2);
        assert_eq!(m.of(OpKind::Add), 1);
    }

    #[test]
    fn route_is_supported_everywhere() {
        let f = Fabric::adres_like(4, 4);
        for pe in f.pe_ids() {
            assert!(f.supports(pe, OpKind::Route));
        }
    }
}
