//! ASCII rendering of a fabric — regenerates the survey's Figure 2
//! ("Illustration of a simple CGRA"): the mesh topology, per-cell
//! capabilities, and the configuration-register legend.

use crate::fabric::{Fabric, IoPolicy, Topology};

/// Render the fabric as ASCII art with a capability legend.
pub fn render_fabric(f: &Fabric) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{} — {}x{} {}, RF={}{}, contexts={}, banks={}{}",
        f.name,
        f.rows,
        f.cols,
        match f.topology {
            Topology::Mesh => "mesh",
            Topology::MeshPlus => "mesh+diagonals",
            Topology::Torus => "torus",
            Topology::OneHop => "one-hop mesh",
        },
        f.rf_size,
        if f.rf_rotating { " (rotating)" } else { "" },
        f.context_depth,
        f.mem_banks,
        if f.hw_loop { ", hw-loop" } else { "" },
    );
    let _ = writeln!(s);
    for r in 0..f.rows {
        // Cell row.
        for c in 0..f.cols {
            let pe = f.pe_at(r, c);
            let caps = f.caps(pe);
            let m = if caps.mul { 'M' } else { '.' };
            let d = if caps.mem { 'D' } else { '.' };
            let io = if caps.io && (f.io_policy == IoPolicy::Anywhere || f.is_border(pe)) {
                'I'
            } else {
                '.'
            };
            let _ = write!(s, "[{:>3} {m}{d}{io}]", pe.0);
            if c + 1 < f.cols {
                let _ = write!(s, "--");
            }
        }
        let _ = writeln!(s);
        // Vertical links.
        if r + 1 < f.rows {
            for c in 0..f.cols {
                let _ = write!(s, "    |    ");
                if c + 1 < f.cols {
                    let _ = write!(s, " ");
                }
            }
            let _ = writeln!(s);
        }
    }
    let _ = writeln!(s);
    let _ = writeln!(
        s,
        "legend: M = multiplier, D = data-memory port, I = stream I/O"
    );
    let _ = writeln!(
        s,
        "each cell: FU + {}-entry RF + configuration register (one context per II slot)",
        f.rf_size
    );
    s
}

/// Shade ramp for [`render_heatmap`], idle → saturated.
const SHADES: [char; 5] = ['.', '-', '+', '#', '@'];

/// Render a per-cell integer field (issue-slot occupancy, register
/// pressure) as an ASCII heatmap over the fabric grid, in the style of
/// [`render_fabric`]. `values` is indexed by PE id; `max` is the
/// full-scale value (e.g. the II for issue slots). Pure formatting —
/// deterministic for a given input.
pub fn render_heatmap(f: &Fabric, values: &[u32], max: u32, title: &str) -> String {
    render_heatmap_grid(&f.name, f.rows, f.cols, values, max, title)
}

/// [`render_heatmap`] without a [`Fabric`]: render from bare grid
/// dimensions (PE ids row-major). This is what report viewers use when
/// only the serialized heatmap data survives, not the fabric object.
pub fn render_heatmap_grid(
    name: &str,
    rows: u16,
    cols: u16,
    values: &[u32],
    max: u32,
    title: &str,
) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "{title} — {name} ({rows}x{cols}, full scale {max})");
    for r in 0..rows {
        for c in 0..cols {
            let v = values
                .get(r as usize * cols as usize + c as usize)
                .copied()
                .unwrap_or(0);
            let shade = if max == 0 || v == 0 {
                SHADES[0]
            } else {
                let idx = (v as u64 * (SHADES.len() as u64 - 1)).div_ceil(max as u64);
                SHADES[(idx as usize).min(SHADES.len() - 1)]
            };
            let _ = write!(s, "[{v:>3}{shade}]");
            if c + 1 < cols {
                let _ = write!(s, " ");
            }
        }
        let _ = writeln!(s);
    }
    let _ = writeln!(s, "legend: . idle  - light  + busy  # heavy  @ saturated");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::Fabric;

    #[test]
    fn heatmap_shades_scale_with_value() {
        let f = Fabric::homogeneous(2, 2, crate::fabric::Topology::Mesh);
        let r = render_heatmap(&f, &[0, 1, 2, 4], 4, "fu occupancy");
        assert!(r.contains("fu occupancy"));
        assert!(r.contains("[  0.]"), "{r}");
        assert!(r.contains("[  1-]"), "{r}");
        assert!(r.contains("[  2+]"), "{r}");
        assert!(r.contains("[  4@]"), "{r}");
        // Deterministic.
        assert_eq!(r, render_heatmap(&f, &[0, 1, 2, 4], 4, "fu occupancy"));
    }

    #[test]
    fn render_contains_all_cells() {
        let f = Fabric::figure2();
        let r = render_fabric(&f);
        for pe in f.pe_ids() {
            assert!(r.contains(&format!("{:>3}", pe.0)), "missing {pe}");
        }
        assert!(r.contains("legend"));
    }

    #[test]
    fn heterogeneous_render_marks_caps() {
        let f = Fabric::adres_like(4, 4);
        let r = render_fabric(&f);
        assert!(r.contains('M'));
        assert!(r.contains('D'));
        assert!(r.contains('I'));
    }
}
