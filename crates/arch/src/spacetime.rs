//! Space-time resource accounting: the modulo routing resource graph
//! (MRRG) occupancy model.
//!
//! A temporal mapping folds time modulo the initiation interval II.
//! Each PE exposes two resources per modulo slot:
//!
//! * an **issue slot** (`Fu`) of capacity 1 — at most one operation may
//!   issue on a PE in a given slot, and
//! * a **register track** (`Reg`) of capacity `rf_size` — values held
//!   on or routed through the PE occupy one register for each cycle
//!   they are present.
//!
//! A value held across `k ≥ II` cycles wraps around and occupies the
//! same slot multiple times — occupancy is therefore a *count*, not a
//! set, which is exactly how DRESC-lineage mappers model modulo
//! resource conflicts. Setting `ii` to the schedule horizon turns the
//! same structure into the plain time-extended CGRA (TEC).

use crate::fabric::{Fabric, PeId};
use serde::{Deserialize, Serialize};

/// Identifies one space-time resource (a PE at a modulo slot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ResourceKey {
    pub pe: PeId,
    /// Modulo time slot in `0..ii`.
    pub slot: u32,
}

/// Occupancy counters over an MRRG (or TEC when `ii` == horizon).
#[derive(Debug, Clone)]
pub struct SpaceTime {
    num_pes: usize,
    ii: u32,
    rf_size: u32,
    fu: Vec<u32>,
    reg: Vec<u32>,
}

impl SpaceTime {
    /// Empty occupancy for `fabric` at initiation interval `ii`.
    pub fn new(fabric: &Fabric, ii: u32) -> Self {
        assert!(ii >= 1, "II must be at least 1");
        let cells = fabric.num_pes() * ii as usize;
        SpaceTime {
            num_pes: fabric.num_pes(),
            ii,
            rf_size: fabric.rf_size,
            fu: vec![0; cells],
            reg: vec![0; cells],
        }
    }

    #[inline]
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// Modulo slot of absolute cycle `t`.
    #[inline]
    pub fn slot(&self, t: u32) -> u32 {
        t % self.ii
    }

    #[inline]
    fn idx(&self, pe: PeId, t: u32) -> usize {
        (t % self.ii) as usize * self.num_pes + pe.index()
    }

    /// Is the issue slot of `pe` free at absolute cycle `t`?
    #[inline]
    pub fn fu_free(&self, pe: PeId, t: u32) -> bool {
        self.fu[self.idx(pe, t)] == 0
    }

    /// Occupy the issue slot (counts over-subscription rather than
    /// failing, so meta-heuristics can walk through infeasible states).
    #[inline]
    pub fn occupy_fu(&mut self, pe: PeId, t: u32) {
        let i = self.idx(pe, t);
        self.fu[i] += 1;
    }

    #[inline]
    pub fn release_fu(&mut self, pe: PeId, t: u32) {
        let i = self.idx(pe, t);
        debug_assert!(self.fu[i] > 0, "releasing a free FU");
        self.fu[i] -= 1;
    }

    /// Current issue-slot occupancy count.
    #[inline]
    pub fn fu_count(&self, pe: PeId, t: u32) -> u32 {
        self.fu[self.idx(pe, t)]
    }

    /// Remaining register capacity of `pe` at cycle `t` (0 when full or
    /// over-subscribed).
    #[inline]
    pub fn reg_headroom(&self, pe: PeId, t: u32) -> u32 {
        self.rf_size.saturating_sub(self.reg[self.idx(pe, t)])
    }

    #[inline]
    pub fn occupy_reg(&mut self, pe: PeId, t: u32) {
        let i = self.idx(pe, t);
        self.reg[i] += 1;
    }

    #[inline]
    pub fn release_reg(&mut self, pe: PeId, t: u32) {
        let i = self.idx(pe, t);
        debug_assert!(self.reg[i] > 0, "releasing a free register");
        self.reg[i] -= 1;
    }

    #[inline]
    pub fn reg_count(&self, pe: PeId, t: u32) -> u32 {
        self.reg[self.idx(pe, t)]
    }

    /// Total over-subscription across all resources: zero iff the
    /// occupancy is feasible. The standard SA/PathFinder cost term.
    pub fn overuse(&self) -> u64 {
        let fu_over: u64 = self.fu.iter().map(|&c| c.saturating_sub(1) as u64).sum();
        let reg_over: u64 = self
            .reg
            .iter()
            .map(|&c| c.saturating_sub(self.rf_size) as u64)
            .sum();
        fu_over + reg_over
    }

    /// Fraction of issue slots in use (the utilisation metric of the
    /// Table I experiment reports).
    pub fn fu_utilisation(&self) -> f64 {
        let used = self.fu.iter().filter(|&&c| c > 0).count();
        used as f64 / self.fu.len() as f64
    }

    /// Clear all occupancy.
    pub fn clear(&mut self) {
        self.fu.fill(0);
        self.reg.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::{Fabric, Topology};

    fn st(ii: u32) -> SpaceTime {
        SpaceTime::new(&Fabric::homogeneous(2, 2, Topology::Mesh), ii)
    }

    #[test]
    fn modulo_folding() {
        let mut s = st(2);
        let pe = PeId(0);
        s.occupy_fu(pe, 0);
        assert!(!s.fu_free(pe, 0));
        assert!(!s.fu_free(pe, 2)); // same modulo slot
        assert!(s.fu_free(pe, 1));
        assert!(s.fu_free(pe, 3));
    }

    #[test]
    fn overuse_counts_excess() {
        let mut s = st(1);
        let pe = PeId(1);
        s.occupy_fu(pe, 0);
        assert_eq!(s.overuse(), 0);
        s.occupy_fu(pe, 5); // folds onto the same slot
        assert_eq!(s.overuse(), 1);
        s.release_fu(pe, 5);
        assert_eq!(s.overuse(), 0);
    }

    #[test]
    fn register_capacity() {
        let mut s = st(1); // rf_size = 8 from the homogeneous preset
        let pe = PeId(2);
        for _ in 0..8 {
            s.occupy_reg(pe, 0);
        }
        assert_eq!(s.reg_headroom(pe, 0), 0);
        assert_eq!(s.overuse(), 0);
        s.occupy_reg(pe, 0);
        assert_eq!(s.overuse(), 1);
    }

    #[test]
    fn long_hold_wraps_and_accumulates() {
        // A value held 3 cycles at II=2 occupies one slot twice.
        let mut s = st(2);
        let pe = PeId(0);
        for t in 10..13 {
            s.occupy_reg(pe, t);
        }
        assert_eq!(s.reg_count(pe, 0), 2); // cycles 10 and 12
        assert_eq!(s.reg_count(pe, 1), 1); // cycle 11
    }

    #[test]
    fn utilisation_and_clear() {
        let mut s = st(2);
        s.occupy_fu(PeId(0), 0);
        s.occupy_fu(PeId(1), 1);
        assert!((s.fu_utilisation() - 2.0 / 8.0).abs() < 1e-9);
        s.clear();
        assert_eq!(s.fu_utilisation(), 0.0);
        assert_eq!(s.overuse(), 0);
    }
}
