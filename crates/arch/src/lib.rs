//! # cgra-arch
//!
//! Parameterised CGRA fabric model: the architecture side of the
//! mapping problem.
//!
//! The survey's Figure 2 shows the minimal CGRA this crate models: a 2-D
//! array of reconfigurable cells (PEs), each with a functional unit, a
//! small register file, and a configuration register, connected by an
//! operand network (mesh by default). The model is deliberately the
//! common denominator of DRESC/ADRES, SPR, EPIMap, RAMP and HiMap-style
//! mappers:
//!
//! * every PE has one **issue slot per cycle** (capacity-1 `Fu`
//!   resource),
//! * every PE can **hold values** in its register file across cycles
//!   (capacity-`rf_size` `Reg` resource),
//! * values move one **hop per cycle** along the operand network,
//! * per-PE **capabilities** restrict which operations may issue where
//!   (multiplier columns, memory columns, border I/O),
//! * a mapping with initiation interval II folds time modulo II, turning
//!   the time-extended CGRA (TEC) into the **modulo routing resource
//!   graph** (MRRG).
//!
//! ```
//! use cgra_arch::{Fabric, Topology};
//!
//! let fabric = Fabric::homogeneous(4, 4, Topology::Mesh);
//! assert_eq!(fabric.num_pes(), 16);
//! let hops = fabric.hop_distance();
//! assert_eq!(hops[0][15], 6); // corner-to-corner Manhattan distance
//! ```

pub mod fabric;
pub mod render;
pub mod spacetime;
pub mod topo;

pub use fabric::{CellCaps, Fabric, IoPolicy, LatencyModel, PeId, Topology};
pub use render::{render_fabric, render_heatmap, render_heatmap_grid};
pub use spacetime::{ResourceKey, SpaceTime};
pub use topo::{HopMatrix, TopologyCache};
