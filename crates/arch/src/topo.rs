//! Precomputed topology cache: the P&R-side lookup tables that every
//! mapper needs, computed **once per fabric** instead of once per
//! search.
//!
//! `Fabric::neighbors` allocates a fresh `Vec` per call and
//! `Fabric::hop_distance` runs an all-pairs BFS — fine for one-off
//! queries, ruinous inside a router expanding thousands of nodes or a
//! racing portfolio where sixteen mappers each rebuild the same table.
//! PathFinder-lineage tools precompute these structures per device, not
//! per search; this module does the same for the fabric model:
//!
//! * **CSR adjacency** — `neighbors(pe)` returns a borrowed slice into
//!   one flat array (no allocation, cache-friendly iteration),
//! * **flat hop matrix** — `hops(a, b)` is one indexed load; a
//!   [`HopMatrix`] view keeps existing `hop[a][b]` call sites working,
//! * **adjacency bitset** — `adjacent(a, b)` is O(1), replacing the
//!   linear `neighbors(a).contains(&b)` scans,
//! * **border / capability bitsets** — `is_border` and `supports`
//!   without re-deriving coordinates or I/O policy.
//!
//! The cache carries a fingerprint of the topological inputs (grid
//! shape, topology, I/O policy, per-cell capabilities) so a shared
//! `Arc<TopologyCache>` can be verified against the fabric it is used
//! with via [`TopologyCache::matches`].
//!
//! ```
//! use cgra_arch::{Fabric, PeId, Topology, TopologyCache};
//!
//! let fabric = Fabric::homogeneous(4, 4, Topology::Mesh);
//! let topo = TopologyCache::build(&fabric);
//! assert_eq!(topo.hops(PeId(0), PeId(15)), 6);
//! assert!(topo.adjacent(PeId(0), PeId(1)));
//! assert!(!topo.adjacent(PeId(0), PeId(15)));
//! assert_eq!(topo.neighbors(PeId(5)).len(), fabric.neighbors(PeId(5)).len());
//! ```

use crate::fabric::{CellCaps, Fabric, IoPolicy, PeId, Topology};
use cgra_ir::OpKind;
use std::collections::VecDeque;
use std::ops::Index;

/// Distance value for unreachable PE pairs (mirrors
/// `Fabric::hop_distance`).
pub const UNREACHABLE: u32 = u32::MAX;

/// A fixed-size bitset over PE indices (or PE-pair indices).
#[derive(Debug, Clone, Default)]
struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    fn new(bits: usize) -> Self {
        BitSet {
            words: vec![0; bits.div_ceil(64)],
        }
    }

    #[inline]
    fn set(&mut self, bit: usize) {
        self.words[bit / 64] |= 1u64 << (bit % 64);
    }

    #[inline]
    fn get(&self, bit: usize) -> bool {
        (self.words[bit / 64] >> (bit % 64)) & 1 != 0
    }
}

/// The topological inputs the cache was derived from. Two fabrics with
/// equal fingerprints have identical adjacency, distance, border, and
/// capability tables.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Fingerprint {
    rows: u16,
    cols: u16,
    topology: Topology,
    io_policy: IoPolicy,
    cells: Vec<CellCaps>,
}

impl Fingerprint {
    fn of(fabric: &Fabric) -> Self {
        Fingerprint {
            rows: fabric.rows,
            cols: fabric.cols,
            topology: fabric.topology,
            io_policy: fabric.io_policy,
            cells: fabric.cells.clone(),
        }
    }
}

/// Borrowed row-major view of the flat hop matrix. Implements
/// `Index<usize>` returning a row slice so legacy `hop[a][b]` indexing
/// keeps compiling against the cache.
#[derive(Debug, Clone, Copy)]
pub struct HopMatrix<'a> {
    n: usize,
    data: &'a [u32],
}

impl Index<usize> for HopMatrix<'_> {
    type Output = [u32];

    #[inline]
    fn index(&self, row: usize) -> &[u32] {
        &self.data[row * self.n..(row + 1) * self.n]
    }
}

/// Immutable per-fabric lookup tables. Build once with
/// [`TopologyCache::build`], share via `Arc` across racing mappers and
/// per-II sweeps.
#[derive(Debug, Clone)]
pub struct TopologyCache {
    num_pes: usize,
    /// CSR offsets: neighbours of `pe` live in
    /// `adj[adj_off[pe] .. adj_off[pe + 1]]`.
    adj_off: Vec<u32>,
    adj: Vec<PeId>,
    /// Flat row-major `n × n` hop-distance matrix.
    hops: Vec<u32>,
    /// `n × n` adjacency bitset (symmetric).
    adj_bits: BitSet,
    /// Border cells.
    border: BitSet,
    /// Capability bitsets; `io` folds in the fabric's I/O policy.
    alu: BitSet,
    mul: BitSet,
    mem: BitSet,
    io: BitSet,
    fingerprint: Fingerprint,
}

impl TopologyCache {
    /// Derive all tables from `fabric`. Cost: one `neighbors` sweep to
    /// build the CSR plus an all-pairs BFS over it — paid once, after
    /// which every query is an indexed load.
    pub fn build(fabric: &Fabric) -> Self {
        let n = fabric.num_pes();

        // CSR adjacency from the naive per-PE neighbour lists.
        let mut adj_off = Vec::with_capacity(n + 1);
        let mut adj = Vec::new();
        let mut adj_bits = BitSet::new(n * n);
        adj_off.push(0u32);
        for pe in fabric.pe_ids() {
            for nb in fabric.neighbors(pe) {
                adj.push(nb);
                adj_bits.set(pe.index() * n + nb.index());
            }
            adj_off.push(adj.len() as u32);
        }

        // All-pairs BFS over the CSR (identical semantics to
        // `Fabric::hop_distance`, minus the per-expansion allocation).
        let mut hops = vec![UNREACHABLE; n * n];
        let mut queue = VecDeque::new();
        for s in 0..n {
            let row = s * n;
            hops[row + s] = 0;
            queue.push_back(s);
            while let Some(p) = queue.pop_front() {
                let d = hops[row + p];
                let (lo, hi) = (adj_off[p] as usize, adj_off[p + 1] as usize);
                for nb in &adj[lo..hi] {
                    let cell = &mut hops[row + nb.index()];
                    if *cell == UNREACHABLE {
                        *cell = d + 1;
                        queue.push_back(nb.index());
                    }
                }
            }
        }

        // Border and capability bitsets.
        let mut border = BitSet::new(n);
        let mut alu = BitSet::new(n);
        let mut mul = BitSet::new(n);
        let mut mem = BitSet::new(n);
        let mut io = BitSet::new(n);
        for pe in fabric.pe_ids() {
            let i = pe.index();
            if fabric.is_border(pe) {
                border.set(i);
            }
            let caps = fabric.caps(pe);
            if caps.alu {
                alu.set(i);
            }
            if caps.mul {
                mul.set(i);
            }
            if caps.mem {
                mem.set(i);
            }
            if caps.io && (fabric.io_policy == IoPolicy::Anywhere || fabric.is_border(pe)) {
                io.set(i);
            }
        }

        TopologyCache {
            num_pes: n,
            adj_off,
            adj,
            hops,
            adj_bits,
            border,
            alu,
            mul,
            mem,
            io,
            fingerprint: Fingerprint::of(fabric),
        }
    }

    #[inline]
    pub fn num_pes(&self) -> usize {
        self.num_pes
    }

    /// Operand-network neighbours of `pe` as a borrowed CSR slice —
    /// the allocation-free replacement for `Fabric::neighbors`.
    #[inline]
    pub fn neighbors(&self, pe: PeId) -> &[PeId] {
        let (lo, hi) = (
            self.adj_off[pe.index()] as usize,
            self.adj_off[pe.index() + 1] as usize,
        );
        &self.adj[lo..hi]
    }

    /// O(1) adjacency test (one network hop apart).
    #[inline]
    pub fn adjacent(&self, a: PeId, b: PeId) -> bool {
        self.adj_bits.get(a.index() * self.num_pes + b.index())
    }

    /// Minimum move cycles between two cells (O(1) lookup into the
    /// precomputed all-pairs table). [`UNREACHABLE`] when disconnected.
    #[inline]
    pub fn hops(&self, a: PeId, b: PeId) -> u32 {
        self.hops[a.index() * self.num_pes + b.index()]
    }

    /// Distances from `a` to every PE (one matrix row).
    #[inline]
    pub fn hop_row(&self, a: PeId) -> &[u32] {
        &self.hops[a.index() * self.num_pes..(a.index() + 1) * self.num_pes]
    }

    /// Row-indexable view of the whole matrix for `hop[a][b]`-style
    /// call sites.
    #[inline]
    pub fn hop_matrix(&self) -> HopMatrix<'_> {
        HopMatrix {
            n: self.num_pes,
            data: &self.hops,
        }
    }

    /// Is `pe` on the array border?
    #[inline]
    pub fn is_border(&self, pe: PeId) -> bool {
        self.border.get(pe.index())
    }

    /// Can `op` issue on `pe`? Bitset-backed equivalent of
    /// `Fabric::supports` (capabilities with the I/O policy folded in).
    #[inline]
    pub fn supports(&self, pe: PeId, op: OpKind) -> bool {
        let i = pe.index();
        match op {
            OpKind::Input(_) | OpKind::Output(_) => self.io.get(i),
            OpKind::Load | OpKind::Store => self.mem.get(i),
            OpKind::Route => true,
            _ if op.needs_multiplier() => self.mul.get(i),
            _ => self.alu.get(i),
        }
    }

    /// Does this cache describe `fabric`'s topology? Used by consumers
    /// handed a shared cache to decide between reuse and rebuild.
    pub fn matches(&self, fabric: &Fabric) -> bool {
        self.num_pes == fabric.num_pes() && self.fingerprint == Fingerprint::of(fabric)
    }

    /// A 64-bit digest of the topological fingerprint, for keying
    /// caches of derived state (e.g. incremental solver contexts) by
    /// fabric identity without holding the fabric itself. Stable within
    /// a process; not a cross-process format.
    pub fn fingerprint64(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.fingerprint.hash(&mut h);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOPOLOGIES: [Topology; 4] = [
        Topology::Mesh,
        Topology::MeshPlus,
        Topology::Torus,
        Topology::OneHop,
    ];

    #[test]
    fn csr_matches_naive_neighbors() {
        for topo in TOPOLOGIES {
            let f = Fabric::homogeneous(4, 5, topo);
            let cache = TopologyCache::build(&f);
            for pe in f.pe_ids() {
                assert_eq!(
                    cache.neighbors(pe),
                    f.neighbors(pe).as_slice(),
                    "{topo:?} {pe}"
                );
            }
        }
    }

    #[test]
    fn hop_matrix_matches_naive_bfs() {
        for topo in TOPOLOGIES {
            let f = Fabric::homogeneous(5, 4, topo);
            let cache = TopologyCache::build(&f);
            let naive = f.hop_distance();
            let hop = cache.hop_matrix();
            for a in f.pe_ids() {
                for b in f.pe_ids() {
                    assert_eq!(cache.hops(a, b), naive[a.index()][b.index()]);
                    assert_eq!(hop[a.index()][b.index()], naive[a.index()][b.index()]);
                }
            }
        }
    }

    #[test]
    fn adjacency_bitset_matches_contains() {
        for topo in TOPOLOGIES {
            let f = Fabric::homogeneous(4, 4, topo);
            let cache = TopologyCache::build(&f);
            for a in f.pe_ids() {
                let nbs = f.neighbors(a);
                for b in f.pe_ids() {
                    assert_eq!(cache.adjacent(a, b), nbs.contains(&b), "{topo:?} {a}->{b}");
                }
            }
        }
    }

    #[test]
    fn border_and_support_bitsets() {
        let f = Fabric::adres_like(4, 4);
        let cache = TopologyCache::build(&f);
        for pe in f.pe_ids() {
            assert_eq!(cache.is_border(pe), f.is_border(pe));
            for op in [
                OpKind::Add,
                OpKind::Mul,
                OpKind::Load,
                OpKind::Input(0),
                OpKind::Route,
            ] {
                assert_eq!(cache.supports(pe, op), f.supports(pe, op), "{pe} {op:?}");
            }
        }
    }

    #[test]
    fn fingerprint_detects_mismatch() {
        let f = Fabric::homogeneous(4, 4, Topology::Mesh);
        let cache = TopologyCache::build(&f);
        assert!(cache.matches(&f));
        // Non-topological knobs don't invalidate the cache.
        let mut same = f.clone();
        same.rf_size = 2;
        same.name = "renamed".into();
        assert!(cache.matches(&same));
        // Topology, shape, policy, or capability changes do.
        let other = Fabric::homogeneous(4, 4, Topology::Torus);
        assert!(!cache.matches(&other));
        let bigger = Fabric::homogeneous(4, 5, Topology::Mesh);
        assert!(!cache.matches(&bigger));
        let mut hetero = f.clone();
        hetero.cells[3].mul = false;
        assert!(!cache.matches(&hetero));
    }
}
