//! Property tests for [`TopologyCache`]: on random fabrics across all
//! four operand-network topologies, the cached CSR adjacency, the flat
//! hop matrix, and the capability bitsets must agree exactly with the
//! naive `Fabric` queries they replace (`neighbors()`, `hop_distance()`,
//! `supports()`, `is_border()`). Torus wraparound and OneHop skip links
//! are the interesting cases — their adjacency is not a plain
//! Manhattan-distance predicate.

use cgra_arch::{CellCaps, Fabric, IoPolicy, Topology, TopologyCache};
use cgra_ir::OpKind;
use proptest::prelude::*;

fn arb_topology() -> impl Strategy<Value = Topology> {
    (0u8..4).prop_map(|k| {
        [
            Topology::Mesh,
            Topology::MeshPlus,
            Topology::Torus,
            Topology::OneHop,
        ][k as usize]
    })
}

/// A random fabric: 2..=6 rows/cols, any topology, random per-cell
/// capabilities (ALU always on, as in real designs) and I/O policy.
fn arb_fabric() -> impl Strategy<Value = Fabric> {
    (
        2u16..=6,
        2u16..=6,
        arb_topology(),
        any::<u64>(),
        any::<bool>(),
    )
        .prop_map(|(rows, cols, topology, capseed, border_io)| {
            let mut f = Fabric::homogeneous(rows, cols, topology);
            let mut state = capseed | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            for cell in f.cells.iter_mut() {
                *cell = CellCaps {
                    alu: true,
                    mul: next() % 2 == 0,
                    mem: next() % 3 == 0,
                    io: next() % 2 == 0,
                };
            }
            if border_io {
                f.io_policy = IoPolicy::BorderOnly;
            }
            f
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64 })]

    #[test]
    fn csr_neighbors_match_naive(f in arb_fabric()) {
        let topo = TopologyCache::build(&f);
        prop_assert_eq!(topo.num_pes(), f.num_pes());
        for pe in f.pe_ids() {
            prop_assert_eq!(topo.neighbors(pe), f.neighbors(pe).as_slice());
        }
    }

    #[test]
    fn adjacency_bitset_matches_contains(f in arb_fabric()) {
        let topo = TopologyCache::build(&f);
        for a in f.pe_ids() {
            let naive = f.neighbors(a);
            for b in f.pe_ids() {
                prop_assert_eq!(
                    topo.adjacent(a, b),
                    naive.contains(&b),
                    "adjacency differs at {} -> {} on {:?}", a, b, f.topology
                );
            }
        }
    }

    #[test]
    fn hop_table_matches_naive_bfs(f in arb_fabric()) {
        let topo = TopologyCache::build(&f);
        let naive = f.hop_distance();
        for a in f.pe_ids() {
            for b in f.pe_ids() {
                prop_assert_eq!(
                    topo.hops(a, b),
                    naive[a.index()][b.index()],
                    "hops differ at {} -> {} on {:?}", a, b, f.topology
                );
            }
            // The borrowed row view agrees element-wise too.
            prop_assert_eq!(topo.hop_row(a), naive[a.index()].as_slice());
        }
    }

    #[test]
    fn support_and_border_bitsets_match_naive(f in arb_fabric()) {
        let topo = TopologyCache::build(&f);
        let probes = [
            OpKind::Add,
            OpKind::Mul,
            OpKind::Load,
            OpKind::Store,
            OpKind::Input(0),
            OpKind::Output(0),
            OpKind::Route,
        ];
        for pe in f.pe_ids() {
            prop_assert_eq!(topo.is_border(pe), f.is_border(pe));
            for op in probes {
                prop_assert_eq!(
                    topo.supports(pe, op),
                    f.supports(pe, op),
                    "supports({}, {:?}) differs", pe, op
                );
            }
        }
    }

    #[test]
    fn fingerprint_matches_only_the_source_fabric(f in arb_fabric()) {
        let topo = TopologyCache::build(&f);
        prop_assert!(topo.matches(&f));
        // A different shape must never fingerprint-match.
        let other = Fabric::homogeneous(f.rows + 1, f.cols, f.topology);
        prop_assert!(!topo.matches(&other));
    }

    #[test]
    fn torus_wraparound_is_adjacent(rows in 3u16..=6, cols in 3u16..=6) {
        let f = Fabric::homogeneous(rows, cols, Topology::Torus);
        let topo = TopologyCache::build(&f);
        // Opposite ends of row 0 wrap to each other.
        prop_assert!(topo.adjacent(f.pe_at(0, 0), f.pe_at(0, cols - 1)));
        prop_assert!(topo.adjacent(f.pe_at(0, 0), f.pe_at(rows - 1, 0)));
        prop_assert_eq!(topo.hops(f.pe_at(0, 0), f.pe_at(0, cols - 1)), 1);
    }

    #[test]
    fn onehop_skip_links_are_adjacent(rows in 3u16..=6, cols in 3u16..=6) {
        let f = Fabric::homogeneous(rows, cols, Topology::OneHop);
        let topo = TopologyCache::build(&f);
        // Distance-2 bypass along a row and a column.
        prop_assert!(topo.adjacent(f.pe_at(0, 0), f.pe_at(0, 2)));
        prop_assert!(topo.adjacent(f.pe_at(0, 0), f.pe_at(2, 0)));
        prop_assert_eq!(topo.hops(f.pe_at(0, 0), f.pe_at(0, 2)), 1);
        // But never diagonally.
        prop_assert!(!topo.adjacent(f.pe_at(0, 0), f.pe_at(1, 1)));
    }
}

/// Non-proptest sanity: the cache survives `PeId`s outside the fabric
/// when used through `matches` (a smaller fabric never matches).
#[test]
fn smaller_fabric_never_matches() {
    let f = Fabric::homogeneous(4, 4, Topology::Mesh);
    let topo = TopologyCache::build(&f);
    assert!(!topo.matches(&Fabric::homogeneous(3, 4, Topology::Mesh)));
    assert!(!topo.matches(&Fabric::homogeneous(4, 4, Topology::Torus)));
    assert!(!topo.matches(&Fabric::adres_like(4, 4)));
}
