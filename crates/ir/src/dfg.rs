//! The data-flow graph: nodes are operations, edges are data
//! dependencies, loop-carried edges carry an inter-iteration distance.
//!
//! A `Dfg` models one loop body (the mapping unit of virtually all the
//! surveyed temporal-mapping techniques). Edges with `dist == 0` are
//! intra-iteration dependencies and must form a DAG; edges with
//! `dist == d > 0` are recurrences: the consumer at iteration `i` reads
//! the value the producer computed at iteration `i - d` (with `init`
//! supplying the first `d` values).

use crate::op::{OpKind, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a node within its DFG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Index of an edge within its DFG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl NodeId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// An operation node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    pub op: OpKind,
    /// Optional human-readable name (variable name from the front-end).
    pub name: Option<String>,
}

/// A data dependency. `dst`'s operand `port` is produced by `src`,
/// `dist` iterations earlier.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    pub src: NodeId,
    pub dst: NodeId,
    /// Operand position at the destination (0-based).
    pub port: u8,
    /// Inter-iteration dependence distance; 0 for intra-iteration edges.
    pub dist: u32,
    /// Initial values for the first `dist` iterations; length == `dist`.
    pub init: Vec<Value>,
}

impl Edge {
    /// True if this edge is a loop-carried recurrence edge.
    #[inline]
    pub fn is_carried(&self) -> bool {
        self.dist > 0
    }
}

/// Structural errors detected by [`Dfg::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfgError {
    /// An operand port is not driven by any edge.
    MissingOperand { node: NodeId, port: u8 },
    /// An operand port is driven by more than one edge.
    DuplicateOperand { node: NodeId, port: u8 },
    /// An edge targets a port beyond the operation's arity.
    PortOutOfRange {
        edge: EdgeId,
        port: u8,
        arity: usize,
    },
    /// `init.len() != dist` on a carried edge.
    BadInit { edge: EdgeId, dist: u32, got: usize },
    /// The distance-0 subgraph contains a cycle (an unbreakable
    /// zero-delay recurrence).
    ZeroDistanceCycle { involving: NodeId },
    /// A pseudo-op (φ) survived into a mappable DFG.
    PseudoOp { node: NodeId },
    /// Edge endpoints out of bounds.
    DanglingEdge { edge: EdgeId },
}

impl fmt::Display for DfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfgError::MissingOperand { node, port } => {
                write!(f, "node {node} operand {port} is undriven")
            }
            DfgError::DuplicateOperand { node, port } => {
                write!(f, "node {node} operand {port} driven twice")
            }
            DfgError::PortOutOfRange { edge, port, arity } => {
                write!(
                    f,
                    "edge e{} targets port {port} but arity is {arity}",
                    edge.0
                )
            }
            DfgError::BadInit { edge, dist, got } => write!(
                f,
                "edge e{} has dist {dist} but {got} initial values",
                edge.0
            ),
            DfgError::ZeroDistanceCycle { involving } => {
                write!(f, "zero-distance cycle through {involving}")
            }
            DfgError::PseudoOp { node } => write!(f, "pseudo-op at {node} in mappable DFG"),
            DfgError::DanglingEdge { edge } => write!(f, "edge e{} has dangling endpoint", edge.0),
        }
    }
}

impl std::error::Error for DfgError {}

/// A data-flow graph for one loop body.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dfg {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    /// Optional kernel name for reports.
    pub name: String,
}

impl Dfg {
    /// Create an empty, named DFG.
    pub fn new(name: impl Into<String>) -> Self {
        Dfg {
            nodes: Vec::new(),
            edges: Vec::new(),
            name: name.into(),
        }
    }

    /// Append a node and return its id.
    pub fn add_node(&mut self, op: OpKind) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { op, name: None });
        id
    }

    /// Append a named node and return its id.
    pub fn add_named(&mut self, op: OpKind, name: impl Into<String>) -> NodeId {
        let id = self.add_node(op);
        self.nodes[id.index()].name = Some(name.into());
        id
    }

    /// Add an intra-iteration dependency `src -> dst.port`.
    pub fn connect(&mut self, src: NodeId, dst: NodeId, port: u8) -> EdgeId {
        self.add_edge(Edge {
            src,
            dst,
            port,
            dist: 0,
            init: Vec::new(),
        })
    }

    /// Add a loop-carried dependency with distance `dist` and the values
    /// used for the first `dist` iterations.
    pub fn connect_carried(
        &mut self,
        src: NodeId,
        dst: NodeId,
        port: u8,
        dist: u32,
        init: Vec<Value>,
    ) -> EdgeId {
        self.add_edge(Edge {
            src,
            dst,
            port,
            dist,
            init,
        })
    }

    /// Add a fully specified edge.
    pub fn add_edge(&mut self, e: Edge) -> EdgeId {
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(e);
        id
    }

    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    #[inline]
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    #[inline]
    pub fn op(&self, id: NodeId) -> OpKind {
        self.nodes[id.index()].op
    }

    #[inline]
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    #[inline]
    pub fn edge_mut(&mut self, id: EdgeId) -> &mut Edge {
        &mut self.edges[id.index()]
    }

    /// Iterate node ids in insertion order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterate edge ids in insertion order.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Iterate `(id, node)` pairs.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Iterate `(id, edge)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &Edge)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (EdgeId(i as u32), e))
    }

    /// Incoming edges of `n`, in arbitrary order.
    pub fn in_edges(&self, n: NodeId) -> impl Iterator<Item = (EdgeId, &Edge)> + '_ {
        self.edges().filter(move |(_, e)| e.dst == n)
    }

    /// Outgoing edges of `n`, in arbitrary order.
    pub fn out_edges(&self, n: NodeId) -> impl Iterator<Item = (EdgeId, &Edge)> + '_ {
        self.edges().filter(move |(_, e)| e.src == n)
    }

    /// The edge driving operand `port` of `n`, if any.
    pub fn operand(&self, n: NodeId, port: u8) -> Option<(EdgeId, &Edge)> {
        self.in_edges(n).find(|(_, e)| e.port == port)
    }

    /// Node ids of all operands of `n`, ordered by port. Panics if the
    /// DFG is not validated (missing operands).
    pub fn operand_nodes(&self, n: NodeId) -> Vec<NodeId> {
        let arity = self.op(n).ports().count();
        (0..arity as u8)
            .map(|p| self.operand(n, p).expect("validated DFG").1.src)
            .collect()
    }

    /// Count of nodes whose op needs a multiplier cell.
    pub fn multiplier_ops(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.op.needs_multiplier())
            .count()
    }

    /// Count of memory operations.
    pub fn memory_ops(&self) -> usize {
        self.nodes.iter().filter(|n| n.op.is_memory()).count()
    }

    /// Structural validation; returns the first error found.
    pub fn validate(&self) -> Result<(), DfgError> {
        self.validate_impl(true)
    }

    /// Like [`validate`](Self::validate) but tolerates φ nodes (used on
    /// CDFG blocks before if-conversion).
    pub fn validate_with_phis(&self) -> Result<(), DfgError> {
        self.validate_impl(false)
    }

    fn validate_impl(&self, reject_pseudo: bool) -> Result<(), DfgError> {
        let n = self.nodes.len();
        for (id, e) in self.edges() {
            if e.src.index() >= n || e.dst.index() >= n {
                return Err(DfgError::DanglingEdge { edge: id });
            }
            let arity = self.op(e.dst).ports().count();
            if (e.port as usize) >= arity {
                return Err(DfgError::PortOutOfRange {
                    edge: id,
                    port: e.port,
                    arity,
                });
            }
            if e.init.len() != e.dist as usize {
                return Err(DfgError::BadInit {
                    edge: id,
                    dist: e.dist,
                    got: e.init.len(),
                });
            }
        }
        // Operand coverage.
        for (id, node) in self.nodes() {
            if reject_pseudo && node.op.is_pseudo() {
                return Err(DfgError::PseudoOp { node: id });
            }
            let arity = node.op.ports().count();
            let mut seen = vec![0usize; arity];
            for (_, e) in self.in_edges(id) {
                seen[e.port as usize] += 1;
            }
            for (port, &c) in seen.iter().enumerate() {
                if c == 0 {
                    return Err(DfgError::MissingOperand {
                        node: id,
                        port: port as u8,
                    });
                }
                if c > 1 {
                    return Err(DfgError::DuplicateOperand {
                        node: id,
                        port: port as u8,
                    });
                }
            }
        }
        // Zero-distance acyclicity.
        if let Err(node) = self.topo_order() {
            return Err(DfgError::ZeroDistanceCycle { involving: node });
        }
        Ok(())
    }

    /// Topological order of the distance-0 subgraph (Kahn's algorithm).
    /// Returns `Err(node)` naming a node on a zero-distance cycle.
    pub fn topo_order(&self) -> Result<Vec<NodeId>, NodeId> {
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
        for e in &self.edges {
            if e.dist == 0 {
                indeg[e.dst.index()] += 1;
                succ[e.src.index()].push(e.dst.index());
            }
        }
        let mut stack: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(v) = stack.pop() {
            order.push(NodeId(v as u32));
            for &s in &succ[v] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    stack.push(s);
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            let bad = indeg.iter().position(|&d| d > 0).unwrap();
            Err(NodeId(bad as u32))
        }
    }

    /// Remove every node for which `keep` is false, dropping incident
    /// edges and compacting ids. Returns the old-id → new-id map.
    pub fn retain_nodes(&mut self, mut keep: impl FnMut(NodeId) -> bool) -> Vec<Option<NodeId>> {
        let n = self.nodes.len();
        let mut remap: Vec<Option<NodeId>> = vec![None; n];
        let mut new_nodes = Vec::with_capacity(n);
        for (i, slot) in remap.iter_mut().enumerate() {
            let id = NodeId(i as u32);
            if keep(id) {
                *slot = Some(NodeId(new_nodes.len() as u32));
                new_nodes.push(self.nodes[i].clone());
            }
        }
        self.nodes = new_nodes;
        self.edges
            .retain_mut(|e| match (remap[e.src.index()], remap[e.dst.index()]) {
                (Some(s), Some(d)) => {
                    e.src = s;
                    e.dst = d;
                    true
                }
                _ => false,
            });
        remap
    }

    /// Redirect every edge that currently reads `from` to read `to`
    /// instead (used by CSE/const-fold to splice out a node).
    pub fn replace_uses(&mut self, from: NodeId, to: NodeId) {
        for e in &mut self.edges {
            if e.src == from {
                e.src = to;
            }
        }
    }

    /// Pretty multi-line rendering for docs and debugging.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "dfg {} ({} nodes, {} edges)",
            self.name,
            self.node_count(),
            self.edge_count()
        );
        for (id, node) in self.nodes() {
            let ins: Vec<String> = (0..node.op.ports().count() as u8)
                .map(|p| match self.operand(id, p) {
                    Some((_, e)) if e.dist > 0 => format!("{}@-{}", e.src, e.dist),
                    Some((_, e)) => format!("{}", e.src),
                    None => "?".into(),
                })
                .collect();
            let name = node
                .name
                .as_deref()
                .map(|n| format!(" ; {n}"))
                .unwrap_or_default();
            let _ = writeln!(s, "  {id} = {} [{}]{}", node.op, ins.join(", "), name);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `acc = acc + a*b` — the paper's Fig. 3 dot-product body.
    fn dot() -> Dfg {
        let mut g = Dfg::new("dot");
        let a = g.add_node(OpKind::Input(0));
        let b = g.add_node(OpKind::Input(1));
        let m = g.add_node(OpKind::Mul);
        let s = g.add_node(OpKind::Add);
        let o = g.add_node(OpKind::Output(0));
        g.connect(a, m, 0);
        g.connect(b, m, 1);
        g.connect(m, s, 0);
        g.connect_carried(s, s, 1, 1, vec![0]);
        g.connect(s, o, 0);
        g
    }

    #[test]
    fn dot_product_validates() {
        let g = dot();
        assert!(g.validate().is_ok());
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.multiplier_ops(), 1);
    }

    #[test]
    fn missing_operand_detected() {
        let mut g = Dfg::new("t");
        let a = g.add_node(OpKind::Input(0));
        let s = g.add_node(OpKind::Add);
        g.connect(a, s, 0);
        assert_eq!(
            g.validate(),
            Err(DfgError::MissingOperand { node: s, port: 1 })
        );
    }

    #[test]
    fn duplicate_operand_detected() {
        let mut g = Dfg::new("t");
        let a = g.add_node(OpKind::Input(0));
        let n = g.add_node(OpKind::Not);
        g.connect(a, n, 0);
        g.connect(a, n, 0);
        assert_eq!(
            g.validate(),
            Err(DfgError::DuplicateOperand { node: n, port: 0 })
        );
    }

    #[test]
    fn zero_distance_cycle_detected() {
        let mut g = Dfg::new("t");
        let x = g.add_node(OpKind::Not);
        let y = g.add_node(OpKind::Not);
        g.connect(x, y, 0);
        g.connect(y, x, 0);
        assert!(matches!(
            g.validate(),
            Err(DfgError::ZeroDistanceCycle { .. })
        ));
    }

    #[test]
    fn carried_cycle_is_fine() {
        let g = dot();
        assert!(g.topo_order().is_ok());
    }

    #[test]
    fn bad_init_detected() {
        let mut g = Dfg::new("t");
        let a = g.add_node(OpKind::Input(0));
        let n = g.add_node(OpKind::Not);
        g.connect_carried(a, n, 0, 2, vec![1]); // needs 2 init values
        assert!(matches!(g.validate(), Err(DfgError::BadInit { .. })));
    }

    #[test]
    fn port_out_of_range_detected() {
        let mut g = Dfg::new("t");
        let a = g.add_node(OpKind::Input(0));
        let n = g.add_node(OpKind::Not);
        g.connect(a, n, 0);
        g.connect(a, n, 5);
        assert!(matches!(
            g.validate(),
            Err(DfgError::PortOutOfRange { port: 5, .. })
        ));
    }

    #[test]
    fn topo_order_respects_edges() {
        let g = dot();
        let order = g.topo_order().unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; g.node_count()];
            for (i, id) in order.iter().enumerate() {
                p[id.index()] = i;
            }
            p
        };
        for (_, e) in g.edges() {
            if e.dist == 0 {
                assert!(pos[e.src.index()] < pos[e.dst.index()]);
            }
        }
    }

    #[test]
    fn retain_nodes_remaps_edges() {
        // Drop node 4 (the Output sink) from the dot-product body.
        let mut g = dot();
        let remap = g.retain_nodes(|id| id.index() != 4);
        assert_eq!(g.node_count(), 4);
        assert_eq!(remap[4], None);
        assert_eq!(g.edge_count(), 4); // sink edge dropped with the node
        assert!(g
            .edges()
            .all(|(_, e)| e.dst.index() < 4 && e.src.index() < 4));
        // The remaining graph (sans the undriven-output check) still has
        // a consistent carried self-edge on the adder.
        let add = remap[3].unwrap();
        let carried = g.operand(add, 1).unwrap().1;
        assert_eq!(carried.src, add);
        assert_eq!(carried.dist, 1);
    }

    #[test]
    fn replace_uses_redirects() {
        let mut g = Dfg::new("t");
        let a = g.add_node(OpKind::Input(0));
        let b = g.add_node(OpKind::Input(1));
        let n = g.add_node(OpKind::Not);
        g.connect(a, n, 0);
        g.replace_uses(a, b);
        assert_eq!(g.operand(n, 0).unwrap().1.src, b);
    }

    #[test]
    fn render_contains_all_nodes() {
        let g = dot();
        let r = g.render();
        for (id, _) in g.nodes() {
            assert!(r.contains(&id.to_string()));
        }
    }
}
