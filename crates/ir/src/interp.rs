//! Reference interpreter for loop-body DFGs.
//!
//! Executes `iters` iterations of a DFG with loop-carried edges,
//! producing golden outputs against which the cycle-accurate CGRA
//! simulator (and therefore every mapper) is verified.

use crate::dfg::{Dfg, NodeId};
use crate::op::{OpKind, Value};

/// External state of a kernel run: per-stream inputs and a data memory.
#[derive(Debug, Clone, Default)]
pub struct Tape {
    /// `inputs[stream][iteration]`.
    pub inputs: Vec<Vec<Value>>,
    /// Flat data memory. Loads/stores wrap addresses into this range.
    pub memory: Vec<Value>,
}

impl Tape {
    /// A tape with `streams` input streams of length `iters`, filled by
    /// `f(stream, iter)`.
    pub fn generate(streams: usize, iters: usize, f: impl Fn(usize, usize) -> Value) -> Self {
        Tape {
            inputs: (0..streams)
                .map(|s| (0..iters).map(|i| f(s, i)).collect())
                .collect(),
            memory: Vec::new(),
        }
    }

    pub fn with_memory(mut self, memory: Vec<Value>) -> Self {
        self.memory = memory;
        self
    }
}

/// Result of interpreting a DFG loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    /// `outputs[stream][iteration]` for every `Output(stream)` node.
    pub outputs: Vec<Vec<Value>>,
    /// Final memory image.
    pub memory: Vec<Value>,
}

/// Interpretation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// The DFG failed structural validation.
    Invalid(String),
    /// An `Input(i)` stream is missing or too short.
    MissingInput { stream: u32, iteration: usize },
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::Invalid(m) => write!(f, "invalid DFG: {m}"),
            InterpError::MissingInput { stream, iteration } => {
                write!(
                    f,
                    "input stream {stream} has no value for iteration {iteration}"
                )
            }
        }
    }
}

impl std::error::Error for InterpError {}

/// The reference interpreter.
pub struct Interpreter;

impl Interpreter {
    /// Run `iters` iterations of `dfg` over `tape`.
    ///
    /// Within an iteration nodes evaluate in topological order of the
    /// distance-0 subgraph; memory operations therefore execute in a
    /// deterministic order that respects all explicit dependence edges.
    /// A consumer of a distance-`d` edge at iteration `i < d` reads
    /// `edge.init[i]`; from iteration `d` on it reads the producer's
    /// value of iteration `i - d`.
    pub fn run(dfg: &Dfg, iters: usize, tape: &Tape) -> Result<RunResult, InterpError> {
        dfg.validate()
            .map_err(|e| InterpError::Invalid(e.to_string()))?;
        let order = dfg.topo_order().expect("validated");
        let n = dfg.node_count();

        let max_dist = dfg.edges().map(|(_, e)| e.dist as usize).max().unwrap_or(0);
        let ring = max_dist + 1;
        // history[node][iter % ring]
        let mut history = vec![vec![0 as Value; ring]; n];
        let mut memory = tape.memory.clone();

        let out_streams = dfg
            .node_ids()
            .filter_map(|id| match dfg.op(id) {
                OpKind::Output(s) => Some(s as usize + 1),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        let mut outputs = vec![Vec::with_capacity(iters); out_streams];

        for it in 0..iters {
            for &id in &order {
                let op = dfg.op(id);
                let arity = op.ports().count();
                let mut operands = [0 as Value; 3];
                for p in 0..arity as u8 {
                    let (_, e) = dfg.operand(id, p).expect("validated");
                    operands[p as usize] = if e.dist == 0 {
                        history[e.src.index()][it % ring]
                    } else if it < e.dist as usize {
                        e.init[it]
                    } else {
                        history[e.src.index()][(it - e.dist as usize) % ring]
                    };
                }
                let operands = &operands[..arity];
                let v = match op {
                    OpKind::Input(s) => *tape
                        .inputs
                        .get(s as usize)
                        .and_then(|st| st.get(it))
                        .ok_or(InterpError::MissingInput {
                            stream: s,
                            iteration: it,
                        })?,
                    OpKind::Output(s) => {
                        outputs[s as usize].push(operands[0]);
                        operands[0]
                    }
                    OpKind::Load => {
                        let len = memory.len().max(1) as Value;
                        let addr = operands[0].rem_euclid(len) as usize;
                        memory.get(addr).copied().unwrap_or(0)
                    }
                    OpKind::Store => {
                        let len = memory.len().max(1) as Value;
                        let addr = operands[0].rem_euclid(len) as usize;
                        if addr < memory.len() {
                            memory[addr] = operands[1];
                        }
                        operands[1]
                    }
                    other => other.eval(operands),
                };
                history[id.index()][it % ring] = v;
            }
        }
        Ok(RunResult { outputs, memory })
    }

    /// Final value of a specific node after `iters` iterations
    /// (convenience for tests).
    pub fn final_value(
        dfg: &Dfg,
        node: NodeId,
        iters: usize,
        tape: &Tape,
    ) -> Result<Value, InterpError> {
        // Re-run, tracking just the requested node's last value.
        let mut probe = dfg.clone();
        let stream = probe
            .node_ids()
            .filter_map(|id| match probe.op(id) {
                OpKind::Output(s) => Some(s + 1),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        let out = probe.add_node(OpKind::Output(stream));
        probe.connect(node, out, 0);
        let r = Self::run(&probe, iters, tape)?;
        Ok(*r.outputs[stream as usize].last().expect("iters >= 1"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;

    #[test]
    fn dot_product_accumulates() {
        let g = kernels::dot_product();
        let tape = Tape::generate(2, 4, |s, i| if s == 0 { (i + 1) as Value } else { 2 });
        let r = Interpreter::run(&g, 4, &tape).unwrap();
        // acc after each iter: 2, 6, 12, 20
        assert_eq!(r.outputs[0], vec![2, 6, 12, 20]);
    }

    #[test]
    fn carried_distance_two_uses_init() {
        use crate::dfg::Dfg;
        use crate::op::OpKind;
        // fib-like: x[i] = x[i-1] + x[i-2], init 1, 1 — classic distance mix.
        let mut g = Dfg::new("fib");
        let add = g.add_node(OpKind::Add);
        g.connect_carried(add, add, 0, 1, vec![1]);
        g.connect_carried(add, add, 1, 2, vec![1, 1]);
        let o = g.add_node(OpKind::Output(0));
        g.connect(add, o, 0);
        g.validate().unwrap();
        let r = Interpreter::run(&g, 6, &Tape::default()).unwrap();
        // i=0: init(1)+init(1)=2; i=1: x0(2)+init(1)=3; i=2: 3+2=5; ...
        assert_eq!(r.outputs[0], vec![2, 3, 5, 8, 13, 21]);
    }

    #[test]
    fn memory_store_then_load() {
        use crate::dfg::Dfg;
        use crate::op::OpKind;
        // mem[i] = i*i, then y = mem[i] (same iteration, dependence via edge)
        let mut g = Dfg::new("sq");
        let i = g.add_node(OpKind::Input(0));
        let sq = g.add_node(OpKind::Mul);
        g.connect(i, sq, 0);
        g.connect(i, sq, 1);
        let st = g.add_node(OpKind::Store);
        g.connect(i, st, 0);
        g.connect(sq, st, 1);
        // Load reads the address fed through the store's result path to
        // order it after the store: ld(addr = st_result? no) — use the
        // store output as data dependence: ld addr = i, but we must
        // sequence via topo order; connect st -> out too.
        let ld = g.add_node(OpKind::Load);
        let _ = ld;
        // Simpler: out = store result
        let o = g.add_node(OpKind::Output(0));
        g.connect(st, o, 0);
        // Give the load an operand so validation passes, and order it
        // after the store by feeding it the store's value as address.
        g.connect(st, ld, 0);
        g.validate().unwrap();
        let tape = Tape::generate(1, 3, |_, i| i as Value).with_memory(vec![0; 16]);
        let r = Interpreter::run(&g, 3, &tape).unwrap();
        assert_eq!(r.outputs[0], vec![0, 1, 4]);
        assert_eq!(r.memory[1], 1);
        assert_eq!(r.memory[2], 4);
    }

    #[test]
    fn missing_input_reported() {
        let g = kernels::dot_product();
        let tape = Tape::generate(1, 4, |_, i| i as Value); // stream 1 missing
        let err = Interpreter::run(&g, 4, &tape).unwrap_err();
        assert!(matches!(err, InterpError::MissingInput { stream: 1, .. }));
    }

    #[test]
    fn short_input_reported() {
        let g = kernels::dot_product();
        let tape = Tape::generate(2, 2, |_, _| 1);
        let err = Interpreter::run(&g, 4, &tape).unwrap_err();
        assert!(matches!(
            err,
            InterpError::MissingInput { iteration: 2, .. }
        ));
    }

    #[test]
    fn final_value_probe() {
        let g = kernels::dot_product();
        let tape = Tape::generate(2, 3, |_, _| 1);
        // Node 3 is the accumulator adder in the kernel builder.
        let acc = crate::dfg::NodeId(3);
        assert_eq!(Interpreter::final_value(&g, acc, 3, &tape).unwrap(), 3);
    }

    #[test]
    fn zero_iterations_is_empty() {
        let g = kernels::dot_product();
        let r = Interpreter::run(&g, 0, &Tape::generate(2, 0, |_, _| 0)).unwrap();
        assert_eq!(r.outputs[0], Vec::<Value>::new());
    }
}
