//! Graph analyses over DFGs: strongly connected components, ASAP/ALAP
//! scheduling bounds, critical path, height/mobility priorities, and the
//! recurrence-constrained minimum initiation interval (RecMII).
//!
//! These are the analyses every modulo scheduler in the surveyed
//! literature starts from (Rau's iterative modulo scheduling, DRESC,
//! EMS, EPIMap, …).

use crate::dfg::{Dfg, NodeId};
use crate::op::OpKind;

/// Per-node latency model: cycles from operand arrival to result
/// availability. The IR is latency-agnostic; mappers supply the model
/// from the architecture description.
pub type LatencyFn<'a> = &'a dyn Fn(OpKind) -> u32;

/// Unit latency for every operation — the default of most CGRA papers
/// (one context per cycle, registered PE outputs).
pub fn unit_latency(_: OpKind) -> u32 {
    1
}

/// Strongly connected components of the full graph (all edges, any
/// distance), via iterative Tarjan. Components are returned in reverse
/// topological order; singleton components without a self-edge are
/// trivial.
pub fn sccs(dfg: &Dfg) -> Vec<Vec<NodeId>> {
    let n = dfg.node_count();
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (_, e) in dfg.edges() {
        succ[e.src.index()].push(e.dst.index());
    }

    // Iterative Tarjan to survive deep graphs.
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut comps: Vec<Vec<NodeId>> = Vec::new();

    // Explicit DFS state machine: (node, next-successor position).
    let mut call: Vec<(usize, usize)> = Vec::new();
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        call.push((start, 0));
        index[start] = next_index;
        low[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;

        while !call.is_empty() {
            let (v, i) = {
                let frame = call.last_mut().unwrap();
                let (v, i) = *frame;
                if i < succ[v].len() {
                    frame.1 += 1;
                }
                (v, i)
            };
            if i < succ[v].len() {
                let w = succ[v][i];
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(&(p, _)) = call.last() {
                    low[p] = low[p].min(low[v]);
                }
                // Root of an SCC: pop the component off the node stack.
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().unwrap();
                        on_stack[w] = false;
                        comp.push(NodeId(w as u32));
                        if w == v {
                            break;
                        }
                    }
                    comps.push(comp);
                }
            }
        }
    }
    comps
}

/// ASAP start times over the distance-0 DAG: earliest cycle each op can
/// issue given operand latencies. Sources start at 0.
pub fn asap(dfg: &Dfg, lat: LatencyFn) -> Vec<u32> {
    let order = dfg.topo_order().expect("DFG must be zero-distance acyclic");
    let mut t = vec![0u32; dfg.node_count()];
    for id in order {
        for (_, e) in dfg.in_edges(id) {
            if e.dist == 0 {
                t[id.index()] = t[id.index()].max(t[e.src.index()] + lat(dfg.op(e.src)));
            }
        }
    }
    t
}

/// ALAP start times against the makespan of the ASAP schedule.
pub fn alap(dfg: &Dfg, lat: LatencyFn) -> Vec<u32> {
    let a = asap(dfg, lat);
    let makespan = a
        .iter()
        .enumerate()
        .map(|(i, &s)| s + lat(dfg.op(NodeId(i as u32))))
        .max()
        .unwrap_or(0);
    let order = dfg.topo_order().expect("DFG must be zero-distance acyclic");
    let mut t = vec![makespan; dfg.node_count()];
    for &id in order.iter().rev() {
        let own_lat = lat(dfg.op(id));
        let mut latest = makespan.saturating_sub(own_lat);
        for (_, e) in dfg.out_edges(id) {
            if e.dist == 0 {
                latest = latest.min(t[e.dst.index()].saturating_sub(own_lat));
            }
        }
        t[id.index()] = latest;
    }
    t
}

/// Mobility (ALAP − ASAP) per node: zero for critical-path operations.
pub fn mobility(dfg: &Dfg, lat: LatencyFn) -> Vec<u32> {
    let a = asap(dfg, lat);
    let l = alap(dfg, lat);
    a.iter()
        .zip(&l)
        .map(|(&a, &l)| l.saturating_sub(a))
        .collect()
}

/// Height of each node: longest latency-weighted path to any sink in the
/// distance-0 DAG. The classic list-scheduling priority.
pub fn height(dfg: &Dfg, lat: LatencyFn) -> Vec<u32> {
    let order = dfg.topo_order().expect("DFG must be zero-distance acyclic");
    let mut h = vec![0u32; dfg.node_count()];
    for &id in order.iter().rev() {
        let own_lat = lat(dfg.op(id));
        for (_, e) in dfg.out_edges(id) {
            if e.dist == 0 {
                h[id.index()] = h[id.index()].max(h[e.dst.index()] + own_lat);
            }
        }
        if dfg.out_edges(id).next().is_none() {
            h[id.index()] = 0;
        }
    }
    h
}

/// Latency-weighted critical-path length (the minimum schedule length
/// without resource constraints).
pub fn critical_path(dfg: &Dfg, lat: LatencyFn) -> u32 {
    let a = asap(dfg, lat);
    a.iter()
        .enumerate()
        .map(|(i, &s)| s + lat(dfg.op(NodeId(i as u32))))
        .max()
        .unwrap_or(0)
}

/// Recurrence-constrained minimum initiation interval:
/// `RecMII = max over cycles c of ceil(latency(c) / distance(c))`.
///
/// Computed by binary search on II: candidate II is feasible iff the
/// constraint system `t(dst) ≥ t(src) + lat(src) − II·dist(e)` has no
/// positive cycle, which Bellman-Ford detects on the edge weights
/// `lat(src) − II·dist`.
pub fn rec_mii(dfg: &Dfg, lat: LatencyFn) -> u32 {
    let n = dfg.node_count();
    if n == 0 {
        return 1;
    }
    let total_lat: i64 = dfg
        .node_ids()
        .map(|id| lat(dfg.op(id)) as i64)
        .sum::<i64>()
        .max(1);

    let feasible = |ii: i64| -> bool {
        // Longest-path Bellman-Ford; positive cycle => infeasible.
        let mut dist = vec![0i64; n];
        for round in 0..=n {
            let mut changed = false;
            for (_, e) in dfg.edges() {
                let w = lat(dfg.op(e.src)) as i64 - ii * e.dist as i64;
                let cand = dist[e.src.index()] + w;
                if cand > dist[e.dst.index()] {
                    dist[e.dst.index()] = cand;
                    changed = true;
                }
            }
            if !changed {
                return true;
            }
            if round == n {
                return false;
            }
        }
        true
    };

    let (mut lo, mut hi) = (1i64, total_lat);
    while lo < hi {
        let mid = (lo + hi) / 2;
        if feasible(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo as u32
}

/// Resource-constrained minimum II for a fabric with `alu_slots` total
/// issue slots per cycle, of which `mul_slots` can multiply and
/// `mem_slots` can access memory.
pub fn res_mii(dfg: &Dfg, alu_slots: usize, mul_slots: usize, mem_slots: usize) -> u32 {
    let total = dfg.node_count();
    let muls = dfg.multiplier_ops();
    let mems = dfg.memory_ops();
    let div_ceil = |a: usize, b: usize| -> u32 {
        if b == 0 {
            if a == 0 {
                1
            } else {
                u32::MAX
            }
        } else {
            a.div_ceil(b).max(1) as u32
        }
    };
    div_ceil(total, alu_slots)
        .max(div_ceil(muls, mul_slots))
        .max(div_ceil(mems, mem_slots))
}

/// The minimum initiation interval: `max(ResMII, RecMII)`.
pub fn mii(dfg: &Dfg, lat: LatencyFn, alu_slots: usize, mul_slots: usize, mem_slots: usize) -> u32 {
    rec_mii(dfg, lat).max(res_mii(dfg, alu_slots, mul_slots, mem_slots))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;

    #[test]
    fn dot_product_recmii_is_one() {
        // acc = acc + a*b: the self-recurrence has latency 1, distance 1.
        let g = kernels::dot_product();
        assert_eq!(rec_mii(&g, &unit_latency), 1);
    }

    #[test]
    fn long_recurrence_raises_recmii() {
        use crate::op::OpKind;
        // x[i] = (x[i-1] + 1) * 2 : cycle of 2 unit-latency ops, dist 1.
        let mut g = Dfg::new("rec2");
        let one = g.add_node(OpKind::Const(1));
        let two = g.add_node(OpKind::Const(2));
        let add = g.add_node(OpKind::Add);
        let mul = g.add_node(OpKind::Mul);
        g.connect(one, add, 1);
        g.connect(two, mul, 1);
        g.connect(add, mul, 0);
        g.connect_carried(mul, add, 0, 1, vec![0]);
        let o = g.add_node(OpKind::Output(0));
        g.connect(mul, o, 0);
        g.validate().unwrap();
        assert_eq!(rec_mii(&g, &unit_latency), 2);
    }

    #[test]
    fn distance_two_halves_recmii() {
        use crate::op::OpKind;
        // x[i] = x[i-2] + 1 : cycle latency 1, distance 2 -> RecMII 1.
        let mut g = Dfg::new("d2");
        let one = g.add_node(OpKind::Const(1));
        let add = g.add_node(OpKind::Add);
        g.connect(one, add, 1);
        g.connect_carried(add, add, 0, 2, vec![0, 0]);
        let o = g.add_node(OpKind::Output(0));
        g.connect(add, o, 0);
        g.validate().unwrap();
        assert_eq!(rec_mii(&g, &unit_latency), 1);

        // With latency 3 adders, RecMII = ceil(3/2) = 2.
        let lat3 = |k: OpKind| if k == OpKind::Add { 3 } else { 1 };
        assert_eq!(rec_mii(&g, &lat3), 2);
    }

    #[test]
    fn res_mii_counts_resources() {
        let g = kernels::dot_product(); // 5 ops, 1 mul, 0 mem
        assert_eq!(res_mii(&g, 16, 16, 4), 1);
        assert_eq!(res_mii(&g, 2, 1, 1), 3); // ceil(5/2)
        assert_eq!(res_mii(&g, 16, 0, 4), u32::MAX); // no multiplier
    }

    #[test]
    fn asap_alap_bracket_and_mobility() {
        let g = kernels::dot_product();
        let a = asap(&g, &unit_latency);
        let l = alap(&g, &unit_latency);
        for (x, y) in a.iter().zip(&l) {
            assert!(x <= y);
        }
        let m = mobility(&g, &unit_latency);
        assert!(m.contains(&0), "critical path must exist");
    }

    #[test]
    fn critical_path_of_chain() {
        use crate::op::OpKind;
        let mut g = Dfg::new("chain");
        let mut prev = g.add_node(OpKind::Input(0));
        for _ in 0..4 {
            let n = g.add_node(OpKind::Not);
            g.connect(prev, n, 0);
            prev = n;
        }
        let o = g.add_node(OpKind::Output(0));
        g.connect(prev, o, 0);
        g.validate().unwrap();
        assert_eq!(critical_path(&g, &unit_latency), 6);
        let h = height(&g, &unit_latency);
        assert_eq!(h[0], 5); // input is 5 hops above the sink
    }

    #[test]
    fn sccs_find_recurrence() {
        let g = kernels::dot_product();
        let comps = sccs(&g);
        // The accumulator self-loop is a non-trivial SCC of size 1 with a
        // self-edge; everything else is trivial.
        assert_eq!(comps.iter().filter(|c| c.len() > 1).count(), 0);
        let total: usize = comps.iter().map(|c| c.len()).sum();
        assert_eq!(total, g.node_count());
    }

    #[test]
    fn sccs_multi_node_cycle() {
        use crate::op::OpKind;
        let mut g = Dfg::new("cyc");
        let a = g.add_node(OpKind::Not);
        let b = g.add_node(OpKind::Not);
        g.connect(a, b, 0);
        g.connect_carried(b, a, 0, 1, vec![0]);
        let comps = sccs(&g);
        assert!(comps.iter().any(|c| c.len() == 2));
    }
}
