//! The kernel library: loop bodies used throughout the CGRA-mapping
//! literature (DSP and image-processing inner loops), available as
//! programmatic DFG builders.
//!
//! Every kernel here validates, interprets, and exercises a distinct
//! mapping stress: recurrences (IIR, Horner), instruction-level
//! parallelism (YUV→RGB, butterfly), memory traffic (matmul body,
//! stencils), predication (threshold), and scale (parametric unrolled
//! MACs for the scalability experiments).

use crate::dfg::{Dfg, NodeId};
use crate::op::{OpKind, Value};

/// `acc += a * b` — the survey's Figure 3 running example.
pub fn dot_product() -> Dfg {
    let mut g = Dfg::new("dot_product");
    let a = g.add_named(OpKind::Input(0), "a");
    let b = g.add_named(OpKind::Input(1), "b");
    let m = g.add_named(OpKind::Mul, "a*b");
    let s = g.add_named(OpKind::Add, "acc");
    let o = g.add_named(OpKind::Output(0), "acc_out");
    g.connect(a, m, 0);
    g.connect(b, m, 1);
    g.connect(m, s, 0);
    g.connect_carried(s, s, 1, 1, vec![0]);
    g.connect(s, o, 0);
    g
}

/// `acc += x` — plain accumulation (tightest recurrence, no multiplier).
pub fn accumulate() -> Dfg {
    let mut g = Dfg::new("accumulate");
    let x = g.add_named(OpKind::Input(0), "x");
    let s = g.add_named(OpKind::Add, "acc");
    let o = g.add_node(OpKind::Output(0));
    g.connect(x, s, 0);
    g.connect_carried(s, s, 1, 1, vec![0]);
    g.connect(s, o, 0);
    g
}

/// `y[i] = sum_k c[k] * x[i-k]` for `taps` coefficients — the classic
/// FIR filter; delayed inputs are expressed as loop-carried edges from
/// the input node.
pub fn fir(taps: usize) -> Dfg {
    assert!(taps >= 1);
    let mut g = Dfg::new(format!("fir{taps}"));
    let x = g.add_named(OpKind::Input(0), "x");
    let mut sum: Option<NodeId> = None;
    for k in 0..taps {
        let c = g.add_named(OpKind::Const((k as Value) + 1), format!("c{k}"));
        let m = g.add_named(OpKind::Mul, format!("x[i-{k}]*c{k}"));
        if k == 0 {
            g.connect(x, m, 0);
        } else {
            g.connect_carried(x, m, 0, k as u32, vec![0; k]);
        }
        g.connect(c, m, 1);
        sum = Some(match sum {
            None => m,
            Some(s) => {
                let a = g.add_node(OpKind::Add);
                g.connect(s, a, 0);
                g.connect(m, a, 1);
                a
            }
        });
    }
    let o = g.add_node(OpKind::Output(0));
    g.connect(sum.unwrap(), o, 0);
    g
}

/// First-order IIR: `y = (a*y[i-1] >> 4) + x` — a recurrence through a
/// multiplier, raising RecMII above 1 on multi-cycle fabrics.
pub fn iir1() -> Dfg {
    let mut g = Dfg::new("iir1");
    let x = g.add_named(OpKind::Input(0), "x");
    let a = g.add_named(OpKind::Const(13), "a");
    let four = g.add_node(OpKind::Const(4));
    let m = g.add_named(OpKind::Mul, "a*y1");
    let sh = g.add_node(OpKind::Shr);
    let y = g.add_named(OpKind::Add, "y");
    let o = g.add_node(OpKind::Output(0));
    g.connect(a, m, 0);
    g.connect_carried(y, m, 1, 1, vec![0]);
    g.connect(m, sh, 0);
    g.connect(four, sh, 1);
    g.connect(sh, y, 0);
    g.connect(x, y, 1);
    g.connect(y, o, 0);
    g
}

/// Matrix-multiply inner loop with explicit address arithmetic and
/// loads: `acc += A[base_a + i] * B[base_b + i]` with `i` maintained as
/// a carried counter.
pub fn matmul_body() -> Dfg {
    let mut g = Dfg::new("matmul_body");
    let one = g.add_node(OpKind::Const(1));
    let i = g.add_named(OpKind::Add, "i");
    g.connect_carried(i, i, 0, 1, vec![-1]);
    g.connect(one, i, 1);
    let base_a = g.add_named(OpKind::Const(0), "base_a");
    let base_b = g.add_named(OpKind::Const(64), "base_b");
    let addr_a = g.add_node(OpKind::Add);
    let addr_b = g.add_node(OpKind::Add);
    g.connect(base_a, addr_a, 0);
    g.connect(i, addr_a, 1);
    g.connect(base_b, addr_b, 0);
    g.connect(i, addr_b, 1);
    let la = g.add_named(OpKind::Load, "A[i]");
    let lb = g.add_named(OpKind::Load, "B[i]");
    g.connect(addr_a, la, 0);
    g.connect(addr_b, lb, 0);
    let m = g.add_node(OpKind::Mul);
    g.connect(la, m, 0);
    g.connect(lb, m, 1);
    let acc = g.add_named(OpKind::Add, "acc");
    g.connect(m, acc, 0);
    g.connect_carried(acc, acc, 1, 1, vec![0]);
    let o = g.add_node(OpKind::Output(0));
    g.connect(acc, o, 0);
    g
}

/// 1-D convolution with 3 taps over a streamed input.
pub fn conv3() -> Dfg {
    fir(3).with_name("conv3")
}

/// Sum of absolute differences: `acc += |a - b|`.
pub fn sad() -> Dfg {
    let mut g = Dfg::new("sad");
    let a = g.add_named(OpKind::Input(0), "a");
    let b = g.add_named(OpKind::Input(1), "b");
    let d = g.add_node(OpKind::Sub);
    let ab = g.add_node(OpKind::Abs);
    let s = g.add_named(OpKind::Add, "acc");
    let o = g.add_node(OpKind::Output(0));
    g.connect(a, d, 0);
    g.connect(b, d, 1);
    g.connect(d, ab, 0);
    g.connect(ab, s, 0);
    g.connect_carried(s, s, 1, 1, vec![0]);
    g.connect(s, o, 0);
    g
}

/// Sobel-like gradient magnitude over eight neighbourhood streams:
/// `|gx| + |gy|` with the classic 3×3 weights.
pub fn sobel() -> Dfg {
    let mut g = Dfg::new("sobel");
    // Streams: p00 p01 p02 p10 p12 p20 p21 p22 (centre unused).
    let p: Vec<NodeId> = (0..8)
        .map(|s| g.add_named(OpKind::Input(s), format!("p{s}")))
        .collect();
    let two = g.add_node(OpKind::Const(2));
    let dbl = |g: &mut Dfg, n: NodeId| {
        let m = g.add_node(OpKind::Mul);
        g.connect(n, m, 0);
        g.connect(two, m, 1);
        m
    };
    let add = |g: &mut Dfg, a: NodeId, b: NodeId| {
        let n = g.add_node(OpKind::Add);
        g.connect(a, n, 0);
        g.connect(b, n, 1);
        n
    };
    let sub = |g: &mut Dfg, a: NodeId, b: NodeId| {
        let n = g.add_node(OpKind::Sub);
        g.connect(a, n, 0);
        g.connect(b, n, 1);
        n
    };
    // gx = (p02 + 2*p12' + p22) - (p00 + 2*p10 + p20) where streams
    // [0..8] = 00,01,02,10,12,20,21,22
    let right = {
        let t = dbl(&mut g, p[4]);
        let u = add(&mut g, p[2], t);
        add(&mut g, u, p[7])
    };
    let left = {
        let t = dbl(&mut g, p[3]);
        let u = add(&mut g, p[0], t);
        add(&mut g, u, p[5])
    };
    let gx = sub(&mut g, right, left);
    // gy = (p20 + 2*p21 + p22) - (p00 + 2*p01 + p02)
    let bot = {
        let t = dbl(&mut g, p[6]);
        let u = add(&mut g, p[5], t);
        add(&mut g, u, p[7])
    };
    let top = {
        let t = dbl(&mut g, p[1]);
        let u = add(&mut g, p[0], t);
        add(&mut g, u, p[2])
    };
    let gy = sub(&mut g, bot, top);
    let ax = g.add_node(OpKind::Abs);
    let ay = g.add_node(OpKind::Abs);
    g.connect(gx, ax, 0);
    g.connect(gy, ay, 0);
    let mag = add(&mut g, ax, ay);
    let o = g.add_node(OpKind::Output(0));
    g.connect(mag, o, 0);
    g
}

/// Fixed-point YUV→RGB colour conversion: three input streams, three
/// output streams, wide instruction-level parallelism with constants.
pub fn yuv2rgb() -> Dfg {
    let mut g = Dfg::new("yuv2rgb");
    let y = g.add_named(OpKind::Input(0), "y");
    let u = g.add_named(OpKind::Input(1), "u");
    let v = g.add_named(OpKind::Input(2), "v");
    let c128 = g.add_node(OpKind::Const(128));
    let up = g.add_node(OpKind::Sub);
    let vp = g.add_node(OpKind::Sub);
    g.connect(u, up, 0);
    g.connect(c128, up, 1);
    g.connect(v, vp, 0);
    g.connect(c128, vp, 1);
    let shift = g.add_node(OpKind::Const(8));
    let scale = |g: &mut Dfg, x: NodeId, k: Value| -> NodeId {
        let c = g.add_node(OpKind::Const(k));
        let m = g.add_node(OpKind::Mul);
        g.connect(x, m, 0);
        g.connect(c, m, 1);
        let s = g.add_node(OpKind::Shr);
        g.connect(m, s, 0);
        g.connect(shift, s, 1);
        s
    };
    let add2 = |g: &mut Dfg, a: NodeId, b: NodeId| {
        let n = g.add_node(OpKind::Add);
        g.connect(a, n, 0);
        g.connect(b, n, 1);
        n
    };
    let sub2 = |g: &mut Dfg, a: NodeId, b: NodeId| {
        let n = g.add_node(OpKind::Sub);
        g.connect(a, n, 0);
        g.connect(b, n, 1);
        n
    };
    let sv = scale(&mut g, vp, 359); // 1.402 * 256
    let r = add2(&mut g, y, sv);
    let gch = {
        let su = scale(&mut g, up, 88); // 0.344
        let t = sub2(&mut g, y, su);
        let sv2 = scale(&mut g, vp, 183); // 0.714
        sub2(&mut g, t, sv2)
    };
    let su2 = scale(&mut g, up, 454); // 1.772
    let b = add2(&mut g, y, su2);
    // Clamp to 0..=255: max(0, min(255, x)).
    let c0 = g.add_node(OpKind::Const(0));
    let c255 = g.add_node(OpKind::Const(255));
    let clamp = |g: &mut Dfg, x: NodeId| {
        let mn = g.add_node(OpKind::Min);
        g.connect(x, mn, 0);
        g.connect(c255, mn, 1);
        let mx = g.add_node(OpKind::Max);
        g.connect(mn, mx, 0);
        g.connect(c0, mx, 1);
        mx
    };
    for (i, ch) in [r, gch, b].into_iter().enumerate() {
        let cl = clamp(&mut g, ch);
        let o = g.add_node(OpKind::Output(i as u32));
        g.connect(cl, o, 0);
    }
    g
}

/// Radix-2 FFT butterfly on interleaved real/imaginary streams with a
/// constant twiddle factor (fixed-point, shift-normalised).
pub fn fft_butterfly() -> Dfg {
    let mut g = Dfg::new("fft_butterfly");
    let ar = g.add_named(OpKind::Input(0), "ar");
    let ai = g.add_named(OpKind::Input(1), "ai");
    let br = g.add_named(OpKind::Input(2), "br");
    let bi = g.add_named(OpKind::Input(3), "bi");
    let wr = g.add_named(OpKind::Const(181), "wr"); // cos(45°)*256
    let wi = g.add_named(OpKind::Const(-181), "wi");
    let sh = g.add_node(OpKind::Const(8));
    let mul = |g: &mut Dfg, a: NodeId, b: NodeId| {
        let m = g.add_node(OpKind::Mul);
        g.connect(a, m, 0);
        g.connect(b, m, 1);
        m
    };
    let shr = |g: &mut Dfg, a: NodeId| {
        let s = g.add_node(OpKind::Shr);
        g.connect(a, s, 0);
        g.connect(sh, s, 1);
        s
    };
    let add2 = |g: &mut Dfg, a: NodeId, b: NodeId| {
        let n = g.add_node(OpKind::Add);
        g.connect(a, n, 0);
        g.connect(b, n, 1);
        n
    };
    let sub2 = |g: &mut Dfg, a: NodeId, b: NodeId| {
        let n = g.add_node(OpKind::Sub);
        g.connect(a, n, 0);
        g.connect(b, n, 1);
        n
    };
    // t = w * b (complex)
    let tr = {
        let x = mul(&mut g, wr, br);
        let y = mul(&mut g, wi, bi);
        let d = sub2(&mut g, x, y);
        shr(&mut g, d)
    };
    let ti = {
        let x = mul(&mut g, wr, bi);
        let y = mul(&mut g, wi, br);
        let s = add2(&mut g, x, y);
        shr(&mut g, s)
    };
    let outs = [
        add2(&mut g, ar, tr),
        add2(&mut g, ai, ti),
        sub2(&mut g, ar, tr),
        sub2(&mut g, ai, ti),
    ];
    for (i, n) in outs.into_iter().enumerate() {
        let o = g.add_node(OpKind::Output(i as u32));
        g.connect(n, o, 0);
    }
    g
}

/// Horner evaluation of a degree-4 polynomial — a long serial chain
/// with zero ILP, the adversarial case for spatial mapping.
pub fn horner4() -> Dfg {
    let mut g = Dfg::new("horner4");
    let x = g.add_named(OpKind::Input(0), "x");
    let coeffs = [3, -1, 4, -1, 5];
    let mut acc = g.add_node(OpKind::Const(coeffs[0]));
    for &c in &coeffs[1..] {
        let m = g.add_node(OpKind::Mul);
        g.connect(acc, m, 0);
        g.connect(x, m, 1);
        let cn = g.add_node(OpKind::Const(c));
        let a = g.add_node(OpKind::Add);
        g.connect(m, a, 0);
        g.connect(cn, a, 1);
        acc = a;
    }
    let o = g.add_node(OpKind::Output(0));
    g.connect(acc, o, 0);
    g
}

/// 5-point Laplacian stencil: `4*c - n - s - e - w`.
pub fn laplacian() -> Dfg {
    let mut g = Dfg::new("laplacian");
    let c = g.add_named(OpKind::Input(0), "c");
    let nb: Vec<NodeId> = (1..5).map(|s| g.add_node(OpKind::Input(s))).collect();
    let four = g.add_node(OpKind::Const(4));
    let m = g.add_node(OpKind::Mul);
    g.connect(c, m, 0);
    g.connect(four, m, 1);
    let mut acc = m;
    for &n in &nb {
        let s = g.add_node(OpKind::Sub);
        g.connect(acc, s, 0);
        g.connect(n, s, 1);
        acc = s;
    }
    let o = g.add_node(OpKind::Output(0));
    g.connect(acc, o, 0);
    g
}

/// Predicated threshold kernel using Select:
/// `y = (x > t) ? x - t : t - x` — the if-converted ITE diamond.
pub fn threshold() -> Dfg {
    let mut g = Dfg::new("threshold");
    let x = g.add_named(OpKind::Input(0), "x");
    let t = g.add_named(OpKind::Const(100), "t");
    let gt = g.add_node(OpKind::Gt);
    g.connect(x, gt, 0);
    g.connect(t, gt, 1);
    let d1 = g.add_node(OpKind::Sub);
    g.connect(x, d1, 0);
    g.connect(t, d1, 1);
    let d2 = g.add_node(OpKind::Sub);
    g.connect(t, d2, 0);
    g.connect(x, d2, 1);
    let sel = g.add_node(OpKind::Select);
    g.connect(gt, sel, 0);
    g.connect(d1, sel, 1);
    g.connect(d2, sel, 2);
    let o = g.add_node(OpKind::Output(0));
    g.connect(sel, o, 0);
    g
}

/// `n` independent multiply-accumulate lanes summed by a reduction tree
/// — the parametric workload for scalability experiments (node count
/// grows as `4n`).
pub fn unrolled_mac(n: usize) -> Dfg {
    assert!(n >= 1);
    let mut g = Dfg::new(format!("mac_x{n}"));
    let mut lane_sums = Vec::with_capacity(n);
    for l in 0..n {
        let a = g.add_node(OpKind::Input((2 * l) as u32));
        let b = g.add_node(OpKind::Input((2 * l + 1) as u32));
        let m = g.add_node(OpKind::Mul);
        g.connect(a, m, 0);
        g.connect(b, m, 1);
        lane_sums.push(m);
    }
    // Reduction tree.
    while lane_sums.len() > 1 {
        let mut next = Vec::with_capacity(lane_sums.len().div_ceil(2));
        for pair in lane_sums.chunks(2) {
            if pair.len() == 2 {
                let a = g.add_node(OpKind::Add);
                g.connect(pair[0], a, 0);
                g.connect(pair[1], a, 1);
                next.push(a);
            } else {
                next.push(pair[0]);
            }
        }
        lane_sums = next;
    }
    let acc = g.add_named(OpKind::Add, "acc");
    g.connect(lane_sums[0], acc, 0);
    g.connect_carried(acc, acc, 1, 1, vec![0]);
    let o = g.add_node(OpKind::Output(0));
    g.connect(acc, o, 0);
    g
}

impl Dfg {
    /// Rename a kernel (builder convenience).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

/// The standard evaluation suite: every fixed-size kernel above.
///
/// This is the workload set for the Table I reproduction; it spans
/// recurrence-bound, ILP-rich, memory-bound, and predicated kernels.
pub fn suite() -> Vec<Dfg> {
    vec![
        dot_product(),
        accumulate(),
        fir(4),
        iir1(),
        matmul_body(),
        conv3(),
        sad(),
        sobel(),
        yuv2rgb(),
        fft_butterfly(),
        horner4(),
        laplacian(),
        threshold(),
    ]
}

/// A small subset for the expensive exact mappers.
pub fn small_suite() -> Vec<Dfg> {
    vec![
        dot_product(),
        accumulate(),
        iir1(),
        sad(),
        threshold(),
        horner4(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{rec_mii, unit_latency};
    use crate::interp::{Interpreter, Tape};

    #[test]
    fn every_kernel_validates() {
        for k in suite() {
            k.validate().unwrap_or_else(|e| panic!("{}: {e}", k.name));
        }
        unrolled_mac(16).validate().unwrap();
    }

    #[test]
    fn suite_covers_mapping_stresses() {
        let s = suite();
        assert!(s.iter().any(|k| k.memory_ops() > 0), "memory kernels");
        assert!(s.iter().any(|k| k.multiplier_ops() == 0), "no-mul kernels");
        assert!(
            s.iter().any(|k| k.edges().any(|(_, e)| e.dist > 1)),
            "distance > 1 recurrences (FIR delays)"
        );
        assert!(
            s.iter()
                .any(|k| k.nodes().any(|(_, n)| n.op == OpKind::Select)),
            "predicated kernels"
        );
    }

    #[test]
    fn fir_matches_direct_convolution() {
        let taps = 3;
        let g = fir(taps);
        let n = 8usize;
        let xs: Vec<Value> = (0..n).map(|i| (i * i + 1) as Value).collect();
        let tape = Tape {
            inputs: vec![xs.clone()],
            memory: vec![],
        };
        let r = Interpreter::run(&g, n, &tape).unwrap();
        for i in 0..n {
            let mut want = 0;
            for k in 0..taps {
                let c = (k as Value) + 1;
                let x = if i >= k { xs[i - k] } else { 0 };
                want += c * x;
            }
            assert_eq!(r.outputs[0][i], want, "iteration {i}");
        }
    }

    #[test]
    fn sad_accumulates_abs_diffs() {
        let g = sad();
        let tape = Tape {
            inputs: vec![vec![5, 0, 7], vec![2, 9, 7]],
            memory: vec![],
        };
        let r = Interpreter::run(&g, 3, &tape).unwrap();
        assert_eq!(r.outputs[0], vec![3, 12, 12]);
    }

    #[test]
    fn threshold_select_behaviour() {
        let g = threshold();
        let tape = Tape {
            inputs: vec![vec![150, 40]],
            memory: vec![],
        };
        let r = Interpreter::run(&g, 2, &tape).unwrap();
        assert_eq!(r.outputs[0], vec![50, 60]);
    }

    #[test]
    fn yuv2rgb_grey_point() {
        let g = yuv2rgb();
        // u = v = 128 => r = g = b = y.
        let tape = Tape {
            inputs: vec![vec![77], vec![128], vec![128]],
            memory: vec![],
        };
        let r = Interpreter::run(&g, 1, &tape).unwrap();
        assert_eq!(r.outputs[0], vec![77]);
        assert_eq!(r.outputs[1], vec![77]);
        assert_eq!(r.outputs[2], vec![77]);
    }

    #[test]
    fn yuv2rgb_clamps() {
        let g = yuv2rgb();
        let tape = Tape {
            inputs: vec![vec![250], vec![128], vec![255]],
            memory: vec![],
        };
        let r = Interpreter::run(&g, 1, &tape).unwrap();
        assert_eq!(r.outputs[0], vec![255]); // clamped red
    }

    #[test]
    fn horner_evaluates_polynomial() {
        let g = horner4();
        let tape = Tape {
            inputs: vec![vec![2]],
            memory: vec![],
        };
        let r = Interpreter::run(&g, 1, &tape).unwrap();
        // ((((3*2 -1)*2 +4)*2 -1)*2 +5 = 59
        assert_eq!(r.outputs[0], vec![59]);
    }

    #[test]
    fn matmul_body_loads_and_accumulates() {
        let g = matmul_body();
        let mut memory = vec![0; 128];
        for i in 0..4 {
            memory[i] = (i + 1) as Value; // A = [1,2,3,4]
            memory[64 + i] = 2; // B = [2,2,2,2]
        }
        let tape = Tape {
            inputs: vec![],
            memory,
        };
        let r = Interpreter::run(&g, 4, &tape).unwrap();
        assert_eq!(r.outputs[0], vec![2, 6, 12, 20]);
    }

    #[test]
    fn laplacian_stencil() {
        let g = laplacian();
        let tape = Tape {
            inputs: vec![vec![10], vec![1], vec![2], vec![3], vec![4]],
            memory: vec![],
        };
        let r = Interpreter::run(&g, 1, &tape).unwrap();
        assert_eq!(r.outputs[0], vec![40 - 10]);
    }

    #[test]
    fn fft_butterfly_with_unit_twiddle_shape() {
        let g = fft_butterfly();
        g.validate().unwrap();
        assert_eq!(g.multiplier_ops(), 4);
    }

    #[test]
    fn unrolled_mac_scales_linearly() {
        let g4 = unrolled_mac(4);
        let g8 = unrolled_mac(8);
        assert!(g8.node_count() > g4.node_count());
        let tape = Tape::generate(16, 2, |_, _| 1);
        let r = Interpreter::run(&g8, 2, &tape).unwrap();
        assert_eq!(r.outputs[0], vec![8, 16]);
    }

    #[test]
    fn recurrence_kernels_have_recmii_one_with_unit_latency() {
        for k in [dot_product(), accumulate(), sad()] {
            assert_eq!(rec_mii(&k, &unit_latency), 1, "{}", k.name);
        }
        // IIR's recurrence passes through mul+shr+add: RecMII = 3.
        assert_eq!(rec_mii(&iir1(), &unit_latency), 3);
    }
}
