//! Lowering from MiniC AST to IR.
//!
//! * Kernels lower to a single loop-body [`Dfg`]: `inout` parameters
//!   become loop-carried edges, `if`/`else` is if-converted to `Select`
//!   chains (the *partial predication* scheme of the survey's
//!   Section III-B1), and predicated stores become load-modify-write
//!   sequences so that the flat data-flow graph preserves branch
//!   semantics.
//! * Funcs lower to a [`Cdfg`] with one basic block per straight-line
//!   region, block parameters discovered on first read, and definitions
//!   recorded for the environment-passing execution model.

use super::ast::*;
use crate::cdfg::{BasicBlock, BlockId, Cdfg, ControlKind};
use crate::dfg::{Dfg, NodeId};
use crate::op::{OpKind, Value};
use std::collections::HashMap;
use std::fmt;

/// Lowering failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowerError {
    UnboundVariable(String),
    /// `while`/`return` used inside a kernel.
    ControlFlowInKernel(&'static str),
    OutputNeverAssigned(String),
    UnknownBuiltin(String),
    BadArity {
        builtin: String,
        want: usize,
        got: usize,
    },
    /// `delay(x, k)` with non-constant or non-positive `k`.
    BadDelay,
    UnreachableCode,
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::UnboundVariable(v) => write!(f, "read of unbound variable `{v}`"),
            LowerError::ControlFlowInKernel(k) => {
                write!(f, "`{k}` is not allowed inside a kernel body")
            }
            LowerError::OutputNeverAssigned(v) => {
                write!(f, "output parameter `{v}` is never assigned")
            }
            LowerError::UnknownBuiltin(b) => write!(f, "unknown builtin `{b}`"),
            LowerError::BadArity { builtin, want, got } => {
                write!(f, "`{builtin}` takes {want} arguments, got {got}")
            }
            LowerError::BadDelay => write!(f, "`delay` needs a positive integer literal count"),
            LowerError::UnreachableCode => write!(f, "statements after `return`"),
        }
    }
}

impl std::error::Error for LowerError {}

/// A value during kernel lowering: a node plus an iteration delay
/// (non-zero only for `delay(x, k)` reads and carried placeholders).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Val {
    node: NodeId,
    delay: u32,
}

impl Val {
    fn now(node: NodeId) -> Self {
        Val { node, delay: 0 }
    }
}

/// Result of kernel compilation.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    pub dfg: Dfg,
    /// Input stream names, indexed by stream id.
    pub inputs: Vec<String>,
    /// Output stream names, indexed by stream id.
    pub outputs: Vec<String>,
}

struct KernelLowerer {
    dfg: Dfg,
    env: HashMap<String, Val>,
    consts: HashMap<Value, NodeId>,
    /// `inout` carried state: name → (placeholder node, init value).
    carried: Vec<(String, NodeId, Value)>,
}

impl KernelLowerer {
    fn constant(&mut self, v: Value) -> NodeId {
        if let Some(&n) = self.consts.get(&v) {
            return n;
        }
        let n = self.dfg.add_node(OpKind::Const(v));
        self.consts.insert(v, n);
        n
    }

    /// Connect `val` into `dst.port`, materialising the delay as a
    /// carried edge (zero-filled init; fixed up later for placeholders).
    fn wire(&mut self, val: Val, dst: NodeId, port: u8) {
        if val.delay == 0 {
            self.dfg.connect(val.node, dst, port);
        } else {
            self.dfg
                .connect_carried(val.node, dst, port, val.delay, vec![0; val.delay as usize]);
        }
    }

    fn binary(&mut self, op: OpKind, a: Val, b: Val) -> Val {
        let n = self.dfg.add_node(op);
        self.wire(a, n, 0);
        self.wire(b, n, 1);
        Val::now(n)
    }

    fn unary(&mut self, op: OpKind, a: Val) -> Val {
        let n = self.dfg.add_node(op);
        self.wire(a, n, 0);
        Val::now(n)
    }

    fn select(&mut self, c: Val, a: Val, b: Val) -> Val {
        let n = self.dfg.add_node(OpKind::Select);
        self.wire(c, n, 0);
        self.wire(a, n, 1);
        self.wire(b, n, 2);
        Val::now(n)
    }

    fn expr(&mut self, e: &Expr) -> Result<Val, LowerError> {
        match e {
            Expr::Int(v) => Ok(Val::now(self.constant(*v))),
            Expr::Var(name) => self
                .env
                .get(name)
                .copied()
                .ok_or_else(|| LowerError::UnboundVariable(name.clone())),
            Expr::Unary(op, inner) => {
                let v = self.expr(inner)?;
                Ok(match op {
                    UnOp::Neg => self.unary(OpKind::Neg, v),
                    UnOp::BitNot => self.unary(OpKind::Not, v),
                    UnOp::Not => {
                        let zero = Val::now(self.constant(0));
                        self.binary(OpKind::Eq, v, zero)
                    }
                })
            }
            Expr::Binary(op, a, b) => {
                let (a, b) = (self.expr(a)?, self.expr(b)?);
                let kind = match op {
                    BinOp::Add => OpKind::Add,
                    BinOp::Sub => OpKind::Sub,
                    BinOp::Mul => OpKind::Mul,
                    BinOp::Div => OpKind::Div,
                    BinOp::Rem => OpKind::Rem,
                    BinOp::And => OpKind::And,
                    BinOp::Or => OpKind::Or,
                    BinOp::Xor => OpKind::Xor,
                    BinOp::Shl => OpKind::Shl,
                    BinOp::Shr => OpKind::Shr,
                    BinOp::Eq => OpKind::Eq,
                    BinOp::Ne => OpKind::Ne,
                    BinOp::Lt => OpKind::Lt,
                    BinOp::Le => OpKind::Le,
                    BinOp::Gt => OpKind::Gt,
                    BinOp::Ge => OpKind::Ge,
                    BinOp::LogAnd | BinOp::LogOr => {
                        // Normalise both sides to booleans, then bit-op.
                        let zero = Val::now(self.constant(0));
                        let an = self.binary(OpKind::Ne, a, zero);
                        let bn = self.binary(OpKind::Ne, b, zero);
                        let k = if *op == BinOp::LogAnd {
                            OpKind::And
                        } else {
                            OpKind::Or
                        };
                        return Ok(self.binary(k, an, bn));
                    }
                };
                Ok(self.binary(kind, a, b))
            }
            Expr::Ternary(c, a, b) => {
                let (c, a, b) = (self.expr(c)?, self.expr(a)?, self.expr(b)?);
                Ok(self.select(c, a, b))
            }
            Expr::MemLoad(addr) => {
                let a = self.expr(addr)?;
                Ok(self.unary(OpKind::Load, a))
            }
            Expr::Call(name, args) => self.builtin(name, args),
        }
    }

    fn builtin(&mut self, name: &str, args: &[Expr]) -> Result<Val, LowerError> {
        let arity = |want: usize| -> Result<(), LowerError> {
            if args.len() == want {
                Ok(())
            } else {
                Err(LowerError::BadArity {
                    builtin: name.to_string(),
                    want,
                    got: args.len(),
                })
            }
        };
        match name {
            "abs" => {
                arity(1)?;
                let v = self.expr(&args[0])?;
                Ok(self.unary(OpKind::Abs, v))
            }
            "min" | "max" => {
                arity(2)?;
                let a = self.expr(&args[0])?;
                let b = self.expr(&args[1])?;
                let k = if name == "min" {
                    OpKind::Min
                } else {
                    OpKind::Max
                };
                Ok(self.binary(k, a, b))
            }
            "select" => {
                arity(3)?;
                let c = self.expr(&args[0])?;
                let a = self.expr(&args[1])?;
                let b = self.expr(&args[2])?;
                Ok(self.select(c, a, b))
            }
            "delay" => {
                arity(2)?;
                let k = match &args[1] {
                    Expr::Int(v) if *v > 0 => *v as u32,
                    _ => return Err(LowerError::BadDelay),
                };
                let mut v = self.expr(&args[0])?;
                v.delay += k;
                Ok(v)
            }
            other => Err(LowerError::UnknownBuiltin(other.to_string())),
        }
    }

    fn stmts(&mut self, body: &[Stmt]) -> Result<(), LowerError> {
        for s in body {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), LowerError> {
        match s {
            Stmt::Assign { name, value } => {
                let v = self.expr(value)?;
                self.env.insert(name.clone(), v);
                Ok(())
            }
            Stmt::MemStore { addr, value } => {
                let a = self.expr(addr)?;
                let v = self.expr(value)?;
                let st = self.dfg.add_node(OpKind::Store);
                self.wire(a, st, 0);
                self.wire(v, st, 1);
                Ok(())
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let c = self.expr(cond)?;
                let before = self.env.clone();

                self.stmts(then_body)?;
                let then_env = std::mem::replace(&mut self.env, before.clone());

                self.stmts(else_body)?;
                let else_env = std::mem::replace(&mut self.env, before.clone());

                // Merge: any variable whose binding differs gets a Select.
                let mut names: Vec<&String> = then_env.keys().chain(else_env.keys()).collect();
                names.sort();
                names.dedup();
                for name in names {
                    let t = then_env.get(name).or_else(|| before.get(name));
                    let e = else_env.get(name).or_else(|| before.get(name));
                    match (t, e) {
                        (Some(&t), Some(&e)) if t != e => {
                            let merged = self.select(c, t, e);
                            self.env.insert(name.clone(), merged);
                        }
                        (Some(&t), Some(_)) => {
                            self.env.insert(name.clone(), t);
                        }
                        // Defined on one path only and not before: leave
                        // unbound — reading it later errors, which is the
                        // right diagnosis for a maybe-uninitialised var.
                        _ => {}
                    }
                }
                // Predicated stores inside the branches were emitted
                // unconditionally by `stmt`; `lower_if_stores` guards them.
                Ok(())
            }
            Stmt::Seq(stmts) => self.stmts(stmts),
            Stmt::While { .. } => Err(LowerError::ControlFlowInKernel("while")),
            Stmt::Return => Err(LowerError::ControlFlowInKernel("return")),
        }
    }
}

/// Recursively guard `mem[..] = v` statements under `if` by rewriting
/// them to `mem[a] = cond ? v : mem[a]` *before* lowering, so the flat
/// DFG keeps branch semantics. Runs on the AST.
fn guard_stores(body: &mut [Stmt]) {
    fn wrap(body: &mut [Stmt], guard: &Expr) {
        for s in body.iter_mut() {
            match s {
                Stmt::MemStore { addr, value } => {
                    *value = Expr::Ternary(
                        Box::new(guard.clone()),
                        Box::new(value.clone()),
                        Box::new(Expr::MemLoad(Box::new(addr.clone()))),
                    );
                }
                Stmt::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    // Inner stores already carry their own (possibly
                    // nested) guards; conjoin the outer one on top.
                    wrap(then_body, guard);
                    wrap(else_body, guard);
                }
                Stmt::Seq(stmts) => wrap(stmts, guard),
                _ => {}
            }
        }
    }
    for s in body.iter_mut() {
        match s {
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                guard_stores(then_body);
                guard_stores(else_body);
                wrap(then_body, cond);
                let neg = Expr::Unary(UnOp::Not, Box::new(cond.clone()));
                wrap(else_body, &neg);
            }
            Stmt::Seq(stmts) => guard_stores(stmts),
            _ => {}
        }
    }
}

/// Lower a kernel definition to a loop-body DFG.
pub fn lower_kernel(def: &KernelDef) -> Result<CompiledKernel, LowerError> {
    let mut lower = KernelLowerer {
        dfg: Dfg::new(def.name.clone()),
        env: HashMap::new(),
        consts: HashMap::new(),
        carried: Vec::new(),
    };

    let mut inputs = Vec::new();
    let mut outputs = Vec::new();
    for p in &def.params {
        match p.dir {
            ParamDir::In => {
                let n = lower
                    .dfg
                    .add_named(OpKind::Input(inputs.len() as u32), p.name.clone());
                inputs.push(p.name.clone());
                lower.env.insert(p.name.clone(), Val::now(n));
            }
            ParamDir::Out => {
                outputs.push(p.name.clone());
            }
            ParamDir::InOut => {
                // Placeholder read of the previous iteration's value.
                let ph = lower
                    .dfg
                    .add_named(OpKind::Route, format!("{}@prev", p.name));
                lower.carried.push((p.name.clone(), ph, p.init));
                lower.env.insert(p.name.clone(), Val::now(ph));
                outputs.push(p.name.clone());
            }
        }
    }

    let mut body = def.body.clone();
    guard_stores(&mut body);
    lower.stmts(&body)?;

    // Emit outputs.
    for (stream, name) in outputs.iter().enumerate() {
        let v = *lower
            .env
            .get(name)
            .ok_or_else(|| LowerError::OutputNeverAssigned(name.clone()))?;
        let o = lower
            .dfg
            .add_named(OpKind::Output(stream as u32), name.clone());
        lower.wire(v, o, 0);
    }

    // Resolve carried placeholders: every edge reading `ph` becomes a
    // carried edge from the iteration-final producer, distance +1.
    let mut dfg = lower.dfg;
    for (name, ph, init) in &lower.carried {
        let producer = lower.env.get(name).copied().unwrap_or(Val::now(*ph));
        // A kernel that never reassigns its inout var carries it through
        // unchanged; route the placeholder to itself is meaningless, so
        // treat the placeholder itself as producer only if unassigned.
        let (src, extra_delay) = if producer.node == *ph {
            (*ph, producer.delay)
        } else {
            (producer.node, producer.delay)
        };
        for eid in dfg.edge_ids().collect::<Vec<_>>() {
            let e = dfg.edge(eid);
            if e.src == *ph && src != *ph {
                let dist = e.dist + 1 + extra_delay;
                let mut init_vals = vec![*init];
                init_vals.extend(std::iter::repeat_n(*init, (dist - 1) as usize));
                let em = dfg.edge_mut(eid);
                em.src = src;
                em.dist = dist;
                em.init = init_vals;
            }
        }
    }
    // Drop now-unused placeholders (only those actually replaced).
    let dead: Vec<NodeId> = lower
        .carried
        .iter()
        .filter(|(name, ph, _)| lower.env.get(name).map(|v| v.node != *ph).unwrap_or(false))
        .map(|(_, ph, _)| *ph)
        .collect();
    if !dead.is_empty() {
        dfg.retain_nodes(|id| !dead.contains(&id));
    }

    Ok(CompiledKernel {
        dfg,
        inputs,
        outputs,
    })
}

// ---------------------------------------------------------------------
// Func → CDFG lowering
// ---------------------------------------------------------------------

struct BlockBuilder {
    label: String,
    dfg: Dfg,
    params: Vec<String>,
    env: HashMap<String, NodeId>,
    defs: Vec<String>,
    consts: HashMap<Value, NodeId>,
}

impl BlockBuilder {
    fn new(label: impl Into<String>) -> Self {
        let label = label.into();
        BlockBuilder {
            dfg: Dfg::new(label.clone()),
            label,
            params: Vec::new(),
            env: HashMap::new(),
            defs: Vec::new(),
            consts: HashMap::new(),
        }
    }

    fn read(&mut self, name: &str) -> NodeId {
        if let Some(&n) = self.env.get(name) {
            return n;
        }
        let idx = self.params.len() as u32;
        let n = self.dfg.add_named(OpKind::Input(idx), name.to_string());
        self.params.push(name.to_string());
        self.env.insert(name.to_string(), n);
        n
    }

    fn write(&mut self, name: &str, node: NodeId) {
        self.env.insert(name.to_string(), node);
        if !self.defs.contains(&name.to_string()) {
            self.defs.push(name.to_string());
        }
    }

    fn constant(&mut self, v: Value) -> NodeId {
        if let Some(&n) = self.consts.get(&v) {
            return n;
        }
        let n = self.dfg.add_node(OpKind::Const(v));
        self.consts.insert(v, n);
        n
    }

    fn finish(self, terminator: ControlKind) -> BasicBlock {
        let defs = self
            .defs
            .iter()
            .map(|name| (name.clone(), self.env[name]))
            .collect();
        BasicBlock {
            label: self.label,
            params: self.params,
            defs,
            dfg: self.dfg,
            terminator,
        }
    }
}

struct FuncLowerer {
    blocks: Vec<Option<BasicBlock>>,
    cur: BlockBuilder,
    cur_id: BlockId,
    terminated: bool,
}

impl FuncLowerer {
    fn reserve(&mut self, label: &str) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(None);
        let _ = label;
        id
    }

    fn seal(&mut self, terminator: ControlKind, next: Option<(BlockId, String)>) {
        let finished = std::mem::replace(
            &mut self.cur,
            BlockBuilder::new(next.as_ref().map(|(_, l)| l.clone()).unwrap_or_default()),
        )
        .finish(terminator);
        self.blocks[self.cur_id.index()] = Some(finished);
        if let Some((id, _)) = next {
            self.cur_id = id;
        }
    }

    fn expr(&mut self, e: &Expr) -> Result<NodeId, LowerError> {
        match e {
            Expr::Int(v) => Ok(self.cur.constant(*v)),
            Expr::Var(name) => Ok(self.cur.read(name)),
            Expr::Unary(op, inner) => {
                let v = self.expr(inner)?;
                Ok(match op {
                    UnOp::Neg => {
                        let n = self.cur.dfg.add_node(OpKind::Neg);
                        self.cur.dfg.connect(v, n, 0);
                        n
                    }
                    UnOp::BitNot => {
                        let n = self.cur.dfg.add_node(OpKind::Not);
                        self.cur.dfg.connect(v, n, 0);
                        n
                    }
                    UnOp::Not => {
                        let z = self.cur.constant(0);
                        let n = self.cur.dfg.add_node(OpKind::Eq);
                        self.cur.dfg.connect(v, n, 0);
                        self.cur.dfg.connect(z, n, 1);
                        n
                    }
                })
            }
            Expr::Binary(op, a, b) => {
                let (a, b) = (self.expr(a)?, self.expr(b)?);
                let kind = match op {
                    BinOp::Add => OpKind::Add,
                    BinOp::Sub => OpKind::Sub,
                    BinOp::Mul => OpKind::Mul,
                    BinOp::Div => OpKind::Div,
                    BinOp::Rem => OpKind::Rem,
                    BinOp::And => OpKind::And,
                    BinOp::Or => OpKind::Or,
                    BinOp::Xor => OpKind::Xor,
                    BinOp::Shl => OpKind::Shl,
                    BinOp::Shr => OpKind::Shr,
                    BinOp::Eq => OpKind::Eq,
                    BinOp::Ne => OpKind::Ne,
                    BinOp::Lt => OpKind::Lt,
                    BinOp::Le => OpKind::Le,
                    BinOp::Gt => OpKind::Gt,
                    BinOp::Ge => OpKind::Ge,
                    BinOp::LogAnd => OpKind::And,
                    BinOp::LogOr => OpKind::Or,
                };
                let n = self.cur.dfg.add_node(kind);
                self.cur.dfg.connect(a, n, 0);
                self.cur.dfg.connect(b, n, 1);
                Ok(n)
            }
            Expr::Ternary(c, a, b) => {
                let (c, a, b) = (self.expr(c)?, self.expr(a)?, self.expr(b)?);
                let n = self.cur.dfg.add_node(OpKind::Select);
                self.cur.dfg.connect(c, n, 0);
                self.cur.dfg.connect(a, n, 1);
                self.cur.dfg.connect(b, n, 2);
                Ok(n)
            }
            Expr::MemLoad(addr) => {
                let a = self.expr(addr)?;
                let n = self.cur.dfg.add_node(OpKind::Load);
                self.cur.dfg.connect(a, n, 0);
                Ok(n)
            }
            Expr::Call(name, args) => match (name.as_str(), args.len()) {
                ("abs", 1) => {
                    let v = self.expr(&args[0])?;
                    let n = self.cur.dfg.add_node(OpKind::Abs);
                    self.cur.dfg.connect(v, n, 0);
                    Ok(n)
                }
                ("min", 2) | ("max", 2) => {
                    let a = self.expr(&args[0])?;
                    let b = self.expr(&args[1])?;
                    let k = if name == "min" {
                        OpKind::Min
                    } else {
                        OpKind::Max
                    };
                    let n = self.cur.dfg.add_node(k);
                    self.cur.dfg.connect(a, n, 0);
                    self.cur.dfg.connect(b, n, 1);
                    Ok(n)
                }
                ("select", 3) => {
                    let c = self.expr(&args[0])?;
                    let a = self.expr(&args[1])?;
                    let b = self.expr(&args[2])?;
                    let n = self.cur.dfg.add_node(OpKind::Select);
                    self.cur.dfg.connect(c, n, 0);
                    self.cur.dfg.connect(a, n, 1);
                    self.cur.dfg.connect(b, n, 2);
                    Ok(n)
                }
                _ => Err(LowerError::UnknownBuiltin(name.clone())),
            },
        }
    }

    fn stmts(&mut self, body: &[Stmt]) -> Result<(), LowerError> {
        for s in body {
            if self.terminated {
                return Err(LowerError::UnreachableCode);
            }
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), LowerError> {
        match s {
            Stmt::Assign { name, value } => {
                let v = self.expr(value)?;
                self.cur.write(name, v);
                Ok(())
            }
            Stmt::MemStore { addr, value } => {
                let a = self.expr(addr)?;
                let v = self.expr(value)?;
                let st = self.cur.dfg.add_node(OpKind::Store);
                self.cur.dfg.connect(a, st, 0);
                self.cur.dfg.connect(v, st, 1);
                Ok(())
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let c = self.expr(cond)?;
                let then_id = self.reserve("then");
                let else_id = self.reserve("else");
                let join_id = self.reserve("join");
                self.seal(
                    ControlKind::Branch {
                        cond: c,
                        then_to: then_id,
                        else_to: else_id,
                    },
                    Some((then_id, "then".into())),
                );
                self.stmts(then_body)?;
                let then_terminated = std::mem::take(&mut self.terminated);
                self.seal(
                    if then_terminated {
                        ControlKind::Return
                    } else {
                        ControlKind::Jump(join_id)
                    },
                    Some((else_id, "else".into())),
                );
                self.stmts(else_body)?;
                let else_terminated = std::mem::take(&mut self.terminated);
                self.seal(
                    if else_terminated {
                        ControlKind::Return
                    } else {
                        ControlKind::Jump(join_id)
                    },
                    Some((join_id, "join".into())),
                );
                Ok(())
            }
            Stmt::While { cond, body } => {
                let header_id = self.reserve("header");
                let body_id = self.reserve("body");
                let exit_id = self.reserve("exit");
                self.seal(
                    ControlKind::Jump(header_id),
                    Some((header_id, "header".into())),
                );
                let c = self.expr(cond)?;
                self.seal(
                    ControlKind::Branch {
                        cond: c,
                        then_to: body_id,
                        else_to: exit_id,
                    },
                    Some((body_id, "body".into())),
                );
                self.stmts(body)?;
                if self.terminated {
                    self.terminated = false;
                    self.seal(ControlKind::Return, Some((exit_id, "exit".into())));
                } else {
                    self.seal(ControlKind::Jump(header_id), Some((exit_id, "exit".into())));
                }
                Ok(())
            }
            Stmt::Seq(stmts) => self.stmts(stmts),
            Stmt::Return => {
                self.terminated = true;
                Ok(())
            }
        }
    }
}

/// Lower a `func` definition to a CDFG. Function arguments are simply
/// free variables of the entry block, bound by the caller's initial
/// environment at execution time.
pub fn lower_func(def: &FuncDef) -> Result<Cdfg, LowerError> {
    let mut fl = FuncLowerer {
        blocks: vec![None],
        cur: BlockBuilder::new("entry"),
        cur_id: BlockId(0),
        terminated: false,
    };
    fl.stmts(&def.body)?;
    fl.terminated = false;
    fl.seal(ControlKind::Return, None);

    let mut cdfg = Cdfg::new(def.name.clone());
    for b in fl.blocks {
        cdfg.blocks
            .push(b.expect("all reserved blocks must be sealed"));
    }
    cdfg.entry = BlockId(0);
    Ok(cdfg)
}

#[cfg(test)]
mod tests {
    use super::super::{compile_func, compile_kernel};
    use crate::interp::{Interpreter, Tape};
    use std::collections::HashMap;

    #[test]
    fn dot_product_kernel_matches_builder() {
        let k = compile_kernel("kernel dot(in a, in b, inout acc) { acc = acc + a * b; }").unwrap();
        k.dfg.validate().unwrap();
        let tape = Tape::generate(2, 4, |s, i| if s == 0 { (i + 1) as i64 } else { 2 });
        let r = Interpreter::run(&k.dfg, 4, &tape).unwrap();
        assert_eq!(r.outputs[0], vec![2, 6, 12, 20]);
    }

    #[test]
    fn inout_init_value_respected() {
        let k = compile_kernel("kernel c(inout acc = 100, in x) { acc += x; }").unwrap();
        let tape = Tape::generate(1, 3, |_, _| 1);
        let r = Interpreter::run(&k.dfg, 3, &tape).unwrap();
        assert_eq!(r.outputs[0], vec![101, 102, 103]);
    }

    #[test]
    fn if_else_is_if_converted() {
        let k = compile_kernel(
            "kernel t(in x, out y) { if (x > 10) { y = x - 10; } else { y = 10 - x; } }",
        )
        .unwrap();
        k.dfg.validate().unwrap();
        // No control flow survives: single DFG with a Select.
        assert!(k
            .dfg
            .nodes()
            .any(|(_, n)| n.op == crate::op::OpKind::Select));
        let tape = Tape {
            inputs: vec![vec![25, 3]],
            memory: vec![],
        };
        let r = Interpreter::run(&k.dfg, 2, &tape).unwrap();
        assert_eq!(r.outputs[0], vec![15, 7]);
    }

    #[test]
    fn nested_if_composes_selects() {
        let k = compile_kernel(
            "kernel t(in x, out y) {
                var v = 0;
                if (x > 0) { if (x > 10) { v = 2; } else { v = 1; } } else { v = -1; }
                y = v;
            }",
        )
        .unwrap();
        let tape = Tape {
            inputs: vec![vec![20, 5, -7]],
            memory: vec![],
        };
        let r = Interpreter::run(&k.dfg, 3, &tape).unwrap();
        assert_eq!(r.outputs[0], vec![2, 1, -1]);
    }

    #[test]
    fn guarded_store_preserves_memory_semantics() {
        let k = compile_kernel(
            "kernel t(in x, in i, out y) {
                if (x > 0) { mem[i] = x; }
                y = x;
            }",
        )
        .unwrap();
        let tape = Tape {
            inputs: vec![vec![5, -3], vec![0, 1]],
            memory: vec![9, 9],
        };
        let r = Interpreter::run(&k.dfg, 2, &tape).unwrap();
        assert_eq!(r.memory, vec![5, 9]); // second store suppressed
    }

    #[test]
    fn delay_builtin_reads_past_inputs() {
        let k = compile_kernel("kernel d(in x, out y) { y = x + delay(x, 1); }").unwrap();
        let tape = Tape {
            inputs: vec![vec![1, 2, 3, 4]],
            memory: vec![],
        };
        let r = Interpreter::run(&k.dfg, 4, &tape).unwrap();
        assert_eq!(r.outputs[0], vec![1, 3, 5, 7]);
    }

    #[test]
    fn output_never_assigned_is_an_error() {
        let err = compile_kernel("kernel t(in x, out y) { var z = x; }").unwrap_err();
        assert!(err.to_string().contains("never assigned"));
    }

    #[test]
    fn while_in_kernel_rejected() {
        let err = compile_kernel("kernel t(in x, out y) { while (x) { y = 1; } }").unwrap_err();
        assert!(err.to_string().contains("not allowed"));
    }

    #[test]
    fn unbound_variable_rejected() {
        let err = compile_kernel("kernel t(out y) { y = q + 1; }").unwrap_err();
        assert!(err.to_string().contains("unbound"));
    }

    #[test]
    fn func_while_loop_executes() {
        let c = compile_func(
            "func triangle(n) {
                var i = 0;
                var sum = 0;
                while (i < n) { sum += i; i += 1; }
                return;
            }",
        )
        .unwrap();
        c.validate().unwrap();
        let mut env = HashMap::new();
        env.insert("n".to_string(), 6_i64);
        let (env, _, _) = c.execute(env, vec![], 10_000).unwrap();
        assert_eq!(env["sum"], 15);
    }

    #[test]
    fn func_if_else_blocks() {
        let c = compile_func(
            "func f(x) {
                var y = 0;
                if (x > 0) { y = 1; } else { y = 2; }
                var z = y * 10;
                return;
            }",
        )
        .unwrap();
        c.validate().unwrap();
        let mut env = HashMap::new();
        env.insert("x".to_string(), -1_i64);
        let (env, _, _) = c.execute(env, vec![], 100).unwrap();
        assert_eq!(env["z"], 20);
        assert!(c.find_diamond().is_some());
    }

    #[test]
    fn func_loop_structure_discovered() {
        let c = compile_func("func f(n) { var i = 0; while (i < n) { i += 1; } return; }").unwrap();
        assert_eq!(c.loops().len(), 1);
    }

    #[test]
    fn for_loop_executes_in_funcs() {
        let c = compile_func(
            "func squares(n) {
                var total = 0;
                for (i = 0; i < n; i += 1) { total += i * i; }
                return;
            }",
        )
        .unwrap();
        c.validate().unwrap();
        let mut env = HashMap::new();
        env.insert("n".to_string(), 5_i64);
        let (env, _, _) = c.execute(env, vec![], 10_000).unwrap();
        assert_eq!(env["total"], 1 + 4 + 9 + 16);
    }

    #[test]
    fn statements_after_return_rejected() {
        let err = compile_func("func f(x) { return; var y = 1; }").unwrap_err();
        assert!(err.to_string().contains("after"));
    }
}
