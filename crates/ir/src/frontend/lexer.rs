//! Hand-written lexer for MiniC.

use std::fmt;

/// Token classes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    Ident(String),
    Int(i64),
    // Keywords.
    Kernel,
    Func,
    Var,
    If,
    Else,
    While,
    For,
    Return,
    In,
    Out,
    InOut,
    Mem,
    // Punctuation.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    // Operators.
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Shl,
    Shr,
    AmpAmp,
    PipePipe,
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    Question,
    Colon,
    PlusAssign,
    MinusAssign,
    StarAssign,
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Int(v) => write!(f, "integer `{v}`"),
            other => write!(f, "{other:?}"),
        }
    }
}

/// A token with its source line (1-based) for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: u32,
}

/// Lexer over a source string.
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    fn peek(&self) -> u8 {
        *self.src.get(self.pos).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.src.get(self.pos + 1).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek();
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        c
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek2() == b'/' => {
                    while self.peek() != b'\n' && self.peek() != 0 {
                        self.bump();
                    }
                }
                b'/' if self.peek2() == b'*' => {
                    self.bump();
                    self.bump();
                    while !(self.peek() == b'*' && self.peek2() == b'/') && self.peek() != 0 {
                        self.bump();
                    }
                    self.bump();
                    self.bump();
                }
                _ => return,
            }
        }
    }

    /// Lex the entire input. Returns `Err(line, char)` on an unexpected
    /// byte.
    pub fn tokenize(mut self) -> Result<Vec<Token>, (u32, char)> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia();
            let line = self.line;
            let c = self.peek();
            let kind = match c {
                0 => {
                    out.push(Token {
                        kind: TokenKind::Eof,
                        line,
                    });
                    return Ok(out);
                }
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                    let start = self.pos;
                    while matches!(self.peek(), b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_') {
                        self.bump();
                    }
                    let word = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
                    match word {
                        "kernel" => TokenKind::Kernel,
                        "func" => TokenKind::Func,
                        "var" => TokenKind::Var,
                        "if" => TokenKind::If,
                        "else" => TokenKind::Else,
                        "while" => TokenKind::While,
                        "for" => TokenKind::For,
                        "return" => TokenKind::Return,
                        "in" => TokenKind::In,
                        "out" => TokenKind::Out,
                        "inout" => TokenKind::InOut,
                        "mem" => TokenKind::Mem,
                        _ => TokenKind::Ident(word.to_string()),
                    }
                }
                b'0'..=b'9' => {
                    let start = self.pos;
                    while self.peek().is_ascii_digit() {
                        self.bump();
                    }
                    let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
                    TokenKind::Int(text.parse().map_err(|_| (line, '9'))?)
                }
                b'(' => {
                    self.bump();
                    TokenKind::LParen
                }
                b')' => {
                    self.bump();
                    TokenKind::RParen
                }
                b'{' => {
                    self.bump();
                    TokenKind::LBrace
                }
                b'}' => {
                    self.bump();
                    TokenKind::RBrace
                }
                b'[' => {
                    self.bump();
                    TokenKind::LBracket
                }
                b']' => {
                    self.bump();
                    TokenKind::RBracket
                }
                b',' => {
                    self.bump();
                    TokenKind::Comma
                }
                b';' => {
                    self.bump();
                    TokenKind::Semi
                }
                b'?' => {
                    self.bump();
                    TokenKind::Question
                }
                b':' => {
                    self.bump();
                    TokenKind::Colon
                }
                b'~' => {
                    self.bump();
                    TokenKind::Tilde
                }
                b'^' => {
                    self.bump();
                    TokenKind::Caret
                }
                b'%' => {
                    self.bump();
                    TokenKind::Percent
                }
                b'+' => {
                    self.bump();
                    if self.peek() == b'=' {
                        self.bump();
                        TokenKind::PlusAssign
                    } else {
                        TokenKind::Plus
                    }
                }
                b'-' => {
                    self.bump();
                    if self.peek() == b'=' {
                        self.bump();
                        TokenKind::MinusAssign
                    } else {
                        TokenKind::Minus
                    }
                }
                b'*' => {
                    self.bump();
                    if self.peek() == b'=' {
                        self.bump();
                        TokenKind::StarAssign
                    } else {
                        TokenKind::Star
                    }
                }
                b'/' => {
                    self.bump();
                    TokenKind::Slash
                }
                b'&' => {
                    self.bump();
                    if self.peek() == b'&' {
                        self.bump();
                        TokenKind::AmpAmp
                    } else {
                        TokenKind::Amp
                    }
                }
                b'|' => {
                    self.bump();
                    if self.peek() == b'|' {
                        self.bump();
                        TokenKind::PipePipe
                    } else {
                        TokenKind::Pipe
                    }
                }
                b'=' => {
                    self.bump();
                    if self.peek() == b'=' {
                        self.bump();
                        TokenKind::EqEq
                    } else {
                        TokenKind::Assign
                    }
                }
                b'!' => {
                    self.bump();
                    if self.peek() == b'=' {
                        self.bump();
                        TokenKind::NotEq
                    } else {
                        TokenKind::Bang
                    }
                }
                b'<' => {
                    self.bump();
                    match self.peek() {
                        b'=' => {
                            self.bump();
                            TokenKind::Le
                        }
                        b'<' => {
                            self.bump();
                            TokenKind::Shl
                        }
                        _ => TokenKind::Lt,
                    }
                }
                b'>' => {
                    self.bump();
                    match self.peek() {
                        b'=' => {
                            self.bump();
                            TokenKind::Ge
                        }
                        b'>' => {
                            self.bump();
                            TokenKind::Shr
                        }
                        _ => TokenKind::Gt,
                    }
                }
                other => return Err((line, other as char)),
            };
            out.push(Token { kind, line });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn keywords_and_idents() {
        use TokenKind::*;
        assert_eq!(
            kinds("kernel foo in out inout bar"),
            vec![
                Kernel,
                Ident("foo".into()),
                In,
                Out,
                InOut,
                Ident("bar".into()),
                Eof
            ]
        );
    }

    #[test]
    fn operators_lex_greedily() {
        use TokenKind::*;
        assert_eq!(
            kinds("a <= b << c < d == e = f != g"),
            vec![
                Ident("a".into()),
                Le,
                Ident("b".into()),
                Shl,
                Ident("c".into()),
                Lt,
                Ident("d".into()),
                EqEq,
                Ident("e".into()),
                Assign,
                Ident("f".into()),
                NotEq,
                Ident("g".into()),
                Eof
            ]
        );
    }

    #[test]
    fn compound_assign() {
        use TokenKind::*;
        assert_eq!(
            kinds("x += 1; y -= 2; z *= 3;"),
            vec![
                Ident("x".into()),
                PlusAssign,
                Int(1),
                Semi,
                Ident("y".into()),
                MinusAssign,
                Int(2),
                Semi,
                Ident("z".into()),
                StarAssign,
                Int(3),
                Semi,
                Eof
            ]
        );
    }

    #[test]
    fn comments_are_trivia() {
        use TokenKind::*;
        assert_eq!(
            kinds("a // line\n b /* block\nblock */ c"),
            vec![Ident("a".into()), Ident("b".into()), Ident("c".into()), Eof]
        );
    }

    #[test]
    fn line_numbers_tracked() {
        let toks = Lexer::new("a\nb\n\nc").tokenize().unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn unexpected_byte_errors() {
        assert!(Lexer::new("a @ b").tokenize().is_err());
    }

    #[test]
    fn mem_keyword() {
        use TokenKind::*;
        assert_eq!(
            kinds("mem[a] = b;"),
            vec![
                Mem,
                LBracket,
                Ident("a".into()),
                RBracket,
                Assign,
                Ident("b".into()),
                Semi,
                Eof
            ]
        );
    }
}
