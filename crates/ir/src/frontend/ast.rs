//! Abstract syntax tree for MiniC.

use crate::op::Value;

/// A whole source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    pub items: Vec<Item>,
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Item {
    /// A loop body compiled to a DFG.
    Kernel(KernelDef),
    /// A general function compiled to a CDFG.
    Func(FuncDef),
}

/// Parameter direction for kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamDir {
    /// Per-iteration input stream.
    In,
    /// Per-iteration output stream.
    Out,
    /// Loop-carried state (read at the top of the iteration, written at
    /// the bottom; also emitted as an output stream).
    InOut,
}

/// A kernel parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    pub dir: ParamDir,
    pub name: String,
    /// Initial value for `inout` parameters (default 0).
    pub init: Value,
}

/// `kernel name(params) { body }`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelDef {
    pub name: String,
    pub params: Vec<Param>,
    pub body: Vec<Stmt>,
}

/// `func name(args) { body }`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncDef {
    pub name: String,
    pub args: Vec<String>,
    pub body: Vec<Stmt>,
}

/// Statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `var x = e;` (declaration) or `x = e;` (assignment); MiniC does
    /// not distinguish after parsing.
    Assign { name: String, value: Expr },
    /// `mem[a] = v;`
    MemStore { addr: Expr, value: Expr },
    /// `if (c) { .. } else { .. }`
    If {
        cond: Expr,
        then_body: Vec<Stmt>,
        else_body: Vec<Stmt>,
    },
    /// `while (c) { .. }` — only legal in `func` items.
    While { cond: Expr, body: Vec<Stmt> },
    /// A flattened statement sequence (produced by `for` desugaring).
    Seq(Vec<Stmt>),
    /// `return;` — only legal in `func` items.
    Return,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Neg,
    Not,
    BitNot,
}

/// Binary operators in MiniC surface syntax.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    LogAnd,
    LogOr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    Int(Value),
    Var(String),
    Unary(UnOp, Box<Expr>),
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `c ? a : b`
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `mem[addr]`
    MemLoad(Box<Expr>),
    /// Builtin calls: `abs(x)`, `min(a,b)`, `max(a,b)`, `select(c,a,b)`,
    /// `delay(x, k)` (value of `x` from `k` iterations ago; kernels only).
    Call(String, Vec<Expr>),
}
