//! The MiniC front-end: the "front-end" box of the survey's Figure 3.
//!
//! MiniC is a small C-like language sufficient for every kernel in the
//! CGRA-mapping literature. Two top-level forms exist:
//!
//! * `kernel name(in a, out y, inout acc = 0) { ... }` — a *loop body*,
//!   compiled straight to a [`Dfg`](crate::dfg::Dfg) with loop-carried
//!   edges for `inout` parameters; `if`/`else` inside a kernel is
//!   if-converted to `Select` operations (partial predication).
//! * `func name(a, b) { ... }` — a general function with `while`/`if`
//!   control flow, compiled to a [`Cdfg`](crate::cdfg::Cdfg).
//!
//! ```
//! let src = r#"
//! kernel saxpy(in x, in y, out z) {
//!     z = 2 * x + y;
//! }
//! "#;
//! let k = cgra_ir::frontend::compile_kernel(src).unwrap();
//! assert_eq!(k.dfg.name, "saxpy");
//! ```

mod ast;
mod lexer;
mod lower;
mod parser;

pub use ast::{BinOp, Expr, Item, Param, ParamDir, Program, Stmt, UnOp};
pub use lexer::{Lexer, Token, TokenKind};
pub use lower::{CompiledKernel, LowerError};
pub use parser::{ParseError, Parser};

use crate::cdfg::Cdfg;

/// Front-end errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrontendError {
    Parse(ParseError),
    Lower(LowerError),
    /// The requested item does not exist in the program.
    NoSuchItem(String),
}

impl std::fmt::Display for FrontendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrontendError::Parse(e) => write!(f, "parse error: {e}"),
            FrontendError::Lower(e) => write!(f, "lowering error: {e}"),
            FrontendError::NoSuchItem(n) => write!(f, "no kernel/func named `{n}`"),
        }
    }
}

impl std::error::Error for FrontendError {}

impl From<ParseError> for FrontendError {
    fn from(e: ParseError) -> Self {
        FrontendError::Parse(e)
    }
}

impl From<LowerError> for FrontendError {
    fn from(e: LowerError) -> Self {
        FrontendError::Lower(e)
    }
}

/// Parse a MiniC program.
pub fn parse(src: &str) -> Result<Program, FrontendError> {
    Ok(Parser::new(src)?.program()?)
}

/// Compile the first `kernel` in `src` to a DFG.
pub fn compile_kernel(src: &str) -> Result<CompiledKernel, FrontendError> {
    let prog = parse(src)?;
    let item = prog
        .items
        .iter()
        .find_map(|i| match i {
            Item::Kernel(k) => Some(k),
            _ => None,
        })
        .ok_or_else(|| FrontendError::NoSuchItem("<kernel>".into()))?;
    Ok(lower::lower_kernel(item)?)
}

/// Compile a named `kernel` to a DFG.
pub fn compile_kernel_named(src: &str, name: &str) -> Result<CompiledKernel, FrontendError> {
    let prog = parse(src)?;
    let item = prog
        .items
        .iter()
        .find_map(|i| match i {
            Item::Kernel(k) if k.name == name => Some(k),
            _ => None,
        })
        .ok_or_else(|| FrontendError::NoSuchItem(name.into()))?;
    Ok(lower::lower_kernel(item)?)
}

/// Compile the first `func` in `src` to a CDFG.
pub fn compile_func(src: &str) -> Result<Cdfg, FrontendError> {
    let prog = parse(src)?;
    let item = prog
        .items
        .iter()
        .find_map(|i| match i {
            Item::Func(f) => Some(f),
            _ => None,
        })
        .ok_or_else(|| FrontendError::NoSuchItem("<func>".into()))?;
    Ok(lower::lower_func(item)?)
}
