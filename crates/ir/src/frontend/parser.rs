//! Recursive-descent parser for MiniC with precedence climbing for
//! expressions.

use super::ast::*;
use super::lexer::{Lexer, Token, TokenKind};
use std::fmt;

/// Parse failure with the offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: u32,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// The MiniC parser.
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    pub fn new(src: &str) -> Result<Self, ParseError> {
        let tokens = Lexer::new(src).tokenize().map_err(|(line, c)| ParseError {
            line,
            message: format!("unexpected character `{c}`"),
        })?;
        Ok(Parser { tokens, pos: 0 })
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos.min(self.tokens.len() - 1)].line
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)]
            .kind
            .clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<(), ParseError> {
        if self.eat(&kind) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kind}, found {}", self.peek())))
        }
    }

    fn err(&self, message: String) -> ParseError {
        ParseError {
            line: self.line(),
            message,
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            TokenKind::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    /// Parse a whole program.
    pub fn program(&mut self) -> Result<Program, ParseError> {
        let mut items = Vec::new();
        while self.peek() != &TokenKind::Eof {
            items.push(self.item()?);
        }
        Ok(Program { items })
    }

    fn item(&mut self) -> Result<Item, ParseError> {
        match self.bump() {
            TokenKind::Kernel => {
                let name = self.ident()?;
                self.expect(TokenKind::LParen)?;
                let mut params = Vec::new();
                if self.peek() != &TokenKind::RParen {
                    loop {
                        params.push(self.param()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                self.expect(TokenKind::RParen)?;
                let body = self.block()?;
                Ok(Item::Kernel(KernelDef { name, params, body }))
            }
            TokenKind::Func => {
                let name = self.ident()?;
                self.expect(TokenKind::LParen)?;
                let mut args = Vec::new();
                if self.peek() != &TokenKind::RParen {
                    loop {
                        args.push(self.ident()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                self.expect(TokenKind::RParen)?;
                let body = self.block()?;
                Ok(Item::Func(FuncDef { name, args, body }))
            }
            other => Err(self.err(format!("expected `kernel` or `func`, found {other}"))),
        }
    }

    fn param(&mut self) -> Result<Param, ParseError> {
        let dir = match self.bump() {
            TokenKind::In => ParamDir::In,
            TokenKind::Out => ParamDir::Out,
            TokenKind::InOut => ParamDir::InOut,
            other => return Err(self.err(format!("expected `in`/`out`/`inout`, found {other}"))),
        };
        let name = self.ident()?;
        let mut init = 0;
        if self.eat(&TokenKind::Assign) {
            let neg = self.eat(&TokenKind::Minus);
            match self.bump() {
                TokenKind::Int(v) => init = if neg { -v } else { v },
                other => return Err(self.err(format!("expected integer init, found {other}"))),
            }
        }
        Ok(Param { dir, name, init })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect(TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek().clone() {
            TokenKind::Var => {
                self.bump();
                let name = self.ident()?;
                self.expect(TokenKind::Assign)?;
                let value = self.expr()?;
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Assign { name, value })
            }
            TokenKind::If => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let then_body = self.block()?;
                let else_body = if self.eat(&TokenKind::Else) {
                    self.block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_body,
                    else_body,
                })
            }
            TokenKind::While => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body })
            }
            TokenKind::For => {
                // `for (init; cond; step) { body }` desugars to
                // `init; while (cond) { body; step; }`.
                self.bump();
                self.expect(TokenKind::LParen)?;
                let init = self.simple_assign()?;
                self.expect(TokenKind::Semi)?;
                let cond = self.expr()?;
                self.expect(TokenKind::Semi)?;
                let step = self.simple_assign()?;
                self.expect(TokenKind::RParen)?;
                let mut body = self.block()?;
                body.push(step);
                Ok(Stmt::Seq(vec![init, Stmt::While { cond, body }]))
            }
            TokenKind::Return => {
                self.bump();
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Return)
            }
            TokenKind::Mem => {
                self.bump();
                self.expect(TokenKind::LBracket)?;
                let addr = self.expr()?;
                self.expect(TokenKind::RBracket)?;
                self.expect(TokenKind::Assign)?;
                let value = self.expr()?;
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::MemStore { addr, value })
            }
            TokenKind::Ident(name) => {
                self.bump();
                let op = self.bump();
                let rhs = self.expr()?;
                self.expect(TokenKind::Semi)?;
                let value = match op {
                    TokenKind::Assign => rhs,
                    TokenKind::PlusAssign => {
                        Expr::Binary(BinOp::Add, Box::new(Expr::Var(name.clone())), Box::new(rhs))
                    }
                    TokenKind::MinusAssign => {
                        Expr::Binary(BinOp::Sub, Box::new(Expr::Var(name.clone())), Box::new(rhs))
                    }
                    TokenKind::StarAssign => {
                        Expr::Binary(BinOp::Mul, Box::new(Expr::Var(name.clone())), Box::new(rhs))
                    }
                    other => return Err(self.err(format!("expected assignment, found {other}"))),
                };
                Ok(Stmt::Assign { name, value })
            }
            other => Err(self.err(format!("unexpected token {other} at statement start"))),
        }
    }

    /// An assignment without the trailing semicolon (for-loop header).
    fn simple_assign(&mut self) -> Result<Stmt, ParseError> {
        let has_var = self.eat(&TokenKind::Var);
        let _ = has_var;
        let name = self.ident()?;
        let op = self.bump();
        let rhs = self.expr()?;
        let value = match op {
            TokenKind::Assign => rhs,
            TokenKind::PlusAssign => {
                Expr::Binary(BinOp::Add, Box::new(Expr::Var(name.clone())), Box::new(rhs))
            }
            TokenKind::MinusAssign => {
                Expr::Binary(BinOp::Sub, Box::new(Expr::Var(name.clone())), Box::new(rhs))
            }
            TokenKind::StarAssign => {
                Expr::Binary(BinOp::Mul, Box::new(Expr::Var(name.clone())), Box::new(rhs))
            }
            other => return Err(self.err(format!("expected assignment, found {other}"))),
        };
        Ok(Stmt::Assign { name, value })
    }

    /// Full expression, including the ternary.
    pub fn expr(&mut self) -> Result<Expr, ParseError> {
        let cond = self.binary(0)?;
        if self.eat(&TokenKind::Question) {
            let a = self.expr()?;
            self.expect(TokenKind::Colon)?;
            let b = self.expr()?;
            Ok(Expr::Ternary(Box::new(cond), Box::new(a), Box::new(b)))
        } else {
            Ok(cond)
        }
    }

    /// Binding power of a binary operator, or `None` if not binary.
    fn bin_op(kind: &TokenKind) -> Option<(BinOp, u8)> {
        use TokenKind::*;
        Some(match kind {
            PipePipe => (BinOp::LogOr, 1),
            AmpAmp => (BinOp::LogAnd, 2),
            Pipe => (BinOp::Or, 3),
            Caret => (BinOp::Xor, 4),
            Amp => (BinOp::And, 5),
            EqEq => (BinOp::Eq, 6),
            NotEq => (BinOp::Ne, 6),
            Lt => (BinOp::Lt, 7),
            Le => (BinOp::Le, 7),
            Gt => (BinOp::Gt, 7),
            Ge => (BinOp::Ge, 7),
            Shl => (BinOp::Shl, 8),
            Shr => (BinOp::Shr, 8),
            Plus => (BinOp::Add, 9),
            Minus => (BinOp::Sub, 9),
            Star => (BinOp::Mul, 10),
            Slash => (BinOp::Div, 10),
            Percent => (BinOp::Rem, 10),
            _ => return None,
        })
    }

    fn binary(&mut self, min_bp: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        while let Some((op, bp)) = Self::bin_op(self.peek()) {
            if bp < min_bp {
                break;
            }
            self.bump();
            let rhs = self.binary(bp + 1)?; // left associative
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            TokenKind::Minus => {
                self.bump();
                Ok(Expr::Unary(UnOp::Neg, Box::new(self.unary()?)))
            }
            TokenKind::Bang => {
                self.bump();
                Ok(Expr::Unary(UnOp::Not, Box::new(self.unary()?)))
            }
            TokenKind::Tilde => {
                self.bump();
                Ok(Expr::Unary(UnOp::BitNot, Box::new(self.unary()?)))
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        // Remember where the expression started: `bump` advances past
        // the offending token, which would misattribute the error to
        // the following line.
        let line = self.line();
        match self.bump() {
            TokenKind::Int(v) => Ok(Expr::Int(v)),
            TokenKind::LParen => {
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Mem => {
                self.expect(TokenKind::LBracket)?;
                let addr = self.expr()?;
                self.expect(TokenKind::RBracket)?;
                Ok(Expr::MemLoad(Box::new(addr)))
            }
            TokenKind::Ident(name) => {
                if self.eat(&TokenKind::LParen) {
                    let mut args = Vec::new();
                    if self.peek() != &TokenKind::RParen {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(TokenKind::RParen)?;
                    Ok(Expr::Call(name, args))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(ParseError {
                line,
                message: format!("unexpected {other} in expression"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_expr(src: &str) -> Expr {
        let full = format!("kernel k(in x) {{ y = {src}; }}");
        let prog = Parser::new(&full).unwrap().program().unwrap();
        match &prog.items[0] {
            Item::Kernel(k) => match &k.body[0] {
                Stmt::Assign { value, .. } => value.clone(),
                _ => panic!(),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn precedence_mul_over_add() {
        let e = parse_expr("a + b * c");
        match e {
            Expr::Binary(BinOp::Add, _, rhs) => {
                assert!(matches!(*rhs, Expr::Binary(BinOp::Mul, _, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn left_associativity() {
        let e = parse_expr("a - b - c");
        // ((a - b) - c)
        match e {
            Expr::Binary(BinOp::Sub, lhs, rhs) => {
                assert!(matches!(*lhs, Expr::Binary(BinOp::Sub, _, _)));
                assert!(matches!(*rhs, Expr::Var(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn ternary_and_comparison() {
        let e = parse_expr("a > b ? a - b : b - a");
        assert!(matches!(e, Expr::Ternary(_, _, _)));
    }

    #[test]
    fn unary_chains() {
        let e = parse_expr("--a");
        assert!(matches!(e, Expr::Unary(UnOp::Neg, _)));
        let e = parse_expr("~!a");
        assert!(matches!(e, Expr::Unary(UnOp::BitNot, _)));
    }

    #[test]
    fn calls_and_mem() {
        let e = parse_expr("min(mem[a + 1], abs(b))");
        match e {
            Expr::Call(name, args) => {
                assert_eq!(name, "min");
                assert_eq!(args.len(), 2);
                assert!(matches!(args[0], Expr::MemLoad(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn kernel_params_with_init() {
        let prog = Parser::new("kernel k(in a, inout acc = -5, out y) { y = a; }")
            .unwrap()
            .program()
            .unwrap();
        match &prog.items[0] {
            Item::Kernel(k) => {
                assert_eq!(k.params.len(), 3);
                assert_eq!(k.params[1].dir, ParamDir::InOut);
                assert_eq!(k.params[1].init, -5);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn compound_assignment_desugars() {
        let prog = Parser::new("kernel k(inout s, in x) { s += x; }")
            .unwrap()
            .program()
            .unwrap();
        match &prog.items[0] {
            Item::Kernel(k) => match &k.body[0] {
                Stmt::Assign { name, value } => {
                    assert_eq!(name, "s");
                    assert!(matches!(value, Expr::Binary(BinOp::Add, _, _)));
                }
                _ => panic!(),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn func_with_while() {
        let prog = Parser::new("func f(n) { var i = 0; while (i < n) { i += 1; } return; }")
            .unwrap()
            .program()
            .unwrap();
        match &prog.items[0] {
            Item::Func(f) => {
                assert_eq!(f.args, vec!["n"]);
                assert!(matches!(f.body[1], Stmt::While { .. }));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn error_reports_line() {
        let err = Parser::new("kernel k(in a) {\n  y = ;\n}")
            .unwrap()
            .program()
            .unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn for_loop_desugars_to_seq_while() {
        let prog =
            Parser::new("func f(n) { var s = 0; for (i = 0; i < n; i += 1) { s += i; } return; }")
                .unwrap()
                .program()
                .unwrap();
        match &prog.items[0] {
            Item::Func(f) => match &f.body[1] {
                Stmt::Seq(stmts) => {
                    assert!(matches!(stmts[0], Stmt::Assign { .. }));
                    match &stmts[1] {
                        Stmt::While { body, .. } => {
                            // body + step
                            assert_eq!(body.len(), 2);
                        }
                        other => panic!("{other:?}"),
                    }
                }
                other => panic!("{other:?}"),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn if_else_statement() {
        let prog = Parser::new("kernel k(in x, out y) { if (x > 0) { y = x; } else { y = -x; } }")
            .unwrap()
            .program()
            .unwrap();
        match &prog.items[0] {
            Item::Kernel(k) => {
                assert!(matches!(k.body[0], Stmt::If { .. }));
            }
            _ => panic!(),
        }
    }
}
