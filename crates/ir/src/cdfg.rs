//! Control-data-flow graphs: basic blocks of data-flow, connected by
//! control edges.
//!
//! The survey (Section II-B) defines a CDFG as the combination of a
//! control-flow graph whose nodes are basic blocks with a data-flow
//! graph embedded in each block. Cross-block dataflow is expressed here
//! through named variables: each block declares the variables it reads
//! (`params`, bound to the block DFG's `Input` nodes in order) and the
//! variables it defines (`defs`). Executing a block reads the variable
//! environment, evaluates the block DFG for a single "iteration", and
//! writes the defined variables back — which is exactly the φ-free
//! SSA-with-block-arguments form modern compilers use.

use crate::dfg::{Dfg, NodeId};
use crate::op::Value;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Index of a basic block in its CDFG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockId(pub u32);

impl BlockId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// How control leaves a block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ControlKind {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way branch on the value produced by `cond` (a node of the
    /// block's DFG): nonzero → `then_to`, zero → `else_to`.
    Branch {
        cond: NodeId,
        then_to: BlockId,
        else_to: BlockId,
    },
    /// Function exit.
    Return,
}

/// A directed control edge (derived from terminators; kept explicit for
/// graph algorithms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControlEdge {
    pub from: BlockId,
    pub to: BlockId,
    /// True if this is the taken (`then`) leg of a branch.
    pub taken: bool,
}

/// A basic block: a DFG fragment plus its interface and terminator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BasicBlock {
    pub label: String,
    /// Variables read by this block; `params[i]` binds to the block
    /// DFG's `Input(i)` nodes.
    pub params: Vec<String>,
    /// Variables defined by this block: name → producing node.
    pub defs: Vec<(String, NodeId)>,
    /// The embedded data-flow graph (validated with
    /// [`Dfg::validate_with_phis`]).
    pub dfg: Dfg,
    pub terminator: ControlKind,
}

/// Natural-loop structure discovered by [`Cdfg::loops`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopInfo {
    pub header: BlockId,
    /// The in-loop predecessor of the header.
    pub latch: BlockId,
    /// All blocks in the loop body (header included).
    pub blocks: Vec<BlockId>,
}

/// What [`Cdfg::execute`] yields: the final variable environment, the
/// memory image, and the `(stream, value)` output log in issue order.
pub type ExecOutcome = (HashMap<String, Value>, Vec<Value>, Vec<(u32, Value)>);

/// A control-data-flow graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cdfg {
    pub name: String,
    pub blocks: Vec<BasicBlock>,
    pub entry: BlockId,
}

/// Errors raised by CDFG validation or execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CdfgError {
    UnknownBlock(BlockId),
    UnboundVariable { block: BlockId, var: String },
    BadBlockDfg { block: BlockId, msg: String },
    StepLimit,
}

impl fmt::Display for CdfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CdfgError::UnknownBlock(b) => write!(f, "terminator targets unknown block {b}"),
            CdfgError::UnboundVariable { block, var } => {
                write!(f, "{block} reads unbound variable `{var}`")
            }
            CdfgError::BadBlockDfg { block, msg } => write!(f, "{block}: {msg}"),
            CdfgError::StepLimit => write!(f, "execution exceeded the step limit"),
        }
    }
}

impl std::error::Error for CdfgError {}

impl Cdfg {
    pub fn new(name: impl Into<String>) -> Self {
        Cdfg {
            name: name.into(),
            blocks: Vec::new(),
            entry: BlockId(0),
        }
    }

    pub fn add_block(&mut self, block: BasicBlock) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(block);
        id
    }

    #[inline]
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    #[inline]
    pub fn block_mut(&mut self, id: BlockId) -> &mut BasicBlock {
        &mut self.blocks[id.index()]
    }

    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// All control edges, derived from terminators.
    pub fn control_edges(&self) -> Vec<ControlEdge> {
        let mut edges = Vec::new();
        for id in self.block_ids() {
            match &self.block(id).terminator {
                ControlKind::Jump(t) => edges.push(ControlEdge {
                    from: id,
                    to: *t,
                    taken: true,
                }),
                ControlKind::Branch {
                    then_to, else_to, ..
                } => {
                    edges.push(ControlEdge {
                        from: id,
                        to: *then_to,
                        taken: true,
                    });
                    edges.push(ControlEdge {
                        from: id,
                        to: *else_to,
                        taken: false,
                    });
                }
                ControlKind::Return => {}
            }
        }
        edges
    }

    /// Predecessor blocks of `b`.
    pub fn predecessors(&self, b: BlockId) -> Vec<BlockId> {
        self.control_edges()
            .into_iter()
            .filter(|e| e.to == b)
            .map(|e| e.from)
            .collect()
    }

    /// Structural validation: targets exist, block DFGs are well formed,
    /// branch conditions are nodes of their own block.
    pub fn validate(&self) -> Result<(), CdfgError> {
        let n = self.blocks.len() as u32;
        for id in self.block_ids() {
            let bb = self.block(id);
            if let Err(e) = bb.dfg.validate_with_phis() {
                return Err(CdfgError::BadBlockDfg {
                    block: id,
                    msg: e.to_string(),
                });
            }
            match &bb.terminator {
                ControlKind::Jump(t) => {
                    if t.0 >= n {
                        return Err(CdfgError::UnknownBlock(*t));
                    }
                }
                ControlKind::Branch {
                    cond,
                    then_to,
                    else_to,
                } => {
                    if then_to.0 >= n {
                        return Err(CdfgError::UnknownBlock(*then_to));
                    }
                    if else_to.0 >= n {
                        return Err(CdfgError::UnknownBlock(*else_to));
                    }
                    if cond.index() >= bb.dfg.node_count() {
                        return Err(CdfgError::BadBlockDfg {
                            block: id,
                            msg: format!("branch condition {cond} out of range"),
                        });
                    }
                }
                ControlKind::Return => {}
            }
        }
        Ok(())
    }

    /// Immediate dominators via the iterative Cooper-Harvey-Kennedy
    /// algorithm. `idom[entry] == entry`; unreachable blocks map to
    /// `None`.
    pub fn dominators(&self) -> Vec<Option<BlockId>> {
        let n = self.blocks.len();
        // Reverse postorder.
        let mut visited = vec![false; n];
        let mut post = Vec::with_capacity(n);
        let mut stack = vec![(self.entry, false)];
        let succs: Vec<Vec<BlockId>> = self
            .block_ids()
            .map(|b| match self.block(b).terminator {
                ControlKind::Jump(t) => vec![t],
                ControlKind::Branch {
                    then_to, else_to, ..
                } => vec![then_to, else_to],
                ControlKind::Return => vec![],
            })
            .collect();
        while let Some((b, processed)) = stack.pop() {
            if processed {
                post.push(b);
                continue;
            }
            if visited[b.index()] {
                continue;
            }
            visited[b.index()] = true;
            stack.push((b, true));
            for &s in &succs[b.index()] {
                if !visited[s.index()] {
                    stack.push((s, false));
                }
            }
        }
        let rpo: Vec<BlockId> = post.iter().rev().copied().collect();
        let mut rpo_num = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_num[b.index()] = i;
        }

        let preds: Vec<Vec<BlockId>> = self.block_ids().map(|b| self.predecessors(b)).collect();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[self.entry.index()] = Some(self.entry);
        let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
            while a != b {
                while rpo_num[a.index()] > rpo_num[b.index()] {
                    a = idom[a.index()].unwrap();
                }
                while rpo_num[b.index()] > rpo_num[a.index()] {
                    b = idom[b.index()].unwrap();
                }
            }
            a
        };
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &rpo {
                if b == self.entry {
                    continue;
                }
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b.index()] {
                    if idom[p.index()].is_some() {
                        new_idom = Some(match new_idom {
                            None => p,
                            Some(cur) => intersect(&idom, cur, p),
                        });
                    }
                }
                if new_idom.is_some() && idom[b.index()] != new_idom {
                    idom[b.index()] = new_idom;
                    changed = true;
                }
            }
        }
        idom
    }

    /// Natural loops: back edges `latch → header` where `header`
    /// dominates `latch`, with the body collected by reverse reachability.
    pub fn loops(&self) -> Vec<LoopInfo> {
        let idom = self.dominators();
        let dominates = |a: BlockId, mut b: BlockId| -> bool {
            loop {
                if a == b {
                    return true;
                }
                match idom[b.index()] {
                    Some(d) if d != b => b = d,
                    _ => return false,
                }
            }
        };
        let mut loops = Vec::new();
        for e in self.control_edges() {
            if dominates(e.to, e.from) {
                // Back edge e.from -> e.to.
                let header = e.to;
                let latch = e.from;
                let mut body = vec![header];
                let mut work = vec![latch];
                while let Some(b) = work.pop() {
                    if body.contains(&b) {
                        continue;
                    }
                    body.push(b);
                    for p in self.predecessors(b) {
                        work.push(p);
                    }
                }
                body.sort();
                loops.push(LoopInfo {
                    header,
                    latch,
                    blocks: body,
                });
            }
        }
        loops
    }

    /// Detect an if-then-else diamond: a branch block whose two
    /// successors both jump to a common join block. Returns
    /// `(branch, then, else, join)`.
    pub fn find_diamond(&self) -> Option<(BlockId, BlockId, BlockId, BlockId)> {
        for id in self.block_ids() {
            if let ControlKind::Branch {
                then_to, else_to, ..
            } = self.block(id).terminator
            {
                if then_to == else_to {
                    continue;
                }
                let j1 = match self.block(then_to).terminator {
                    ControlKind::Jump(t) => t,
                    _ => continue,
                };
                let j2 = match self.block(else_to).terminator {
                    ControlKind::Jump(t) => t,
                    _ => continue,
                };
                if j1 == j2 {
                    return Some((id, then_to, else_to, j1));
                }
            }
        }
        None
    }

    /// Execute the CDFG with initial variable bindings, a memory image,
    /// and per-stream inputs; returns the final environment and memory.
    ///
    /// Block-level `Input(i)` nodes read `params[i]` from the
    /// environment; `Output` nodes write to the `outputs` streams.
    pub fn execute(
        &self,
        mut env: HashMap<String, Value>,
        mut memory: Vec<Value>,
        step_limit: usize,
    ) -> Result<ExecOutcome, CdfgError> {
        use crate::op::OpKind;
        self.validate()?;
        let mut outputs: Vec<(u32, Value)> = Vec::new();
        let mut cur = self.entry;
        for _ in 0..step_limit {
            let bb = self.block(cur);
            // Evaluate the block DFG once.
            let order = bb.dfg.topo_order().map_err(|n| CdfgError::BadBlockDfg {
                block: cur,
                msg: format!("cycle at {n}"),
            })?;
            let mut vals = vec![0 as Value; bb.dfg.node_count()];
            for id in order {
                let op = bb.dfg.op(id);
                let operands: Vec<Value> = (0..op.ports().count() as u8)
                    .map(|p| vals[bb.dfg.operand(id, p).expect("validated").1.src.index()])
                    .collect();
                vals[id.index()] = match op {
                    OpKind::Input(i) => {
                        let var =
                            bb.params
                                .get(i as usize)
                                .ok_or_else(|| CdfgError::BadBlockDfg {
                                    block: cur,
                                    msg: format!("Input({i}) beyond params"),
                                })?;
                        *env.get(var).ok_or_else(|| CdfgError::UnboundVariable {
                            block: cur,
                            var: var.clone(),
                        })?
                    }
                    OpKind::Output(i) => {
                        outputs.push((i, operands[0]));
                        operands[0]
                    }
                    OpKind::Load => {
                        let addr = operands[0].rem_euclid(memory.len().max(1) as Value) as usize;
                        memory.get(addr).copied().unwrap_or(0)
                    }
                    OpKind::Store => {
                        let addr = operands[0].rem_euclid(memory.len().max(1) as Value) as usize;
                        if addr < memory.len() {
                            memory[addr] = operands[1];
                        }
                        operands[1]
                    }
                    OpKind::Phi => operands[0],
                    other => other.eval(&operands),
                };
            }
            for (name, node) in &bb.defs {
                env.insert(name.clone(), vals[node.index()]);
            }
            cur = match bb.terminator {
                ControlKind::Jump(t) => t,
                ControlKind::Branch {
                    cond,
                    then_to,
                    else_to,
                } => {
                    if vals[cond.index()] != 0 {
                        then_to
                    } else {
                        else_to
                    }
                }
                ControlKind::Return => return Ok((env, memory, outputs)),
            };
        }
        Err(CdfgError::StepLimit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpKind;

    /// Build: `i = 0; sum = 0; while (i < n) { sum += i; i += 1; } return`
    /// as a 4-block CDFG (the survey's Fig. 3 CFG shape: entry, header,
    /// body, exit).
    fn counting_loop() -> Cdfg {
        let mut c = Cdfg::new("count");
        // bb0: entry — define i=0, sum=0
        let mut d0 = Dfg::new("bb0");
        let zero = d0.add_node(OpKind::Const(0));
        let b0 = BasicBlock {
            label: "entry".into(),
            params: vec![],
            defs: vec![("i".into(), zero), ("sum".into(), zero)],
            dfg: d0,
            terminator: ControlKind::Jump(BlockId(1)),
        };
        // bb1: header — branch i < n
        let mut d1 = Dfg::new("bb1");
        let i_in = d1.add_node(OpKind::Input(0));
        let n_in = d1.add_node(OpKind::Input(1));
        let lt = d1.add_node(OpKind::Lt);
        d1.connect(i_in, lt, 0);
        d1.connect(n_in, lt, 1);
        let b1 = BasicBlock {
            label: "header".into(),
            params: vec!["i".into(), "n".into()],
            defs: vec![],
            dfg: d1,
            terminator: ControlKind::Branch {
                cond: lt,
                then_to: BlockId(2),
                else_to: BlockId(3),
            },
        };
        // bb2: body — sum += i; i += 1
        let mut d2 = Dfg::new("bb2");
        let i_in = d2.add_node(OpKind::Input(0));
        let s_in = d2.add_node(OpKind::Input(1));
        let one = d2.add_node(OpKind::Const(1));
        let add_s = d2.add_node(OpKind::Add);
        let add_i = d2.add_node(OpKind::Add);
        d2.connect(s_in, add_s, 0);
        d2.connect(i_in, add_s, 1);
        d2.connect(i_in, add_i, 0);
        d2.connect(one, add_i, 1);
        let b2 = BasicBlock {
            label: "body".into(),
            params: vec!["i".into(), "sum".into()],
            defs: vec![("sum".into(), add_s), ("i".into(), add_i)],
            dfg: d2,
            terminator: ControlKind::Jump(BlockId(1)),
        };
        // bb3: exit
        let b3 = BasicBlock {
            label: "exit".into(),
            params: vec![],
            defs: vec![],
            dfg: Dfg::new("bb3"),
            terminator: ControlKind::Return,
        };
        c.add_block(b0);
        c.add_block(b1);
        c.add_block(b2);
        c.add_block(b3);
        c
    }

    #[test]
    fn counting_loop_executes() {
        let c = counting_loop();
        c.validate().unwrap();
        let mut env = HashMap::new();
        env.insert("n".to_string(), 5);
        let (env, _, _) = c.execute(env, vec![], 1000).unwrap();
        assert_eq!(env["sum"], 1 + 2 + 3 + 4);
        assert_eq!(env["i"], 5);
    }

    #[test]
    fn loop_discovered() {
        let c = counting_loop();
        let loops = c.loops();
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].header, BlockId(1));
        assert_eq!(loops[0].latch, BlockId(2));
        assert!(loops[0].blocks.contains(&BlockId(1)));
        assert!(loops[0].blocks.contains(&BlockId(2)));
        assert!(!loops[0].blocks.contains(&BlockId(3)));
    }

    #[test]
    fn dominators_of_loop() {
        let c = counting_loop();
        let idom = c.dominators();
        assert_eq!(idom[0], Some(BlockId(0)));
        assert_eq!(idom[1], Some(BlockId(0)));
        assert_eq!(idom[2], Some(BlockId(1)));
        assert_eq!(idom[3], Some(BlockId(1)));
    }

    #[test]
    fn unbound_variable_errors() {
        let c = counting_loop();
        // No `n` in the environment.
        let err = c.execute(HashMap::new(), vec![], 1000).unwrap_err();
        assert!(matches!(err, CdfgError::UnboundVariable { .. }));
    }

    #[test]
    fn step_limit_enforced() {
        let c = counting_loop();
        let mut env = HashMap::new();
        env.insert("n".to_string(), 1_000_000);
        let err = c.execute(env, vec![], 10).unwrap_err();
        assert_eq!(err, CdfgError::StepLimit);
    }

    #[test]
    fn bad_terminator_target_detected() {
        let mut c = counting_loop();
        c.block_mut(BlockId(0)).terminator = ControlKind::Jump(BlockId(99));
        assert!(matches!(c.validate(), Err(CdfgError::UnknownBlock(_))));
    }

    #[test]
    fn diamond_detection() {
        // branch -> (then, else) -> join
        let mut c = Cdfg::new("ite");
        let mut d0 = Dfg::new("b");
        let x = d0.add_node(OpKind::Input(0));
        c.add_block(BasicBlock {
            label: "b".into(),
            params: vec!["x".into()],
            defs: vec![],
            dfg: d0,
            terminator: ControlKind::Branch {
                cond: x,
                then_to: BlockId(1),
                else_to: BlockId(2),
            },
        });
        for l in ["t", "e"] {
            c.add_block(BasicBlock {
                label: l.into(),
                params: vec![],
                defs: vec![],
                dfg: Dfg::new(l),
                terminator: ControlKind::Jump(BlockId(3)),
            });
        }
        c.add_block(BasicBlock {
            label: "j".into(),
            params: vec![],
            defs: vec![],
            dfg: Dfg::new("j"),
            terminator: ControlKind::Return,
        });
        assert_eq!(
            c.find_diamond(),
            Some((BlockId(0), BlockId(1), BlockId(2), BlockId(3)))
        );
    }

    #[test]
    fn control_edges_enumerated() {
        let c = counting_loop();
        let edges = c.control_edges();
        assert_eq!(edges.len(), 4); // jump, 2 branch legs, body jump
    }
}
