//! Operation kinds supported by the IR and by CGRA processing elements.
//!
//! The operation set follows the common denominator of the CGRA-mapping
//! literature: word-level integer ALU operations, multiplication,
//! comparisons, a select (the workhorse of predicated execution), memory
//! accesses, and the pseudo-operations needed by graph-based mappers
//! (`Route` copy nodes) and by CDFG lowering (`Phi`).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The scalar value type carried on all DFG edges.
///
/// CGRAs in the surveyed literature are word-level machines; we model the
/// word as a signed 64-bit integer so that every 8/16/32-bit kernel from
/// the benchmark suites evaluates without overflow surprises.
pub type Value = i64;

/// Number of input operands an operation consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortCount {
    /// Exactly `n` ordered operands.
    Fixed(u8),
    /// `Output` sinks accept exactly one; kept separate for clarity.
    One,
}

impl PortCount {
    /// The concrete operand count.
    #[inline]
    pub fn count(self) -> usize {
        match self {
            PortCount::Fixed(n) => n as usize,
            PortCount::One => 1,
        }
    }
}

/// Every operation a DFG node can perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Compile-time constant, materialised in the PE configuration.
    Const(Value),
    /// Per-iteration input stream, identified by an index into the tape.
    Input(u32),
    /// Per-iteration output stream, identified by an index into the tape.
    Output(u32),
    Add,
    Sub,
    Mul,
    /// Signed division; division by zero yields 0 (hardware-saturating
    /// semantics, matching the reference interpreters of e.g. CGRA-ME).
    Div,
    /// Remainder; remainder by zero yields 0.
    Rem,
    And,
    Or,
    Xor,
    /// Logical shift left (shift amount masked to 0..=63).
    Shl,
    /// Arithmetic shift right (shift amount masked to 0..=63).
    Shr,
    /// Unary bitwise not.
    Not,
    /// Unary arithmetic negation.
    Neg,
    Min,
    Max,
    /// Unary absolute value.
    Abs,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// `Select(cond, a, b)` = `cond != 0 ? a : b`; the primitive of
    /// partial predication and dual-issue execution schemes.
    Select,
    /// Memory load: operand 0 is the address.
    Load,
    /// Memory store: operand 0 is the address, operand 1 the value.
    /// Produces the stored value (so stores can feed forwarding edges).
    Store,
    /// SSA φ-node; only legal inside a CDFG basic block, removed by
    /// if-conversion / lowering before mapping.
    Phi,
    /// Identity copy inserted by mappers to route a value through a PE
    /// or a register file slot. Never produced by the front-end.
    Route,
}

impl OpKind {
    /// Number of operands the operation consumes.
    pub fn ports(self) -> PortCount {
        use OpKind::*;
        match self {
            Const(_) | Input(_) => PortCount::Fixed(0),
            Output(_) => PortCount::One,
            Not | Neg | Abs | Load | Route => PortCount::Fixed(1),
            Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr | Min | Max | Eq | Ne | Lt
            | Le | Gt | Ge | Store => PortCount::Fixed(2),
            Select => PortCount::Fixed(3),
            // φ arity is block-dependent; validated by the CDFG, not here.
            Phi => PortCount::Fixed(2),
        }
    }

    /// True for operations with no data inputs.
    #[inline]
    pub fn is_source(self) -> bool {
        matches!(self, OpKind::Const(_) | OpKind::Input(_))
    }

    /// True for the output sink.
    #[inline]
    pub fn is_sink(self) -> bool {
        matches!(self, OpKind::Output(_))
    }

    /// True if the operation touches data memory.
    #[inline]
    pub fn is_memory(self) -> bool {
        matches!(self, OpKind::Load | OpKind::Store)
    }

    /// True for the multiplier-class operations that heterogeneous
    /// fabrics restrict to dedicated cells.
    #[inline]
    pub fn needs_multiplier(self) -> bool {
        matches!(self, OpKind::Mul | OpKind::Div | OpKind::Rem)
    }

    /// True for pseudo-operations that must not appear in a mappable DFG.
    #[inline]
    pub fn is_pseudo(self) -> bool {
        matches!(self, OpKind::Phi)
    }

    /// True if the node is a routing copy.
    #[inline]
    pub fn is_route(self) -> bool {
        matches!(self, OpKind::Route)
    }

    /// Evaluate the operation on its operand values.
    ///
    /// `Load`/`Store`/`Input`/`Output` require external state and are
    /// handled by the interpreter; calling `eval` on them panics.
    pub fn eval(self, operands: &[Value]) -> Value {
        use OpKind::*;
        let a = |i: usize| operands[i];
        match self {
            Const(c) => c,
            Add => a(0).wrapping_add(a(1)),
            Sub => a(0).wrapping_sub(a(1)),
            Mul => a(0).wrapping_mul(a(1)),
            Div => {
                if a(1) == 0 {
                    0
                } else {
                    a(0).wrapping_div(a(1))
                }
            }
            Rem => {
                if a(1) == 0 {
                    0
                } else {
                    a(0).wrapping_rem(a(1))
                }
            }
            And => a(0) & a(1),
            Or => a(0) | a(1),
            Xor => a(0) ^ a(1),
            Shl => a(0).wrapping_shl((a(1) & 63) as u32),
            Shr => a(0).wrapping_shr((a(1) & 63) as u32),
            Not => !a(0),
            Neg => a(0).wrapping_neg(),
            Min => a(0).min(a(1)),
            Max => a(0).max(a(1)),
            Abs => a(0).wrapping_abs(),
            Eq => (a(0) == a(1)) as Value,
            Ne => (a(0) != a(1)) as Value,
            Lt => (a(0) < a(1)) as Value,
            Le => (a(0) <= a(1)) as Value,
            Gt => (a(0) > a(1)) as Value,
            Ge => (a(0) >= a(1)) as Value,
            Select => {
                if a(0) != 0 {
                    a(1)
                } else {
                    a(2)
                }
            }
            Route => a(0),
            Input(_) | Output(_) | Load | Store | Phi => {
                panic!("OpKind::eval called on stateful op {self:?}")
            }
        }
    }

    /// Short mnemonic used by renderers and configuration dumps.
    pub fn mnemonic(self) -> &'static str {
        use OpKind::*;
        match self {
            Const(_) => "const",
            Input(_) => "in",
            Output(_) => "out",
            Add => "add",
            Sub => "sub",
            Mul => "mul",
            Div => "div",
            Rem => "rem",
            And => "and",
            Or => "or",
            Xor => "xor",
            Shl => "shl",
            Shr => "shr",
            Not => "not",
            Neg => "neg",
            Min => "min",
            Max => "max",
            Abs => "abs",
            Eq => "eq",
            Ne => "ne",
            Lt => "lt",
            Le => "le",
            Gt => "gt",
            Ge => "ge",
            Select => "sel",
            Load => "ld",
            Store => "st",
            Phi => "phi",
            Route => "rt",
        }
    }

    /// All evaluable binary ALU kinds (used by property tests and random
    /// DFG generators).
    pub fn binary_alu_kinds() -> &'static [OpKind] {
        use OpKind::*;
        &[
            Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr, Min, Max, Eq, Ne, Lt, Le, Gt, Ge,
        ]
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpKind::Const(c) => write!(f, "const({c})"),
            OpKind::Input(i) => write!(f, "in{i}"),
            OpKind::Output(i) => write!(f, "out{i}"),
            other => f.write_str(other.mnemonic()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_counts_match_eval_arity() {
        for &k in OpKind::binary_alu_kinds() {
            assert_eq!(k.ports().count(), 2, "{k}");
            // Must not panic with two operands.
            let _ = k.eval(&[7, 3]);
        }
        assert_eq!(OpKind::Select.ports().count(), 3);
        assert_eq!(OpKind::Not.ports().count(), 1);
        assert_eq!(OpKind::Const(5).ports().count(), 0);
    }

    #[test]
    fn division_by_zero_saturates_to_zero() {
        assert_eq!(OpKind::Div.eval(&[42, 0]), 0);
        assert_eq!(OpKind::Rem.eval(&[42, 0]), 0);
        assert_eq!(OpKind::Div.eval(&[42, 5]), 8);
    }

    #[test]
    fn select_semantics() {
        assert_eq!(OpKind::Select.eval(&[1, 10, 20]), 10);
        assert_eq!(OpKind::Select.eval(&[0, 10, 20]), 20);
        assert_eq!(OpKind::Select.eval(&[-3, 10, 20]), 10);
    }

    #[test]
    fn comparisons_produce_zero_or_one() {
        assert_eq!(OpKind::Lt.eval(&[1, 2]), 1);
        assert_eq!(OpKind::Lt.eval(&[2, 1]), 0);
        assert_eq!(OpKind::Ge.eval(&[2, 2]), 1);
    }

    #[test]
    fn wrapping_arithmetic_does_not_panic() {
        assert_eq!(OpKind::Add.eval(&[Value::MAX, 1]), Value::MIN);
        assert_eq!(OpKind::Mul.eval(&[Value::MAX, 2]), -2);
        assert_eq!(OpKind::Neg.eval(&[Value::MIN]), Value::MIN);
        assert_eq!(OpKind::Abs.eval(&[Value::MIN]), Value::MIN);
    }

    #[test]
    fn shifts_mask_amount() {
        assert_eq!(OpKind::Shl.eval(&[1, 64]), 1); // 64 & 63 == 0
        assert_eq!(OpKind::Shl.eval(&[1, 3]), 8);
        assert_eq!(OpKind::Shr.eval(&[-8, 1]), -4); // arithmetic shift
    }

    #[test]
    fn memory_and_phi_classification() {
        assert!(OpKind::Load.is_memory());
        assert!(OpKind::Store.is_memory());
        assert!(!OpKind::Add.is_memory());
        assert!(OpKind::Phi.is_pseudo());
        assert!(OpKind::Mul.needs_multiplier());
        assert!(!OpKind::Add.needs_multiplier());
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(OpKind::Const(3).to_string(), "const(3)");
        assert_eq!(OpKind::Input(0).to_string(), "in0");
        assert_eq!(OpKind::Select.to_string(), "sel");
    }
}
