//! Middle-end optimisation passes — the "middle-end" box of the
//! survey's Figure 3.
//!
//! All passes operate on loop-body DFGs and preserve the observable
//! behaviour of the reference interpreter: outputs, memory effects, and
//! loop-carried state evolution.

use crate::dfg::{Dfg, Edge, NodeId};
use crate::op::{OpKind, Value};
use std::collections::HashMap;

/// Fold operations whose operands are all intra-iteration constants.
/// Returns the number of nodes folded.
pub fn const_fold(dfg: &mut Dfg) -> usize {
    let mut folded = 0;
    loop {
        let mut change: Option<(NodeId, Value)> = None;
        'scan: for (id, node) in dfg.nodes() {
            match node.op {
                OpKind::Const(_)
                | OpKind::Input(_)
                | OpKind::Output(_)
                | OpKind::Load
                | OpKind::Store
                | OpKind::Phi => continue,
                _ => {}
            }
            let arity = node.op.ports().count();
            let mut vals = Vec::with_capacity(arity);
            for p in 0..arity as u8 {
                match dfg.operand(id, p) {
                    Some((_, e)) if e.dist == 0 => match dfg.op(e.src) {
                        OpKind::Const(v) => vals.push(v),
                        _ => continue 'scan,
                    },
                    _ => continue 'scan,
                }
            }
            change = Some((id, node.op.eval(&vals)));
            break;
        }
        match change {
            Some((id, v)) => {
                // Drop the operand edges and retype the node.
                let keep: Vec<Edge> = dfg
                    .edges()
                    .filter(|(_, e)| e.dst != id)
                    .map(|(_, e)| e.clone())
                    .collect();
                let mut rebuilt = Dfg::new(dfg.name.clone());
                for (_, n) in dfg.nodes() {
                    let nid = rebuilt.add_node(n.op);
                    rebuilt.node_mut(nid).name = n.name.clone();
                }
                rebuilt.node_mut(id).op = OpKind::Const(v);
                for e in keep {
                    rebuilt.add_edge(e);
                }
                *dfg = rebuilt;
                folded += 1;
            }
            None => return folded,
        }
    }
}

/// Dead-code elimination: remove nodes from which no `Output` or
/// `Store` is reachable. Returns the number of nodes removed.
pub fn dce(dfg: &mut Dfg) -> usize {
    let n = dfg.node_count();
    let mut live = vec![false; n];
    let mut work: Vec<NodeId> = dfg
        .node_ids()
        .filter(|&id| matches!(dfg.op(id), OpKind::Output(_) | OpKind::Store))
        .collect();
    for &id in &work {
        live[id.index()] = true;
    }
    while let Some(id) = work.pop() {
        for (_, e) in dfg.in_edges(id) {
            if !live[e.src.index()] {
                live[e.src.index()] = true;
                work.push(e.src);
            }
        }
    }
    let removed = live.iter().filter(|&&l| !l).count();
    if removed > 0 {
        dfg.retain_nodes(|id| live[id.index()]);
    }
    removed
}

/// CSE identity: opcode plus the per-port `(source, distance, init)`
/// operand signature.
type CseKey = (OpKind, Vec<(NodeId, u32, Vec<Value>)>);

/// Common-subexpression elimination: merge nodes with identical opcode
/// and identical operand edges (source, distance, init). Conservative
/// around memory: `Load`/`Store`/`Input`/`Output` are never merged.
pub fn cse(dfg: &mut Dfg) -> usize {
    let mut merged = 0;
    loop {
        let mut seen: HashMap<CseKey, NodeId> = HashMap::new();
        let mut replace: Option<(NodeId, NodeId)> = None;
        let order = match dfg.topo_order() {
            Ok(o) => o,
            Err(_) => return merged,
        };
        for id in order {
            let op = dfg.op(id);
            if matches!(
                op,
                OpKind::Load | OpKind::Store | OpKind::Input(_) | OpKind::Output(_) | OpKind::Phi
            ) {
                continue;
            }
            // Skip dead nodes: a merged-away duplicate keeps its operand
            // edges until DCE runs, and re-matching it here would loop.
            if dfg.out_edges(id).next().is_none() {
                continue;
            }
            let arity = op.ports().count();
            let mut key_ops = Vec::with_capacity(arity);
            let mut complete = true;
            for p in 0..arity as u8 {
                match dfg.operand(id, p) {
                    Some((_, e)) => key_ops.push((e.src, e.dist, e.init.clone())),
                    None => {
                        complete = false;
                        break;
                    }
                }
            }
            if !complete {
                continue;
            }
            let key = (op, key_ops);
            if let Some(&prev) = seen.get(&key) {
                if prev != id {
                    replace = Some((id, prev));
                    break;
                }
            } else {
                seen.insert(key, id);
            }
        }
        match replace {
            Some((dup, keep)) => {
                dfg.replace_uses(dup, keep);
                merged += 1;
                // Leave the now-dead node for DCE.
            }
            None => return merged,
        }
    }
}

/// Algebraic simplification / strength reduction:
/// `x*1 → x`, `x*0 → 0`, `x+0 → x`, `x-0 → x`, `x/1 → x`,
/// `x<<0 → x`, `x>>0 → x`, `x*2^k → x<<k`, `x&x → x`, `x|x → x`,
/// `x^x → 0`, `x-x → 0`. Returns rewrites applied.
pub fn algebraic(dfg: &mut Dfg) -> usize {
    let mut rewrites = 0;
    loop {
        let mut action: Option<Action> = None;
        enum Action {
            /// Replace uses of `node` with `with`.
            Forward { node: NodeId, with: NodeId },
            /// Retype `node` as `Const(v)`, dropping operand edges.
            ToConst { node: NodeId, v: Value },
            /// Turn `node` (a Mul by 2^k) into Shl with constant `k`
            /// feeding port 1 (reusing the existing const node).
            MulToShl { node: NodeId, k: Value },
        }
        'scan: for (id, node) in dfg.nodes() {
            let op = node.op;
            let arity = op.ports().count();
            if arity != 2 {
                continue;
            }
            // A node with no consumers is dead (DCE's business): acting
            // on it cannot change behaviour, and a `Forward` rewrite
            // would match it again forever since its operand edges stay.
            if dfg.out_edges(id).next().is_none() {
                continue;
            }
            let e0 = match dfg.operand(id, 0) {
                Some((_, e)) => e.clone(),
                None => continue,
            };
            let e1 = match dfg.operand(id, 1) {
                Some((_, e)) => e.clone(),
                None => continue,
            };
            let c0 = match dfg.op(e0.src) {
                OpKind::Const(v) if e0.dist == 0 => Some(v),
                _ => None,
            };
            let c1 = match dfg.op(e1.src) {
                OpKind::Const(v) if e1.dist == 0 => Some(v),
                _ => None,
            };
            let same_src = e0.src == e1.src && e0.dist == 0 && e1.dist == 0;
            let forward0 = e0.dist == 0;
            let forward1 = e1.dist == 0;
            match op {
                OpKind::Mul => {
                    if c1 == Some(1) && forward0 {
                        action = Some(Action::Forward {
                            node: id,
                            with: e0.src,
                        });
                    } else if c0 == Some(1) && forward1 {
                        action = Some(Action::Forward {
                            node: id,
                            with: e1.src,
                        });
                    } else if c1 == Some(0) || c0 == Some(0) {
                        action = Some(Action::ToConst { node: id, v: 0 });
                    } else if let Some(v) = c1 {
                        if v > 1 && (v & (v - 1)) == 0 {
                            action = Some(Action::MulToShl {
                                node: id,
                                k: v.trailing_zeros() as Value,
                            });
                        }
                    }
                }
                OpKind::Add => {
                    if c1 == Some(0) && forward0 {
                        action = Some(Action::Forward {
                            node: id,
                            with: e0.src,
                        });
                    } else if c0 == Some(0) && forward1 {
                        action = Some(Action::Forward {
                            node: id,
                            with: e1.src,
                        });
                    }
                }
                OpKind::Sub => {
                    if c1 == Some(0) && forward0 {
                        action = Some(Action::Forward {
                            node: id,
                            with: e0.src,
                        });
                    } else if same_src {
                        action = Some(Action::ToConst { node: id, v: 0 });
                    }
                }
                OpKind::Div if c1 == Some(1) && forward0 => {
                    action = Some(Action::Forward {
                        node: id,
                        with: e0.src,
                    });
                }
                OpKind::Shl | OpKind::Shr if c1 == Some(0) && forward0 => {
                    action = Some(Action::Forward {
                        node: id,
                        with: e0.src,
                    });
                }
                OpKind::And | OpKind::Or if same_src && forward0 => {
                    action = Some(Action::Forward {
                        node: id,
                        with: e0.src,
                    });
                }
                OpKind::Xor if same_src => {
                    action = Some(Action::ToConst { node: id, v: 0 });
                }
                _ => {}
            }
            if action.is_some() {
                break 'scan;
            }
        }
        match action {
            Some(Action::Forward { node, with }) => {
                dfg.replace_uses(node, with);
                rewrites += 1;
            }
            Some(Action::ToConst { node, v }) => {
                let edges: Vec<Edge> = dfg
                    .edges()
                    .filter(|(_, e)| e.dst != node)
                    .map(|(_, e)| e.clone())
                    .collect();
                let mut rebuilt = Dfg::new(dfg.name.clone());
                for (_, n) in dfg.nodes() {
                    let nid = rebuilt.add_node(n.op);
                    rebuilt.node_mut(nid).name = n.name.clone();
                }
                rebuilt.node_mut(node).op = OpKind::Const(v);
                for e in edges {
                    rebuilt.add_edge(e);
                }
                *dfg = rebuilt;
                rewrites += 1;
            }
            Some(Action::MulToShl { node, k }) => {
                let kc = dfg.add_node(OpKind::Const(k));
                dfg.node_mut(node).op = OpKind::Shl;
                let eid = dfg.operand(node, 1).map(|(id, _)| id).unwrap();
                let e = dfg.edge_mut(eid);
                e.src = kc;
                e.dist = 0;
                e.init.clear();
                rewrites += 1;
            }
            None => return rewrites,
        }
    }
}

/// Rebalance chains of a single associative, commutative operation
/// (`Add`, `Mul`, `And`, `Or`, `Xor`, `Min`, `Max`) into balanced
/// trees, reducing critical-path length — the classic *tree height
/// reduction*. Only rewrites intra-iteration, single-use chains.
/// Returns the number of chains rebalanced.
pub fn tree_height_reduction(dfg: &mut Dfg) -> usize {
    let assoc = |op: OpKind| {
        matches!(
            op,
            OpKind::Add
                | OpKind::Mul
                | OpKind::And
                | OpKind::Or
                | OpKind::Xor
                | OpKind::Min
                | OpKind::Max
        )
    };
    let mut uses = vec![0usize; dfg.node_count()];
    for (_, e) in dfg.edges() {
        uses[e.src.index()] += 1;
    }
    // For one root, collect the maximal same-op, single-use, dist-0
    // chain. Returns (members, leaves) or None if the chain is too
    // short or crosses a carried edge.
    fn collect_chain(
        dfg: &Dfg,
        root: NodeId,
        op: OpKind,
        uses: &[usize],
    ) -> Option<(Vec<NodeId>, Vec<NodeId>)> {
        let mut leaves = Vec::new();
        let mut members = Vec::new();
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            members.push(n);
            for p in 0..2u8 {
                let (_, e) = dfg.operand(n, p)?;
                if e.dist > 0 {
                    return None; // carried operand: keep intact
                }
                if dfg.op(e.src) == op && uses[e.src.index()] == 1 {
                    stack.push(e.src);
                } else {
                    leaves.push(e.src);
                }
            }
        }
        if members.len() < 3 {
            None
        } else {
            Some((members, leaves))
        }
    }

    let mut rebalanced = 0;
    let roots: Vec<NodeId> = dfg
        .node_ids()
        .filter(|&id| {
            let op = dfg.op(id);
            if !assoc(op) {
                return false;
            }
            // A chain root is not itself consumed once by the same op.
            !dfg.out_edges(id)
                .next()
                .map(|(_, e)| dfg.op(e.dst) == op && uses[id.index()] == 1 && e.dist == 0)
                .unwrap_or(false)
        })
        .collect();
    for root in roots {
        // Node ids are stable across this pass (we only rewrite edges
        // and drop orphans afterwards), but `uses` may change; recompute.
        let mut uses = vec![0usize; dfg.node_count()];
        for (_, e) in dfg.edges() {
            uses[e.src.index()] += 1;
        }
        if root.index() >= dfg.node_count() || !assoc(dfg.op(root)) {
            continue;
        }
        let op = dfg.op(root);
        let Some((members, leaves)) = collect_chain(dfg, root, op, &uses) else {
            continue;
        };
        // Disconnect all edges into chain members, then rebuild a
        // balanced tree over the leaves with fresh internal nodes and
        // the original root as the final combine (so consumers keep
        // their edges).
        let mut member_set = vec![false; dfg.node_count()];
        for &m in &members {
            member_set[m.index()] = true;
        }
        let kept: Vec<Edge> = dfg
            .edges()
            .filter(|(_, e)| !member_set[e.dst.index()])
            .map(|(_, e)| e.clone())
            .collect();
        let mut rebuilt = Dfg::new(dfg.name.clone());
        for (_, n) in dfg.nodes() {
            let nid = rebuilt.add_node(n.op);
            rebuilt.node_mut(nid).name = n.name.clone();
        }
        for e in kept {
            rebuilt.add_edge(e);
        }
        let mut level = leaves;
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            for pair in level.chunks(2) {
                if pair.len() == 2 {
                    let parent = if level.len() == 2 {
                        root
                    } else {
                        rebuilt.add_node(op)
                    };
                    rebuilt.connect(pair[0], parent, 0);
                    rebuilt.connect(pair[1], parent, 1);
                    next.push(parent);
                } else {
                    next.push(pair[0]);
                }
            }
            level = next;
        }
        *dfg = rebuilt;
        rebalanced += 1;
    }
    if rebalanced > 0 {
        dce(dfg); // drop orphaned ex-members
    }
    rebalanced
}

/// Run `const_fold`, `algebraic`, `cse`, and `dce` to a fixpoint.
/// Returns total rewrites.
pub fn optimize(dfg: &mut Dfg) -> usize {
    let mut total = 0;
    loop {
        let n = const_fold(dfg) + algebraic(dfg) + cse(dfg) + dce(dfg);
        total += n;
        if n == 0 {
            return total;
        }
    }
}

/// Unroll a loop body `factor` times.
///
/// The unrolled DFG executes `factor` original iterations per new
/// iteration. Input/output stream `s` of copy `j` becomes stream
/// `s * factor + j`, i.e. streams are interleaved per original stream;
/// [`reshape_tape`] converts tapes accordingly.
pub fn unroll(dfg: &Dfg, factor: u32) -> Dfg {
    assert!(factor >= 1);
    if factor == 1 {
        return dfg.clone();
    }
    let f = factor as i64;
    let mut out = Dfg::new(format!("{}_x{}", dfg.name, factor));
    let n = dfg.node_count();
    // copies[j][orig] = new id
    let mut copies: Vec<Vec<NodeId>> = Vec::with_capacity(factor as usize);
    for j in 0..factor {
        let mut ids = Vec::with_capacity(n);
        for (_, node) in dfg.nodes() {
            let op = match node.op {
                OpKind::Input(s) => OpKind::Input(s * factor + j),
                OpKind::Output(s) => OpKind::Output(s * factor + j),
                other => other,
            };
            let nid = out.add_node(op);
            out.node_mut(nid).name = node.name.as_ref().map(|s| format!("{s}#{j}"));
            ids.push(nid);
        }
        copies.push(ids);
    }
    for (_, e) in dfg.edges() {
        for j in 0..factor as i64 {
            let shifted = j - e.dist as i64;
            let new_dist = (-shifted.div_euclid(f)) as u32;
            let src_copy = shifted.rem_euclid(f) as usize;
            let init: Vec<Value> = (0..new_dist as i64)
                .map(|i| {
                    let orig_iter = (i * f + j) as usize;
                    e.init.get(orig_iter).copied().unwrap_or(0)
                })
                .collect();
            out.add_edge(Edge {
                src: copies[src_copy][e.src.index()],
                dst: copies[j as usize][e.dst.index()],
                port: e.port,
                dist: new_dist,
                init,
            });
        }
    }
    out
}

/// Convert a tape for the original kernel into the tape layout produced
/// by [`unroll`] with the same factor.
pub fn reshape_tape(tape: &crate::interp::Tape, factor: usize) -> crate::interp::Tape {
    let mut inputs = Vec::with_capacity(tape.inputs.len() * factor);
    for s in &tape.inputs {
        for j in 0..factor {
            inputs.push(s.iter().skip(j).step_by(factor).copied().collect());
        }
    }
    crate::interp::Tape {
        inputs,
        memory: tape.memory.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{Interpreter, Tape};
    use crate::kernels;

    fn behaviour(dfg: &Dfg, streams: usize, iters: usize) -> Vec<Vec<Value>> {
        let tape = Tape::generate(streams, iters, |s, i| (s as i64 + 2) * (i as i64 + 1) % 97)
            .with_memory(vec![7; 64]);
        Interpreter::run(dfg, iters, &tape).unwrap().outputs
    }

    #[test]
    fn const_fold_collapses_constant_trees() {
        let mut g = Dfg::new("cf");
        let a = g.add_node(OpKind::Const(6));
        let b = g.add_node(OpKind::Const(7));
        let m = g.add_node(OpKind::Mul);
        g.connect(a, m, 0);
        g.connect(b, m, 1);
        let o = g.add_node(OpKind::Output(0));
        g.connect(m, o, 0);
        assert_eq!(const_fold(&mut g), 1);
        assert_eq!(g.op(NodeId(2)), OpKind::Const(42));
        dce(&mut g);
        assert_eq!(g.node_count(), 2); // const + output
    }

    #[test]
    fn dce_removes_unreachable() {
        let mut g = kernels::dot_product();
        let dead1 = g.add_node(OpKind::Const(1));
        let dead2 = g.add_node(OpKind::Not);
        g.connect(dead1, dead2, 0);
        assert_eq!(dce(&mut g), 2);
        assert_eq!(g.node_count(), 5);
        g.validate().unwrap();
    }

    #[test]
    fn dce_keeps_stores() {
        let mut g = Dfg::new("st");
        let a = g.add_node(OpKind::Const(3));
        let st = g.add_node(OpKind::Store);
        g.connect(a, st, 0);
        g.connect(a, st, 1);
        assert_eq!(dce(&mut g), 0);
    }

    #[test]
    fn cse_merges_duplicate_exprs() {
        let mut g = Dfg::new("cse");
        let a = g.add_node(OpKind::Input(0));
        let b = g.add_node(OpKind::Input(1));
        let m1 = g.add_node(OpKind::Mul);
        let m2 = g.add_node(OpKind::Mul);
        g.connect(a, m1, 0);
        g.connect(b, m1, 1);
        g.connect(a, m2, 0);
        g.connect(b, m2, 1);
        let s = g.add_node(OpKind::Add);
        g.connect(m1, s, 0);
        g.connect(m2, s, 1);
        let o = g.add_node(OpKind::Output(0));
        g.connect(s, o, 0);
        let before = behaviour(&g, 2, 5);
        assert_eq!(cse(&mut g), 1);
        dce(&mut g);
        assert_eq!(g.node_count(), 5);
        g.validate().unwrap();
        assert_eq!(behaviour(&g, 2, 5), before);
    }

    #[test]
    fn algebraic_mul_one_and_add_zero() {
        let mut g = Dfg::new("alg");
        let x = g.add_node(OpKind::Input(0));
        let one = g.add_node(OpKind::Const(1));
        let zero = g.add_node(OpKind::Const(0));
        let m = g.add_node(OpKind::Mul);
        g.connect(x, m, 0);
        g.connect(one, m, 1);
        let a = g.add_node(OpKind::Add);
        g.connect(m, a, 0);
        g.connect(zero, a, 1);
        let o = g.add_node(OpKind::Output(0));
        g.connect(a, o, 0);
        let before = behaviour(&g, 1, 4);
        assert!(algebraic(&mut g) >= 2);
        dce(&mut g);
        g.validate().unwrap();
        assert_eq!(g.node_count(), 2); // input -> output
        assert_eq!(behaviour(&g, 1, 4), before);
    }

    #[test]
    fn algebraic_mul_pow2_becomes_shift() {
        let mut g = Dfg::new("shl");
        let x = g.add_node(OpKind::Input(0));
        let c8 = g.add_node(OpKind::Const(8));
        let m = g.add_node(OpKind::Mul);
        g.connect(x, m, 0);
        g.connect(c8, m, 1);
        let o = g.add_node(OpKind::Output(0));
        g.connect(m, o, 0);
        let before = behaviour(&g, 1, 4);
        assert_eq!(algebraic(&mut g), 1);
        assert_eq!(g.op(NodeId(2)), OpKind::Shl);
        assert_eq!(behaviour(&g, 1, 4), before);
    }

    #[test]
    fn algebraic_x_minus_x_is_zero() {
        let mut g = Dfg::new("xx");
        let x = g.add_node(OpKind::Input(0));
        let s = g.add_node(OpKind::Sub);
        g.connect(x, s, 0);
        g.connect(x, s, 1);
        let o = g.add_node(OpKind::Output(0));
        g.connect(s, o, 0);
        assert_eq!(algebraic(&mut g), 1);
        assert_eq!(g.op(NodeId(1)), OpKind::Const(0));
    }

    #[test]
    fn optimize_terminates_on_forwarded_mul() {
        // Regression: `1 * x` forwarded by `algebraic` used to leave a
        // dead Mul whose intact operand edges re-matched the rewrite
        // forever, hanging `optimize` (seen on the fir4.mc example).
        let mut g = Dfg::new("fwd");
        let x = g.add_node(OpKind::Input(0));
        let one = g.add_node(OpKind::Const(1));
        let m = g.add_node(OpKind::Mul);
        g.connect(one, m, 0);
        g.connect(x, m, 1);
        let o = g.add_node(OpKind::Output(0));
        g.connect(m, o, 0);
        let before = behaviour(&g, 1, 4);
        optimize(&mut g);
        g.validate().unwrap();
        assert_eq!(behaviour(&g, 1, 4), before);
    }

    #[test]
    fn optimize_preserves_suite_behaviour() {
        for k in kernels::suite() {
            if k.memory_ops() > 0 {
                continue; // memory kernels exercised separately
            }
            let streams = k
                .nodes()
                .filter_map(|(_, n)| match n.op {
                    OpKind::Input(s) => Some(s as usize + 1),
                    _ => None,
                })
                .max()
                .unwrap_or(0);
            let mut opt = k.clone();
            optimize(&mut opt);
            opt.validate().unwrap();
            assert_eq!(
                behaviour(&k, streams, 6),
                behaviour(&opt, streams, 6),
                "{}",
                k.name
            );
        }
    }

    #[test]
    fn tree_height_reduces_critical_path() {
        use crate::graph::{critical_path, unit_latency};
        // A left-leaning chain of 8 adds over 9 inputs.
        let mut g = Dfg::new("chain");
        let mut acc = g.add_node(OpKind::Input(0));
        for s in 1..9u32 {
            let x = g.add_node(OpKind::Input(s));
            let a = g.add_node(OpKind::Add);
            g.connect(acc, a, 0);
            g.connect(x, a, 1);
            acc = a;
        }
        let o = g.add_node(OpKind::Output(0));
        g.connect(acc, o, 0);
        let before_cp = critical_path(&g, &unit_latency);
        let before = behaviour(&g, 9, 3);
        let n = tree_height_reduction(&mut g);
        assert!(n >= 1);
        g.validate().unwrap();
        let after_cp = critical_path(&g, &unit_latency);
        assert!(after_cp < before_cp, "{after_cp} !< {before_cp}");
        assert_eq!(behaviour(&g, 9, 3), before);
    }

    #[test]
    fn unroll_by_two_matches_original() {
        for k in [kernels::dot_product(), kernels::fir(3), kernels::iir1()] {
            let streams = k
                .nodes()
                .filter_map(|(_, n)| match n.op {
                    OpKind::Input(s) => Some(s as usize + 1),
                    _ => None,
                })
                .max()
                .unwrap_or(0);
            let u = unroll(&k, 2);
            u.validate().unwrap_or_else(|e| panic!("{}: {e}", k.name));
            let iters = 8;
            let tape = Tape::generate(streams, iters, |s, i| ((s + 1) * (i + 3)) as i64 % 31);
            let orig = Interpreter::run(&k, iters, &tape).unwrap();
            let reshaped = reshape_tape(&tape, 2);
            let unrolled = Interpreter::run(&u, iters / 2, &reshaped).unwrap();
            // De-interleave unrolled outputs and compare.
            for (s, orig_stream) in orig.outputs.iter().enumerate() {
                let mut merged = Vec::new();
                for i in 0..iters / 2 {
                    for j in 0..2 {
                        merged.push(unrolled.outputs[s * 2 + j][i]);
                    }
                }
                assert_eq!(&merged, orig_stream, "{} stream {s}", k.name);
            }
        }
    }

    #[test]
    fn unroll_factor_one_is_identity() {
        let k = kernels::dot_product();
        let u = unroll(&k, 1);
        assert_eq!(u.node_count(), k.node_count());
    }

    #[test]
    fn unroll_grows_linearly() {
        let k = kernels::fir(3);
        let u4 = unroll(&k, 4);
        assert_eq!(u4.node_count(), 4 * k.node_count());
        assert_eq!(u4.edge_count(), 4 * k.edge_count());
    }
}
