//! # cgra-ir
//!
//! Intermediate representation for CGRA compilation: data-flow graphs
//! (DFGs) with loop-carried dependencies, control-data-flow graphs
//! (CDFGs), a small C-like front-end ("MiniC"), classic middle-end
//! optimisation passes, and a library of the benchmark kernels used
//! throughout twenty years of CGRA-mapping literature.
//!
//! The survey this crate reproduces (Martin, IPDPSW 2022) describes the
//! classical compilation flow in its Figure 3: a front-end parses source
//! into an IR, a middle-end optimises it, and a back-end *maps* it onto
//! the CGRA. This crate is the front-end and middle-end; the back-end
//! lives in `cgra-mapper-core`.
//!
//! ## Quick tour
//!
//! ```
//! use cgra_ir::prelude::*;
//!
//! // Build the paper's running example (Fig. 3): a dot-product body.
//! let dfg = kernels::dot_product();
//! assert!(dfg.validate().is_ok());
//!
//! // Or compile it from MiniC source (`inout` carries the accumulator
//! // across iterations).
//! let src = r#"
//! kernel dot(in a, in b, inout acc) {
//!     acc = acc + a * b;
//! }
//! "#;
//! let compiled = frontend::compile_kernel(src).unwrap();
//! assert!(compiled.dfg.validate().is_ok());
//! ```

pub mod cdfg;
pub mod dfg;
pub mod dot;
pub mod frontend;
pub mod graph;
pub mod interp;
pub mod kernels;
pub mod op;
pub mod passes;

pub use cdfg::{BasicBlock, BlockId, Cdfg, ControlEdge, ControlKind, LoopInfo};
pub use dfg::{Dfg, DfgError, Edge, EdgeId, Node, NodeId};
pub use interp::{InterpError, Interpreter, Tape};
pub use op::{OpKind, PortCount, Value};

/// Convenient glob import for downstream users and examples.
pub mod prelude {
    pub use crate::cdfg::{Cdfg, ControlKind};
    pub use crate::dfg::{Dfg, Edge, Node, NodeId};
    pub use crate::frontend;
    pub use crate::interp::{Interpreter, Tape};
    pub use crate::kernels;
    pub use crate::op::{OpKind, Value};
    pub use crate::passes;
}
