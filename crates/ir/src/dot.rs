//! Graphviz (DOT) export for DFGs and CDFGs — handy for inspecting
//! kernels and for documentation figures.

use crate::cdfg::{Cdfg, ControlKind};
use crate::dfg::Dfg;
use std::fmt::Write as _;

/// Render a DFG as a DOT digraph. Loop-carried edges are dashed and
/// labelled with their distance.
pub fn dfg_to_dot(dfg: &Dfg) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{}\" {{", dfg.name);
    let _ = writeln!(s, "  rankdir=TB; node [shape=box, fontname=monospace];");
    for (id, node) in dfg.nodes() {
        let label = match &node.name {
            Some(n) => format!("{} \\n{}", node.op, n),
            None => node.op.to_string(),
        };
        let shape = if node.op.is_source() || node.op.is_sink() {
            ", shape=ellipse"
        } else if node.op.is_memory() {
            ", shape=cylinder"
        } else {
            ""
        };
        let _ = writeln!(s, "  n{} [label=\"{}\"{}];", id.0, label, shape);
    }
    for (_, e) in dfg.edges() {
        if e.dist == 0 {
            let _ = writeln!(
                s,
                "  n{} -> n{} [headlabel=\"{}\"];",
                e.src.0, e.dst.0, e.port
            );
        } else {
            let _ = writeln!(
                s,
                "  n{} -> n{} [style=dashed, label=\"d={}\", headlabel=\"{}\"];",
                e.src.0, e.dst.0, e.dist, e.port
            );
        }
    }
    let _ = writeln!(s, "}}");
    s
}

/// Render a CDFG as a DOT digraph of basic blocks (block DFGs are
/// summarised by op count; branch edges are labelled T/F).
pub fn cdfg_to_dot(cdfg: &Cdfg) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{}\" {{", cdfg.name);
    let _ = writeln!(s, "  node [shape=record, fontname=monospace];");
    for id in cdfg.block_ids() {
        let bb = cdfg.block(id);
        let _ = writeln!(
            s,
            "  bb{} [label=\"{{{} | {} ops | defs: {}}}\"];",
            id.0,
            bb.label,
            bb.dfg.node_count(),
            bb.defs
                .iter()
                .map(|(v, _)| v.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        );
        match &bb.terminator {
            ControlKind::Jump(t) => {
                let _ = writeln!(s, "  bb{} -> bb{};", id.0, t.0);
            }
            ControlKind::Branch {
                then_to, else_to, ..
            } => {
                let _ = writeln!(s, "  bb{} -> bb{} [label=T];", id.0, then_to.0);
                let _ = writeln!(s, "  bb{} -> bb{} [label=F];", id.0, else_to.0);
            }
            ControlKind::Return => {}
        }
    }
    let _ = writeln!(s, "}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend;
    use crate::kernels;

    #[test]
    fn dfg_dot_is_well_formed() {
        let g = kernels::dot_product();
        let dot = dfg_to_dot(&g);
        assert!(dot.starts_with("digraph"));
        assert!(dot.trim_end().ends_with('}'));
        for (id, _) in g.nodes() {
            assert!(dot.contains(&format!("n{} ", id.0)));
        }
        assert!(dot.contains("style=dashed"), "carried edge must be dashed");
        assert_eq!(dot.matches("->").count(), g.edge_count());
    }

    #[test]
    fn cdfg_dot_shows_branches() {
        let c = frontend::compile_func(
            "func f(x) { var y = 0; if (x > 0) { y = 1; } else { y = 2; } return; }",
        )
        .unwrap();
        let dot = cdfg_to_dot(&c);
        assert!(dot.contains("[label=T]"));
        assert!(dot.contains("[label=F]"));
        assert!(dot.contains("digraph"));
    }
}
