//! Shared helpers for the experiment drivers (`src/bin/*`) and the
//! Criterion benches (`benches/*`).
//!
//! Each driver regenerates one artifact of the survey:
//!
//! | binary        | artifact |
//! |---------------|----------|
//! | `table1`      | Table I — taxonomy + empirical success/II/time per technique |
//! | `fig1`        | Figure 1 — flexibility/performance/energy-efficiency comparison |
//! | `fig2`        | Figure 2 — the minimal CGRA and its configuration register |
//! | `fig3`        | Figure 3 — the compilation flow on the dot-product example |
//! | `fig4`        | Figure 4 — publications-per-year timeline |
//! | `scalability` | §IV-B — hierarchical vs flat mapping as fabrics grow |
//! | `ablations`   | DESIGN.md §4 — router, II search, cooling, SAT encoding, predication, hw loops, banking |

use serde::Serialize;
use std::path::PathBuf;

/// Where experiment outputs (JSON artifacts) land.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("CGRA_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"));
    std::fs::create_dir_all(&dir).ok();
    dir
}

/// Persist a JSON artifact alongside the printed report.
pub fn save_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = std::fs::write(&path, s) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                eprintln!("(saved {})", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialise {name}: {e}"),
    }
}

/// Quick/full switch: experiment drivers honour `CGRA_QUICK=1` to keep
/// CI fast; the full runs are the defaults.
pub fn quick() -> bool {
    std::env::var("CGRA_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Input-stream count of a DFG (for tape generation).
pub fn stream_count(dfg: &cgra_ir::Dfg) -> usize {
    dfg.nodes()
        .filter_map(|(_, n)| match n.op {
            cgra_ir::OpKind::Input(s) => Some(s as usize + 1),
            _ => None,
        })
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn stream_count_works() {
        let dfg = cgra_ir::kernels::dot_product();
        assert_eq!(super::stream_count(&dfg), 2);
    }
}
