//! `cgra-report` — inspect and regression-gate directories of
//! [`RunReport`] artifacts (written by `table1 --report DIR` or any
//! other driver that saves them).
//!
//! ```text
//! cgra-report DIR                      render convergence + race summary
//! cgra-report --baseline BASE DIR      diff DIR against BASE and gate:
//!                                      exit 1 if any (kernel, arch, mapper)
//!                                      cell loses its mapping or worsens
//!                                      its II
//! cgra-report --baseline BASE DIR --max-slowdown 50
//!                                      also fail cells >50% slower in wall
//! ```
//!
//! The gate ignores cells present on only one side (suite drift is a
//! review concern, not a regression), so baselines stay usable while
//! the kernel suite grows.

use cgra::mapper::ledger::LedgerEvent;
use cgra::mapper::report::RunReport;
use std::collections::BTreeMap;
use std::process::ExitCode;

struct Options {
    dir: Option<String>,
    baseline: Option<String>,
    /// Wall-clock regression tolerance in percent; `None` = no wall gate.
    max_slowdown: Option<f64>,
    /// Render fabric utilization heatmaps for successful cells.
    heatmap: bool,
}

fn usage() -> &'static str {
    "usage: cgra-report [--baseline BASE_DIR] [--max-slowdown PCT] [--heatmap] DIR\n\
     \n\
     Renders per-mapper convergence tables, phase-latency percentiles,\n\
     failure diagnoses, and the race timeline from a directory of\n\
     RunReport JSON artifacts. With --heatmap, also renders ASCII fabric\n\
     utilization heatmaps for every successful cell. With --baseline,\n\
     diffs DIR against BASE_DIR and exits non-zero when any (kernel,\n\
     arch, mapper) cell regresses: a lost mapping, a worse II, or (with\n\
     --max-slowdown) a wall-time slowdown beyond PCT percent."
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        dir: None,
        baseline: None,
        max_slowdown: None,
        heatmap: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut need = |name: &str| -> Result<String, String> {
            args.next().ok_or(format!("{name} needs a value"))
        };
        match a.as_str() {
            "--baseline" => opts.baseline = Some(need("--baseline")?),
            "--max-slowdown" => {
                opts.max_slowdown = Some(
                    need("--max-slowdown")?
                        .parse()
                        .map_err(|e| format!("{e}"))?,
                )
            }
            "--heatmap" => opts.heatmap = true,
            "--help" | "-h" => return Err(usage().to_string()),
            other if other.starts_with('-') => return Err(format!("unknown option `{other}`")),
            dir => opts.dir = Some(dir.to_string()),
        }
    }
    if opts.dir.is_none() {
        return Err(usage().to_string());
    }
    Ok(opts)
}

fn load(dir: &str) -> Result<Vec<RunReport>, String> {
    let reports =
        RunReport::load_dir(std::path::Path::new(dir)).map_err(|e| format!("{dir}: {e}"))?;
    if reports.is_empty() {
        return Err(format!("{dir}: no run reports found"));
    }
    Ok(reports)
}

/// The identity of one experiment cell across runs.
fn key(r: &RunReport) -> (String, String, String) {
    (r.instance.clone(), r.arch.clone(), r.mapper.clone())
}

fn fmt_ii(r: &RunReport) -> String {
    match r.ii() {
        Some(ii) => format!("II={ii}"),
        None => "failed".to_string(),
    }
}

/// Per-report convergence row: how the search's incumbents evolved.
fn convergence_row(r: &RunReport) -> String {
    let incumbents: Vec<&LedgerEvent> = r
        .events
        .iter()
        .filter(|e| e.kind.label() == "incumbent")
        .collect();
    let attempts = r
        .events
        .iter()
        .filter(|e| e.kind.label() == "ii_attempt")
        .count();
    let trail = match (incumbents.first(), incumbents.last()) {
        (Some(first), Some(last)) if incumbents.len() > 1 => format!(
            "{} @{}us -> {} @{}us",
            first.kind.ii().map(|x| x.to_string()).unwrap_or_default(),
            first.t_us,
            last.kind.ii().map(|x| x.to_string()).unwrap_or_default(),
            last.t_us
        ),
        (Some(only), _) => format!(
            "{} @{}us",
            only.kind.ii().map(|x| x.to_string()).unwrap_or_default(),
            only.t_us
        ),
        _ => "-".to_string(),
    };
    format!(
        "  {:<18} {:<14} {:>8} {:>9} {:>10.1}  {}",
        r.instance,
        fmt_ii(r),
        attempts,
        incumbents.len(),
        r.compile_ms,
        trail
    )
}

/// Render the per-mapper convergence tables.
fn render_convergence(reports: &[RunReport]) {
    let mut by_mapper: BTreeMap<&str, Vec<&RunReport>> = BTreeMap::new();
    for r in reports {
        by_mapper.entry(&r.mapper).or_default().push(r);
    }
    for (mapper, rows) in by_mapper {
        println!("\nmapper `{mapper}`:");
        println!(
            "  {:<18} {:<14} {:>8} {:>9} {:>10}  incumbent trail (II @ time)",
            "kernel", "result", "IIs", "incumb.", "wall ms"
        );
        for r in rows {
            println!("{}", convergence_row(r));
        }
    }
}

/// Render every race timeline found in the reports' event journals.
fn render_races(reports: &[RunReport]) {
    let mut printed_header = false;
    for r in reports {
        let race: Vec<&LedgerEvent> = r
            .events
            .iter()
            .filter(|e| e.kind.label().starts_with("race_"))
            .collect();
        if race.is_empty() {
            continue;
        }
        if !printed_header {
            println!("\nrace timelines:");
            printed_header = true;
        }
        println!("  {} / {} / {}:", r.instance, r.arch, r.mapper);
        for e in race {
            let who = e.kind.mapper();
            let detail = match (e.kind.label(), e.kind.ii()) {
                ("race_win", Some(ii)) => format!("won at II={ii}"),
                ("race_win", None) => "won".to_string(),
                ("race_start", _) => "entered".to_string(),
                _ => "out".to_string(),
            };
            println!("    {:>8}us  {:<16} {}", e.t_us, who, detail);
        }
    }
}

/// Render per-phase latency percentiles for every report that carries
/// them (reports written before histograms existed simply have none).
fn render_latency(reports: &[RunReport]) {
    let mut printed_header = false;
    for r in reports {
        if r.latency.is_empty() {
            continue;
        }
        if !printed_header {
            println!("\nphase latencies (per span, microseconds):");
            println!(
                "  {:<18} {:<16} {:<12} {:>7} {:>8} {:>8} {:>8}",
                "kernel", "mapper", "phase", "spans", "p50", "p90", "p99"
            );
            printed_header = true;
        }
        for row in &r.latency {
            println!(
                "  {:<18} {:<16} {:<12} {:>7} {:>8} {:>8} {:>8}",
                r.instance, r.mapper, row.phase, row.count, row.p50_us, row.p90_us, row.p99_us
            );
        }
    }
}

/// Render the failure diagnosis of every cell that carries one.
fn render_diagnoses(reports: &[RunReport]) {
    let mut printed_header = false;
    for r in reports {
        let Some(d) = &r.diagnosis else { continue };
        if !printed_header {
            println!("\nfailure diagnoses:");
            printed_header = true;
        }
        println!("  {} / {} / {}:", r.instance, r.arch, r.mapper);
        for line in d.render().lines() {
            println!("    {line}");
        }
    }
}

/// Render ASCII utilization heatmaps for every successful cell.
fn render_heatmaps(reports: &[RunReport]) {
    for r in reports {
        let Some(u) = &r.utilization else { continue };
        println!(
            "\n{} / {} / {} (II={}):",
            r.instance, r.arch, r.mapper, u.ii
        );
        for line in u.render_standalone(&r.arch).lines() {
            println!("  {line}");
        }
    }
}

/// One regression found by the baseline gate.
struct Regression {
    cell: (String, String, String),
    what: String,
}

/// Diff current against baseline; returns regressions (gate failures).
fn diff(
    baseline: &[RunReport],
    current: &[RunReport],
    max_slowdown: Option<f64>,
) -> Vec<Regression> {
    let base: BTreeMap<_, &RunReport> = baseline.iter().map(|r| (key(r), r)).collect();
    let mut regressions = Vec::new();
    let mut improvements = 0usize;
    let mut matched = 0usize;
    for cur in current {
        let k = key(cur);
        let Some(prev) = base.get(&k) else { continue };
        matched += 1;
        match (prev.ii(), cur.ii()) {
            (Some(b), Some(c)) if c > b => regressions.push(Regression {
                cell: k.clone(),
                what: format!("II regressed {b} -> {c}"),
            }),
            (Some(b), None) => regressions.push(Regression {
                cell: k.clone(),
                what: format!(
                    "lost its mapping (baseline II={b}, now: {})",
                    cur.error.as_deref().unwrap_or("unknown failure")
                ),
            }),
            (Some(b), Some(c)) if c < b => improvements += 1,
            (None, Some(_)) => improvements += 1,
            _ => {}
        }
        if let Some(pct) = max_slowdown {
            if prev.compile_ms > 0.0 && cur.compile_ms > prev.compile_ms * (1.0 + pct / 100.0) {
                regressions.push(Regression {
                    cell: k.clone(),
                    what: format!(
                        "wall time {:.1} ms -> {:.1} ms (> {pct}% slower)",
                        prev.compile_ms, cur.compile_ms
                    ),
                });
            }
        }
    }
    println!(
        "\nbaseline gate: {matched} cells compared, {improvements} improved, {} regressed",
        regressions.len()
    );
    regressions
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let dir = opts.dir.as_deref().expect("checked in parse_args");
    let current = match load(dir) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "{} run reports from {dir} ({} mappers, {} kernels)",
        current.len(),
        current
            .iter()
            .map(|r| r.mapper.as_str())
            .collect::<std::collections::BTreeSet<_>>()
            .len(),
        current
            .iter()
            .map(|r| r.instance.as_str())
            .collect::<std::collections::BTreeSet<_>>()
            .len()
    );
    let truncated = current.iter().filter(|r| r.spans_dropped > 0).count();
    if truncated > 0 {
        let dropped: u64 = current.iter().map(|r| r.spans_dropped).sum();
        eprintln!(
            "warning: {truncated} report(s) hit the span buffer cap ({dropped} spans dropped); \
             latency percentiles still cover every span, but trace timelines are truncated"
        );
    }
    render_convergence(&current);
    render_latency(&current);
    render_diagnoses(&current);
    render_races(&current);
    if opts.heatmap {
        render_heatmaps(&current);
    }

    if let Some(base_dir) = &opts.baseline {
        let baseline = match load(base_dir) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        };
        let regressions = diff(&baseline, &current, opts.max_slowdown);
        if !regressions.is_empty() {
            for r in &regressions {
                let (kernel, arch, mapper) = &r.cell;
                eprintln!("REGRESSION {kernel} / {arch} / {mapper}: {}", r.what);
            }
            return ExitCode::FAILURE;
        }
        println!("baseline gate: OK");
    }
    ExitCode::SUCCESS
}
