//! Experiment: **Figure 4** — the publications-per-year timeline of
//! CGRA-mapping research, with technique-era annotations, regenerated
//! from the survey's own reference corpus.
//!
//! ```sh
//! cargo run -p cgra-bench --bin fig4
//! ```

use cgra_bench::save_json;
use cgra_survey as survey;

fn main() {
    println!("{}", survey::render_timeline());

    let hist = survey::histogram();
    let spans = survey::era_spans();

    // Shape checks against the published figure's claims.
    let first_decade: usize = hist
        .iter()
        .filter(|p| p.year <= 2010)
        .map(|p| p.publications)
        .sum();
    let second_decade: usize = hist
        .iter()
        .filter(|p| p.year >= 2011)
        .map(|p| p.publications)
        .sum();
    let y2021 = hist
        .iter()
        .find(|p| p.year == 2021)
        .map(|p| p.publications)
        .unwrap_or(0);
    let max_bar = hist.iter().map(|p| p.publications).max().unwrap_or(0);

    println!("shape checks (survey claims):");
    println!(
        "  intensified efforts in the last decade ({first_decade} vs {second_decade}): {}",
        if second_decade > first_decade {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );
    println!(
        "  clear increase in 2021 (bar {y2021} = max {max_bar}): {}",
        if y2021 == max_bar {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );
    println!(
        "  modulo scheduling since the beginning (first {} <= 2003): {}",
        spans[&survey::Tag::ModuloScheduling].0,
        if spans[&survey::Tag::ModuloScheduling].0 <= 2003 {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );
    println!(
        "  branch support from the early 2000s (first {} <= 2002): {}",
        spans[&survey::Tag::FullPredication].0,
        if spans[&survey::Tag::FullPredication].0 <= 2002 {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );
    println!(
        "  memory-aware methods from around 2010 (first {}): {}",
        spans[&survey::Tag::MemoryAware].0,
        if (2008..=2013).contains(&spans[&survey::Tag::MemoryAware].0) {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );

    save_json("fig4_histogram", &hist);
    save_json(
        "fig4_eras",
        &spans
            .iter()
            .map(|(t, (lo, hi))| (t.label(), *lo, *hi))
            .collect::<Vec<_>>(),
    );
}
