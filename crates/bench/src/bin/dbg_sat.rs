//! Scratch debug driver (not part of the experiment set).

use cgra::prelude::*;
use cgra_ir::graph::asap;

fn main() {
    let dfg = kernels::dot_product();
    let f = Fabric::homogeneous(4, 4, Topology::Mesh);
    let lat = |op: cgra_ir::OpKind| f.latency_of(op);
    println!("asap: {:?}", asap(&dfg, &lat));
    for (id, n) in dfg.nodes() {
        println!("{id}: {}", n.op);
    }
    for (eid, e) in dfg.edges() {
        println!("e{}: {} -> {} d{}", eid.0, e.src, e.dst, e.dist);
    }

    // Hand placement at II=1:
    // a@(0,0)t0 b@(1,1)t0 mul@(0,1)t1 add@(0,2)t2 out@(0,3)t3
    let placements = [
        (f.pe_at(0, 0), 0u32),
        (f.pe_at(1, 1), 0),
        (f.pe_at(0, 1), 1),
        (f.pe_at(0, 2), 2),
        (f.pe_at(0, 3), 3),
    ];
    let hop = f.hop_distance();
    // Check edge compatibility manually.
    for (eid, e) in dfg.edges() {
        let (pa, ta) = placements[e.src.index()];
        let (pb, tb) = placements[e.dst.index()];
        let tr = ta + f.latency_of(dfg.op(e.src));
        let tc = tb + e.dist;
        let ok = tc >= tr && hop[pa.index()][pb.index()] <= tc - tr;
        println!(
            "edge e{} compat: tr={tr} tc={tc} hop={} -> {}",
            eid.0,
            hop[pa.index()][pb.index()],
            ok
        );
    }
    // Route it for real.
    use cgra::mapper::mapping::Placement;
    let place: Vec<Placement> = placements
        .iter()
        .map(|&(pe, time)| Placement { pe, time })
        .collect();
    let routes = cgra::mapper::route::route_all(&f, &dfg, &place, 1, 12, true);
    println!("manual placement routable at ii=1: {}", routes.is_some());
}
