//! Experiment: **Figure 2** — "Illustration of a simple CGRA": the
//! mesh topology (a), the reconfigurable cell internals (b), and the
//! configuration register contents (c).
//!
//! ```sh
//! cargo run -p cgra-bench --bin fig2
//! ```

use cgra::prelude::*;
use cgra_bench::save_json;

fn main() {
    // (a) + (b): the fabric and its cells.
    let fabric = Fabric::figure2();
    println!("{}", cgra::arch::render_fabric(&fabric));

    // A heterogeneous variant, to show the capability legend at work.
    let adres = Fabric::adres_like(4, 4);
    println!("{}", cgra::arch::render_fabric(&adres));

    // (c): the configuration register — map the paper's dot product and
    // dump the per-context configuration.
    let dfg = kernels::dot_product();
    let mapping = ModuloList::default()
        .map(&dfg, &fabric, &MapConfig::default())
        .expect("dot product maps on the Fig. 2 fabric");
    let cs = ConfigStream::generate(&mapping, &dfg, &fabric);
    println!("{}", cs.render(&fabric));
    let bits = cs.pack();
    println!(
        "packed configuration: {} bytes ({} contexts x {} PEs, {} NOP slots)",
        bits.len(),
        mapping.ii,
        fabric.num_pes(),
        cs.nop_slots()
    );
    save_json("fig2_configuration", &cs);
}
