//! Router hot-path benchmark: cached ([`TopologyCache`] + reused
//! [`RouterScratch`]) vs uncached (the frozen pre-cache router in
//! `route::naive`), emitted as a machine-readable JSON summary.
//!
//! ```sh
//! cargo run --release -p cgra-bench --bin bench_router
//! cargo run --release -p cgra-bench --bin bench_router -- \
//!     --check crates/bench/golden/BENCH_router.json
//! ```
//!
//! Writes `BENCH_router.json` into the results dir (`CGRA_RESULTS_DIR`,
//! default `results/`). With `--check FILE`, the run additionally gates
//! against a checked-in baseline: absolute timings are machine-bound,
//! so the gate compares the cached-vs-uncached *speedup ratio* — the
//! run fails if any row's ratio drops below 75% of the baseline's
//! (i.e. the cached path regressed by more than 25% relative to the
//! uncached reference on the same machine).

use cgra::mapper::mapping::Placement;
use cgra::mapper::route::{self, find_route_with, route_all_with, RouteOpts, RouterScratch};
use cgra::mapper::telemetry::Telemetry;
use cgra::prelude::*;
use cgra_arch::{SpaceTime, TopologyCache};
use cgra_bench::{quick, save_json};
use cgra_ir::graph::{asap, unit_latency};
use serde::Serialize;
use std::collections::HashSet;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct Row {
    name: String,
    cached_us: f64,
    uncached_us: f64,
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct Summary {
    schema: String,
    quick: bool,
    rows: Vec<Row>,
}

/// Best-of-`reps` mean over `iters` calls — the usual noise-robust
/// micro-benchmark estimator.
fn time_us<F: FnMut()>(mut f: F, iters: u32, reps: u32) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64() * 1e6 / iters as f64);
    }
    best
}

/// The deliberately mediocre placement the criterion bench also uses:
/// strided PEs, stretched times, so negotiation has real work.
fn strided_placement(dfg: &cgra_ir::Dfg, num_pes: u16) -> Vec<Placement> {
    let times = asap(dfg, &unit_latency);
    dfg.node_ids()
        .map(|n| Placement {
            pe: PeId((n.0 as u16 * 5) % num_pes),
            time: times[n.index()] * 3,
        })
        .collect()
}

fn bench_route_all(name: &str, fabric: &Fabric, dfg: &cgra_ir::Dfg, ii: u32, iters: u32) -> Row {
    let topo = TopologyCache::build(fabric);
    let place = strided_placement(dfg, fabric.num_pes() as u16);
    let off = Telemetry::off();
    // Both paths must do the same routing work.
    let cached = route_all_with(fabric, &topo, dfg, &place, ii, 10, true, &off);
    let naive = route::naive::route_all(fabric, dfg, &place, ii, 10, true);
    assert_eq!(
        cached.is_some(),
        naive.is_some(),
        "{name}: cached and naive router disagree on feasibility"
    );
    let cached_us = time_us(
        || {
            std::hint::black_box(route_all_with(
                fabric, &topo, dfg, &place, ii, 10, true, &off,
            ));
        },
        iters,
        5,
    );
    let uncached_us = time_us(
        || {
            std::hint::black_box(route::naive::route_all(fabric, dfg, &place, ii, 10, true));
        },
        iters,
        5,
    );
    Row {
        name: name.into(),
        cached_us,
        uncached_us,
        speedup: uncached_us / cached_us,
    }
}

fn bench_find_route(name: &str, fabric: &Fabric, ii: u32, iters: u32) -> Row {
    let topo = TopologyCache::build(fabric);
    let st = SpaceTime::new(fabric, ii);
    let last = PeId(fabric.num_pes() as u16 - 1);
    let span = 2 * (fabric.rows + fabric.cols) as u32;
    let shared = HashSet::new();
    let mut scratch = RouterScratch::new();
    let cached_us = time_us(
        || {
            std::hint::black_box(find_route_with(
                fabric,
                &topo,
                &st,
                PeId(0),
                0,
                last,
                span,
                &shared,
                None,
                RouteOpts::default(),
                &mut scratch,
            ));
        },
        iters,
        5,
    );
    let uncached_us = time_us(
        || {
            std::hint::black_box(route::naive::find_route(
                fabric,
                &st,
                PeId(0),
                0,
                last,
                span,
                &shared,
                None,
                RouteOpts::default(),
            ));
        },
        iters,
        5,
    );
    Row {
        name: name.into(),
        cached_us,
        uncached_us,
        speedup: uncached_us / cached_us,
    }
}

fn check(summary: &Summary, baseline_path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let baseline = serde_json::from_str(&text).map_err(|e| format!("bad baseline JSON: {e}"))?;
    let rows = baseline
        .get("rows")
        .and_then(|r| r.as_array())
        .ok_or("baseline has no `rows` array")?;
    let mut failures = Vec::new();
    for base in rows {
        let name = base
            .get("name")
            .and_then(|n| n.as_str())
            .ok_or("baseline row without a `name`")?;
        let base_speedup = base
            .get("speedup")
            .and_then(|s| s.as_f64())
            .ok_or_else(|| format!("baseline row `{name}` without a `speedup`"))?;
        let Some(cur) = summary.rows.iter().find(|r| r.name == name) else {
            failures.push(format!("row `{name}` missing from this run"));
            continue;
        };
        let floor = base_speedup * 0.75;
        if cur.speedup < floor {
            failures.push(format!(
                "row `{name}`: speedup {:.2}x below gate {:.2}x (baseline {:.2}x - 25%)",
                cur.speedup, floor, base_speedup
            ));
        } else {
            eprintln!(
                "  gate ok: {name} {:.2}x (baseline {:.2}x, floor {:.2}x)",
                cur.speedup, base_speedup, floor
            );
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

fn main() {
    let mut baseline: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => baseline = Some(args.next().expect("--check needs a FILE")),
            other => {
                eprintln!("unknown option `{other}`\nusage: bench_router [--check BASELINE.json]");
                std::process::exit(2);
            }
        }
    }

    let iters: u32 = if quick() { 40 } else { 200 };
    let mesh4 = Fabric::homogeneous(4, 4, Topology::Mesh);
    let mesh8 = Fabric::homogeneous(8, 8, Topology::Mesh);
    let onehop8 = Fabric::homogeneous(8, 8, Topology::OneHop);

    let rows = vec![
        bench_route_all(
            "route_all_negotiated_sobel_4x4_ii8",
            &mesh4,
            &kernels::sobel(),
            8,
            iters,
        ),
        bench_route_all(
            "route_all_negotiated_fir8_8x8_ii4",
            &mesh8,
            &kernels::fir(8),
            4,
            iters,
        ),
        bench_route_all(
            "route_all_negotiated_laplacian_onehop8_ii6",
            &onehop8,
            &kernels::laplacian(),
            6,
            iters,
        ),
        bench_find_route("find_route_corner_8x8_ii4", &mesh8, 4, iters * 5),
    ];

    println!("router hot path: cached (TopologyCache + RouterScratch) vs uncached (naive)\n");
    println!(
        "{:<44} {:>12} {:>12} {:>9}",
        "scenario", "cached_us", "uncached_us", "speedup"
    );
    for r in &rows {
        println!(
            "{:<44} {:>12.1} {:>12.1} {:>8.2}x",
            r.name, r.cached_us, r.uncached_us, r.speedup
        );
    }

    let summary = Summary {
        schema: "bench-router/v1".into(),
        quick: quick(),
        rows,
    };
    save_json("BENCH_router", &summary);

    if let Some(path) = baseline {
        match check(&summary, &path) {
            Ok(()) => println!("\nperf gate: ok (all speedups within 25% of baseline)"),
            Err(why) => {
                eprintln!("\nperf gate FAILED:\n{why}");
                std::process::exit(1);
            }
        }
    }
}
