//! Incremental-solving benchmark: re-mapping with persistent solver
//! state (assumption-guarded SAT layers, learnt clauses, warm LP bases,
//! cached infeasibility proofs) vs the from-scratch re-encoding, per
//! kernel × exact mapper.
//!
//! ```sh
//! cargo run --release -p cgra-bench --bin bench_solver
//! cargo run --release -p cgra-bench --bin bench_solver -- \
//!     --check crates/bench/golden/BENCH_solver.json
//! ```
//!
//! The workload is the steady state of a design-space-exploration loop:
//! the same kernel is mapped repeatedly on the same fabric (after the
//! evaluation of a candidate elsewhere), so the exact mappers re-enter
//! the solver state parked in [`IncrementalCtx`] — encoded II layers,
//! learnt clauses and phases for SAT; the CEGAR model, root basis, warm
//! incumbent, and per-II infeasibility proofs for ILP. `incremental_us`
//! is the cost of such a re-map; `from_scratch_us` is the cost of the
//! identical query with `MapConfig::incremental` off, which re-encodes
//! every II from nothing (the pre-incremental behaviour). Both paths
//! must achieve the identical II — asserted per row.
//!
//! Writes `BENCH_solver.json` into the results dir (`CGRA_RESULTS_DIR`,
//! default `results/`). With `--check FILE`, the run gates against a
//! checked-in baseline: absolute timings are machine-bound, so the gate
//! compares the incremental-vs-from-scratch *speedup ratio* per row —
//! the run fails if any row's ratio drops below 75% of the baseline's.
//!
//! [`IncrementalCtx`]: cgra::prelude::IncrementalCtx

use cgra::prelude::*;
use cgra_bench::{quick, save_json};
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct Row {
    name: String,
    mapper: String,
    kernel: String,
    ii: u32,
    incremental_us: f64,
    from_scratch_us: f64,
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct Summary {
    schema: String,
    quick: bool,
    geomean_speedup: f64,
    geomean_speedup_sat: f64,
    geomean_speedup_ilp: f64,
    rows: Vec<Row>,
}

fn build_mapper(name: &str) -> Box<dyn Mapper> {
    MapperRegistry::standard()
        .build(name)
        .expect("registry mapper")
}

fn map_once(
    mapper: &dyn Mapper,
    dfg: &cgra_ir::Dfg,
    fabric: &Fabric,
    cfg: &MapConfig,
) -> (f64, u32) {
    let t0 = Instant::now();
    let m = mapper
        .map(dfg, fabric, cfg)
        .unwrap_or_else(|e| panic!("{} on {}: {e}", mapper.name(), dfg.name));
    (t0.elapsed().as_secs_f64() * 1e6, m.ii)
}

fn bench(name: &str, mapper_name: &str, dfg: &cgra_ir::Dfg, fabric: &Fabric, reps: u32) -> Row {
    let mapper = build_mapper(mapper_name);
    // From-scratch: every repetition pays the full re-encode.
    let mut scratch_us = f64::INFINITY;
    let mut scratch_ii = 0;
    let scratch_cfg = MapConfig {
        incremental: false,
        ..MapConfig::default()
    };
    for _ in 0..reps {
        let (us, ii) = map_once(mapper.as_ref(), dfg, fabric, &scratch_cfg);
        scratch_us = scratch_us.min(us);
        scratch_ii = ii;
    }
    // Incremental: one warm-up populates the pool, then each timed
    // repetition is a re-map that takes the state and parks it back.
    let warm_cfg = MapConfig::default();
    let (_, mut inc_ii) = map_once(mapper.as_ref(), dfg, fabric, &warm_cfg);
    let mut inc_us = f64::INFINITY;
    for _ in 0..reps {
        let (us, ii) = map_once(mapper.as_ref(), dfg, fabric, &warm_cfg);
        inc_us = inc_us.min(us);
        inc_ii = ii;
    }
    assert_eq!(
        inc_ii, scratch_ii,
        "{name}: incremental achieved II {inc_ii}, from-scratch {scratch_ii}"
    );
    Row {
        name: name.into(),
        mapper: mapper_name.into(),
        kernel: dfg.name.clone(),
        ii: inc_ii,
        incremental_us: inc_us,
        from_scratch_us: scratch_us,
        speedup: scratch_us / inc_us,
    }
}

fn geomean(rows: &[&Row]) -> f64 {
    if rows.is_empty() {
        return 1.0;
    }
    (rows.iter().map(|r| r.speedup.ln()).sum::<f64>() / rows.len() as f64).exp()
}

fn check(summary: &Summary, baseline_path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let baseline: serde_json::Value =
        serde_json::from_str(&text).map_err(|e| format!("bad baseline JSON: {e}"))?;
    let rows = baseline
        .get("rows")
        .and_then(|r| r.as_array())
        .ok_or("baseline has no `rows` array")?;
    let mut failures = Vec::new();
    for base in rows {
        let name = base
            .get("name")
            .and_then(|n| n.as_str())
            .ok_or("baseline row without a `name`")?;
        let base_speedup = base
            .get("speedup")
            .and_then(|s| s.as_f64())
            .ok_or_else(|| format!("baseline row `{name}` without a `speedup`"))?;
        let Some(cur) = summary.rows.iter().find(|r| r.name == name) else {
            failures.push(format!("row `{name}` missing from this run"));
            continue;
        };
        let floor = base_speedup * 0.75;
        if cur.speedup < floor {
            failures.push(format!(
                "row `{name}`: speedup {:.2}x below gate {:.2}x (baseline {:.2}x - 25%)",
                cur.speedup, floor, base_speedup
            ));
        } else {
            eprintln!(
                "  gate ok: {name} {:.2}x (baseline {:.2}x, floor {:.2}x)",
                cur.speedup, base_speedup, floor
            );
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

fn main() {
    let mut baseline: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => baseline = Some(args.next().expect("--check needs a FILE")),
            other => {
                eprintln!("unknown option `{other}`\nusage: bench_solver [--check BASELINE.json]");
                std::process::exit(2);
            }
        }
    }

    let reps: u32 = if quick() { 2 } else { 3 };
    let mesh3 = Fabric::homogeneous(3, 3, Topology::Mesh);
    let mesh4 = Fabric::homogeneous(4, 4, Topology::Mesh);

    // Kernels whose achieved II sits above the first candidates pay for
    // refutations before they succeed; the pooled state answers those
    // refutations (SAT: retired selectors; ILP: cached proofs) and
    // warm-starts the feasible II, so they show the incremental gain
    // most clearly. sad/laplacian at II=1 isolate the pure re-entry
    // cost of an already-encoded solver.
    let rows = vec![
        bench("sat_fir6_3x3", "sat", &kernels::fir(6), &mesh3, reps),
        bench("sat_sad_3x3", "sat", &kernels::sad(), &mesh3, reps),
        bench("sat_conv3_3x3", "sat", &kernels::conv3(), &mesh3, reps),
        bench("sat_iir1_3x3", "sat", &kernels::iir1(), &mesh3, reps),
        bench("sat_horner4_3x3", "sat", &kernels::horner4(), &mesh3, reps),
        bench(
            "sat_laplacian_4x4",
            "sat",
            &kernels::laplacian(),
            &mesh4,
            reps,
        ),
        bench("ilp_sad_3x3", "ilp", &kernels::sad(), &mesh3, reps),
        bench("ilp_iir1_3x3", "ilp", &kernels::iir1(), &mesh3, reps),
        bench("ilp_horner4_4x4", "ilp", &kernels::horner4(), &mesh4, reps),
        bench(
            "ilp_laplacian_4x4",
            "ilp",
            &kernels::laplacian(),
            &mesh4,
            reps,
        ),
    ];

    println!("exact-mapper re-maps: incremental (pooled solver state) vs from-scratch\n");
    println!(
        "{:<28} {:>4} {:>16} {:>16} {:>9}",
        "scenario", "ii", "incremental_us", "from_scratch_us", "speedup"
    );
    for r in &rows {
        println!(
            "{:<28} {:>4} {:>16.0} {:>16.0} {:>8.2}x",
            r.name, r.ii, r.incremental_us, r.from_scratch_us, r.speedup
        );
    }
    let all: Vec<&Row> = rows.iter().collect();
    let sat: Vec<&Row> = rows.iter().filter(|r| r.mapper == "sat").collect();
    let ilp: Vec<&Row> = rows.iter().filter(|r| r.mapper == "ilp").collect();
    println!(
        "\ngeomean speedup: overall {:.2}x, sat {:.2}x, ilp {:.2}x",
        geomean(&all),
        geomean(&sat),
        geomean(&ilp)
    );

    let summary = Summary {
        schema: "bench-solver/v1".into(),
        quick: quick(),
        geomean_speedup: geomean(&all),
        geomean_speedup_sat: geomean(&sat),
        geomean_speedup_ilp: geomean(&ilp),
        rows,
    };
    save_json("BENCH_solver", &summary);

    if let Some(path) = baseline {
        match check(&summary, &path) {
            Ok(()) => println!("\nperf gate: ok (all speedups within 25% of baseline)"),
            Err(why) => {
                eprintln!("\nperf gate FAILED:\n{why}");
                std::process::exit(1);
            }
        }
    }
}
