//! Experiment: **Figure 1** — the flexibility / performance /
//! energy-efficiency trade-off across CPU, DSP, FPGA, CGRA, ASIC.
//!
//! The analytic class models and the measured CGRA points are
//! documented in `cgra_sim::archcmp`; the experiment asserts the
//! *ordering* of the published conceptual figure.
//!
//! ```sh
//! cargo run --release -p cgra-bench --bin fig1
//! ```

use cgra::prelude::*;
use cgra::sim::{architecture_comparison, EnergyModel};
use cgra_bench::save_json;

fn main() {
    let fabric = Fabric::homogeneous(4, 4, Topology::Mesh);
    let mapper = ModuloList::default();
    let mapped: Vec<(Dfg, Mapping)> = kernels::suite()
        .into_iter()
        .filter_map(|dfg| {
            let m = mapper.map(&dfg, &fabric, &MapConfig::default()).ok()?;
            Some((dfg, m))
        })
        .collect();
    eprintln!("mapped {} kernels for the comparison", mapped.len());

    let points = architecture_comparison(&mapped, &fabric, &EnergyModel::default());

    println!("FIGURE 1 — architecture comparison (kernel-suite averages)");
    println!(
        "{:<8} {:>14} {:>18} {:>13}",
        "arch", "perf (it/cyc)", "energy-eff (1/E)", "flexibility"
    );
    println!("{}", "-".repeat(58));
    let mut sorted = points.clone();
    sorted.sort_by(|a, b| b.flexibility.partial_cmp(&a.flexibility).unwrap());
    for p in &sorted {
        println!(
            "{:<8} {:>14.3} {:>18.3} {:>13.2}",
            p.arch, p.performance, p.energy_efficiency, p.flexibility
        );
    }

    // ASCII scatter: flexibility (x) vs energy efficiency (y).
    println!("\nflexibility ->");
    let max_eff = sorted
        .iter()
        .map(|p| p.energy_efficiency)
        .fold(0.0f64, f64::max);
    for row in (0..=8).rev() {
        let mut line = String::from("|");
        for col in 0..=20 {
            let here = sorted.iter().find(|p| {
                (p.flexibility * 20.0).round() as i32 == col
                    && (p.energy_efficiency / max_eff * 8.0).round() as i32 == row
            });
            match here {
                Some(p) => {
                    line.push_str(&p.arch[..1.min(p.arch.len())]);
                    line.push(' ');
                }
                None => line.push_str(". "),
            }
        }
        println!("{line}");
    }
    println!("(C=CPU D=DSP F=FPGA A=ASIC, the other C… CGRA is the point between F and A)");

    let violations = cgra::sim::archcmp::figure1_shape_violations(&points);
    if violations.is_empty() {
        println!("\nshape check: the published Figure 1 ordering HOLDS");
    } else {
        println!("\nshape check VIOLATIONS:");
        for v in &violations {
            println!("  - {v}");
        }
    }
    save_json("fig1_points", &points);
}
