//! Experiment: **Figure 3** — the classical compilation flow, on the
//! paper's own dot-product example: front-end → middle-end → back-end,
//! with the back-end producing a spatial mapping, a temporal mapping,
//! and a modulo-scheduled mapping.
//!
//! ```sh
//! cargo run -p cgra-bench --bin fig3
//! ```

use cgra::prelude::*;
use cgra_bench::save_json;
use serde::Serialize;

#[derive(Serialize)]
struct Fig3Row {
    style: &'static str,
    mapper: &'static str,
    ii: u32,
    schedule_len: u32,
    cycles_for_16: u64,
    throughput: f64,
}

fn main() {
    // Front-end: the survey's source (Fig. 3 top box).
    let src = "kernel dot(in a, in b, inout acc) { acc = acc + a * b; }";
    let compiled = frontend::compile_kernel(src).expect("front-end");
    let mut dfg = compiled.dfg;
    println!("front-end produced:\n{}", dfg.render());

    // Middle-end.
    let n = passes::optimize(&mut dfg);
    println!("middle-end: {n} rewrites\n");

    // Back-end: the three mapping styles of the figure.
    let fabric = Fabric::homogeneous(4, 4, Topology::Mesh);
    let tape = Tape::generate(2, 16, |s, i| if s == 0 { i as i64 + 1 } else { 2 });
    let mut rows = Vec::new();

    let styles: Vec<(&'static str, Box<dyn Mapper>)> = vec![
        ("spatial mapping", Box::new(SpatialGreedy::default())),
        ("temporal mapping", Box::new(SmtMapper::default())),
        ("modulo scheduling", Box::new(ModuloList::default())),
    ];
    for (style, mapper) in styles {
        let m = mapper
            .map(&dfg, &fabric, &MapConfig::default())
            .unwrap_or_else(|e| panic!("{style}: {e}"));
        validate(&m, &dfg, &fabric).expect("valid");
        let stats = cgra::sim::simulate_verified(&m, &dfg, &fabric, 16, &tape).expect("functional");
        let metrics = Metrics::of(&m, &dfg, &fabric);
        println!(
            "{style:<20} (via {:<12}) II={:<3} schedule={:<3} 16 iters in {:>3} cycles",
            mapper.name(),
            m.ii,
            metrics.schedule_len,
            stats.cycles
        );
        rows.push(Fig3Row {
            style,
            mapper: mapper.name(),
            ii: m.ii,
            schedule_len: metrics.schedule_len,
            cycles_for_16: stats.cycles,
            throughput: stats.throughput,
        });
        if style == "modulo scheduling" {
            println!("\n{}", m.render(&dfg, &fabric));
        }
    }

    println!(
        "shape check: modulo scheduling overlaps iterations (II {} < schedule length {}): {}",
        rows[2].ii,
        rows[2].schedule_len,
        if rows[2].ii < rows[2].schedule_len {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );
    save_json("fig3_flow", &rows);
}
