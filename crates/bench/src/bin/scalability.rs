//! Experiment: **§IV-B scalability** — hierarchical vs flat mapping as
//! fabrics grow from legacy (tens of cells) to modern (hundreds of
//! cells) scale.
//!
//! The survey: "the mapping problem is intractable, scalability further
//! raises the challenge … [HiMap] detects repetitive patterns and maps
//! hierarchically". The experiment sweeps fabric sizes with a kernel
//! sized to ~1/4 fabric utilisation and records, for a flat modulo
//! scheduler, the hierarchical mapper, flat SA, and the exact SAT
//! mapper: success, achieved II, and compile time.
//!
//! ```sh
//! cargo run --release -p cgra-bench --bin scalability
//! ```

use cgra::prelude::*;
use cgra_bench::{quick, save_json};
use serde::Serialize;
use std::time::{Duration, Instant};

#[derive(Serialize)]
struct Row {
    fabric: String,
    pes: usize,
    ops: usize,
    mapper: &'static str,
    outcome: String,
    ii: Option<u32>,
    compile_ms: f64,
}

fn main() {
    let budget = Duration::from_secs(if quick() { 5 } else { 60 });
    let cfg = MapConfig {
        time_limit: budget,
        ..MapConfig::default()
    };
    let sizes: &[(u16, usize)] = if quick() {
        &[(4, 4), (8, 12)]
    } else {
        &[(4, 4), (8, 12), (12, 28), (16, 52), (24, 120)]
    };

    let mut rows: Vec<Row> = Vec::new();
    println!(
        "{:<8} {:>5} {:>5}  {:<14} {:>10} {:>12}",
        "fabric", "PEs", "ops", "mapper", "II", "compile"
    );
    println!("{}", "-".repeat(62));
    for &(side, lanes) in sizes {
        let fabric = Fabric::homogeneous(side, side, Topology::Mesh);
        let kernel = kernels::unrolled_mac(lanes);
        let mappers: Vec<(&'static str, Box<dyn Mapper>)> = vec![
            ("modulo-list", Box::new(ModuloList::default())),
            ("himap", Box::new(HiMap::default())),
            ("sa", Box::new(SimulatedAnnealing::default())),
            ("sat", Box::new(SatMapper::default())),
        ];
        for (name, mapper) in mappers {
            let start = Instant::now();
            let result = mapper.map(&kernel, &fabric, &cfg);
            let compile_ms = start.elapsed().as_secs_f64() * 1e3;
            let (outcome, ii) = match &result {
                Ok(m) => {
                    validate(m, &kernel, &fabric).expect("valid");
                    ("ok".to_string(), Some(m.ii))
                }
                Err(e) => (format!("{e}"), None),
            };
            println!(
                "{:<8} {:>5} {:>5}  {:<14} {:>10} {:>10.0}ms  {}",
                format!("{side}x{side}"),
                fabric.num_pes(),
                kernel.node_count(),
                name,
                ii.map(|x| x.to_string()).unwrap_or_else(|| "-".into()),
                compile_ms,
                if ii.is_some() { "" } else { "FAILED" }
            );
            rows.push(Row {
                fabric: format!("{side}x{side}"),
                pes: fabric.num_pes(),
                ops: kernel.node_count(),
                mapper: name,
                outcome,
                ii,
                compile_ms,
            });
        }
    }

    // Shape: himap compile time grows slower than flat modulo-list.
    let slope = |name: &str| -> Option<f64> {
        let pts: Vec<&Row> = rows
            .iter()
            .filter(|r| r.mapper == name && r.ii.is_some())
            .collect();
        if pts.len() < 2 {
            return None;
        }
        let first = pts.first().unwrap();
        let last = pts.last().unwrap();
        Some((last.compile_ms / first.compile_ms) / (last.pes as f64 / first.pes as f64))
    };
    println!("\nshape check (compile-time growth normalised by PE growth):");
    for name in ["modulo-list", "himap", "sa", "sat"] {
        match slope(name) {
            Some(s) => println!("  {name:<12} x{s:.2} per PE-factor"),
            None => println!("  {name:<12} insufficient successes to fit"),
        }
    }
    save_json("scalability", &rows);
}
