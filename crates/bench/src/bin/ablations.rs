//! Experiment: **ablations** — the design choices DESIGN.md §4 calls
//! out, each measured on the kernel suite:
//!
//! 1. negotiated (PathFinder) vs single-pass routing,
//! 2. II search order (bottom-up vs binary),
//! 3. SA cooling schedule (geometric vs linear),
//! 4. SAT at-most-one encoding (pairwise vs sequential),
//! 5. predication scheme on an ITE kernel,
//! 6. hardware loop unit on/off,
//! 7. memory banking policy on the matmul body.
//!
//! ```sh
//! cargo run --release -p cgra-bench --bin ablations
//! ```

use cgra::mapper::ctrlflow::{predicate_diamond, with_loop_control, IteScheme};
use cgra::mapper::memmap::{bank_conflicts, memory_trace, BankPolicy};
use cgra::prelude::*;
use cgra_bench::save_json;
use cgra_solver::cnf::AmoEncoding;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Abl {
    experiment: String,
    variant: String,
    metric: String,
    value: f64,
}

fn main() {
    let mut out: Vec<Abl> = Vec::new();
    let fabric = Fabric::homogeneous(4, 4, Topology::Mesh);
    let cfg = MapConfig::default();
    let suite = kernels::suite();

    // 1. Negotiated vs plain routing (spatial mapper carries the flag).
    println!("== ablation 1: negotiated vs single-pass routing ==");
    for (label, plain) in [("negotiated", false), ("single-pass", true)] {
        let mapper = SpatialGreedy {
            plain_routing: plain,
        };
        let ok = suite
            .iter()
            .filter(|k| mapper.map(k, &fabric, &cfg).is_ok())
            .count();
        println!("  {label:<12} spatial success {ok}/{}", suite.len());
        out.push(Abl {
            experiment: "routing".into(),
            variant: label.into(),
            metric: "spatial successes".into(),
            value: ok as f64,
        });
    }

    // 2. II search order.
    println!("\n== ablation 2: II search order ==");
    for (label, order) in [
        ("bottom-up", IiSearch::BottomUp),
        ("binary", IiSearch::Binary),
    ] {
        let mapper = ModuloList {
            ii_search: order,
            ..Default::default()
        };
        let start = Instant::now();
        let iis: Vec<u32> = suite
            .iter()
            .filter_map(|k| mapper.map(k, &fabric, &cfg).ok().map(|m| m.ii))
            .collect();
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let mean_ii = iis.iter().sum::<u32>() as f64 / iis.len().max(1) as f64;
        println!(
            "  {label:<10} {} successes, mean II {mean_ii:.2}, total {ms:.0} ms",
            iis.len()
        );
        out.push(Abl {
            experiment: "ii-search".into(),
            variant: label.into(),
            metric: "mean II".into(),
            value: mean_ii,
        });
        out.push(Abl {
            experiment: "ii-search".into(),
            variant: label.into(),
            metric: "total ms".into(),
            value: ms,
        });
    }

    // 3. SA cooling.
    println!("\n== ablation 3: SA cooling schedule ==");
    for (label, cooling) in [
        ("geometric", cgra::mapper::mappers::Cooling::Geometric),
        ("linear", cgra::mapper::mappers::Cooling::Linear),
    ] {
        let mapper = SimulatedAnnealing {
            cooling,
            ..Default::default()
        };
        let ok = kernels::small_suite()
            .iter()
            .filter(|k| mapper.map(k, &fabric, &cfg).is_ok())
            .count();
        println!(
            "  {label:<10} {ok}/{} small kernels",
            kernels::small_suite().len()
        );
        out.push(Abl {
            experiment: "sa-cooling".into(),
            variant: label.into(),
            metric: "successes".into(),
            value: ok as f64,
        });
    }

    // 4. SAT at-most-one encoding.
    println!("\n== ablation 4: SAT at-most-one encoding ==");
    for (label, amo) in [
        ("pairwise", AmoEncoding::Pairwise),
        ("sequential", AmoEncoding::Sequential),
    ] {
        let mapper = SatMapper {
            amo,
            ..Default::default()
        };
        let start = Instant::now();
        let ok = kernels::small_suite()
            .iter()
            .filter(|k| mapper.map(k, &fabric, &cfg).is_ok())
            .count();
        let ms = start.elapsed().as_secs_f64() * 1e3;
        println!("  {label:<11} {ok} successes in {ms:.0} ms");
        out.push(Abl {
            experiment: "sat-amo".into(),
            variant: label.into(),
            metric: "total ms".into(),
            value: ms,
        });
    }

    // 5. Predication schemes on a control-heavy func.
    println!("\n== ablation 5: ITE mapping schemes ==");
    let ite = frontend::compile_func(
        "func t(x) {
            var y = 0; var z = 0;
            if (x > 64) { y = (x - 64) * 3; z = y + x; } else { y = 64 - x; }
            var w = y + z;
            return;
        }",
    )
    .expect("compiles");
    for scheme in [IteScheme::FullPredication, IteScheme::PartialPredication] {
        let k = predicate_diamond(&ite, scheme).expect("diamond");
        let m = ModuloList::default().map(&k.dfg, &fabric, &cfg);
        let ii = m.map(|m| m.ii).unwrap_or(0);
        println!(
            "  {:<28} {} ops, II {}",
            scheme.label(),
            k.dfg.node_count(),
            ii
        );
        out.push(Abl {
            experiment: "predication".into(),
            variant: scheme.label().into(),
            metric: "ops".into(),
            value: k.dfg.node_count() as f64,
        });
    }

    // 5b. EPIMap routing slack (the stand-in for its graph transform):
    // a tight window forbids the "inserted route node" slack.
    println!("\n== ablation 5b: EPIMap routing slack (graph-transform stand-in) ==");
    for (label, window) in [("tight (w=1)", 1u32), ("transformed (w=3)", 3)] {
        let mapper = EpiMap {
            window_iis: window,
            ..Default::default()
        };
        let ok = suite
            .iter()
            .filter(|k| mapper.map(k, &fabric, &cfg).is_ok())
            .count();
        println!("  {label:<18} {ok}/{} kernels", suite.len());
        out.push(Abl {
            experiment: "epimap-window".into(),
            variant: label.into(),
            metric: "successes".into(),
            value: ok as f64,
        });
    }

    // 6. Hardware loops.
    println!("\n== ablation 6: hardware loop unit ==");
    let dot = kernels::dot_product();
    let sw = with_loop_control(&dot, 256);
    let m_hw = ModuloList::default().map(&dot, &fabric, &cfg).unwrap();
    let m_sw = ModuloList::default().map(&sw, &fabric, &cfg).unwrap();
    println!(
        "  hw-loop: {} ops II {} | sw-loop: {} ops II {}",
        dot.node_count(),
        m_hw.ii,
        sw.node_count(),
        m_sw.ii
    );
    out.push(Abl {
        experiment: "hw-loop".into(),
        variant: "hardware".into(),
        metric: "ops".into(),
        value: dot.node_count() as f64,
    });
    out.push(Abl {
        experiment: "hw-loop".into(),
        variant: "software".into(),
        metric: "ops".into(),
        value: sw.node_count() as f64,
    });

    // 7. Memory banking on the matmul body.
    println!("\n== ablation 7: memory banking policy ==");
    let mat = kernels::matmul_body();
    let m = ModuloList::default().map(&mat, &fabric, &cfg).unwrap();
    let tape = Tape::default().with_memory(vec![1; 256]);
    let trace = memory_trace(&mat, 64, &tape).expect("trace");
    for (label, policy) in [
        ("interleaved", BankPolicy::Interleaved),
        ("blocked-64", BankPolicy::Blocked { block: 64 }),
    ] {
        let r = bank_conflicts(&mat, &m, &trace, 4, policy);
        println!(
            "  {label:<12} stalls {} -> effective II {:.2}",
            r.stalls, r.effective_ii
        );
        out.push(Abl {
            experiment: "banking".into(),
            variant: label.into(),
            metric: "effective II".into(),
            value: r.effective_ii,
        });
    }

    save_json("ablations", &out);
}
