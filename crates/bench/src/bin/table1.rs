//! Experiment: **Table I** — the survey's classification of mapping
//! techniques, regenerated twice:
//!
//! 1. *Taxonomically*, from the bibliographic corpus (`cgra-survey`):
//!    the exact cells of the published table.
//! 2. *Empirically*, by running every implemented technique family on
//!    the classic kernel suite and reporting success rate, achieved
//!    II, and compile time — the quantitative form of the survey's
//!    qualitative claims.
//!
//! ```sh
//! cargo run --release -p cgra-bench --bin table1
//! ```

use cgra::prelude::*;
use cgra_bench::{quick, save_json};
use std::time::Duration;

fn main() {
    // Part 1: the published table from the corpus.
    println!("{}", survey::render_table1());

    // Part 2: the empirical counterpart.
    let fabric = Fabric::homogeneous(4, 4, Topology::Mesh);
    let kernels = kernels::suite();
    let cfg = MapConfig {
        time_limit: Duration::from_secs(if quick() { 3 } else { 15 }),
        ..MapConfig::default()
    };
    let mappers = MapperRegistry::standard().build_all();
    eprintln!(
        "running {} mappers x {} kernels on {} ...",
        mappers.len(),
        kernels.len(),
        fabric.name
    );
    let entries = run_portfolio(&mappers, &kernels, &fabric, &cfg);
    let summary = cgra::mapper::portfolio::summarise(&entries);

    println!("\nEMPIRICAL TABLE I — {} kernels on {}", kernels.len(), fabric.name);
    println!(
        "{:<16} {:<28} {:>9} {:>9} {:>11} {:>10} {:>12} {:>12}",
        "mapper", "family", "success", "mean II", "ms/kernel", "IIs tried", "placements", "backtracks"
    );
    println!("{}", "-".repeat(116));
    let eff = |x: Option<f64>| x.map(|v| format!("{v:.1}")).unwrap_or_else(|| "-".into());
    for s in &summary {
        println!(
            "{:<16} {:<28} {:>6}/{:<2} {:>9} {:>11.1} {:>10} {:>12} {:>12}",
            s.mapper,
            s.family_label,
            s.successes,
            s.attempts,
            s.mean_ii.map(|x| format!("{x:.2}")).unwrap_or_else(|| "-".into()),
            s.mean_compile_ms,
            eff(s.mean_ii_attempts),
            eff(s.mean_placements),
            eff(s.mean_backtracks),
        );
    }

    // The shape claims of the survey, checked.
    let mean = |pred: &dyn Fn(&cgra::mapper::portfolio::MapperSummary) -> bool,
                f: &dyn Fn(&cgra::mapper::portfolio::MapperSummary) -> f64|
     -> f64 {
        let xs: Vec<f64> = summary.iter().filter(|s| pred(s)).map(f).collect();
        xs.iter().sum::<f64>() / xs.len().max(1) as f64
    };
    let heuristic_ms = mean(&|s| !s.exact && !s.spatial, &|s| s.mean_compile_ms);
    let exact_ms = mean(&|s| s.exact, &|s| s.mean_compile_ms);
    println!("\nshape checks (survey claims):");
    println!(
        "  heuristics faster than exact methods: {:.1} ms vs {:.1} ms -> {}",
        heuristic_ms,
        exact_ms,
        if heuristic_ms < exact_ms { "HOLDS" } else { "VIOLATED" }
    );
    let any_heuristic_failure = entries
        .iter()
        .any(|e| !e.exact && !e.succeeded());
    println!(
        "  heuristic mapping may fail (survey: 'mapping might fail'): {}",
        if any_heuristic_failure { "observed" } else { "not observed on this suite" }
    );

    save_json("table1_entries", &entries);
    save_json("table1_summary", &summary);
}
