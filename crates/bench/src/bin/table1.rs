//! Experiment: **Table I** — the survey's classification of mapping
//! techniques, regenerated twice:
//!
//! 1. *Taxonomically*, from the bibliographic corpus (`cgra-survey`):
//!    the exact cells of the published table.
//! 2. *Empirically*, by running every implemented technique family on
//!    the classic kernel suite and reporting success rate, achieved
//!    II, and compile time — the quantitative form of the survey's
//!    qualitative claims.
//!
//! ```sh
//! cargo run --release -p cgra-bench --bin table1
//! cargo run --release -p cgra-bench --bin table1 -- \
//!     --report reports/ --kernels dot_product,fir4 --mappers modulo-list,sa
//! ```
//!
//! With `--report DIR`, one versioned [`RunReport`] JSON artifact is
//! written per (mapper, kernel) cell — the input format of
//! `cgra-report`, which renders convergence tables and gates CI on
//! regressions against a baseline directory.

use cgra::prelude::*;
use cgra_bench::{quick, save_json};
use std::time::Duration;

struct Options {
    /// Write one RunReport per (mapper, kernel) cell into this dir.
    report: Option<String>,
    /// Restrict the kernel suite to these names (comma-separated).
    kernels: Option<Vec<String>>,
    /// Restrict the mapper zoo to these names (comma-separated).
    mappers: Option<Vec<String>>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        report: None,
        kernels: None,
        mappers: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut need = |name: &str| -> Result<String, String> {
            args.next().ok_or(format!("{name} needs a value"))
        };
        let list = |v: String| v.split(',').map(|s| s.trim().to_string()).collect();
        match a.as_str() {
            "--report" => opts.report = Some(need("--report")?),
            "--kernels" => opts.kernels = Some(list(need("--kernels")?)),
            "--mappers" => opts.mappers = Some(list(need("--mappers")?)),
            other => {
                return Err(format!(
                    "unknown option `{other}`\nusage: table1 [--report DIR] [--kernels a,b] [--mappers x,y]"
                ))
            }
        }
    }
    Ok(opts)
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };

    // Part 1: the published table from the corpus.
    println!("{}", survey::render_table1());

    // Part 2: the empirical counterpart.
    let fabric = Fabric::homogeneous(4, 4, Topology::Mesh);
    let mut kernels = kernels::suite();
    if let Some(keep) = &opts.kernels {
        kernels.retain(|k| keep.iter().any(|n| n == &k.name));
        if kernels.is_empty() {
            eprintln!("--kernels matched nothing in the suite");
            std::process::exit(2);
        }
    }
    let cfg = MapConfig {
        time_limit: Duration::from_secs(if quick() { 3 } else { 15 }),
        ..MapConfig::default()
    };
    let mut mappers = MapperRegistry::standard().build_all();
    if let Some(keep) = &opts.mappers {
        mappers.retain(|m| keep.iter().any(|n| n == m.name()));
        if mappers.is_empty() {
            eprintln!("--mappers matched nothing in the registry");
            std::process::exit(2);
        }
    }
    eprintln!(
        "running {} mappers x {} kernels on {} ...",
        mappers.len(),
        kernels.len(),
        fabric.name
    );
    let entries = run_portfolio(&mappers, &kernels, &fabric, &cfg);
    let summary = cgra::mapper::portfolio::summarise(&entries);

    if let Some(dir) = &opts.report {
        let dir = std::path::Path::new(dir);
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("{}: {e}", dir.display());
            std::process::exit(1);
        }
        let mut written = 0usize;
        for e in &entries {
            let report = RunReport {
                version: cgra::mapper::report::RUN_REPORT_VERSION,
                instance: e.kernel.clone(),
                arch: fabric.name.clone(),
                mapper: e.mapper.clone(),
                config: ConfigDigest::of(&cfg),
                metrics: e.metrics.clone(),
                error: e.error.clone(),
                diagnosis: e.diagnosis.clone(),
                compile_ms: e.compile_ms,
                snapshot: e.stats,
                events: e.events.clone(),
                events_dropped: e.events_dropped,
                spans_dropped: e.spans_dropped,
                latency: e.latency.clone(),
                utilization: e.utilization.clone(),
            };
            let path = dir.join(format!("{}.json", report.file_stem()));
            if let Err(err) = report.save(&path) {
                eprintln!("{}: {err}", path.display());
                std::process::exit(1);
            }
            written += 1;
        }
        eprintln!("wrote {written} run reports to {}", dir.display());
    }

    println!(
        "\nEMPIRICAL TABLE I — {} kernels on {}",
        kernels.len(),
        fabric.name
    );
    println!(
        "{:<16} {:<28} {:>9} {:>9} {:>11} {:>10} {:>12} {:>12}",
        "mapper",
        "family",
        "success",
        "mean II",
        "ms/kernel",
        "IIs tried",
        "placements",
        "backtracks"
    );
    println!("{}", "-".repeat(116));
    let eff = |x: Option<f64>| x.map(|v| format!("{v:.1}")).unwrap_or_else(|| "-".into());
    for s in &summary {
        println!(
            "{:<16} {:<28} {:>6}/{:<2} {:>9} {:>11.1} {:>10} {:>12} {:>12}",
            s.mapper,
            s.family_label,
            s.successes,
            s.attempts,
            s.mean_ii
                .map(|x| format!("{x:.2}"))
                .unwrap_or_else(|| "-".into()),
            s.mean_compile_ms,
            eff(s.mean_ii_attempts),
            eff(s.mean_placements),
            eff(s.mean_backtracks),
        );
    }

    // The shape claims of the survey, checked.
    let mean = |pred: &dyn Fn(&cgra::mapper::portfolio::MapperSummary) -> bool,
                f: &dyn Fn(&cgra::mapper::portfolio::MapperSummary) -> f64|
     -> f64 {
        let xs: Vec<f64> = summary.iter().filter(|s| pred(s)).map(f).collect();
        xs.iter().sum::<f64>() / xs.len().max(1) as f64
    };
    let heuristic_ms = mean(&|s| !s.exact && !s.spatial, &|s| s.mean_compile_ms);
    let exact_ms = mean(&|s| s.exact, &|s| s.mean_compile_ms);
    println!("\nshape checks (survey claims):");
    println!(
        "  heuristics faster than exact methods: {:.1} ms vs {:.1} ms -> {}",
        heuristic_ms,
        exact_ms,
        if heuristic_ms < exact_ms {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );
    let any_heuristic_failure = entries.iter().any(|e| !e.exact && !e.succeeded());
    println!(
        "  heuristic mapping may fail (survey: 'mapping might fail'): {}",
        if any_heuristic_failure {
            "observed"
        } else {
            "not observed on this suite"
        }
    );

    save_json("table1_entries", &entries);
    save_json("table1_summary", &summary);
}
