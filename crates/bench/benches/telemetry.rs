//! Telemetry overhead benches: the disabled sink must be free.
//!
//! The observability contract (see DESIGN.md) is that a `Telemetry`
//! handle with no sink costs a null check on the hot paths. These
//! benches compare the router and the modulo-list scheduler with the
//! sink disabled, enabled, and (for the router) against the pre-sink
//! `route_all` entry point, so a regression in the disabled path shows
//! up as a gap between the `off` and `baseline` rows.

use cgra::mapper::mapping::Placement;
use cgra::mapper::route::{route_all, route_all_with};
use cgra::mapper::telemetry::Telemetry;
use cgra::prelude::*;
use cgra_arch::TopologyCache;
use cgra_ir::graph::{asap, unit_latency};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_router_overhead(c: &mut Criterion) {
    let fabric = Fabric::homogeneous(4, 4, Topology::Mesh);
    let dfg = kernels::sobel();
    let times = asap(&dfg, &unit_latency);
    let place: Vec<Placement> = dfg
        .node_ids()
        .map(|n| Placement {
            pe: PeId((n.0 * 5 % 16) as u16),
            time: times[n.index()] * 3,
        })
        .collect();
    let topo = TopologyCache::build(&fabric);
    let mut group = c.benchmark_group("telemetry_router");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(6));
    group.bench_function("baseline", |b| {
        b.iter(|| criterion::black_box(route_all(&fabric, &dfg, &place, 8, 10, true)))
    });
    let off = Telemetry::off();
    group.bench_function("off", |b| {
        b.iter(|| {
            criterion::black_box(route_all_with(
                &fabric, &topo, &dfg, &place, 8, 10, true, &off,
            ))
        })
    });
    let on = Telemetry::enabled();
    group.bench_function("on", |b| {
        b.iter(|| {
            criterion::black_box(route_all_with(
                &fabric, &topo, &dfg, &place, 8, 10, true, &on,
            ))
        })
    });
    group.finish();
}

fn bench_modulo_list_overhead(c: &mut Criterion) {
    let fabric = Fabric::homogeneous(4, 4, Topology::Mesh);
    let dfg = kernels::fir(8);
    let mut group = c.benchmark_group("telemetry_modulo_list");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(6));
    for (label, tele) in [("off", Telemetry::off()), ("on", Telemetry::enabled())] {
        let cfg = MapConfig {
            telemetry: tele,
            ..MapConfig::fast()
        };
        group.bench_function(label, |b| {
            b.iter(|| criterion::black_box(ModuloList::default().map(&dfg, &fabric, &cfg)))
        });
    }
    group.finish();
}

/// The latency histograms ride the same contract: recording into a
/// disabled sink must stay a null check, and recording into an enabled
/// sink is one atomic bucket increment. The `off` row here pins the
/// disabled-path cost to noise next to `baseline` (an empty loop over
/// the same values).
fn bench_histogram_overhead(c: &mut Criterion) {
    let samples: Vec<u64> = (0..1024u64)
        .map(|i| i.wrapping_mul(2654435761) % 50_000)
        .collect();
    let mut group = c.benchmark_group("telemetry_histogram");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(6));
    group.bench_function("baseline", |b| {
        b.iter(|| {
            for &v in &samples {
                criterion::black_box(v);
            }
        })
    });
    let off = Telemetry::off();
    group.bench_function("off", |b| {
        b.iter(|| {
            for &v in &samples {
                off.record_route_us(criterion::black_box(v));
            }
        })
    });
    let on = Telemetry::enabled();
    group.bench_function("on", |b| {
        b.iter(|| {
            for &v in &samples {
                on.record_route_us(criterion::black_box(v));
            }
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_router_overhead,
    bench_modulo_list_overhead,
    bench_histogram_overhead
);
criterion_main!(benches);
