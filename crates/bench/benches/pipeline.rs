//! Criterion benches for the compilation pipeline itself (the Fig. 3
//! flow): front-end parsing/lowering, middle-end passes, simulation.

use cgra::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

const SRC: &str = r#"
kernel blend(in a, in b, in alpha, out y) {
    var inv = 256 - alpha;
    y = (a * alpha + b * inv) >> 8;
}
"#;

fn bench_frontend(c: &mut Criterion) {
    let mut group = c.benchmark_group("frontend");
    group
        .sample_size(50)
        .measurement_time(Duration::from_secs(5));
    group.bench_function("parse_and_lower", |b| {
        b.iter(|| std::hint::black_box(frontend::compile_kernel(SRC).unwrap()))
    });
    group.finish();
}

fn bench_passes(c: &mut Criterion) {
    let mut group = c.benchmark_group("middle_end");
    group
        .sample_size(50)
        .measurement_time(Duration::from_secs(5));
    let base = kernels::yuv2rgb();
    group.bench_function("optimize_yuv2rgb", |b| {
        b.iter(|| {
            let mut g = base.clone();
            std::hint::black_box(passes::optimize(&mut g))
        })
    });
    group.bench_function("unroll_x4_fir8", |b| {
        let fir = kernels::fir(8);
        b.iter(|| std::hint::black_box(passes::unroll(&fir, 4)))
    });
    group.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let fabric = Fabric::homogeneous(4, 4, Topology::Mesh);
    let dfg = kernels::dot_product();
    let mapping = ModuloList::default()
        .map(&dfg, &fabric, &MapConfig::default())
        .unwrap();
    let tape = Tape::generate(2, 1024, |s, i| ((s + 1) * (i + 1)) as i64 % 31);
    let mut group = c.benchmark_group("simulation");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(6));
    group.bench_function("interpreter_1024_iters", |b| {
        b.iter(|| std::hint::black_box(Interpreter::run(&dfg, 1024, &tape).unwrap()))
    });
    group.bench_function("cycle_sim_1024_iters", |b| {
        b.iter(|| std::hint::black_box(simulate(&mapping, &dfg, &fabric, 1024, &tape).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_frontend, bench_passes, bench_simulation);
criterion_main!(benches);
