//! Criterion benches for the scalability experiment: flat vs
//! hierarchical mapping as the fabric grows (§IV-B).

use cgra::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_scaling(c: &mut Criterion) {
    let cfg = MapConfig {
        time_limit: Duration::from_secs(20),
        ..MapConfig::default()
    };
    let mut group = c.benchmark_group("scalability");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(15));
    for (side, lanes) in [(4u16, 4usize), (8, 12)] {
        let fabric = Fabric::homogeneous(side, side, Topology::Mesh);
        let kernel = kernels::unrolled_mac(lanes);
        let flat = ModuloList::default();
        let hier = HiMap::default();
        group.bench_with_input(
            BenchmarkId::new("flat_modulo_list", format!("{side}x{side}")),
            &kernel,
            |b, k| b.iter(|| std::hint::black_box(flat.map(k, &fabric, &cfg))),
        );
        group.bench_with_input(
            BenchmarkId::new("himap", format!("{side}x{side}")),
            &kernel,
            |b, k| b.iter(|| std::hint::black_box(hier.map(k, &fabric, &cfg))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
