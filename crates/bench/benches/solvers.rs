//! Criterion benches for the from-scratch exact-method engines.

use cgra_solver::cnf::{exactly_one, AmoEncoding};
use cgra_solver::{Cmp, CpModel, IlpModel, Lit, Lp, SatSolver, SatVar, SmtSolver};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_simplex(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(6));
    group.bench_function("assignment_8x8_relaxation", |b| {
        b.iter(|| {
            let n = 8usize;
            let mut lp = Lp::new(n * n, true);
            for i in 0..n {
                for j in 0..n {
                    lp.set_objective(i * n + j, ((i * 7 + j * 3) % 11) as f64);
                }
            }
            for i in 0..n {
                let row: Vec<(usize, f64)> = (0..n).map(|j| (i * n + j, 1.0)).collect();
                lp.add_constraint(&row, Cmp::Eq, 1.0);
                let col: Vec<(usize, f64)> = (0..n).map(|j| (j * n + i, 1.0)).collect();
                lp.add_constraint(&col, Cmp::Le, 1.0);
            }
            std::hint::black_box(lp.solve())
        })
    });
    group.finish();
}

fn bench_ilp(c: &mut Criterion) {
    let mut group = c.benchmark_group("ilp_bnb");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    group.bench_function("knapsack_16", |b| {
        b.iter(|| {
            let mut m = IlpModel::new(true);
            let vars: Vec<_> = (0..16)
                .map(|i| m.add_var(((i * 13 + 7) % 19 + 1) as f64))
                .collect();
            let weights: Vec<(cgra_solver::IlpVar, f64)> = vars
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, ((i * 5 + 3) % 9 + 1) as f64))
                .collect();
            m.add_constraint(&weights, Cmp::Le, 30.0);
            std::hint::black_box(m.solve())
        })
    });
    group.finish();
}

#[allow(clippy::needless_range_loop)] // pigeonhole clauses index p[a][hole]/p[b][hole]
fn bench_sat(c: &mut Criterion) {
    let mut group = c.benchmark_group("cdcl_sat");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    group.bench_function("php_7_6_unsat", |b| {
        b.iter(|| {
            let mut s = SatSolver::new();
            let p: Vec<Vec<SatVar>> = (0..7)
                .map(|_| (0..6).map(|_| s.new_var()).collect())
                .collect();
            for row in &p {
                let c: Vec<Lit> = row.iter().map(|&x| Lit::pos(x)).collect();
                s.add_clause(&c);
            }
            for hole in 0..6 {
                for a in 0..7 {
                    for bb in (a + 1)..7 {
                        s.add_clause(&[Lit::neg(p[a][hole]), Lit::neg(p[bb][hole])]);
                    }
                }
            }
            std::hint::black_box(s.solve())
        })
    });
    group.bench_function("exactly_one_chain_sat", |b| {
        b.iter(|| {
            let mut s = SatSolver::new();
            for _ in 0..40 {
                let vs: Vec<Lit> = (0..12).map(|_| Lit::pos(s.new_var())).collect();
                exactly_one(&mut s, &vs, AmoEncoding::Sequential);
            }
            std::hint::black_box(s.solve())
        })
    });
    group.finish();
}

fn bench_cp(c: &mut Criterion) {
    let mut group = c.benchmark_group("cp_engine");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    group.bench_function("n_queens_8", |b| {
        b.iter(|| {
            let n = 8u32;
            let mut m = CpModel::new();
            let cols: Vec<_> = (0..n).map(|_| m.add_var(n)).collect();
            m.all_different(&cols);
            for i in 0..n as usize {
                for j in (i + 1)..n as usize {
                    let d = (j - i) as u32;
                    m.binary_table(cols[i], cols[j], move |a, b| a.abs_diff(b) != d);
                }
            }
            std::hint::black_box(m.solve())
        })
    });
    group.finish();
}

fn bench_smt(c: &mut Criterion) {
    let mut group = c.benchmark_group("smt_difference_logic");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    group.bench_function("window_chain_24", |b| {
        b.iter(|| {
            let n = 24;
            let mut s = SmtSolver::new(n + 1);
            for i in 0..n - 1 {
                let a = s.diff_le(i, i + 1, -1);
                s.add_clause(&[a]);
            }
            let bound = s.diff_le(n - 1, 0, 40);
            s.add_clause(&[bound]);
            std::hint::black_box(s.solve())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_simplex,
    bench_ilp,
    bench_sat,
    bench_cp,
    bench_smt
);
criterion_main!(benches);
