//! Criterion benches for the mapping techniques — the compile-time
//! column of the empirical Table I: one group per technique family,
//! measured on representative kernels.

use cgra::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_heuristics(c: &mut Criterion) {
    let fabric = Fabric::homogeneous(4, 4, Topology::Mesh);
    let cfg = MapConfig::default();
    let mut group = c.benchmark_group("heuristic_mappers");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    let kernels = [kernels::dot_product(), kernels::fir(4), kernels::sobel()];
    for mapper in heuristic_mappers() {
        for k in &kernels {
            group.bench_with_input(BenchmarkId::new(mapper.name(), &k.name), k, |b, k| {
                b.iter(|| {
                    let _ = std::hint::black_box(mapper.map(k, &fabric, &cfg));
                })
            });
        }
    }
    group.finish();
}

fn bench_meta(c: &mut Criterion) {
    let fabric = Fabric::homogeneous(4, 4, Topology::Mesh);
    let cfg = MapConfig {
        time_limit: Duration::from_secs(8),
        ..MapConfig::default()
    };
    let mut group = c.benchmark_group("meta_heuristic_mappers");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(10));
    let k = kernels::sad();
    let metas: Vec<Box<dyn Mapper>> = vec![
        Box::new(SimulatedAnnealing::default()),
        Box::new(Genetic::default()),
        Box::new(Qea::default()),
    ];
    for mapper in metas {
        group.bench_function(mapper.name(), |b| {
            b.iter(|| {
                let _ = std::hint::black_box(mapper.map(&k, &fabric, &cfg));
            })
        });
    }
    group.finish();
}

fn bench_exact(c: &mut Criterion) {
    let fabric = Fabric::homogeneous(3, 3, Topology::Mesh);
    let cfg = MapConfig {
        time_limit: Duration::from_secs(8),
        ..MapConfig::default()
    };
    let mut group = c.benchmark_group("exact_mappers");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(12));
    let k = kernels::dot_product();
    let exacts: Vec<Box<dyn Mapper>> = vec![
        Box::new(SatMapper::default()),
        Box::new(CpMapper::default()),
        Box::new(IlpMapper::default()),
        Box::new(SmtMapper::default()),
        Box::new(BranchAndBound::default()),
    ];
    for mapper in exacts {
        group.bench_function(mapper.name(), |b| {
            b.iter(|| {
                let _ = std::hint::black_box(mapper.map(&k, &fabric, &cfg));
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_heuristics, bench_meta, bench_exact);
criterion_main!(benches);
