//! Criterion benches for the space-time router and the PathFinder
//! negotiation loop (the ablation's performance side).

use cgra::mapper::mapping::Placement;
use cgra::mapper::route::{find_route, route_all, RouteOpts};
use cgra::prelude::*;
use cgra_ir::graph::{asap, unit_latency};
use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::HashSet;
use std::time::Duration;

fn bench_single_route(c: &mut Criterion) {
    let fabric = Fabric::homogeneous(8, 8, Topology::Mesh);
    let st = cgra::arch::SpaceTime::new(&fabric, 4);
    let mut group = c.benchmark_group("router");
    group.sample_size(30).measurement_time(Duration::from_secs(6));
    group.bench_function("corner_to_corner_8x8", |b| {
        b.iter(|| {
            std::hint::black_box(find_route(
                &fabric,
                &st,
                PeId(0),
                0,
                PeId(63),
                16,
                &HashSet::new(),
                None,
                RouteOpts::default(),
            ))
        })
    });
    group.finish();
}

fn bench_route_all(c: &mut Criterion) {
    let fabric = Fabric::homogeneous(4, 4, Topology::Mesh);
    let dfg = kernels::sobel();
    let times = asap(&dfg, &unit_latency);
    // A deliberately mediocre placement to give negotiation work.
    let place: Vec<Placement> = dfg
        .node_ids()
        .map(|n| Placement {
            pe: PeId((n.0 * 5 % 16) as u16),
            time: times[n.index()] * 3,
        })
        .collect();
    let mut group = c.benchmark_group("route_all");
    group.sample_size(20).measurement_time(Duration::from_secs(8));
    for (label, negotiated) in [("negotiated", true), ("single_pass", false)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                std::hint::black_box(route_all(&fabric, &dfg, &place, 8, 10, negotiated))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single_route, bench_route_all);
criterion_main!(benches);
