//! Criterion benches for the space-time router and the PathFinder
//! negotiation loop (the ablation's performance side).
//!
//! The `route_all` group carries the cached-vs-uncached pair: the
//! `negotiated_cached` row runs the [`TopologyCache`]-backed
//! `route_all_with` hot path, `negotiated_uncached` runs the frozen
//! pre-cache router (`route::naive`), so the gap between them is the
//! topology-cache + scratch-reuse win on the real historical baseline.
//! The machine-independent form of that gap (a speedup ratio) is what
//! the `bench_router` bin emits into `BENCH_router.json` for the CI
//! regression gate.

use cgra::mapper::mapping::Placement;
use cgra::mapper::route::{self, find_route, route_all, route_all_with, RouteOpts};
use cgra::mapper::telemetry::Telemetry;
use cgra::prelude::*;
use cgra_arch::TopologyCache;
use cgra_ir::graph::{asap, unit_latency};
use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::HashSet;
use std::time::Duration;

fn bench_single_route(c: &mut Criterion) {
    let fabric = Fabric::homogeneous(8, 8, Topology::Mesh);
    let st = cgra::arch::SpaceTime::new(&fabric, 4);
    let mut group = c.benchmark_group("router");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(6));
    group.bench_function("corner_to_corner_8x8", |b| {
        b.iter(|| {
            std::hint::black_box(find_route(
                &fabric,
                &st,
                PeId(0),
                0,
                PeId(63),
                16,
                &HashSet::new(),
                None,
                RouteOpts::default(),
            ))
        })
    });
    group.finish();
}

fn bench_route_all(c: &mut Criterion) {
    let fabric = Fabric::homogeneous(4, 4, Topology::Mesh);
    let topo = TopologyCache::build(&fabric);
    let dfg = kernels::sobel();
    let times = asap(&dfg, &unit_latency);
    // A deliberately mediocre placement to give negotiation work.
    let place: Vec<Placement> = dfg
        .node_ids()
        .map(|n| Placement {
            pe: PeId((n.0 * 5 % 16) as u16),
            time: times[n.index()] * 3,
        })
        .collect();
    let off = Telemetry::off();
    let mut group = c.benchmark_group("route_all");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(8));
    for (label, negotiated) in [("negotiated", true), ("single_pass", false)] {
        group.bench_function(label, |b| {
            b.iter(|| std::hint::black_box(route_all(&fabric, &dfg, &place, 8, 10, negotiated)))
        });
    }
    // Cached vs uncached: same work, shared topology table + reused
    // scratch vs the frozen pre-cache router.
    group.bench_function("negotiated_cached", |b| {
        b.iter(|| {
            std::hint::black_box(route_all_with(
                &fabric, &topo, &dfg, &place, 8, 10, true, &off,
            ))
        })
    });
    group.bench_function("negotiated_uncached", |b| {
        b.iter(|| std::hint::black_box(route::naive::route_all(&fabric, &dfg, &place, 8, 10, true)))
    });
    group.finish();
}

criterion_group!(benches, bench_single_route, bench_route_all);
criterion_main!(benches);
