//! Engine overhead benches: budget polling must be noise.
//!
//! The engine contract (see DESIGN.md) is that threading a [`Budget`]
//! through the hot scheduling loops costs one relaxed atomic load per
//! poll, with the clock read only every stride-th call. These benches
//! compare the modulo-list scheduler under an unlimited budget (cancel
//! flag only) and under a far deadline (flag + amortised clock), and
//! pin the raw `Budget::expired()` poll itself, so a regression in the
//! amortisation shows up as a gap between the rows.

use cgra::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_expired_poll(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_budget_poll");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(6));
    let unlimited = Budget::unlimited();
    group.bench_function("expired_unlimited", |b| {
        b.iter(|| criterion::black_box(unlimited.expired()))
    });
    let far = Budget::for_duration(Duration::from_secs(3600));
    group.bench_function("expired_deadline", |b| {
        b.iter(|| criterion::black_box(far.expired()))
    });
    group.bench_function("expired_now", |b| {
        b.iter(|| criterion::black_box(far.expired_now()))
    });
    group.finish();
}

fn bench_modulo_list_budget_overhead(c: &mut Criterion) {
    let fabric = Fabric::homogeneous(4, 4, Topology::Mesh);
    let dfg = kernels::fir(8);
    let mut group = c.benchmark_group("engine_modulo_list");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(6));
    for (label, budget) in [
        ("unlimited", Budget::unlimited()),
        ("deadline", Budget::for_duration(Duration::from_secs(3600))),
    ] {
        let cfg = MapConfig {
            budget,
            ..MapConfig::fast()
        };
        group.bench_function(label, |b| {
            b.iter(|| criterion::black_box(ModuloList::default().map(&dfg, &fabric, &cfg)))
        });
    }
    group.finish();
}

/// The run ledger's contract mirrors telemetry's: a disabled ledger in
/// the mapping loop must cost nothing beyond a null check per emission
/// site, and an enabled one a timestamp plus one atomic append. The
/// off row should be indistinguishable from `engine_modulo_list`.
fn bench_modulo_list_ledger_overhead(c: &mut Criterion) {
    let fabric = Fabric::homogeneous(4, 4, Topology::Mesh);
    let dfg = kernels::fir(8);
    let mut group = c.benchmark_group("engine_ledger");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(6));
    for (label, ledger) in [("off", Ledger::off()), ("on", Ledger::enabled())] {
        let cfg = MapConfig {
            ledger,
            ..MapConfig::fast()
        };
        group.bench_function(label, |b| {
            b.iter(|| criterion::black_box(ModuloList::default().map(&dfg, &fabric, &cfg)))
        });
    }
    // The raw emission paths, isolated from the mapper.
    let off = Ledger::off();
    group.bench_function("emit_disabled", |b| {
        b.iter(|| off.incumbent("bench", 2, criterion::black_box(1.0)))
    });
    let on = Ledger::enabled();
    group.bench_function("emit_enabled", |b| {
        b.iter(|| on.incumbent("bench", 2, criterion::black_box(1.0)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_expired_poll,
    bench_modulo_list_budget_overhead,
    bench_modulo_list_ledger_overhead
);
criterion_main!(benches);
