//! Engine overhead benches: budget polling must be noise.
//!
//! The engine contract (see DESIGN.md) is that threading a [`Budget`]
//! through the hot scheduling loops costs one relaxed atomic load per
//! poll, with the clock read only every stride-th call. These benches
//! compare the modulo-list scheduler under an unlimited budget (cancel
//! flag only) and under a far deadline (flag + amortised clock), and
//! pin the raw `Budget::expired()` poll itself, so a regression in the
//! amortisation shows up as a gap between the rows.

use cgra::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_expired_poll(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_budget_poll");
    group.sample_size(30).measurement_time(Duration::from_secs(6));
    let unlimited = Budget::unlimited();
    group.bench_function("expired_unlimited", |b| {
        b.iter(|| criterion::black_box(unlimited.expired()))
    });
    let far = Budget::for_duration(Duration::from_secs(3600));
    group.bench_function("expired_deadline", |b| {
        b.iter(|| criterion::black_box(far.expired()))
    });
    group.bench_function("expired_now", |b| {
        b.iter(|| criterion::black_box(far.expired_now()))
    });
    group.finish();
}

fn bench_modulo_list_budget_overhead(c: &mut Criterion) {
    let fabric = Fabric::homogeneous(4, 4, Topology::Mesh);
    let dfg = kernels::fir(8);
    let mut group = c.benchmark_group("engine_modulo_list");
    group.sample_size(30).measurement_time(Duration::from_secs(6));
    for (label, budget) in [
        ("unlimited", Budget::unlimited()),
        ("deadline", Budget::for_duration(Duration::from_secs(3600))),
    ] {
        let cfg = MapConfig {
            budget,
            ..MapConfig::fast()
        };
        group.bench_function(label, |b| {
            b.iter(|| criterion::black_box(ModuloList::default().map(&dfg, &fabric, &cfg)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_expired_poll, bench_modulo_list_budget_overhead);
criterion_main!(benches);
