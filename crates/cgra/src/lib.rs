//! # cgra
//!
//! The facade crate of the CGRA mapping framework — a from-scratch
//! Rust reproduction of the systems surveyed in Kevin J. M. Martin,
//! *"Twenty Years of Automated Methods for Mapping Applications on
//! CGRA"* (IPDPSW 2022).
//!
//! One `use cgra::prelude::*` brings in:
//!
//! * the IR ([`cgra_ir`]): DFG/CDFG, the MiniC front-end, middle-end
//!   passes, and the classic kernel library;
//! * the architecture model ([`cgra_arch`]): parameterised fabrics,
//!   MRRG occupancy;
//! * every Table I mapping technique ([`cgra_mapper_core`]);
//! * the exact-method engines ([`cgra_solver`]): simplex/ILP, CDCL
//!   SAT, SMT-lite, CP;
//! * configuration generation, cycle-accurate simulation, energy
//!   modelling ([`cgra_sim`]);
//! * the survey's bibliographic corpus ([`cgra_survey`]).
//!
//! ## End-to-end in ten lines
//!
//! ```
//! use cgra::prelude::*;
//!
//! let kernel = frontend::compile_kernel(
//!     "kernel dot(in a, in b, inout acc) { acc += a * b; }").unwrap();
//! let fabric = Fabric::homogeneous(4, 4, Topology::Mesh);
//! let mapping = ModuloList::default()
//!     .map(&kernel.dfg, &fabric, &MapConfig::fast()).unwrap();
//! let tape = Tape::generate(2, 8, |_, i| i as i64 + 1);
//! let stats = cgra::sim::simulate_verified(&mapping, &kernel.dfg, &fabric, 8, &tape).unwrap();
//! assert!(stats.throughput > 0.0);
//! ```

pub use cgra_arch as arch;
pub use cgra_ir as ir;
pub use cgra_mapper_core as mapper;
pub use cgra_sim as sim;
pub use cgra_solver as solver;
pub use cgra_survey as survey;

/// Everything most programs need.
pub mod prelude {
    pub use cgra_arch::{Fabric, IoPolicy, LatencyModel, PeId, Topology};
    pub use cgra_ir::interp::{Interpreter, Tape};
    pub use cgra_ir::{frontend, kernels, passes, Dfg, OpKind};
    pub use cgra_mapper_core::prelude::*;
    pub use cgra_sim::{simulate, ConfigStream, EnergyModel};
    pub use cgra_survey as survey;
}
