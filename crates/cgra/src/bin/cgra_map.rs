//! `cgra-map` — compile a MiniC kernel, map it onto a CGRA fabric,
//! simulate, and report.
//!
//! ```text
//! cgra-map <file.mc> [--kernel NAME] [--fabric RxC] [--topology mesh|meshplus|torus|onehop]
//!          [--mapper NAME] [--race] [--parallel-ii] [--adres] [--iters N]
//!          [--max-ii N] [--seed N] [--time-limit SECS] [--effort N] [--horizon N]
//!          [--trace FILE] [--chrome-trace FILE] [--profile] [--explain]
//!          [--json] [--show-config] [--list-mappers]
//! ```
//!
//! Mapping failures exit with a distinct code per failure kind so
//! scripts can dispatch without parsing stderr: 3 infeasible,
//! 4 timeout, 5 cancelled, 6 unsupported (1 for everything else).

use cgra::mapper::ledger::Ledger;
use cgra::mapper::report;
use cgra::mapper::telemetry::{Counter, Phase, Telemetry};
use cgra::prelude::*;
use std::io::Write;
use std::process::ExitCode;
use std::time::Duration;

struct Options {
    file: Option<String>,
    kernel: Option<String>,
    rows: u16,
    cols: u16,
    topology: Topology,
    adres: bool,
    mapper: String,
    race: bool,
    parallel_ii: bool,
    iters: usize,
    max_ii: u32,
    seed: u64,
    time_limit: Option<u64>,
    effort: Option<u32>,
    horizon: Option<u32>,
    trace: Option<String>,
    chrome_trace: Option<String>,
    profile: bool,
    explain: bool,
    json: bool,
    show_config: bool,
    list_mappers: bool,
}

fn usage() -> &'static str {
    "usage: cgra-map <file.mc> [options]\n\
     options:\n\
       --kernel NAME       kernel to compile (default: first in file)\n\
       --fabric RxC        fabric size (default 4x4)\n\
       --topology T        mesh | meshplus | torus | onehop (default mesh)\n\
       --adres             use the heterogeneous ADRES-like preset\n\
       --mapper NAME       mapping technique (see --list-mappers; default modulo-list)\n\
       --race              race the whole mapper zoo; first validated mapping wins\n\
       --parallel-ii       race candidate IIs concurrently instead of bottom-up\n\
       --iters N           iterations to simulate (default 16)\n\
       --max-ii N          II search bound (default 16)\n\
       --seed N            RNG seed for stochastic mappers\n\
       --time-limit SECS   wall-clock mapping budget in seconds\n\
       --effort N          mapper-specific effort knob (SA sweeps, GA generations, ...)\n\
       --horizon N         schedule-horizon cap as a multiple of the critical path\n\
       --trace FILE        write a JSONL search trace (phase spans + ledger events + counters)\n\
       --chrome-trace FILE write a Chrome trace_event file (load in Perfetto / about:tracing)\n\
       --profile           print a search-effort profile (counters + phase times)\n\
       --explain           on failure, diagnose which resource class bound the search\n\
       --json              machine-readable report\n\
       --show-config       print the configuration stream (Fig. 2c view)\n\
       --list-mappers      list available mapping techniques"
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        file: None,
        kernel: None,
        rows: 4,
        cols: 4,
        topology: Topology::Mesh,
        adres: false,
        mapper: "modulo-list".into(),
        race: false,
        parallel_ii: false,
        iters: 16,
        max_ii: 16,
        seed: 0xC612A,
        time_limit: None,
        effort: None,
        horizon: None,
        trace: None,
        chrome_trace: None,
        profile: false,
        explain: false,
        json: false,
        show_config: false,
        list_mappers: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut need = |name: &str| -> Result<String, String> {
            args.next().ok_or(format!("{name} needs a value"))
        };
        match a.as_str() {
            "--kernel" => opts.kernel = Some(need("--kernel")?),
            "--fabric" => {
                let v = need("--fabric")?;
                let (r, c) = v
                    .split_once('x')
                    .ok_or_else(|| format!("bad --fabric `{v}`, want RxC"))?;
                opts.rows = r.parse().map_err(|_| format!("bad rows `{r}`"))?;
                opts.cols = c.parse().map_err(|_| format!("bad cols `{c}`"))?;
            }
            "--topology" => {
                opts.topology = match need("--topology")?.as_str() {
                    "mesh" => Topology::Mesh,
                    "meshplus" => Topology::MeshPlus,
                    "torus" => Topology::Torus,
                    "onehop" => Topology::OneHop,
                    other => return Err(format!("unknown topology `{other}`")),
                }
            }
            "--adres" => opts.adres = true,
            "--mapper" => opts.mapper = need("--mapper")?,
            "--race" => opts.race = true,
            "--parallel-ii" => opts.parallel_ii = true,
            "--iters" => opts.iters = need("--iters")?.parse().map_err(|e| format!("{e}"))?,
            "--max-ii" => opts.max_ii = need("--max-ii")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => opts.seed = need("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--time-limit" => {
                opts.time_limit = Some(need("--time-limit")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--effort" => {
                opts.effort = Some(need("--effort")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--horizon" => {
                opts.horizon = Some(need("--horizon")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--trace" => opts.trace = Some(need("--trace")?),
            "--chrome-trace" => opts.chrome_trace = Some(need("--chrome-trace")?),
            "--profile" => opts.profile = true,
            "--explain" => opts.explain = true,
            "--json" => opts.json = true,
            "--show-config" => opts.show_config = true,
            "--list-mappers" => opts.list_mappers = true,
            "--help" | "-h" => return Err(usage().to_string()),
            other if other.starts_with('-') => return Err(format!("unknown option `{other}`")),
            file => opts.file = Some(file.to_string()),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{}", e.msg);
            ExitCode::from(e.code)
        }
    }
}

/// A CLI failure: message plus process exit code. Typed mapping
/// failures get distinct codes (see the module docs) so scripts can
/// dispatch on `$?` instead of parsing stderr.
struct CliError {
    msg: String,
    code: u8,
}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError { msg, code: 1 }
    }
}

impl From<&str> for CliError {
    fn from(msg: &str) -> Self {
        msg.to_string().into()
    }
}

fn exit_code_of(err: &MapError) -> u8 {
    match err {
        MapError::Infeasible(_) => 3,
        MapError::Timeout => 4,
        MapError::Cancelled => 5,
        MapError::Unsupported(_) => 6,
    }
}

/// Render a mapping failure, appending the diagnosis when the mapper
/// produced one (requested via `--explain`).
fn mapping_failure(err: MapError) -> CliError {
    let mut msg = format!("mapping failed: {err}");
    if let Some(d) = err.diagnosis() {
        msg.push('\n');
        msg.push_str(&d.render());
    }
    CliError {
        msg,
        code: exit_code_of(&err),
    }
}

fn run() -> Result<(), CliError> {
    let opts = parse_args()?;
    let registry = MapperRegistry::standard();
    if opts.list_mappers {
        println!("available mappers:");
        for spec in registry.specs() {
            println!("  {:<16} {}", spec.name, spec.family.label());
        }
        return Ok(());
    }
    if opts.race && opts.parallel_ii {
        return Err("--race and --parallel-ii are mutually exclusive".into());
    }
    let file = opts.file.as_ref().ok_or_else(|| usage().to_string())?;

    // One sink for the whole pipeline when observability is requested;
    // disabled otherwise (every telemetry call is then a null check).
    let observing = opts.trace.is_some() || opts.chrome_trace.is_some() || opts.profile;
    let tele = if observing {
        Telemetry::enabled()
    } else {
        Telemetry::off()
    };
    // The run ledger records the race timeline and anytime incumbents;
    // it feeds both trace outputs and is free when disabled.
    let ledger = if observing || opts.race {
        Ledger::enabled()
    } else {
        Ledger::off()
    };

    let src = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
    let compiled = {
        let _span = tele.span(Phase::Parse);
        match &opts.kernel {
            Some(name) => frontend::compile_kernel_named(&src, name),
            None => frontend::compile_kernel(&src),
        }
        .map_err(|e| format!("{file}: {e}"))?
    };
    let mut dfg = compiled.dfg;
    {
        let _span = tele.span(Phase::Optimize);
        passes::optimize(&mut dfg);
    }

    let fabric = if opts.adres {
        Fabric::adres_like(opts.rows, opts.cols)
    } else {
        Fabric::homogeneous(opts.rows, opts.cols, opts.topology)
    };
    let mapper = registry.build(&opts.mapper).map_err(|e| e.to_string())?;
    let defaults = MapConfig::default();
    let cfg = MapConfig {
        max_ii: opts.max_ii,
        seed: opts.seed,
        time_limit: opts
            .time_limit
            .map(Duration::from_secs)
            .unwrap_or(defaults.time_limit),
        effort: opts.effort.unwrap_or(defaults.effort),
        horizon_factor: opts.horizon.unwrap_or(defaults.horizon_factor),
        explain: opts.explain,
        telemetry: tele.clone(),
        ledger: ledger.clone(),
        ..defaults
    };

    let start = std::time::Instant::now();
    let mut race_outcome = None;
    let (mapping, mapper_name, family_label) = if opts.race {
        let zoo = registry.build_all();
        let outcome = race(&zoo, &dfg, &fabric, &cfg, None);
        let winner = outcome
            .winner
            .clone()
            .ok_or_else(|| race_failure_report(&outcome))?;
        let mapping = outcome.mapping.clone().expect("a winner implies a mapping");
        let family = registry
            .get(&winner)
            .map(|s| s.family.label().to_string())
            .unwrap_or_default();
        race_outcome = Some(outcome);
        (mapping, winner, family)
    } else {
        let result = if opts.parallel_ii {
            parallel_ii(mapper.as_ref(), &dfg, &fabric, &cfg)
        } else {
            mapper.map(&dfg, &fabric, &cfg)
        };
        let mapping = result.map_err(mapping_failure)?;
        (
            mapping,
            mapper.name().to_string(),
            mapper.family().label().to_string(),
        )
    };
    let compile_ms = start.elapsed().as_secs_f64() * 1e3;
    {
        let _span = tele.span(Phase::Validate);
        validate(&mapping, &dfg, &fabric).map_err(|e| format!("INTERNAL: invalid mapping: {e}"))?;
    }
    let metrics = Metrics::of(&mapping, &dfg, &fabric);

    // Simulate with a deterministic synthetic tape.
    let streams = dfg
        .nodes()
        .filter_map(|(_, n)| match n.op {
            OpKind::Input(s) => Some(s as usize + 1),
            _ => None,
        })
        .max()
        .unwrap_or(0);
    let tape = Tape::generate(streams, opts.iters, |s, i| ((s + 2) * (i + 1)) as i64 % 97)
        .with_memory(vec![1; 256]);
    let stats = {
        let _span = tele.span(Phase::Simulate);
        cgra::sim::simulate_verified(&mapping, &dfg, &fabric, opts.iters, &tape)
            .map_err(|e| format!("simulation mismatch: {e}"))?
    };
    let energy = EnergyModel::default();
    let run_energy = energy.run_energy(&mapping, &dfg, &fabric, opts.iters as u64);

    if let Some(path) = &opts.trace {
        write_trace(path, &tele, &ledger)?;
    }
    if let Some(path) = &opts.chrome_trace {
        let latency = report::LatencySummary::rows_from(&tele);
        let trace = report::chrome_trace(&tele.spans(), &ledger.events(), &latency);
        std::fs::write(path, serde_json::to_string_pretty(&trace).unwrap())
            .map_err(|e| format!("{path}: {e}"))?;
    }

    if opts.json {
        let config_json = serde_json::json!({
            "max_ii": cfg.max_ii,
            "seed": cfg.seed,
            "time_limit_secs": cfg.time_limit.as_secs_f64(),
            "effort": cfg.effort,
            "horizon_factor": cfg.horizon_factor,
        });
        let race_json = match &race_outcome {
            Some(outcome) => serde_json::json!({
                "winner": outcome.winner,
                "wall_ms": outcome.wall_ms,
                "entries": outcome.entries,
            }),
            None => serde_json::Value::Null,
        };
        let report = serde_json::json!({
            "kernel": dfg.name,
            "fabric": fabric.name,
            "mapper": mapper_name,
            "family": family_label,
            "compile_ms": compile_ms,
            "config": config_json,
            "metrics": metrics,
            "cycles": stats.cycles,
            "throughput": stats.throughput,
            "energy": run_energy,
            "search_stats": tele.snapshot(),
            "spans_dropped": tele.spans_dropped(),
            "latency": report::LatencySummary::rows_from(&tele),
            "utilization": UtilizationMap::of(&mapping, &dfg, &fabric),
            "race": race_json,
        });
        println!("{}", serde_json::to_string_pretty(&report).unwrap());
    } else {
        println!(
            "mapped `{}` ({} ops) onto {} with `{}` in {compile_ms:.1} ms",
            dfg.name,
            dfg.node_count(),
            fabric.name,
            mapper_name
        );
        if let Some(outcome) = &race_outcome {
            println!("{}", render_race(outcome));
        }
        println!(
            "  II={} schedule={} utilisation={:.1}% hops={} peak-regs={}",
            metrics.ii,
            metrics.schedule_len,
            metrics.fu_utilisation * 100.0,
            metrics.route_hops,
            metrics.peak_registers
        );
        println!(
            "  simulated {} iterations in {} cycles ({:.3} iters/cycle), energy {:.1} units",
            stats.iterations, stats.cycles, stats.throughput, run_energy
        );
        println!("  functional check vs reference interpreter: OK");
        if opts.show_config {
            let cs = ConfigStream::generate(&mapping, &dfg, &fabric);
            println!("\n{}", cs.render(&fabric));
        }
    }
    if opts.profile {
        let profile = render_profile(&tele);
        if opts.json {
            // Keep stdout valid JSON.
            eprint!("{profile}");
        } else {
            print!("{profile}");
        }
    }
    Ok(())
}

/// One line per race entry: status (II or typed error kind) + time.
fn render_race(outcome: &RaceOutcome) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "  race over {} mappers decided in {:.1} ms wall:",
        outcome.entries.len(),
        outcome.wall_ms
    );
    let _ = writeln!(out, "    {:<16} {:>10} {:>10}", "mapper", "status", "ms");
    for e in &outcome.entries {
        let status = match (&e.metrics, &e.error_detail) {
            (Some(m), _) => format!("II={}", m.ii),
            (None, Some(err)) => err.kind().to_string(),
            (None, None) => "-".to_string(),
        };
        let marker = if Some(&e.mapper) == outcome.winner.as_ref() {
            " <- winner"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "    {:<16} {:>10} {:>10.1}{marker}",
            e.mapper, status, e.compile_ms
        );
    }
    out.trim_end().to_string()
}

/// The error for a race in which no mapper produced a valid mapping.
fn race_failure_report(outcome: &RaceOutcome) -> String {
    let detail: Vec<String> = outcome
        .entries
        .iter()
        .map(|e| {
            format!(
                "{}: {}",
                e.mapper,
                e.error.as_deref().unwrap_or("no mapping")
            )
        })
        .collect();
    format!("race failed: no mapper won\n  {}", detail.join("\n  "))
}

/// Emit the trace as JSON Lines: one `span` event per recorded phase
/// span (completion order), one line per run-ledger event (incumbents,
/// race timeline, II probes), a single `counters` event, and a closing
/// `meta` line accounting for anything the bounded buffers dropped.
fn write_trace(path: &str, tele: &Telemetry, ledger: &Ledger) -> Result<(), String> {
    let f = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
    let mut w = std::io::BufWriter::new(f);
    let mut emit = |line: serde_json::Value| -> Result<(), String> {
        writeln!(w, "{line}").map_err(|e| format!("{path}: {e}"))
    };
    for s in tele.spans() {
        emit(serde_json::json!({
            "event": "span",
            "phase": s.phase.label(),
            "ii": s.ii,
            "start_us": s.start_us,
            "dur_us": s.dur_us,
        }))?;
    }
    for e in ledger.events() {
        emit(e.to_json())?;
    }
    if let Some(snap) = tele.snapshot() {
        emit(serde_json::json!({ "event": "counters", "counters": snap }))?;
    }
    emit(serde_json::json!({
        "event": "meta",
        "spans_dropped": tele.spans_dropped(),
        "events_dropped": ledger.events_dropped(),
    }))?;
    Ok(())
}

/// Human-readable search-effort profile: wall-clock per phase, then
/// every nonzero counter.
fn render_profile(tele: &Telemetry) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let spans = tele.spans();
    let _ = writeln!(out, "\nsearch profile:");
    let _ = writeln!(out, "  {:<22} {:>10} {:>12}", "phase", "spans", "total ms");
    for p in Phase::ALL {
        let group: Vec<_> = spans.iter().filter(|s| s.phase == p).collect();
        if group.is_empty() {
            continue;
        }
        let total_ms = group.iter().map(|s| s.dur_us).sum::<u64>() as f64 / 1e3;
        let _ = writeln!(
            out,
            "  {:<22} {:>10} {:>12.2}",
            p.label(),
            group.len(),
            total_ms
        );
    }
    if let Some(snap) = tele.snapshot() {
        let _ = writeln!(out, "  {:<22} {:>10}", "counter", "value");
        for c in Counter::ALL {
            let v = snap.get(c);
            if v > 0 {
                let _ = writeln!(out, "  {:<22} {:>10}", c.label(), v);
            }
        }
    }
    out
}
